//! A small text assembler for the A64 subset.
//!
//! One instruction per line; `//` and `;` start comments; `label:` defines
//! a label; branch operands may be labels or immediate word offsets.
//!
//! ```rust
//! use voltboot_armlite::asm::assemble;
//! let p = assemble(r#"
//!     movz x0, #4
//! loop:
//!     sub  x0, x0, #1
//!     cbnz x0, loop
//!     hlt  #0
//! "#).unwrap();
//! assert_eq!(p.len(), 4);
//! ```

use crate::insn::{Cond, Instr, Reg, VReg};
use crate::program::Program;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles `source` into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for unknown
/// mnemonics, malformed operands, undefined labels, or out-of-range
/// immediates.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: strip comments, collect labels and raw statements.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut labels: HashMap<String, i64> = HashMap::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find("//") {
            text = &text[..pos];
        }
        if let Some(pos) = text.find(';') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(AsmError { line: line_no, message: format!("bad label {label:?}") });
            }
            if labels.insert(label.to_string(), statements.len() as i64).is_some() {
                return Err(AsmError {
                    line: line_no,
                    message: format!("duplicate label {label:?}"),
                });
            }
            text = rest[1..].trim();
        }
        if !text.is_empty() {
            statements.push((line_no, text.to_string()));
        }
    }

    // Pass 2: parse each statement.
    let mut instrs = Vec::with_capacity(statements.len());
    for (word_index, (line, text)) in statements.iter().enumerate() {
        let instr = parse_statement(text, *line, word_index as i64, &labels)?;
        instrs.push(instr);
    }
    Ok(Program::from_instrs(instrs))
}

fn parse_statement(
    text: &str,
    line: usize,
    word_index: i64,
    labels: &HashMap<String, i64>,
) -> Result<Instr, AsmError> {
    let err = |message: String| AsmError { line, message };
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let ops: Vec<String> = split_operands(rest);
    let op = |i: usize| -> Result<&str, AsmError> {
        ops.get(i).map(|s| s.as_str()).ok_or_else(|| err(format!("missing operand {i}")))
    };
    let nops = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(format!("expected {n} operands, found {}", ops.len())))
        }
    };
    let branch_offset = |s: &str| -> Result<i32, AsmError> {
        if let Some(&target) = labels.get(s) {
            Ok((target - word_index) as i32)
        } else {
            parse_imm(s).map(|v| v as i32).map_err(|m| err(format!("bad branch target {s:?}: {m}")))
        }
    };

    match mnemonic.as_str() {
        "nop" => {
            nops(0)?;
            Ok(Instr::Nop)
        }
        "ret" => {
            nops(0)?;
            Ok(Instr::Ret)
        }
        "dsb" => {
            // `dsb sy` or bare `dsb`.
            if !(ops.is_empty() || (ops.len() == 1 && ops[0].eq_ignore_ascii_case("sy"))) {
                return Err(err("dsb supports only the sy option".into()));
            }
            Ok(Instr::DsbSy)
        }
        "isb" => {
            nops(0)?;
            Ok(Instr::Isb)
        }
        "hlt" => {
            nops(1)?;
            Ok(Instr::Hlt { imm16: parse_imm_range(op(0)?, 0, 0xFFFF).map_err(&err)? as u16 })
        }
        "movz" | "mov" if ops.len() >= 2 && ops[1].starts_with('#') => {
            let (imm16, hw) = parse_mov_imm(&ops, line)?;
            Ok(Instr::Movz { rd: parse_reg(op(0)?).map_err(&err)?, imm16, hw })
        }
        "movk" => {
            let (imm16, hw) = parse_mov_imm(&ops, line)?;
            Ok(Instr::Movk { rd: parse_reg(op(0)?).map_err(&err)?, imm16, hw })
        }
        "movn" => {
            let (imm16, hw) = parse_mov_imm(&ops, line)?;
            Ok(Instr::Movn { rd: parse_reg(op(0)?).map_err(&err)?, imm16, hw })
        }
        "adr" => {
            nops(2)?;
            let rd = parse_reg(op(0)?).map_err(&err)?;
            // Labels resolve to word offsets; ADR offsets are in bytes.
            let offset = branch_offset(op(1)?)? * 4;
            Ok(Instr::Adr { rd, offset })
        }
        "mvn" => {
            nops(2)?;
            Ok(Instr::OrnReg {
                rd: parse_reg(op(0)?).map_err(&err)?,
                rn: Reg::XZR,
                rm: parse_reg(op(1)?).map_err(&err)?,
            })
        }
        "tst" => {
            nops(2)?;
            Ok(Instr::AndsReg {
                rd: Reg::XZR,
                rn: parse_reg(op(0)?).map_err(&err)?,
                rm: parse_reg(op(1)?).map_err(&err)?,
            })
        }
        "orn" | "ands" | "udiv" | "mul" => {
            nops(3)?;
            let rd = parse_reg(op(0)?).map_err(&err)?;
            let rn = parse_reg(op(1)?).map_err(&err)?;
            let rm = parse_reg(op(2)?).map_err(&err)?;
            Ok(match mnemonic.as_str() {
                "orn" => Instr::OrnReg { rd, rn, rm },
                "ands" => Instr::AndsReg { rd, rn, rm },
                "udiv" => Instr::Udiv { rd, rn, rm },
                _ => Instr::Madd { rd, rn, rm, ra: Reg::XZR },
            })
        }
        "madd" => {
            nops(4)?;
            Ok(Instr::Madd {
                rd: parse_reg(op(0)?).map_err(&err)?,
                rn: parse_reg(op(1)?).map_err(&err)?,
                rm: parse_reg(op(2)?).map_err(&err)?,
                ra: parse_reg(op(3)?).map_err(&err)?,
            })
        }
        "csel" | "csinc" => {
            nops(4)?;
            let rd = parse_reg(op(0)?).map_err(&err)?;
            let rn = parse_reg(op(1)?).map_err(&err)?;
            let rm = parse_reg(op(2)?).map_err(&err)?;
            let cond = parse_cond(&op(3)?.to_ascii_lowercase())
                .ok_or_else(|| err(format!("unknown condition {:?}", ops[3])))?;
            Ok(if mnemonic == "csel" {
                Instr::Csel { rd, rn, rm, cond }
            } else {
                Instr::Csinc { rd, rn, rm, cond }
            })
        }
        "ldp" | "stp" => {
            let rt1 = parse_reg(op(0)?).map_err(&err)?;
            let rt2 = parse_reg(op(1)?).map_err(&err)?;
            let (rn, offset) = parse_mem_operand(&ops[2..]).map_err(&err)?;
            let offset = offset as i32;
            if offset % 8 != 0 || offset > 504 {
                return Err(err(format!("ldp/stp offset {offset} must be 8-aligned, <= 504")));
            }
            Ok(if mnemonic == "ldp" {
                Instr::Ldp { rt1, rt2, rn, offset: offset as i16 }
            } else {
                Instr::Stp { rt1, rt2, rn, offset: offset as i16 }
            })
        }
        "tbz" | "tbnz" => {
            nops(3)?;
            let rt = parse_reg(op(0)?).map_err(&err)?;
            let bit = parse_imm_range(op(1)?, 0, 63).map_err(&err)? as u8;
            let offset = branch_offset(op(2)?)? as i16;
            Ok(if mnemonic == "tbz" {
                Instr::Tbz { rt, bit, offset }
            } else {
                Instr::Tbnz { rt, bit, offset }
            })
        }
        "mov" => {
            nops(2)?;
            // Register move: orr xd, xzr, xm.
            Ok(Instr::OrrReg {
                rd: parse_reg(op(0)?).map_err(&err)?,
                rn: Reg::XZR,
                rm: parse_reg(op(1)?).map_err(&err)?,
            })
        }
        "add" | "sub" | "subs" => {
            nops(3)?;
            let rd = parse_reg(op(0)?).map_err(&err)?;
            let rn = parse_reg(op(1)?).map_err(&err)?;
            if let Some(imm) = op(2)?.strip_prefix('#') {
                let imm12 = parse_imm_range(&format!("#{imm}"), 0, 4095).map_err(&err)? as u16;
                Ok(match mnemonic.as_str() {
                    "add" => Instr::AddImm { rd, rn, imm12 },
                    "sub" => Instr::SubImm { rd, rn, imm12 },
                    _ => Instr::SubsImm { rd, rn, imm12 },
                })
            } else {
                let rm = parse_reg(op(2)?).map_err(&err)?;
                Ok(match mnemonic.as_str() {
                    "add" => Instr::AddReg { rd, rn, rm },
                    "sub" => Instr::SubReg { rd, rn, rm },
                    _ => Instr::SubsReg { rd, rn, rm },
                })
            }
        }
        "cmp" => {
            nops(2)?;
            let rn = parse_reg(op(0)?).map_err(&err)?;
            if op(1)?.starts_with('#') {
                let imm12 = parse_imm_range(op(1)?, 0, 4095).map_err(&err)? as u16;
                Ok(Instr::SubsImm { rd: Reg::XZR, rn, imm12 })
            } else {
                Ok(Instr::SubsReg { rd: Reg::XZR, rn, rm: parse_reg(op(1)?).map_err(&err)? })
            }
        }
        "and" | "orr" | "eor" | "lsl" | "lsr" => {
            nops(3)?;
            let rd = parse_reg(op(0)?).map_err(&err)?;
            let rn = parse_reg(op(1)?).map_err(&err)?;
            let rm = parse_reg(op(2)?).map_err(&err)?;
            Ok(match mnemonic.as_str() {
                "and" => Instr::AndReg { rd, rn, rm },
                "orr" => Instr::OrrReg { rd, rn, rm },
                "eor" => Instr::EorReg { rd, rn, rm },
                "lsl" => Instr::Lslv { rd, rn, rm },
                _ => Instr::Lsrv { rd, rn, rm },
            })
        }
        "ldr" | "str" | "ldrb" | "strb" => {
            let rt = parse_reg(op(0)?).map_err(&err)?;
            let (rn, offset) = parse_mem_operand(&ops[1..]).map_err(&err)?;
            match mnemonic.as_str() {
                "ldr" | "str" => {
                    if offset % 8 != 0 || offset / 8 > 4095 {
                        return Err(err(format!(
                            "ldr/str offset {offset} must be 8-aligned and <= 32760"
                        )));
                    }
                    Ok(if mnemonic == "ldr" {
                        Instr::LdrX { rt, rn, offset: offset as u16 }
                    } else {
                        Instr::StrX { rt, rn, offset: offset as u16 }
                    })
                }
                _ => {
                    if offset > 4095 {
                        return Err(err(format!("byte offset {offset} out of range")));
                    }
                    Ok(if mnemonic == "ldrb" {
                        Instr::Ldrb { rt, rn, offset: offset as u16 }
                    } else {
                        Instr::Strb { rt, rn, offset: offset as u16 }
                    })
                }
            }
        }
        "b" => {
            nops(1)?;
            Ok(Instr::B { offset: branch_offset(op(0)?)? })
        }
        "cbz" | "cbnz" => {
            nops(2)?;
            let rt = parse_reg(op(0)?).map_err(&err)?;
            let offset = branch_offset(op(1)?)?;
            Ok(if mnemonic == "cbz" {
                Instr::Cbz { rt, offset }
            } else {
                Instr::Cbnz { rt, offset }
            })
        }
        m if m.starts_with("b.") => {
            nops(1)?;
            let cond =
                parse_cond(&m[2..]).ok_or_else(|| err(format!("unknown condition {m:?}")))?;
            Ok(Instr::BCond { cond, offset: branch_offset(op(0)?)? })
        }
        "dc" => {
            nops(2)?;
            let rt = parse_reg(op(1)?).map_err(&err)?;
            match ops[0].to_ascii_lowercase().as_str() {
                "zva" => Ok(Instr::DcZva { rt }),
                "civac" => Ok(Instr::DcCivac { rt }),
                "cvac" => Ok(Instr::DcCvac { rt }),
                other => Err(err(format!("unsupported dc operation {other:?}"))),
            }
        }
        "ic" => {
            nops(1)?;
            if ops[0].eq_ignore_ascii_case("iallu") {
                Ok(Instr::IcIallu)
            } else {
                Err(err(format!("unsupported ic operation {:?}", ops[0])))
            }
        }
        "ramindex" => {
            nops(1)?;
            Ok(Instr::RamIndex { rt: parse_reg(op(0)?).map_err(&err)? })
        }
        "mrsram" => {
            nops(2)?;
            let rt = parse_reg(op(0)?).map_err(&err)?;
            let n = parse_imm_range(op(1)?, 0, 3).map_err(&err)? as u8;
            Ok(Instr::MrsRamData { rt, n })
        }
        "movi" => {
            nops(2)?;
            let vd = parse_vreg(op(0)?).map_err(&err)?;
            let imm8 = parse_imm_range(op(1)?, 0, 255).map_err(&err)? as u8;
            Ok(Instr::MoviV16b { vd, imm8 })
        }
        "ins" => {
            nops(2)?;
            let (vd, idx) = parse_vlane(op(0)?).map_err(&err)?;
            Ok(Instr::InsVD { vd, idx, rn: parse_reg(op(1)?).map_err(&err)? })
        }
        "umov" => {
            nops(2)?;
            let rd = parse_reg(op(0)?).map_err(&err)?;
            let (vn, idx) = parse_vlane(op(1)?).map_err(&err)?;
            Ok(Instr::UmovXD { rd, vn, idx })
        }
        other => Err(err(format!("unknown mnemonic {other:?}"))),
    }
}

/// Splits operands on commas, keeping `[x1, #8]` together.
fn split_operands(rest: &str) -> Vec<String> {
    let mut ops = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in rest.chars() {
        match ch {
            '[' => {
                depth += 1;
                current.push(ch);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
            }
            ',' if depth == 0 => {
                let t = current.trim();
                if !t.is_empty() {
                    ops.push(t.to_string());
                }
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    let t = current.trim();
    if !t.is_empty() {
        ops.push(t.to_string());
    }
    ops
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let s = s.trim().to_ascii_lowercase();
    if s == "xzr" || s == "wzr" {
        return Ok(Reg::XZR);
    }
    let digits = s
        .strip_prefix('x')
        .or_else(|| s.strip_prefix('w'))
        .ok_or_else(|| format!("expected register, found {s:?}"))?;
    let n: u8 = digits.parse().map_err(|_| format!("bad register {s:?}"))?;
    if n > 30 {
        return Err(format!("register {s:?} out of range"));
    }
    Ok(Reg(n))
}

fn parse_vreg(s: &str) -> Result<VReg, String> {
    let s = s.trim().to_ascii_lowercase();
    let body = s.split('.').next().unwrap_or(&s);
    let digits =
        body.strip_prefix('v').ok_or_else(|| format!("expected vector register, found {s:?}"))?;
    let n: u8 = digits.parse().map_err(|_| format!("bad vector register {s:?}"))?;
    if n > 31 {
        return Err(format!("vector register {s:?} out of range"));
    }
    Ok(VReg(n))
}

/// Parses `v3.d[1]` into `(v3, 1)`.
fn parse_vlane(s: &str) -> Result<(VReg, u8), String> {
    let s = s.trim().to_ascii_lowercase();
    let (reg_part, lane_part) =
        s.split_once(".d[").ok_or_else(|| format!("expected v<n>.d[<idx>], found {s:?}"))?;
    let vreg = parse_vreg(reg_part)?;
    let idx_str = lane_part.strip_suffix(']').ok_or_else(|| format!("missing ']' in {s:?}"))?;
    let idx: u8 = idx_str.parse().map_err(|_| format!("bad lane index in {s:?}"))?;
    if idx > 1 {
        return Err(format!("lane index {idx} out of range"));
    }
    Ok((vreg, idx))
}

fn parse_imm(s: &str) -> Result<i64, String> {
    let s = s.trim().strip_prefix('#').unwrap_or(s.trim());
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| format!("bad immediate {s:?}"))?;
    Ok(if neg { -value } else { value })
}

fn parse_imm_range(s: &str, min: i64, max: i64) -> Result<i64, String> {
    let v = parse_imm(s)?;
    if v < min || v > max {
        return Err(format!("immediate {v} outside [{min}, {max}]"));
    }
    Ok(v)
}

/// Parses the `[xN]` / `[xN, #imm]` memory operand plus optional trailing
/// pieces already split by commas.
fn parse_mem_operand(ops: &[String]) -> Result<(Reg, u32), String> {
    let joined = ops.join(",");
    let inner = joined
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [base, #offset], found {joined:?}"))?;
    let mut parts = inner.splitn(2, ',');
    let base = parse_reg(parts.next().unwrap())?;
    let offset = match parts.next() {
        Some(imm) => parse_imm_range(imm.trim(), 0, 32760)? as u32,
        None => 0,
    };
    Ok((base, offset))
}

fn parse_mov_imm(ops: &[String], line: usize) -> Result<(u16, u8), AsmError> {
    let err = |message: String| AsmError { line, message };
    // Accept both `rd, #imm, lsl #16` (one shift operand) and
    // `rd, #imm, lsl, #16` (split by an over-eager comma).
    let shift_tokens: Vec<String> = match ops.len() {
        2 => Vec::new(),
        3 => ops[2].split_whitespace().map(str::to_string).collect(),
        4 => vec![ops[2].clone(), ops[3].clone()],
        _ => return Err(err("expected rd, #imm16 [, lsl #shift]".into())),
    };
    let imm16 = parse_imm_range(&ops[1], 0, 0xFFFF).map_err(&err)? as u16;
    let hw = if shift_tokens.is_empty() {
        0
    } else {
        if shift_tokens.len() != 2 || !shift_tokens[0].eq_ignore_ascii_case("lsl") {
            return Err(err(format!("expected lsl #shift, found {shift_tokens:?}")));
        }
        let shift = parse_imm_range(&shift_tokens[1], 0, 48).map_err(&err)?;
        if shift % 16 != 0 {
            return Err(err(format!("mov shift {shift} must be a multiple of 16")));
        }
        (shift / 16) as u8
    };
    Ok((imm16, hw))
}

fn parse_cond(s: &str) -> Option<Cond> {
    Some(match s {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "hs" | "cs" => Cond::Hs,
        "lo" | "cc" => Cond::Lo,
        "mi" => Cond::Mi,
        "pl" => Cond::Pl,
        "vs" => Cond::Vs,
        "vc" => Cond::Vc,
        "hi" => Cond::Hi,
        "ls" => Cond::Ls,
        "ge" => Cond::Ge,
        "lt" => Cond::Lt,
        "gt" => Cond::Gt,
        "le" => Cond::Le,
        "al" => Cond::Al,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FlatMemory;
    use crate::cpu::{Cpu, RunExit};

    fn run(src: &str) -> (Cpu, RunExit) {
        let p = assemble(src).unwrap();
        let mut mem = FlatMemory::new(1 << 16);
        mem.load(0, &p.bytes());
        let mut cpu = Cpu::new(0);
        let exit = cpu.run(&mut mem, 100_000);
        (cpu, exit)
    }

    #[test]
    fn assembles_and_runs_a_loop() {
        let (cpu, exit) = run(r#"
            movz x0, #10
            movz x1, #0
        loop:
            add  x1, x1, #3
            sub  x0, x0, #1
            cbnz x0, loop
            hlt  #0
        "#);
        assert_eq!(exit, RunExit::Halted(0));
        assert_eq!(cpu.x(1), 30);
    }

    #[test]
    fn memory_operands() {
        let (cpu, _) = run(r#"
            movz x0, #0xCAFE
            movz x1, #0x4000
            str  x0, [x1, #16]
            ldr  x2, [x1, #16]
            strb x0, [x1]
            ldrb x3, [x1]
            hlt  #0
        "#);
        assert_eq!(cpu.x(2), 0xCAFE);
        assert_eq!(cpu.x(3), 0xFE);
    }

    #[test]
    fn mov_register_and_immediate_forms() {
        let (cpu, _) = run(r#"
            movz x0, #0x1234, lsl #16
            mov  x1, x0
            mov  x2, #7
            hlt  #0
        "#);
        assert_eq!(cpu.x(1), 0x1234_0000);
        assert_eq!(cpu.x(2), 7);
    }

    #[test]
    fn conditional_branch_with_cmp() {
        let (cpu, _) = run(r#"
            movz x0, #5
            cmp  x0, #9
            b.lt less
            movz x1, #0
            b    done
        less:
            movz x1, #1
        done:
            hlt  #0
        "#);
        assert_eq!(cpu.x(1), 1);
    }

    #[test]
    fn vector_instructions() {
        let (cpu, _) = run(r#"
            movi v2.16b, #0xAA
            movz x0, #0xBEEF
            ins  v3.d[0], x0
            umov x1, v2.d[1]
            hlt  #0
        "#);
        assert_eq!(cpu.x(1), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(cpu.v(3)[0], 0xBEEF);
    }

    #[test]
    fn barriers_and_cache_ops_parse() {
        let p = assemble(
            r#"
            ramindex x0
            dsb sy
            isb
            mrsram x1, #0
            dc zva, x2
            dc civac, x2
            dc cvac, x2
            ic iallu
            ret
        "#,
        )
        .unwrap();
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            r#"
            // leading comment
            nop ; trailing comment

            nop // another
        "#,
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\nfrobnicate x0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = assemble("b nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("a:\nnop\na:\nnop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn out_of_range_immediates_rejected() {
        assert!(assemble("add x0, x0, #4096\n").is_err());
        assert!(assemble("ldr x0, [x1, #7]\n").is_err());
        assert!(assemble("movz x0, #0x10000\n").is_err());
    }

    #[test]
    fn backward_and_forward_labels() {
        let (cpu, exit) = run(r#"
            movz x0, #3
            b skip
            hlt #9
        skip:
            sub x0, x0, #1
            cbnz x0, skip
            hlt #0
        "#);
        assert_eq!(exit, RunExit::Halted(0));
        assert_eq!(cpu.x(0), 0);
    }
}
