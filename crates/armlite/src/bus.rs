//! The memory bus the CPU talks to.
//!
//! The `soc` crate implements [`Bus`] with its caches and SRAM-backed
//! memories; this crate ships [`FlatMemory`] for self-contained tests.

use std::error::Error;
use std::fmt;

/// A fault raised by the memory system or a system operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFault {
    /// No device decodes this address.
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// The access was misaligned for its size.
    Misaligned {
        /// The faulting address.
        addr: u64,
        /// The access size in bytes.
        size: u8,
    },
    /// The operation needs a higher exception level (e.g. `RAMINDEX`
    /// requires EL3 — paper §5.2.4).
    PermissionDenied {
        /// Required exception level.
        required_el: u8,
    },
    /// The access hit memory marked secure while the core is non-secure
    /// (TrustZone enforcement — paper §8).
    SecureViolation {
        /// The faulting address.
        addr: u64,
    },
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusFault::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            BusFault::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#x}")
            }
            BusFault::PermissionDenied { required_el } => {
                write!(f, "operation requires EL{required_el}")
            }
            BusFault::SecureViolation { addr } => {
                write!(f, "non-secure access to secure address {addr:#x}")
            }
        }
    }
}

impl Error for BusFault {}

/// One `RAMINDEX` request as packed into the `Xt` operand.
///
/// The field layout follows the Cortex-A72 TRM's spirit: bits `[31:24]`
/// select the internal RAM (`ramid`), `[23:18]` the way, `[17:0]` the
/// set/index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RamIndexRequest {
    /// Which internal RAM to read (device-defined id).
    pub ramid: u8,
    /// Way within the RAM.
    pub way: u8,
    /// Set/index within the way.
    pub index: u32,
}

impl RamIndexRequest {
    /// Packs the request into the register word.
    pub fn pack(self) -> u64 {
        ((self.ramid as u64) << 24)
            | (((self.way as u64) & 0x3F) << 18)
            | (self.index as u64 & 0x3FFFF)
    }

    /// Unpacks a register word.
    pub fn unpack(word: u64) -> Self {
        RamIndexRequest {
            ramid: ((word >> 24) & 0xFF) as u8,
            way: ((word >> 18) & 0x3F) as u8,
            index: (word & 0x3FFFF) as u32,
        }
    }
}

/// The CPU's view of the memory system.
///
/// All data accesses are little-endian. Implementations route reads and
/// writes through their cache hierarchy so that victim software leaves
/// exactly the SRAM footprint a real device would.
pub trait Bus {
    /// Reads `size` bytes (1, 2, 4, or 8) at `addr`, zero-extended.
    ///
    /// # Errors
    ///
    /// Any [`BusFault`] the memory system raises.
    fn read(&mut self, addr: u64, size: u8) -> Result<u64, BusFault>;

    /// Writes the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Any [`BusFault`] the memory system raises.
    fn write(&mut self, addr: u64, size: u8, value: u64) -> Result<(), BusFault>;

    /// Fetches the instruction word at `addr` (through the i-cache).
    ///
    /// # Errors
    ///
    /// Any [`BusFault`] the memory system raises.
    fn fetch(&mut self, addr: u64) -> Result<u32, BusFault>;

    /// `DC ZVA`: zeroes the whole ZVA block containing `addr`.
    ///
    /// # Errors
    ///
    /// Any [`BusFault`] the memory system raises.
    fn dc_zva(&mut self, addr: u64) -> Result<(), BusFault>;

    /// `DC CIVAC`: cleans and invalidates the line containing `addr`.
    ///
    /// Note (paper §5.2.4): invalidation only clears the *tag* state; the
    /// data RAM keeps its bits.
    ///
    /// # Errors
    ///
    /// Any [`BusFault`] the memory system raises.
    fn dc_clean_invalidate(&mut self, addr: u64) -> Result<(), BusFault>;

    /// `DC CVAC`: cleans (writes back) the line containing `addr`.
    ///
    /// # Errors
    ///
    /// Any [`BusFault`] the memory system raises.
    fn dc_clean(&mut self, addr: u64) -> Result<(), BusFault>;

    /// `IC IALLU`: invalidates all instruction-cache tags (data RAM keeps
    /// its bits).
    ///
    /// # Errors
    ///
    /// Any [`BusFault`] the memory system raises.
    fn ic_invalidate_all(&mut self) -> Result<(), BusFault>;

    /// Executes a `RAMINDEX` internal-RAM read and returns the four data
    /// output words.
    ///
    /// `el` is the core's current exception level; `barriers_ok` reports
    /// whether the architecturally required `DSB SY; ISB` sequence was
    /// executed since the request was issued.
    ///
    /// # Errors
    ///
    /// [`BusFault::PermissionDenied`] below EL3, or any device-specific
    /// fault.
    fn ramindex(
        &mut self,
        el: u8,
        req: RamIndexRequest,
        barriers_ok: bool,
    ) -> Result<[u64; 4], BusFault>;

    /// The `DC ZVA` block size in bytes (default 64).
    fn zva_block_size(&self) -> u64 {
        64
    }

    /// Called when the core takes a branch from `pc` to `target`.
    ///
    /// Branch predictors (BTBs) snoop this to learn targets; the default
    /// implementation ignores it.
    fn branch_hint(&mut self, pc: u64, target: u64) {
        let _ = (pc, target);
    }
}

/// A flat little-endian RAM with no caches: the test double for [`Bus`].
#[derive(Debug, Clone)]
pub struct FlatMemory {
    bytes: Vec<u8>,
}

impl FlatMemory {
    /// Creates a zeroed flat memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        FlatMemory { bytes: vec![0; size] }
    }

    /// Copies `data` in at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the copy runs past the end of memory.
    pub fn load(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Borrows the raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn check(&self, addr: u64, size: u8) -> Result<usize, BusFault> {
        let a = addr as usize;
        if a + size as usize > self.bytes.len() {
            return Err(BusFault::Unmapped { addr });
        }
        if !addr.is_multiple_of(size as u64) {
            return Err(BusFault::Misaligned { addr, size });
        }
        Ok(a)
    }
}

impl Bus for FlatMemory {
    fn read(&mut self, addr: u64, size: u8) -> Result<u64, BusFault> {
        let a = self.check(addr, size)?;
        let mut v = 0u64;
        for i in (0..size as usize).rev() {
            v = (v << 8) | self.bytes[a + i] as u64;
        }
        Ok(v)
    }

    fn write(&mut self, addr: u64, size: u8, value: u64) -> Result<(), BusFault> {
        let a = self.check(addr, size)?;
        for i in 0..size as usize {
            self.bytes[a + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    fn fetch(&mut self, addr: u64) -> Result<u32, BusFault> {
        Ok(self.read(addr, 4)? as u32)
    }

    fn dc_zva(&mut self, addr: u64) -> Result<(), BusFault> {
        let block = self.zva_block_size();
        let base = addr & !(block - 1);
        for i in 0..block {
            let a = (base + i) as usize;
            if a < self.bytes.len() {
                self.bytes[a] = 0;
            }
        }
        Ok(())
    }

    fn dc_clean_invalidate(&mut self, _addr: u64) -> Result<(), BusFault> {
        Ok(())
    }

    fn dc_clean(&mut self, _addr: u64) -> Result<(), BusFault> {
        Ok(())
    }

    fn ic_invalidate_all(&mut self) -> Result<(), BusFault> {
        Ok(())
    }

    fn ramindex(
        &mut self,
        el: u8,
        _req: RamIndexRequest,
        _barriers_ok: bool,
    ) -> Result<[u64; 4], BusFault> {
        if el < 3 {
            return Err(BusFault::PermissionDenied { required_el: 3 });
        }
        Ok([0; 4])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_memory_read_write_little_endian() {
        let mut m = FlatMemory::new(64);
        m.write(0, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read(0, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read(0, 1).unwrap(), 0x88);
        assert_eq!(m.read(1, 1).unwrap(), 0x77);
        assert_eq!(m.read(0, 4).unwrap(), 0x5566_7788);
    }

    #[test]
    fn misaligned_access_faults() {
        let mut m = FlatMemory::new(64);
        assert_eq!(m.read(1, 8), Err(BusFault::Misaligned { addr: 1, size: 8 }));
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = FlatMemory::new(8);
        assert_eq!(m.read(8, 4), Err(BusFault::Unmapped { addr: 8 }));
    }

    #[test]
    fn zva_zeroes_a_block() {
        let mut m = FlatMemory::new(256);
        m.load(0, &[0xFF; 256]);
        m.dc_zva(70).unwrap();
        assert_eq!(&m.bytes()[64..128], &[0u8; 64][..]);
        assert_eq!(m.bytes()[63], 0xFF);
        assert_eq!(m.bytes()[128], 0xFF);
    }

    #[test]
    fn ramindex_request_roundtrip() {
        let req = RamIndexRequest { ramid: 0x21, way: 3, index: 0x1FF };
        assert_eq!(RamIndexRequest::unpack(req.pack()), req);
    }

    #[test]
    fn flat_ramindex_needs_el3() {
        let mut m = FlatMemory::new(8);
        let req = RamIndexRequest { ramid: 0, way: 0, index: 0 };
        assert!(m.ramindex(1, req, true).is_err());
        assert!(m.ramindex(3, req, true).is_ok());
    }
}
