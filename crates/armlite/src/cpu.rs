//! The interpreter: an in-order core stepping the A64 subset.

use crate::bus::{Bus, BusFault, RamIndexRequest};
use crate::insn::{Cond, Instr, Reg};
use serde::{Deserialize, Serialize};

/// ARMv8-A exception levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ExceptionLevel {
    /// User.
    El0,
    /// OS kernel.
    El1,
    /// Hypervisor.
    El2,
    /// Secure monitor / firmware.
    El3,
}

impl ExceptionLevel {
    /// The numeric level, 0–3.
    pub fn number(self) -> u8 {
        match self {
            ExceptionLevel::El0 => 0,
            ExceptionLevel::El1 => 1,
            ExceptionLevel::El2 => 2,
            ExceptionLevel::El3 => 3,
        }
    }
}

/// How a [`Cpu::run`] invocation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// A `hlt #code` executed.
    Halted(u16),
    /// The step budget ran out before a halt.
    MaxSteps,
    /// The memory system faulted at the given program counter.
    Fault(BusFault, u64),
    /// A word fetched from memory did not decode.
    UndefinedInstruction(u32, u64),
}

/// Tracks the architecturally required `RAMINDEX → DSB SY → ISB → MRS`
/// sequence (paper §6.1: "Data and instruction synchronization barrier
/// instructions DSB SY and ISB, respectively, must follow this
/// instruction before reading the cache data output register interface").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
enum RamIndexPipeline {
    /// No request outstanding.
    #[default]
    Idle,
    /// Request issued, no barriers yet.
    Issued,
    /// `DSB SY` seen.
    DsbDone,
    /// `ISB` seen: the data registers now expose the result.
    Ready,
}

/// One simulated core.
///
/// The core owns its architectural state (GPRs, NEON registers, flags,
/// PC, exception level) and steps against any [`Bus`]. Register contents
/// are plain fields here; the `soc` crate mirrors the NEON file into
/// SRAM-backed storage so that register contents participate in power
/// cycles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cpu {
    x: [u64; 31],
    v: [[u64; 2]; 32],
    pc: u64,
    /// N, Z, C, V flags.
    nzcv: (bool, bool, bool, bool),
    el: ExceptionLevel,
    ram_pipeline: RamIndexPipeline,
    ram_request: u64,
    ram_data: [u64; 4],
    retired: u64,
}

impl Cpu {
    /// Creates a core at `pc`, in EL3 (bare-metal reset state).
    pub fn new(pc: u64) -> Self {
        Cpu {
            x: [0; 31],
            v: [[0; 2]; 32],
            pc,
            nzcv: (false, false, false, false),
            el: ExceptionLevel::El3,
            ram_pipeline: RamIndexPipeline::Idle,
            ram_request: 0,
            ram_data: [0; 4],
            retired: 0,
        }
    }

    /// Reads GPR `n` (`x31` reads zero).
    pub fn x(&self, n: u8) -> u64 {
        if n == 31 {
            0
        } else {
            self.x[n as usize]
        }
    }

    /// Writes GPR `n` (`x31` discards).
    pub fn set_x(&mut self, n: u8, v: u64) {
        if n != 31 {
            self.x[n as usize] = v;
        }
    }

    /// Reads vector register `n` as `(low64, high64)`.
    pub fn v(&self, n: u8) -> [u64; 2] {
        self.v[n as usize]
    }

    /// Writes vector register `n`.
    pub fn set_v(&mut self, n: u8, value: [u64; 2]) {
        self.v[n as usize] = value;
    }

    /// All 32 vector registers (the attack target of §7.2).
    pub fn vector_file(&self) -> &[[u64; 2]; 32] {
        &self.v
    }

    /// Overwrites the whole vector file (used by the SoC to restore
    /// SRAM-backed register state after a power event).
    pub fn set_vector_file(&mut self, file: [[u64; 2]; 32]) {
        self.v = file;
    }

    /// The program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Current exception level.
    pub fn el(&self) -> ExceptionLevel {
        self.el
    }

    /// Changes exception level (the boot flow drops from EL3 toward EL1/EL0).
    pub fn set_el(&mut self, el: ExceptionLevel) {
        self.el = el;
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Executes one instruction. Returns `None` to continue or a
    /// [`RunExit`] when execution must stop.
    pub fn step<B: Bus>(&mut self, bus: &mut B) -> Option<RunExit> {
        let word = match bus.fetch(self.pc) {
            Ok(w) => w,
            Err(f) => return Some(RunExit::Fault(f, self.pc)),
        };
        let instr = match Instr::decode(word) {
            Ok(i) => i,
            Err(_) => return Some(RunExit::UndefinedInstruction(word, self.pc)),
        };
        let mut next_pc = self.pc.wrapping_add(4);

        use Instr::*;
        let outcome: Result<(), BusFault> = (|| {
            match instr {
                Nop => {}
                Movz { rd, imm16, hw } => self.set_x(rd.0, (imm16 as u64) << (16 * hw as u64)),
                Movk { rd, imm16, hw } => {
                    let shift = 16 * hw as u64;
                    let mask = !(0xFFFFu64 << shift);
                    self.set_x(rd.0, (self.x(rd.0) & mask) | ((imm16 as u64) << shift));
                }
                Movn { rd, imm16, hw } => {
                    self.set_x(rd.0, !((imm16 as u64) << (16 * hw as u64)));
                }
                Adr { rd, offset } => {
                    self.set_x(rd.0, self.pc.wrapping_add(offset as i64 as u64));
                }
                AddImm { rd, rn, imm12 } => {
                    self.set_x(rd.0, self.x(rn.0).wrapping_add(imm12 as u64));
                }
                SubImm { rd, rn, imm12 } => {
                    self.set_x(rd.0, self.x(rn.0).wrapping_sub(imm12 as u64));
                }
                SubsImm { rd, rn, imm12 } => {
                    let r = self.subs(self.x(rn.0), imm12 as u64);
                    self.set_x(rd.0, r);
                }
                AddReg { rd, rn, rm } => {
                    self.set_x(rd.0, self.x(rn.0).wrapping_add(self.x(rm.0)));
                }
                SubReg { rd, rn, rm } => {
                    self.set_x(rd.0, self.x(rn.0).wrapping_sub(self.x(rm.0)));
                }
                SubsReg { rd, rn, rm } => {
                    let r = self.subs(self.x(rn.0), self.x(rm.0));
                    self.set_x(rd.0, r);
                }
                AndReg { rd, rn, rm } => self.set_x(rd.0, self.x(rn.0) & self.x(rm.0)),
                OrrReg { rd, rn, rm } => self.set_x(rd.0, self.x(rn.0) | self.x(rm.0)),
                EorReg { rd, rn, rm } => self.set_x(rd.0, self.x(rn.0) ^ self.x(rm.0)),
                OrnReg { rd, rn, rm } => self.set_x(rd.0, self.x(rn.0) | !self.x(rm.0)),
                AndsReg { rd, rn, rm } => {
                    let r = self.x(rn.0) & self.x(rm.0);
                    self.nzcv = ((r as i64) < 0, r == 0, false, false);
                    self.set_x(rd.0, r);
                }
                Madd { rd, rn, rm, ra } => {
                    self.set_x(
                        rd.0,
                        self.x(ra.0).wrapping_add(self.x(rn.0).wrapping_mul(self.x(rm.0))),
                    );
                }
                Udiv { rd, rn, rm } => {
                    let d = self.x(rm.0);
                    self.set_x(rd.0, self.x(rn.0).checked_div(d).unwrap_or(0));
                }
                Csel { rd, rn, rm, cond } => {
                    let v = if self.cond_holds(cond) { self.x(rn.0) } else { self.x(rm.0) };
                    self.set_x(rd.0, v);
                }
                Csinc { rd, rn, rm, cond } => {
                    let v = if self.cond_holds(cond) {
                        self.x(rn.0)
                    } else {
                        self.x(rm.0).wrapping_add(1)
                    };
                    self.set_x(rd.0, v);
                }
                Lslv { rd, rn, rm } => {
                    self.set_x(rd.0, self.x(rn.0).wrapping_shl((self.x(rm.0) & 63) as u32));
                }
                Lsrv { rd, rn, rm } => {
                    self.set_x(rd.0, self.x(rn.0).wrapping_shr((self.x(rm.0) & 63) as u32));
                }
                LdrX { rt, rn, offset } => {
                    let v = bus.read(self.x(rn.0).wrapping_add(offset as u64), 8)?;
                    self.set_x(rt.0, v);
                }
                StrX { rt, rn, offset } => {
                    bus.write(self.x(rn.0).wrapping_add(offset as u64), 8, self.x(rt.0))?;
                }
                Ldrb { rt, rn, offset } => {
                    let v = bus.read(self.x(rn.0).wrapping_add(offset as u64), 1)?;
                    self.set_x(rt.0, v);
                }
                Ldp { rt1, rt2, rn, offset } => {
                    let base = self.x(rn.0).wrapping_add(offset as i64 as u64);
                    let v1 = bus.read(base, 8)?;
                    let v2 = bus.read(base.wrapping_add(8), 8)?;
                    self.set_x(rt1.0, v1);
                    self.set_x(rt2.0, v2);
                }
                Stp { rt1, rt2, rn, offset } => {
                    let base = self.x(rn.0).wrapping_add(offset as i64 as u64);
                    bus.write(base, 8, self.x(rt1.0))?;
                    bus.write(base.wrapping_add(8), 8, self.x(rt2.0))?;
                }
                Strb { rt, rn, offset } => {
                    bus.write(self.x(rn.0).wrapping_add(offset as u64), 1, self.x(rt.0) & 0xFF)?;
                }
                B { offset } => next_pc = self.branch_target(offset),
                BCond { cond, offset } => {
                    if self.cond_holds(cond) {
                        next_pc = self.branch_target(offset);
                    }
                }
                Cbz { rt, offset } => {
                    if self.x(rt.0) == 0 {
                        next_pc = self.branch_target(offset);
                    }
                }
                Cbnz { rt, offset } => {
                    if self.x(rt.0) != 0 {
                        next_pc = self.branch_target(offset);
                    }
                }
                Tbz { rt, bit, offset } => {
                    if self.x(rt.0) & (1 << bit) == 0 {
                        next_pc = self.branch_target(offset as i32);
                    }
                }
                Tbnz { rt, bit, offset } => {
                    if self.x(rt.0) & (1 << bit) != 0 {
                        next_pc = self.branch_target(offset as i32);
                    }
                }
                Ret => next_pc = self.x(30),
                Hlt { .. } => {}
                DsbSy => {
                    if self.ram_pipeline == RamIndexPipeline::Issued {
                        self.ram_pipeline = RamIndexPipeline::DsbDone;
                    }
                }
                Isb => {
                    if self.ram_pipeline == RamIndexPipeline::DsbDone {
                        // Barriers complete: latch the result into the data
                        // output registers.
                        let req = RamIndexRequest::unpack(self.ram_request);
                        self.ram_data = bus.ramindex(self.el.number(), req, true)?;
                        self.ram_pipeline = RamIndexPipeline::Ready;
                    }
                }
                DcZva { rt } => bus.dc_zva(self.x(rt.0))?,
                DcCivac { rt } => bus.dc_clean_invalidate(self.x(rt.0))?,
                DcCvac { rt } => bus.dc_clean(self.x(rt.0))?,
                IcIallu => bus.ic_invalidate_all()?,
                RamIndex { rt } => {
                    if self.el.number() < 3 {
                        return Err(BusFault::PermissionDenied { required_el: 3 });
                    }
                    self.ram_request = self.x(rt.0);
                    self.ram_pipeline = RamIndexPipeline::Issued;
                }
                MrsRamData { rt, n } => {
                    // Without the full barrier sequence the data registers
                    // hold their previous (stale) contents — reading them is
                    // architecturally allowed but returns garbage.
                    self.set_x(rt.0, self.ram_data[n as usize]);
                    if self.ram_pipeline != RamIndexPipeline::Ready {
                        // Stale read: poison deterministically so tests can
                        // detect the missing barriers.
                        self.set_x(rt.0, 0xDEAD_DEAD_DEAD_DEAD);
                    }
                }
                MoviV16b { vd, imm8 } => {
                    let lane = imm8 as u64;
                    let word = (0..8).fold(0u64, |acc, i| acc | (lane << (8 * i)));
                    self.v[vd.0 as usize] = [word, word];
                }
                InsVD { vd, idx, rn } => {
                    self.v[vd.0 as usize][idx as usize] = self.x(rn.0);
                }
                UmovXD { rd, vn, idx } => {
                    self.set_x(rd.0, self.v[vn.0 as usize][idx as usize]);
                }
            }
            Ok(())
        })();

        if let Err(fault) = outcome {
            return Some(RunExit::Fault(fault, self.pc));
        }
        self.retired += 1;
        if let Hlt { imm16 } = instr {
            self.pc = next_pc;
            return Some(RunExit::Halted(imm16));
        }
        // A non-sequential next PC is a taken branch: feed the predictor.
        if next_pc != self.pc.wrapping_add(4) {
            bus.branch_hint(self.pc, next_pc);
        }
        self.pc = next_pc;
        None
    }

    /// Runs until halt, fault, undefined instruction, or `max_steps`.
    pub fn run<B: Bus>(&mut self, bus: &mut B, max_steps: u64) -> RunExit {
        for _ in 0..max_steps {
            if let Some(exit) = self.step(bus) {
                return exit;
            }
        }
        RunExit::MaxSteps
    }

    fn branch_target(&self, offset: i32) -> u64 {
        self.pc.wrapping_add((offset as i64 * 4) as u64)
    }

    fn subs(&mut self, a: u64, b: u64) -> u64 {
        let (result, borrow) = a.overflowing_sub(b);
        let n = (result as i64) < 0;
        let z = result == 0;
        let c = !borrow;
        let v = ((a ^ b) & (a ^ result)) >> 63 == 1;
        self.nzcv = (n, z, c, v);
        result
    }

    fn cond_holds(&self, cond: Cond) -> bool {
        let (n, z, c, v) = self.nzcv;
        match cond {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Hs => c,
            Cond::Lo => !c,
            Cond::Mi => n,
            Cond::Pl => !n,
            Cond::Vs => v,
            Cond::Vc => !v,
            Cond::Hi => c && !z,
            Cond::Ls => !c || z,
            Cond::Ge => n == v,
            Cond::Lt => n != v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Al => true,
        }
    }
}

/// `Reg`-indexed convenience so call sites can use `cpu[reg]`.
impl std::ops::Index<Reg> for Cpu {
    type Output = u64;

    fn index(&self, r: Reg) -> &u64 {
        if r.0 == 31 {
            &0
        } else {
            &self.x[r.0 as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FlatMemory;
    use crate::insn::{Instr, Reg, VReg};

    fn run_program(instrs: &[Instr]) -> (Cpu, FlatMemory, RunExit) {
        let mut mem = FlatMemory::new(1 << 16);
        for (i, instr) in instrs.iter().enumerate() {
            let bytes = instr.encode().to_le_bytes();
            mem.load(i as u64 * 4, &bytes);
        }
        let mut cpu = Cpu::new(0);
        let exit = cpu.run(&mut mem, 10_000);
        (cpu, mem, exit)
    }

    #[test]
    fn mov_add_halt() {
        use Instr::*;
        let (cpu, _, exit) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 40, hw: 0 },
            AddImm { rd: Reg::x(0), rn: Reg::x(0), imm12: 2 },
            Hlt { imm16: 7 },
        ]);
        assert_eq!(exit, RunExit::Halted(7));
        assert_eq!(cpu.x(0), 42);
    }

    #[test]
    fn movk_builds_64_bit_constants() {
        use Instr::*;
        let (cpu, _, _) = run_program(&[
            Movz { rd: Reg::x(1), imm16: 0x1111, hw: 0 },
            Movk { rd: Reg::x(1), imm16: 0x2222, hw: 1 },
            Movk { rd: Reg::x(1), imm16: 0x3333, hw: 2 },
            Movk { rd: Reg::x(1), imm16: 0x4444, hw: 3 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(1), 0x4444_3333_2222_1111);
    }

    #[test]
    fn store_load_roundtrip() {
        use Instr::*;
        let (cpu, mem, _) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 0xBEEF, hw: 0 },
            Movz { rd: Reg::x(1), imm16: 0x8000, hw: 0 },
            StrX { rt: Reg::x(0), rn: Reg::x(1), offset: 8 },
            LdrX { rt: Reg::x(2), rn: Reg::x(1), offset: 8 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(2), 0xBEEF);
        assert_eq!(mem.bytes()[0x8008], 0xEF);
        assert_eq!(mem.bytes()[0x8009], 0xBE);
    }

    #[test]
    fn byte_store_load() {
        use Instr::*;
        let (cpu, _, _) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 0x1AA, hw: 0 },
            Movz { rd: Reg::x(1), imm16: 0x9000, hw: 0 },
            Strb { rt: Reg::x(0), rn: Reg::x(1), offset: 3 },
            Ldrb { rt: Reg::x(2), rn: Reg::x(1), offset: 3 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(2), 0xAA);
    }

    #[test]
    fn countdown_loop() {
        use Instr::*;
        // x0 = 10; x1 = 0; loop: x1 += 2; x0 -= 1; cbnz x0, loop
        let (cpu, _, exit) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 10, hw: 0 },
            Movz { rd: Reg::x(1), imm16: 0, hw: 0 },
            AddImm { rd: Reg::x(1), rn: Reg::x(1), imm12: 2 },
            SubImm { rd: Reg::x(0), rn: Reg::x(0), imm12: 1 },
            Cbnz { rt: Reg::x(0), offset: -2 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(exit, RunExit::Halted(0));
        assert_eq!(cpu.x(1), 20);
    }

    #[test]
    fn conditional_branches_use_flags() {
        use Instr::*;
        // if (5 - 5 == 0) x2 = 1 else x2 = 2
        let (cpu, _, _) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 5, hw: 0 },
            SubsImm { rd: Reg::XZR, rn: Reg::x(0), imm12: 5 },
            BCond { cond: Cond::Eq, offset: 3 },
            Movz { rd: Reg::x(2), imm16: 2, hw: 0 },
            B { offset: 2 },
            Movz { rd: Reg::x(2), imm16: 1, hw: 0 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(2), 1);
    }

    #[test]
    fn xzr_reads_zero_and_discards_writes() {
        use Instr::*;
        let (cpu, _, _) = run_program(&[
            Movz { rd: Reg::XZR, imm16: 0xFFFF, hw: 0 },
            OrrReg { rd: Reg::x(0), rn: Reg::XZR, rm: Reg::XZR },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(0), 0);
    }

    #[test]
    fn vector_fill_and_extract() {
        use Instr::*;
        let (cpu, _, _) = run_program(&[
            MoviV16b { vd: VReg::v(3), imm8: 0xAA },
            UmovXD { rd: Reg::x(0), vn: VReg::v(3), idx: 0 },
            UmovXD { rd: Reg::x(1), vn: VReg::v(3), idx: 1 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(0), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(cpu.x(1), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(cpu.v(3), [0xAAAA_AAAA_AAAA_AAAA; 2]);
    }

    #[test]
    fn ins_moves_gpr_to_vector_half() {
        use Instr::*;
        let (cpu, _, _) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 0x1234, hw: 0 },
            InsVD { vd: VReg::v(9), idx: 1, rn: Reg::x(0) },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.v(9), [0, 0x1234]);
    }

    #[test]
    fn ramindex_requires_el3() {
        use Instr::*;
        let mut mem = FlatMemory::new(4096);
        let prog = [RamIndex { rt: Reg::x(0) }, Hlt { imm16: 0 }];
        for (i, instr) in prog.iter().enumerate() {
            mem.load(i as u64 * 4, &instr.encode().to_le_bytes());
        }
        let mut cpu = Cpu::new(0);
        cpu.set_el(ExceptionLevel::El1);
        let exit = cpu.run(&mut mem, 10);
        assert!(matches!(exit, RunExit::Fault(BusFault::PermissionDenied { required_el: 3 }, _)));
    }

    #[test]
    fn ramindex_without_barriers_reads_poison() {
        use Instr::*;
        let (cpu, _, exit) = run_program(&[
            RamIndex { rt: Reg::x(0) },
            // Missing DSB SY + ISB.
            MrsRamData { rt: Reg::x(1), n: 0 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(exit, RunExit::Halted(0));
        assert_eq!(cpu.x(1), 0xDEAD_DEAD_DEAD_DEAD);
    }

    #[test]
    fn ramindex_with_barriers_reads_data() {
        use Instr::*;
        let (cpu, _, exit) = run_program(&[
            RamIndex { rt: Reg::x(0) },
            DsbSy,
            Isb,
            MrsRamData { rt: Reg::x(1), n: 0 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(exit, RunExit::Halted(0));
        // FlatMemory's ramindex returns zeros at EL3.
        assert_eq!(cpu.x(1), 0);
    }

    #[test]
    fn undefined_instruction_reports_word_and_pc() {
        let mut mem = FlatMemory::new(64);
        mem.load(0, &0x1234_5678u32.to_le_bytes());
        let mut cpu = Cpu::new(0);
        assert_eq!(cpu.run(&mut mem, 10), RunExit::UndefinedInstruction(0x1234_5678, 0));
    }

    #[test]
    fn unmapped_fetch_faults() {
        let mut mem = FlatMemory::new(64);
        let mut cpu = Cpu::new(1 << 20);
        assert!(matches!(cpu.run(&mut mem, 10), RunExit::Fault(BusFault::Unmapped { .. }, _)));
    }

    #[test]
    fn max_steps_expires() {
        use Instr::*;
        // Infinite loop.
        let mut mem = FlatMemory::new(64);
        mem.load(0, &B { offset: 0 }.encode().to_le_bytes());
        let mut cpu = Cpu::new(0);
        assert_eq!(cpu.run(&mut mem, 100), RunExit::MaxSteps);
        assert_eq!(cpu.retired(), 100);
    }

    #[test]
    fn ret_jumps_to_x30() {
        use Instr::*;
        let (cpu, _, exit) = run_program(&[
            Movz { rd: Reg::x(30), imm16: 12, hw: 0 }, // address of hlt #5
            Ret,
            Hlt { imm16: 1 },
            Hlt { imm16: 5 },
        ]);
        assert_eq!(exit, RunExit::Halted(5));
        assert_eq!(cpu.pc(), 16);
    }

    #[test]
    fn arithmetic_extensions() {
        use Instr::*;
        let (cpu, _, _) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 6, hw: 0 },
            Movz { rd: Reg::x(1), imm16: 7, hw: 0 },
            Madd { rd: Reg::x(2), rn: Reg::x(0), rm: Reg::x(1), ra: Reg::XZR }, // 42
            Movz { rd: Reg::x(3), imm16: 100, hw: 0 },
            Madd { rd: Reg::x(4), rn: Reg::x(0), rm: Reg::x(1), ra: Reg::x(3) }, // 142
            Udiv { rd: Reg::x(5), rn: Reg::x(4), rm: Reg::x(1) },                // 20
            Udiv { rd: Reg::x(6), rn: Reg::x(4), rm: Reg::XZR },                 // 0 (div by 0)
            Movn { rd: Reg::x(7), imm16: 0, hw: 0 },                             // all ones
            OrnReg { rd: Reg::x(8), rn: Reg::XZR, rm: Reg::x(7) },               // mvn -> 0
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(2), 42);
        assert_eq!(cpu.x(4), 142);
        assert_eq!(cpu.x(5), 20);
        assert_eq!(cpu.x(6), 0);
        assert_eq!(cpu.x(7), u64::MAX);
        assert_eq!(cpu.x(8), 0);
    }

    #[test]
    fn conditional_select_and_test_bits() {
        use Instr::*;
        let (cpu, _, exit) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 5, hw: 0 },
            Movz { rd: Reg::x(1), imm16: 9, hw: 0 },
            SubsReg { rd: Reg::XZR, rn: Reg::x(0), rm: Reg::x(1) }, // 5 < 9
            Csel { rd: Reg::x(2), rn: Reg::x(0), rm: Reg::x(1), cond: Cond::Lt },
            Csinc { rd: Reg::x(3), rn: Reg::x(0), rm: Reg::x(1), cond: Cond::Gt },
            // tbz on a clear bit branches over the trap.
            Tbz { rt: Reg::x(0), bit: 1, offset: 2 },
            Hlt { imm16: 9 },
            // tbnz on a set bit (bit 0 of 5) branches over the trap.
            Tbnz { rt: Reg::x(0), bit: 0, offset: 2 },
            Hlt { imm16: 8 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(exit, RunExit::Halted(0));
        assert_eq!(cpu.x(2), 5, "csel picks xn when lt holds");
        assert_eq!(cpu.x(3), 10, "csinc picks xm+1 when gt fails");
    }

    #[test]
    fn pair_load_store_and_adr() {
        use Instr::*;
        let (cpu, mem, _) = run_program(&[
            Adr { rd: Reg::x(9), offset: 0 }, // address of this instruction
            Movz { rd: Reg::x(0), imm16: 0x1111, hw: 0 },
            Movz { rd: Reg::x(1), imm16: 0x2222, hw: 0 },
            Movz { rd: Reg::x(2), imm16: 0x8000, hw: 0 },
            Stp { rt1: Reg::x(0), rt2: Reg::x(1), rn: Reg::x(2), offset: 16 },
            Ldp { rt1: Reg::x(3), rt2: Reg::x(4), rn: Reg::x(2), offset: 16 },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(9), 0, "adr of the first instruction");
        assert_eq!(cpu.x(3), 0x1111);
        assert_eq!(cpu.x(4), 0x2222);
        assert_eq!(mem.bytes()[0x8010], 0x11);
        assert_eq!(mem.bytes()[0x8018], 0x22);
    }

    #[test]
    fn ands_sets_flags() {
        use Instr::*;
        let (cpu, _, _) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 0xF0, hw: 0 },
            Movz { rd: Reg::x(1), imm16: 0x0F, hw: 0 },
            AndsReg { rd: Reg::XZR, rn: Reg::x(0), rm: Reg::x(1) }, // tst -> zero
            Csinc { rd: Reg::x(2), rn: Reg::XZR, rm: Reg::XZR, cond: Cond::Eq }, // cset-like
            Hlt { imm16: 0 },
        ]);
        // Z was set, so csinc picks xn (= 0); if Z were clear it would
        // pick xzr+1 = 1.
        assert_eq!(cpu.x(2), 0);
    }

    #[test]
    fn shifts() {
        use Instr::*;
        let (cpu, _, _) = run_program(&[
            Movz { rd: Reg::x(0), imm16: 1, hw: 0 },
            Movz { rd: Reg::x(1), imm16: 12, hw: 0 },
            Lslv { rd: Reg::x(2), rn: Reg::x(0), rm: Reg::x(1) },
            Lsrv { rd: Reg::x(3), rn: Reg::x(2), rm: Reg::x(1) },
            Hlt { imm16: 0 },
        ]);
        assert_eq!(cpu.x(2), 1 << 12);
        assert_eq!(cpu.x(3), 1);
    }
}
