//! The instruction set: a ~30-instruction A64 subset with real encodings.
//!
//! Every variant encodes to and decodes from the genuine ARMv8-A bit
//! pattern, so machine code placed in the simulated i-cache is
//! byte-identical to what a real Cortex-A device would hold — the paper's
//! Figure 7 experiment greps extracted cache images for exactly these
//! words.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A general-purpose 64-bit register, `x0`–`x30` plus `xzr` (31).
///
/// In operand position register 31 reads as zero and discards writes,
/// matching A64 semantics for the instructions in this subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register.
    pub const XZR: Reg = Reg(31);

    /// Creates `xN`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    pub fn x(n: u8) -> Reg {
        assert!(n <= 31, "register index {n} out of range");
        Reg(n)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 31 {
            write!(f, "xzr")
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

/// A 128-bit SIMD/FP register, `v0`–`v31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VReg(pub u8);

impl VReg {
    /// Creates `vN`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    pub fn v(n: u8) -> VReg {
        assert!(n <= 31, "vector register index {n} out of range");
        VReg(n)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A64 condition codes (for `b.cond`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Cond {
    Eq = 0,
    Ne = 1,
    Hs = 2,
    Lo = 3,
    Mi = 4,
    Pl = 5,
    Vs = 6,
    Vc = 7,
    Hi = 8,
    Ls = 9,
    Ge = 10,
    Lt = 11,
    Gt = 12,
    Le = 13,
    Al = 14,
}

impl Cond {
    /// Decodes a 4-bit condition field.
    pub fn from_bits(bits: u32) -> Option<Cond> {
        Some(match bits {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Hs,
            3 => Cond::Lo,
            4 => Cond::Mi,
            5 => Cond::Pl,
            6 => Cond::Vs,
            7 => Cond::Vc,
            8 => Cond::Hi,
            9 => Cond::Ls,
            10 => Cond::Ge,
            11 => Cond::Lt,
            12 => Cond::Gt,
            13 => Cond::Le,
            14 => Cond::Al,
            _ => return None,
        })
    }

    /// The assembler mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Hs => "hs",
            Cond::Lo => "lo",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "al",
        }
    }
}

/// One instruction of the A64 subset.
///
/// Offsets in load/store variants are *byte* offsets and must satisfy the
/// alignment/scale rules of the real encoding (e.g. `LdrX` offsets are
/// multiples of 8 in `0..=32760`). Branch offsets are in instructions
/// (words), relative to the branch itself.
///
/// ```rust
/// use voltboot_armlite::Instr;
///
/// // Encodings are the genuine A64 bit patterns.
/// assert_eq!(Instr::Nop.encode(), 0xD503201F);
/// assert_eq!(Instr::decode(0xD503201F)?, Instr::Nop);
/// assert_eq!(Instr::Nop.to_string(), "nop");
/// # Ok::<(), voltboot_armlite::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `nop`
    Nop,
    /// `movz xd, #imm16, lsl #(hw*16)`
    Movz {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm16: u16,
        /// Half-word shift selector, 0–3.
        hw: u8,
    },
    /// `movk xd, #imm16, lsl #(hw*16)`
    Movk {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate.
        imm16: u16,
        /// Half-word shift selector, 0–3.
        hw: u8,
    },
    /// `movn xd, #imm16, lsl #(hw*16)` — moves the inverted immediate.
    Movn {
        /// Destination.
        rd: Reg,
        /// 16-bit immediate (inverted on write).
        imm16: u16,
        /// Half-word shift selector, 0–3.
        hw: u8,
    },
    /// `adr xd, <offset>` — PC-relative address; offset in bytes,
    /// ±1 MiB.
    Adr {
        /// Destination.
        rd: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// `add xd, xn, #imm12`
    AddImm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// Unsigned 12-bit immediate.
        imm12: u16,
    },
    /// `sub xd, xn, #imm12`
    SubImm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// Unsigned 12-bit immediate.
        imm12: u16,
    },
    /// `subs xd, xn, #imm12` (with `xd = xzr` this is `cmp xn, #imm12`)
    SubsImm {
        /// Destination.
        rd: Reg,
        /// Source.
        rn: Reg,
        /// Unsigned 12-bit immediate.
        imm12: u16,
    },
    /// `add xd, xn, xm`
    AddReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `sub xd, xn, xm`
    SubReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `subs xd, xn, xm` (with `xd = xzr` this is `cmp xn, xm`)
    SubsReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `and xd, xn, xm`
    AndReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `orr xd, xn, xm` (with `xn = xzr` this is `mov xd, xm`)
    OrrReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `eor xd, xn, xm`
    EorReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `orn xd, xn, xm` (with `xn = xzr` this is `mvn xd, xm`)
    OrnReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source (inverted).
        rm: Reg,
    },
    /// `ands xd, xn, xm` (with `xd = xzr` this is `tst xn, xm`)
    AndsReg {
        /// Destination.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
    },
    /// `madd xd, xn, xm, xa` — `xd = xa + xn * xm` (with `xa = xzr` this
    /// is `mul`).
    Madd {
        /// Destination.
        rd: Reg,
        /// Multiplicand.
        rn: Reg,
        /// Multiplier.
        rm: Reg,
        /// Addend.
        ra: Reg,
    },
    /// `udiv xd, xn, xm` — unsigned divide (zero divisor yields zero).
    Udiv {
        /// Destination.
        rd: Reg,
        /// Dividend.
        rn: Reg,
        /// Divisor.
        rm: Reg,
    },
    /// `csel xd, xn, xm, cond` — `xd = cond ? xn : xm`.
    Csel {
        /// Destination.
        rd: Reg,
        /// Value if the condition holds.
        rn: Reg,
        /// Value otherwise.
        rm: Reg,
        /// Condition.
        cond: Cond,
    },
    /// `csinc xd, xn, xm, cond` — `xd = cond ? xn : xm + 1`.
    Csinc {
        /// Destination.
        rd: Reg,
        /// Value if the condition holds.
        rn: Reg,
        /// Incremented value otherwise.
        rm: Reg,
        /// Condition.
        cond: Cond,
    },
    /// `lslv xd, xn, xm`
    Lslv {
        /// Destination.
        rd: Reg,
        /// Value.
        rn: Reg,
        /// Shift amount.
        rm: Reg,
    },
    /// `lsrv xd, xn, xm`
    Lsrv {
        /// Destination.
        rd: Reg,
        /// Value.
        rn: Reg,
        /// Shift amount.
        rm: Reg,
    },
    /// `ldr xt, [xn, #offset]` — offset is a byte offset, multiple of 8,
    /// `0..=32760`.
    LdrX {
        /// Destination.
        rt: Reg,
        /// Base address register.
        rn: Reg,
        /// Byte offset.
        offset: u16,
    },
    /// `str xt, [xn, #offset]` — offset rules as [`Instr::LdrX`].
    StrX {
        /// Source.
        rt: Reg,
        /// Base address register.
        rn: Reg,
        /// Byte offset.
        offset: u16,
    },
    /// `ldp xt1, xt2, [xn, #offset]` — pair load; offset a multiple of 8
    /// in `-512..=504`.
    Ldp {
        /// First destination.
        rt1: Reg,
        /// Second destination.
        rt2: Reg,
        /// Base address register.
        rn: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// `stp xt1, xt2, [xn, #offset]` — pair store; offset rules as
    /// [`Instr::Ldp`].
    Stp {
        /// First source.
        rt1: Reg,
        /// Second source.
        rt2: Reg,
        /// Base address register.
        rn: Reg,
        /// Signed byte offset.
        offset: i16,
    },
    /// `ldrb wt, [xn, #offset]` — offset `0..=4095`.
    Ldrb {
        /// Destination (zero-extended byte).
        rt: Reg,
        /// Base address register.
        rn: Reg,
        /// Byte offset.
        offset: u16,
    },
    /// `strb wt, [xn, #offset]` — offset `0..=4095`.
    Strb {
        /// Source (low byte).
        rt: Reg,
        /// Base address register.
        rn: Reg,
        /// Byte offset.
        offset: u16,
    },
    /// `b <offset>` — word offset relative to this instruction.
    B {
        /// Signed offset in instructions.
        offset: i32,
    },
    /// `b.<cond> <offset>` — word offset relative to this instruction.
    BCond {
        /// Condition.
        cond: Cond,
        /// Signed offset in instructions.
        offset: i32,
    },
    /// `cbz xt, <offset>`
    Cbz {
        /// Register tested against zero.
        rt: Reg,
        /// Signed offset in instructions.
        offset: i32,
    },
    /// `cbnz xt, <offset>`
    Cbnz {
        /// Register tested against zero.
        rt: Reg,
        /// Signed offset in instructions.
        offset: i32,
    },
    /// `tbz xt, #bit, <offset>` — branch if bit clear.
    Tbz {
        /// Register tested.
        rt: Reg,
        /// Bit number, 0–63.
        bit: u8,
        /// Signed offset in instructions (±8191).
        offset: i16,
    },
    /// `tbnz xt, #bit, <offset>` — branch if bit set.
    Tbnz {
        /// Register tested.
        rt: Reg,
        /// Bit number, 0–63.
        bit: u8,
        /// Signed offset in instructions (±8191).
        offset: i16,
    },
    /// `ret` (returns to `x30`)
    Ret,
    /// `hlt #imm16` — halts the interpreter with `imm16` as the exit code.
    Hlt {
        /// Exit code.
        imm16: u16,
    },
    /// `dsb sy` — data synchronization barrier.
    DsbSy,
    /// `isb` — instruction synchronization barrier.
    Isb,
    /// `dc zva, xt` — zero the cache line holding the address in `xt`
    /// (the only architectural way to reset d-cache data RAM; paper §5.2.4).
    DcZva {
        /// Address register.
        rt: Reg,
    },
    /// `dc civac, xt` — clean and invalidate by VA to point of coherency.
    DcCivac {
        /// Address register.
        rt: Reg,
    },
    /// `dc cvac, xt` — clean by VA to point of coherency.
    DcCvac {
        /// Address register.
        rt: Reg,
    },
    /// `ic iallu` — invalidate all instruction caches.
    IcIallu,
    /// `sys #0, c15, c4, #0, xt` — the Cortex-A72 `RAMINDEX` operation
    /// (paper §6.1 step 3): requests a read of an internal RAM; the
    /// request word is in `xt`.
    RamIndex {
        /// Request register.
        rt: Reg,
    },
    /// `mrs xt, s3_0_c15_c0_<n>` — reads RAMINDEX data-output register
    /// `n` (0–3). Valid only after the `dsb sy; isb` sequence.
    MrsRamData {
        /// Destination.
        rt: Reg,
        /// Data register index, 0–3.
        n: u8,
    },
    /// `movi vd.16b, #imm8` — fills all 16 lanes of a vector register.
    MoviV16b {
        /// Destination vector register.
        vd: VReg,
        /// Per-lane byte value.
        imm8: u8,
    },
    /// `ins vd.d[idx], xn` — moves a GPR into half of a vector register.
    InsVD {
        /// Destination vector register.
        vd: VReg,
        /// Doubleword lane, 0 or 1.
        idx: u8,
        /// Source.
        rn: Reg,
    },
    /// `umov xd, vn.d[idx]` — moves half of a vector register to a GPR.
    UmovXD {
        /// Destination.
        rd: Reg,
        /// Source vector register.
        vn: VReg,
        /// Doubleword lane, 0 or 1.
        idx: u8,
    },
}

impl fmt::Display for Instr {
    /// Renders the instruction in assembler syntax (the inverse of
    /// [`crate::asm::assemble`], with branch targets as word offsets).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Nop => write!(f, "nop"),
            Movz { rd, imm16, hw: 0 } => write!(f, "movz {rd}, #{imm16:#x}"),
            Movz { rd, imm16, hw } => write!(f, "movz {rd}, #{imm16:#x}, lsl #{}", hw * 16),
            Movk { rd, imm16, hw: 0 } => write!(f, "movk {rd}, #{imm16:#x}"),
            Movk { rd, imm16, hw } => write!(f, "movk {rd}, #{imm16:#x}, lsl #{}", hw * 16),
            Movn { rd, imm16, hw: 0 } => write!(f, "movn {rd}, #{imm16:#x}"),
            Movn { rd, imm16, hw } => write!(f, "movn {rd}, #{imm16:#x}, lsl #{}", hw * 16),
            Adr { rd, offset } => write!(f, "adr {rd}, #{offset}"),
            AddImm { rd, rn, imm12 } => write!(f, "add {rd}, {rn}, #{imm12}"),
            SubImm { rd, rn, imm12 } => write!(f, "sub {rd}, {rn}, #{imm12}"),
            SubsImm { rd, rn, imm12 } if rd.0 == 31 => write!(f, "cmp {rn}, #{imm12}"),
            SubsImm { rd, rn, imm12 } => write!(f, "subs {rd}, {rn}, #{imm12}"),
            AddReg { rd, rn, rm } => write!(f, "add {rd}, {rn}, {rm}"),
            SubReg { rd, rn, rm } => write!(f, "sub {rd}, {rn}, {rm}"),
            SubsReg { rd, rn, rm } if rd.0 == 31 => write!(f, "cmp {rn}, {rm}"),
            SubsReg { rd, rn, rm } => write!(f, "subs {rd}, {rn}, {rm}"),
            AndReg { rd, rn, rm } => write!(f, "and {rd}, {rn}, {rm}"),
            OrrReg { rd, rn, rm } if rn.0 == 31 => write!(f, "mov {rd}, {rm}"),
            OrrReg { rd, rn, rm } => write!(f, "orr {rd}, {rn}, {rm}"),
            EorReg { rd, rn, rm } => write!(f, "eor {rd}, {rn}, {rm}"),
            OrnReg { rd, rn, rm } if rn.0 == 31 => write!(f, "mvn {rd}, {rm}"),
            OrnReg { rd, rn, rm } => write!(f, "orn {rd}, {rn}, {rm}"),
            AndsReg { rd, rn, rm } if rd.0 == 31 => write!(f, "tst {rn}, {rm}"),
            AndsReg { rd, rn, rm } => write!(f, "ands {rd}, {rn}, {rm}"),
            Madd { rd, rn, rm, ra } if ra.0 == 31 => write!(f, "mul {rd}, {rn}, {rm}"),
            Madd { rd, rn, rm, ra } => write!(f, "madd {rd}, {rn}, {rm}, {ra}"),
            Udiv { rd, rn, rm } => write!(f, "udiv {rd}, {rn}, {rm}"),
            Csel { rd, rn, rm, cond } => {
                write!(f, "csel {rd}, {rn}, {rm}, {}", cond.mnemonic())
            }
            Csinc { rd, rn, rm, cond } => {
                write!(f, "csinc {rd}, {rn}, {rm}, {}", cond.mnemonic())
            }
            Lslv { rd, rn, rm } => write!(f, "lsl {rd}, {rn}, {rm}"),
            Lsrv { rd, rn, rm } => write!(f, "lsr {rd}, {rn}, {rm}"),
            LdrX { rt, rn, offset: 0 } => write!(f, "ldr {rt}, [{rn}]"),
            LdrX { rt, rn, offset } => write!(f, "ldr {rt}, [{rn}, #{offset}]"),
            StrX { rt, rn, offset: 0 } => write!(f, "str {rt}, [{rn}]"),
            StrX { rt, rn, offset } => write!(f, "str {rt}, [{rn}, #{offset}]"),
            Ldp { rt1, rt2, rn, offset: 0 } => {
                write!(f, "ldp {rt1}, {rt2}, [{rn}]")
            }
            Ldp { rt1, rt2, rn, offset } => write!(f, "ldp {rt1}, {rt2}, [{rn}, #{offset}]"),
            Stp { rt1, rt2, rn, offset: 0 } => {
                write!(f, "stp {rt1}, {rt2}, [{rn}]")
            }
            Stp { rt1, rt2, rn, offset } => write!(f, "stp {rt1}, {rt2}, [{rn}, #{offset}]"),
            Ldrb { rt, rn, offset: 0 } => write!(f, "ldrb {rt}, [{rn}]"),
            Ldrb { rt, rn, offset } => write!(f, "ldrb {rt}, [{rn}, #{offset}]"),
            Strb { rt, rn, offset: 0 } => write!(f, "strb {rt}, [{rn}]"),
            Strb { rt, rn, offset } => write!(f, "strb {rt}, [{rn}, #{offset}]"),
            B { offset } => write!(f, "b #{offset}"),
            BCond { cond, offset } => write!(f, "b.{} #{offset}", cond.mnemonic()),
            Cbz { rt, offset } => write!(f, "cbz {rt}, #{offset}"),
            Cbnz { rt, offset } => write!(f, "cbnz {rt}, #{offset}"),
            Tbz { rt, bit, offset } => write!(f, "tbz {rt}, #{bit}, #{offset}"),
            Tbnz { rt, bit, offset } => write!(f, "tbnz {rt}, #{bit}, #{offset}"),
            Ret => write!(f, "ret"),
            Hlt { imm16 } => write!(f, "hlt #{imm16:#x}"),
            DsbSy => write!(f, "dsb sy"),
            Isb => write!(f, "isb"),
            DcZva { rt } => write!(f, "dc zva, {rt}"),
            DcCivac { rt } => write!(f, "dc civac, {rt}"),
            DcCvac { rt } => write!(f, "dc cvac, {rt}"),
            IcIallu => write!(f, "ic iallu"),
            RamIndex { rt } => write!(f, "ramindex {rt}"),
            MrsRamData { rt, n } => write!(f, "mrsram {rt}, #{n}"),
            MoviV16b { vd, imm8 } => write!(f, "movi {vd}.16b, #{imm8:#x}"),
            InsVD { vd, idx, rn } => write!(f, "ins {vd}.d[{idx}], {rn}"),
            UmovXD { rd, vn, idx } => write!(f, "umov {rd}, {vn}.d[{idx}]"),
        }
    }
}

/// Error decoding a 32-bit word that is not in the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

impl Instr {
    /// Encodes to the real A64 machine word.
    pub fn encode(self) -> u32 {
        use Instr::*;
        match self {
            Nop => 0xD503_201F,
            Movz { rd, imm16, hw } => {
                debug_assert!(hw < 4);
                0xD280_0000 | ((hw as u32) << 21) | ((imm16 as u32) << 5) | rd.0 as u32
            }
            Movk { rd, imm16, hw } => {
                debug_assert!(hw < 4);
                0xF280_0000 | ((hw as u32) << 21) | ((imm16 as u32) << 5) | rd.0 as u32
            }
            Movn { rd, imm16, hw } => {
                debug_assert!(hw < 4);
                0x9280_0000 | ((hw as u32) << 21) | ((imm16 as u32) << 5) | rd.0 as u32
            }
            Adr { rd, offset } => {
                debug_assert!((-(1 << 20)..(1 << 20)).contains(&offset));
                let imm = offset as u32 & 0x1F_FFFF;
                0x1000_0000 | ((imm & 0x3) << 29) | (((imm >> 2) & 0x7_FFFF) << 5) | rd.0 as u32
            }
            AddImm { rd, rn, imm12 } => {
                debug_assert!(imm12 < 4096);
                0x9100_0000 | ((imm12 as u32) << 10) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            SubImm { rd, rn, imm12 } => {
                debug_assert!(imm12 < 4096);
                0xD100_0000 | ((imm12 as u32) << 10) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            SubsImm { rd, rn, imm12 } => {
                debug_assert!(imm12 < 4096);
                0xF100_0000 | ((imm12 as u32) << 10) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            AddReg { rd, rn, rm } => {
                0x8B00_0000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            SubReg { rd, rn, rm } => {
                0xCB00_0000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            SubsReg { rd, rn, rm } => {
                0xEB00_0000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            AndReg { rd, rn, rm } => {
                0x8A00_0000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            OrrReg { rd, rn, rm } => {
                0xAA00_0000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            EorReg { rd, rn, rm } => {
                0xCA00_0000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            OrnReg { rd, rn, rm } => {
                0xAA20_0000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            AndsReg { rd, rn, rm } => {
                0xEA00_0000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            Madd { rd, rn, rm, ra } => {
                0x9B00_0000
                    | ((rm.0 as u32) << 16)
                    | ((ra.0 as u32) << 10)
                    | ((rn.0 as u32) << 5)
                    | rd.0 as u32
            }
            Udiv { rd, rn, rm } => {
                0x9AC0_0800 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            Csel { rd, rn, rm, cond } => {
                0x9A80_0000
                    | ((rm.0 as u32) << 16)
                    | ((cond as u32) << 12)
                    | ((rn.0 as u32) << 5)
                    | rd.0 as u32
            }
            Csinc { rd, rn, rm, cond } => {
                0x9A80_0400
                    | ((rm.0 as u32) << 16)
                    | ((cond as u32) << 12)
                    | ((rn.0 as u32) << 5)
                    | rd.0 as u32
            }
            Lslv { rd, rn, rm } => {
                0x9AC0_2000 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            Lsrv { rd, rn, rm } => {
                0x9AC0_2400 | ((rm.0 as u32) << 16) | ((rn.0 as u32) << 5) | rd.0 as u32
            }
            LdrX { rt, rn, offset } => {
                debug_assert!(offset % 8 == 0 && offset / 8 < 4096);
                0xF940_0000 | (((offset / 8) as u32) << 10) | ((rn.0 as u32) << 5) | rt.0 as u32
            }
            StrX { rt, rn, offset } => {
                debug_assert!(offset % 8 == 0 && offset / 8 < 4096);
                0xF900_0000 | (((offset / 8) as u32) << 10) | ((rn.0 as u32) << 5) | rt.0 as u32
            }
            Ldp { rt1, rt2, rn, offset } => {
                debug_assert!(offset % 8 == 0 && (-512..=504).contains(&offset));
                let imm7 = ((offset / 8) as u32) & 0x7F;
                0xA940_0000
                    | (imm7 << 15)
                    | ((rt2.0 as u32) << 10)
                    | ((rn.0 as u32) << 5)
                    | rt1.0 as u32
            }
            Stp { rt1, rt2, rn, offset } => {
                debug_assert!(offset % 8 == 0 && (-512..=504).contains(&offset));
                let imm7 = ((offset / 8) as u32) & 0x7F;
                0xA900_0000
                    | (imm7 << 15)
                    | ((rt2.0 as u32) << 10)
                    | ((rn.0 as u32) << 5)
                    | rt1.0 as u32
            }
            Ldrb { rt, rn, offset } => {
                debug_assert!(offset < 4096);
                0x3940_0000 | ((offset as u32) << 10) | ((rn.0 as u32) << 5) | rt.0 as u32
            }
            Strb { rt, rn, offset } => {
                debug_assert!(offset < 4096);
                0x3900_0000 | ((offset as u32) << 10) | ((rn.0 as u32) << 5) | rt.0 as u32
            }
            B { offset } => 0x1400_0000 | ((offset as u32) & 0x03FF_FFFF),
            BCond { cond, offset } => {
                0x5400_0000 | (((offset as u32) & 0x7FFFF) << 5) | cond as u32
            }
            Cbz { rt, offset } => 0xB400_0000 | (((offset as u32) & 0x7FFFF) << 5) | rt.0 as u32,
            Cbnz { rt, offset } => 0xB500_0000 | (((offset as u32) & 0x7FFFF) << 5) | rt.0 as u32,
            Tbz { rt, bit, offset } => {
                debug_assert!(bit < 64);
                let b5 = ((bit >> 5) as u32) << 31;
                let b40 = ((bit & 0x1F) as u32) << 19;
                0x3600_0000 | b5 | b40 | (((offset as u32) & 0x3FFF) << 5) | rt.0 as u32
            }
            Tbnz { rt, bit, offset } => {
                debug_assert!(bit < 64);
                let b5 = ((bit >> 5) as u32) << 31;
                let b40 = ((bit & 0x1F) as u32) << 19;
                0x3700_0000 | b5 | b40 | (((offset as u32) & 0x3FFF) << 5) | rt.0 as u32
            }
            Ret => 0xD65F_03C0,
            Hlt { imm16 } => 0xD440_0000 | ((imm16 as u32) << 5),
            DsbSy => 0xD503_3F9F,
            Isb => 0xD503_3FDF,
            DcZva { rt } => 0xD50B_7420 | rt.0 as u32,
            DcCivac { rt } => 0xD50B_7E20 | rt.0 as u32,
            DcCvac { rt } => 0xD50B_7A20 | rt.0 as u32,
            IcIallu => 0xD508_751F,
            RamIndex { rt } => 0xD508_F400 | rt.0 as u32,
            MrsRamData { rt, n } => {
                debug_assert!(n < 4);
                0xD538_F000 | ((n as u32) << 5) | rt.0 as u32
            }
            MoviV16b { vd, imm8 } => {
                0x4F00_E400
                    | (((imm8 as u32) >> 5) << 16)
                    | (((imm8 as u32) & 0x1F) << 5)
                    | vd.0 as u32
            }
            InsVD { vd, idx, rn } => {
                debug_assert!(idx < 2);
                0x4E08_1C00 | ((idx as u32) << 4 << 16) | ((rn.0 as u32) << 5) | vd.0 as u32
            }
            UmovXD { rd, vn, idx } => {
                debug_assert!(idx < 2);
                0x4E08_3C00 | ((idx as u32) << 4 << 16) | ((vn.0 as u32) << 5) | rd.0 as u32
            }
        }
    }

    /// Decodes a machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the word is outside the subset.
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        use Instr::*;
        let rd = Reg((word & 0x1F) as u8);
        let rn = Reg(((word >> 5) & 0x1F) as u8);
        let rm = Reg(((word >> 16) & 0x1F) as u8);

        if word == 0xD503_201F {
            return Ok(Nop);
        }
        if word == 0xD65F_03C0 {
            return Ok(Ret);
        }
        if word == 0xD503_3F9F {
            return Ok(DsbSy);
        }
        if word == 0xD503_3FDF {
            return Ok(Isb);
        }
        if word == 0xD508_751F {
            return Ok(IcIallu);
        }
        match word & 0xFF80_0000 {
            0xD280_0000 => {
                return Ok(Movz {
                    rd,
                    imm16: ((word >> 5) & 0xFFFF) as u16,
                    hw: ((word >> 21) & 0x3) as u8,
                })
            }
            0xF280_0000 => {
                return Ok(Movk {
                    rd,
                    imm16: ((word >> 5) & 0xFFFF) as u16,
                    hw: ((word >> 21) & 0x3) as u8,
                })
            }
            0x9280_0000 => {
                return Ok(Movn {
                    rd,
                    imm16: ((word >> 5) & 0xFFFF) as u16,
                    hw: ((word >> 21) & 0x3) as u8,
                })
            }
            _ => {}
        }
        if word & 0x9F00_0000 == 0x1000_0000 {
            let imm = ((word >> 29) & 0x3) | (((word >> 5) & 0x7_FFFF) << 2);
            let offset = ((imm << 11) as i32) >> 11;
            return Ok(Adr { rd, offset });
        }
        match word & 0xFFC0_0000 {
            0xA940_0000 => {
                let imm7 = (word >> 15) & 0x7F;
                let offset = (((imm7 << 25) as i32) >> 25) as i16 * 8;
                return Ok(Ldp { rt1: rd, rt2: Reg(((word >> 10) & 0x1F) as u8), rn, offset });
            }
            0xA900_0000 => {
                let imm7 = (word >> 15) & 0x7F;
                let offset = (((imm7 << 25) as i32) >> 25) as i16 * 8;
                return Ok(Stp { rt1: rd, rt2: Reg(((word >> 10) & 0x1F) as u8), rn, offset });
            }
            _ => {}
        }
        match word & 0xFFC0_0000 {
            0x9100_0000 => return Ok(AddImm { rd, rn, imm12: ((word >> 10) & 0xFFF) as u16 }),
            0xD100_0000 => return Ok(SubImm { rd, rn, imm12: ((word >> 10) & 0xFFF) as u16 }),
            0xF100_0000 => return Ok(SubsImm { rd, rn, imm12: ((word >> 10) & 0xFFF) as u16 }),
            0xF940_0000 => {
                return Ok(LdrX { rt: rd, rn, offset: (((word >> 10) & 0xFFF) * 8) as u16 })
            }
            0xF900_0000 => {
                return Ok(StrX { rt: rd, rn, offset: (((word >> 10) & 0xFFF) * 8) as u16 })
            }
            0x3940_0000 => return Ok(Ldrb { rt: rd, rn, offset: ((word >> 10) & 0xFFF) as u16 }),
            0x3900_0000 => return Ok(Strb { rt: rd, rn, offset: ((word >> 10) & 0xFFF) as u16 }),
            _ => {}
        }
        if word & 0xFFE0_FC00 == 0x8B00_0000 {
            return Ok(AddReg { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0xCB00_0000 {
            return Ok(SubReg { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0xEB00_0000 {
            return Ok(SubsReg { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0x8A00_0000 {
            return Ok(AndReg { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0xAA00_0000 {
            return Ok(OrrReg { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0xCA00_0000 {
            return Ok(EorReg { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0x9AC0_2000 {
            return Ok(Lslv { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0x9AC0_2400 {
            return Ok(Lsrv { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0xAA20_0000 {
            return Ok(OrnReg { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0xEA00_0000 {
            return Ok(AndsReg { rd, rn, rm });
        }
        if word & 0xFFE0_FC00 == 0x9AC0_0800 {
            return Ok(Udiv { rd, rn, rm });
        }
        if word & 0xFFE0_8000 == 0x9B00_0000 {
            return Ok(Madd { rd, rn, rm, ra: Reg(((word >> 10) & 0x1F) as u8) });
        }
        if word & 0xFFE0_0C00 == 0x9A80_0000 {
            let cond = Cond::from_bits((word >> 12) & 0xF).ok_or(DecodeError { word })?;
            return Ok(Csel { rd, rn, rm, cond });
        }
        if word & 0xFFE0_0C00 == 0x9A80_0400 {
            let cond = Cond::from_bits((word >> 12) & 0xF).ok_or(DecodeError { word })?;
            return Ok(Csinc { rd, rn, rm, cond });
        }
        if word & 0x7E00_0000 == 0x3600_0000 {
            let bit = ((((word >> 31) & 1) << 5) | ((word >> 19) & 0x1F)) as u8;
            let raw = (word >> 5) & 0x3FFF;
            let offset = (((raw << 18) as i32) >> 18) as i16;
            return if word & 0x0100_0000 == 0 {
                Ok(Tbz { rt: rd, bit, offset })
            } else {
                Ok(Tbnz { rt: rd, bit, offset })
            };
        }
        if word & 0xFC00_0000 == 0x1400_0000 {
            let raw = word & 0x03FF_FFFF;
            let offset = ((raw << 6) as i32) >> 6;
            return Ok(B { offset });
        }
        if word & 0xFF00_0010 == 0x5400_0000 {
            let cond = Cond::from_bits(word & 0xF).ok_or(DecodeError { word })?;
            let raw = (word >> 5) & 0x7FFFF;
            let offset = ((raw << 13) as i32) >> 13;
            return Ok(BCond { cond, offset });
        }
        if word & 0xFF00_0000 == 0xB400_0000 {
            let raw = (word >> 5) & 0x7FFFF;
            return Ok(Cbz { rt: rd, offset: ((raw << 13) as i32) >> 13 });
        }
        if word & 0xFF00_0000 == 0xB500_0000 {
            let raw = (word >> 5) & 0x7FFFF;
            return Ok(Cbnz { rt: rd, offset: ((raw << 13) as i32) >> 13 });
        }
        if word & 0xFFE0_001F == 0xD440_0000 {
            return Ok(Hlt { imm16: ((word >> 5) & 0xFFFF) as u16 });
        }
        if word & 0xFFFF_FFE0 == 0xD50B_7420 {
            return Ok(DcZva { rt: rd });
        }
        if word & 0xFFFF_FFE0 == 0xD50B_7E20 {
            return Ok(DcCivac { rt: rd });
        }
        if word & 0xFFFF_FFE0 == 0xD50B_7A20 {
            return Ok(DcCvac { rt: rd });
        }
        if word & 0xFFFF_FFE0 == 0xD508_F400 {
            return Ok(RamIndex { rt: rd });
        }
        if word & 0xFFFF_FF80 == 0xD538_F000 {
            return Ok(MrsRamData { rt: rd, n: ((word >> 5) & 0x3) as u8 });
        }
        if word & 0xFFF8_FC00 == 0x4F00_E400 {
            let imm8 = ((((word >> 16) & 0x7) << 5) | ((word >> 5) & 0x1F)) as u8;
            return Ok(MoviV16b { vd: VReg((word & 0x1F) as u8), imm8 });
        }
        if word & 0xFFEF_FC00 == 0x4E08_1C00 {
            return Ok(InsVD { vd: VReg((word & 0x1F) as u8), idx: ((word >> 20) & 1) as u8, rn });
        }
        if word & 0xFFEF_FC00 == 0x4E08_3C00 {
            return Ok(UmovXD {
                rd,
                vn: VReg(((word >> 5) & 0x1F) as u8),
                idx: ((word >> 20) & 1) as u8,
            });
        }
        Err(DecodeError { word })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_encodings_match_the_architecture() {
        assert_eq!(Instr::Nop.encode(), 0xD503201F);
        assert_eq!(Instr::Ret.encode(), 0xD65F03C0);
        assert_eq!(Instr::DsbSy.encode(), 0xD5033F9F);
        assert_eq!(Instr::Isb.encode(), 0xD5033FDF);
        assert_eq!(Instr::IcIallu.encode(), 0xD508751F);
        // movz x0, #1  ==  0xD2800020
        assert_eq!(Instr::Movz { rd: Reg::x(0), imm16: 1, hw: 0 }.encode(), 0xD2800020);
        // ldr x1, [x2, #16]  ==  0xF9400841
        assert_eq!(Instr::LdrX { rt: Reg::x(1), rn: Reg::x(2), offset: 16 }.encode(), 0xF9400841);
        // str x1, [x2]  ==  0xF9000041
        assert_eq!(Instr::StrX { rt: Reg::x(1), rn: Reg::x(2), offset: 0 }.encode(), 0xF9000041);
        // b . (offset 0)  ==  0x14000000
        assert_eq!(Instr::B { offset: 0 }.encode(), 0x14000000);
        // dc zva, x3  ==  0xD50B7423
        assert_eq!(Instr::DcZva { rt: Reg::x(3) }.encode(), 0xD50B7423);
        // The paper's RAMINDEX: sys #0, c15, c4, #0, x0
        assert_eq!(Instr::RamIndex { rt: Reg::x(0) }.encode(), 0xD508F400);
    }

    #[test]
    fn every_instruction_roundtrips() {
        let cases = vec![
            Instr::Nop,
            Instr::Movz { rd: Reg::x(5), imm16: 0xABCD, hw: 2 },
            Instr::Movk { rd: Reg::x(30), imm16: 0xFFFF, hw: 3 },
            Instr::AddImm { rd: Reg::x(1), rn: Reg::x(2), imm12: 4095 },
            Instr::SubImm { rd: Reg::x(1), rn: Reg::x(2), imm12: 1 },
            Instr::SubsImm { rd: Reg::XZR, rn: Reg::x(2), imm12: 7 },
            Instr::AddReg { rd: Reg::x(3), rn: Reg::x(4), rm: Reg::x(5) },
            Instr::SubReg { rd: Reg::x(3), rn: Reg::x(4), rm: Reg::x(5) },
            Instr::SubsReg { rd: Reg::XZR, rn: Reg::x(4), rm: Reg::x(5) },
            Instr::AndReg { rd: Reg::x(6), rn: Reg::x(7), rm: Reg::x(8) },
            Instr::OrrReg { rd: Reg::x(6), rn: Reg::XZR, rm: Reg::x(8) },
            Instr::EorReg { rd: Reg::x(6), rn: Reg::x(7), rm: Reg::x(8) },
            Instr::Lslv { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3) },
            Instr::Lsrv { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3) },
            Instr::LdrX { rt: Reg::x(9), rn: Reg::x(10), offset: 32760 },
            Instr::StrX { rt: Reg::x(9), rn: Reg::x(10), offset: 8 },
            Instr::Ldrb { rt: Reg::x(9), rn: Reg::x(10), offset: 4095 },
            Instr::Strb { rt: Reg::x(9), rn: Reg::x(10), offset: 0 },
            Instr::B { offset: -4 },
            Instr::B { offset: 1000 },
            Instr::BCond { cond: Cond::Ne, offset: -32 },
            Instr::BCond { cond: Cond::Ge, offset: 5 },
            Instr::Cbz { rt: Reg::x(2), offset: 12 },
            Instr::Cbnz { rt: Reg::x(2), offset: -12 },
            Instr::Ret,
            Instr::Hlt { imm16: 0xBEEF },
            Instr::DsbSy,
            Instr::Isb,
            Instr::DcZva { rt: Reg::x(4) },
            Instr::DcCivac { rt: Reg::x(4) },
            Instr::DcCvac { rt: Reg::x(4) },
            Instr::IcIallu,
            Instr::RamIndex { rt: Reg::x(0) },
            Instr::MrsRamData { rt: Reg::x(1), n: 3 },
            Instr::MoviV16b { vd: VReg::v(31), imm8: 0xAA },
            Instr::MoviV16b { vd: VReg::v(0), imm8: 0xFF },
            Instr::InsVD { vd: VReg::v(7), idx: 1, rn: Reg::x(3) },
            Instr::UmovXD { rd: Reg::x(3), vn: VReg::v(7), idx: 0 },
            Instr::Movn { rd: Reg::x(4), imm16: 0x1234, hw: 1 },
            Instr::Adr { rd: Reg::x(5), offset: -4096 },
            Instr::Adr { rd: Reg::x(5), offset: 1_048_572 },
            Instr::OrnReg { rd: Reg::x(1), rn: Reg::XZR, rm: Reg::x(2) },
            Instr::AndsReg { rd: Reg::XZR, rn: Reg::x(3), rm: Reg::x(4) },
            Instr::Madd { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3), ra: Reg::x(4) },
            Instr::Madd { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3), ra: Reg::XZR },
            Instr::Udiv { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3) },
            Instr::Csel { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3), cond: Cond::Lt },
            Instr::Csinc { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3), cond: Cond::Eq },
            Instr::Ldp { rt1: Reg::x(0), rt2: Reg::x(1), rn: Reg::x(2), offset: -512 },
            Instr::Ldp { rt1: Reg::x(0), rt2: Reg::x(1), rn: Reg::x(2), offset: 504 },
            Instr::Stp { rt1: Reg::x(29), rt2: Reg::x(30), rn: Reg::x(2), offset: 0 },
            Instr::Tbz { rt: Reg::x(7), bit: 63, offset: -100 },
            Instr::Tbnz { rt: Reg::x(7), bit: 0, offset: 8191 },
        ];
        for instr in cases {
            let word = instr.encode();
            let back = Instr::decode(word)
                .unwrap_or_else(|e| panic!("{instr:?} ({word:#010x}) failed to decode: {e}"));
            assert_eq!(back, instr, "roundtrip mismatch for {word:#010x}");
        }
    }

    #[test]
    fn garbage_words_fail_to_decode() {
        for word in [0x0000_0000u32, 0xFFFF_FFFF, 0x1234_5678] {
            assert!(Instr::decode(word).is_err(), "{word:#010x} should not decode");
        }
    }

    #[test]
    fn branch_offsets_sign_extend() {
        let b = Instr::B { offset: -1 };
        assert_eq!(Instr::decode(b.encode()).unwrap(), b);
        let bc = Instr::BCond { cond: Cond::Lt, offset: -262144 };
        assert_eq!(Instr::decode(bc.encode()).unwrap(), bc);
    }

    #[test]
    fn register_display() {
        assert_eq!(Reg::x(0).to_string(), "x0");
        assert_eq!(Reg::XZR.to_string(), "xzr");
        assert_eq!(VReg::v(31).to_string(), "v31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_index_validated() {
        let _ = Reg::x(32);
    }

    #[test]
    fn display_uses_preferred_aliases() {
        assert_eq!(
            Instr::OrrReg { rd: Reg::x(1), rn: Reg::XZR, rm: Reg::x(2) }.to_string(),
            "mov x1, x2"
        );
        assert_eq!(
            Instr::SubsImm { rd: Reg::XZR, rn: Reg::x(3), imm12: 7 }.to_string(),
            "cmp x3, #7"
        );
        assert_eq!(
            Instr::AndsReg { rd: Reg::XZR, rn: Reg::x(1), rm: Reg::x(2) }.to_string(),
            "tst x1, x2"
        );
        assert_eq!(
            Instr::Madd { rd: Reg::x(0), rn: Reg::x(1), rm: Reg::x(2), ra: Reg::XZR }.to_string(),
            "mul x0, x1, x2"
        );
        assert_eq!(Instr::Nop.to_string(), "nop");
        assert_eq!(
            Instr::LdrX { rt: Reg::x(4), rn: Reg::x(5), offset: 16 }.to_string(),
            "ldr x4, [x5, #16]"
        );
    }

    #[test]
    fn display_roundtrips_through_the_assembler() {
        // Every non-branch instruction's text form re-assembles to the
        // same encoding (branch targets print as offsets, which the
        // assembler reads back as immediate offsets).
        let cases = vec![
            Instr::Movz { rd: Reg::x(5), imm16: 0xABCD, hw: 2 },
            Instr::Movn { rd: Reg::x(4), imm16: 0x99, hw: 0 },
            Instr::AddImm { rd: Reg::x(1), rn: Reg::x(2), imm12: 9 },
            Instr::OrnReg { rd: Reg::x(1), rn: Reg::x(9), rm: Reg::x(2) },
            Instr::Udiv { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3) },
            Instr::Csel { rd: Reg::x(1), rn: Reg::x(2), rm: Reg::x(3), cond: Cond::Gt },
            Instr::Ldp { rt1: Reg::x(0), rt2: Reg::x(1), rn: Reg::x(2), offset: 16 },
            Instr::Strb { rt: Reg::x(9), rn: Reg::x(10), offset: 3 },
            Instr::DcZva { rt: Reg::x(4) },
            Instr::MoviV16b { vd: VReg::v(3), imm8: 0x7E },
            Instr::UmovXD { rd: Reg::x(3), vn: VReg::v(7), idx: 1 },
        ];
        for instr in cases {
            let text = instr.to_string();
            let back = crate::asm::assemble(&text)
                .unwrap_or_else(|e| panic!("{text:?} failed to assemble: {e}"));
            assert_eq!(back.instrs(), &[instr], "text was {text:?}");
        }
    }
}
