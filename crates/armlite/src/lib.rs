//! A minimal aarch64-flavoured CPU model for the Volt Boot reproduction.
//!
//! The paper's victim and extraction software are bare-metal aarch64
//! programs: NOP sleds that fill instruction caches, store loops that fill
//! data caches, NEON-register fills, and the CP15 `RAMINDEX` readout
//! sequence with its `DSB SY` / `ISB` barriers. This crate provides just
//! enough of an ARMv8-A core to run faithful equivalents of those
//! programs against the simulated SoC:
//!
//! * [`Instr`] — a ~30-instruction A64 subset whose **encodings are the
//!   real A64 bit patterns** (a NOP in the simulated i-cache is
//!   `0xD503201F`, exactly what the paper greps for in extracted images);
//! * [`asm::assemble`] — a small text assembler with labels;
//! * [`Cpu`] — an interpreter over a [`Bus`] trait that the `soc` crate
//!   implements with its caches, so every fetch, load, and store exercises
//!   the simulated SRAM.
//!
//! # Example
//!
//! ```rust
//! use voltboot_armlite::{asm::assemble, Cpu, FlatMemory, RunExit};
//!
//! let program = assemble(r#"
//!     movz x0, #0xAA
//!     movz x1, #0x1000
//!     str  x0, [x1]
//!     ldr  x2, [x1]
//!     hlt  #0
//! "#).unwrap();
//!
//! let mut mem = FlatMemory::new(64 * 1024);
//! mem.load(0, &program.bytes());
//! let mut cpu = Cpu::new(0);
//! let exit = cpu.run(&mut mem, 100);
//! assert_eq!(exit, RunExit::Halted(0));
//! assert_eq!(cpu.x(2), 0xAA);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod bus;
pub mod cpu;
pub mod insn;
pub mod program;

pub use bus::{Bus, BusFault, FlatMemory, RamIndexRequest};
pub use cpu::{Cpu, ExceptionLevel, RunExit};
pub use insn::{Cond, DecodeError, Instr, Reg, VReg};
pub use program::Program;
