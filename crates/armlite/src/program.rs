//! Assembled programs and canned program builders.

use crate::insn::{Instr, Reg, VReg};
use serde::{Deserialize, Serialize};

/// An assembled machine-code program: a sequence of A64 words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Wraps a list of instructions.
    pub fn from_instrs(instrs: Vec<Instr>) -> Self {
        Program { instrs }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> usize {
        self.instrs.len() * 4
    }

    /// Little-endian machine code.
    pub fn bytes(&self) -> Vec<u8> {
        self.instrs.iter().flat_map(|i| i.encode().to_le_bytes()).collect()
    }

    /// Machine words.
    pub fn words(&self) -> Vec<u32> {
        self.instrs.iter().map(|i| i.encode()).collect()
    }

    /// Decodes machine code back into a program (must be a multiple of 4
    /// bytes of supported instructions).
    ///
    /// # Errors
    ///
    /// Returns the first undecodable word.
    pub fn disassemble(bytes: &[u8]) -> Result<Program, crate::insn::DecodeError> {
        let instrs = bytes
            .chunks_exact(4)
            .map(|c| Instr::decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Program { instrs })
    }
}

/// Canned programs used by the paper's experiments.
pub mod builders {
    use super::*;

    /// A NOP sled of `n` instructions ending in `hlt #0` — the paper's
    /// §7.1.1 bare-metal i-cache filler ("executes NOP instructions in
    /// all four cores").
    pub fn nop_sled(n: usize) -> Program {
        let mut instrs = vec![Instr::Nop; n];
        instrs.push(Instr::Hlt { imm16: 0 });
        Program::from_instrs(instrs)
    }

    /// Fills `count` bytes starting at `base` with `pattern`, one byte at
    /// a time through the d-cache — the §7.1.2 victim app ("stores a
    /// specific pattern (0xAA) in a large data structure and reads it
    /// back").
    ///
    /// Register use: x0 pattern, x1 cursor, x2 remaining, x3 readback.
    pub fn fill_bytes(base: u64, pattern: u8, count: u32) -> Program {
        let mut instrs = vec![
            Instr::Movz { rd: Reg::x(0), imm16: pattern as u16, hw: 0 },
            Instr::Movz { rd: Reg::x(1), imm16: (base & 0xFFFF) as u16, hw: 0 },
            Instr::Movk { rd: Reg::x(1), imm16: ((base >> 16) & 0xFFFF) as u16, hw: 1 },
            Instr::Movk { rd: Reg::x(1), imm16: ((base >> 32) & 0xFFFF) as u16, hw: 2 },
            Instr::Movz { rd: Reg::x(2), imm16: (count & 0xFFFF) as u16, hw: 0 },
            Instr::Movk { rd: Reg::x(2), imm16: ((count >> 16) & 0xFFFF) as u16, hw: 1 },
        ];
        // loop: strb x0, [x1]; ldrb x3, [x1]; add x1, x1, #1;
        //       sub x2, x2, #1; cbnz x2, loop
        instrs.extend([
            Instr::Strb { rt: Reg::x(0), rn: Reg::x(1), offset: 0 },
            Instr::Ldrb { rt: Reg::x(3), rn: Reg::x(1), offset: 0 },
            Instr::AddImm { rd: Reg::x(1), rn: Reg::x(1), imm12: 1 },
            Instr::SubImm { rd: Reg::x(2), rn: Reg::x(2), imm12: 1 },
            Instr::Cbnz { rt: Reg::x(2), offset: -4 },
            Instr::Hlt { imm16: 0 },
        ]);
        Program::from_instrs(instrs)
    }

    /// Writes `count` 8-byte elements `elem(i) = seed_pattern | i` at
    /// `base` — the Table 4 microbenchmark array (variable array size,
    /// 8-byte elements).
    ///
    /// Register use: x0 element, x1 cursor, x2 remaining, x4 index.
    pub fn fill_words(base: u64, seed_pattern: u16, count: u32) -> Program {
        let mut instrs = vec![
            Instr::Movz { rd: Reg::x(1), imm16: (base & 0xFFFF) as u16, hw: 0 },
            Instr::Movk { rd: Reg::x(1), imm16: ((base >> 16) & 0xFFFF) as u16, hw: 1 },
            Instr::Movk { rd: Reg::x(1), imm16: ((base >> 32) & 0xFFFF) as u16, hw: 2 },
            Instr::Movz { rd: Reg::x(2), imm16: (count & 0xFFFF) as u16, hw: 0 },
            Instr::Movk { rd: Reg::x(2), imm16: ((count >> 16) & 0xFFFF) as u16, hw: 1 },
            Instr::Movz { rd: Reg::x(4), imm16: 0, hw: 0 },
        ];
        // loop: x0 = (seed << 48) | x4; str; x1 += 8; x4 += 1; x2 -= 1; cbnz
        instrs.extend([
            Instr::Movz { rd: Reg::x(0), imm16: seed_pattern, hw: 3 },
            Instr::OrrReg { rd: Reg::x(0), rn: Reg::x(0), rm: Reg::x(4) },
            Instr::StrX { rt: Reg::x(0), rn: Reg::x(1), offset: 0 },
            Instr::AddImm { rd: Reg::x(1), rn: Reg::x(1), imm12: 8 },
            Instr::AddImm { rd: Reg::x(4), rn: Reg::x(4), imm12: 1 },
            Instr::SubImm { rd: Reg::x(2), rn: Reg::x(2), imm12: 1 },
            Instr::Cbnz { rt: Reg::x(2), offset: -6 },
            Instr::Hlt { imm16: 0 },
        ]);
        Program::from_instrs(instrs)
    }

    /// Fills every vector register `v0..v31` with a distinguishable byte
    /// pattern (alternating `0xFF`/`0xAA` like the paper's §7.2 register
    /// experiment) and halts.
    pub fn fill_vector_registers() -> Program {
        let mut instrs: Vec<Instr> = (0..32u8)
            .map(|n| Instr::MoviV16b { vd: VReg::v(n), imm8: if n % 2 == 0 { 0xFF } else { 0xAA } })
            .collect();
        instrs.push(Instr::Hlt { imm16: 0 });
        Program::from_instrs(instrs)
    }

    /// The full looped extraction routine: walks every beat of one
    /// `(ramid, way)` pair, storing the four data-output words of each
    /// beat to DRAM at `dst` — the complete §6.1 flow ("a set of general
    /// load/store instructions moves the data from the general-purpose
    /// CPU registers to DRAM").
    ///
    /// Register use: x1 beat counter, x2 remaining beats, x5 write
    /// cursor, x9 request word.
    pub fn ramindex_dump_way(ramid: u8, way: u8, beats: u32, dst: u64) -> Program {
        // Request base with index 0; the loop adds the beat counter.
        let base = crate::bus::RamIndexRequest { ramid, way, index: 0 }.pack();
        let mut instrs = vec![
            Instr::Movz { rd: Reg::x(1), imm16: 0, hw: 0 },
            Instr::Movz { rd: Reg::x(2), imm16: (beats & 0xFFFF) as u16, hw: 0 },
            Instr::Movk { rd: Reg::x(2), imm16: ((beats >> 16) & 0xFFFF) as u16, hw: 1 },
            Instr::Movz { rd: Reg::x(5), imm16: (dst & 0xFFFF) as u16, hw: 0 },
            Instr::Movk { rd: Reg::x(5), imm16: ((dst >> 16) & 0xFFFF) as u16, hw: 1 },
            Instr::Movz { rd: Reg::x(6), imm16: (base & 0xFFFF) as u16, hw: 0 },
            Instr::Movk { rd: Reg::x(6), imm16: ((base >> 16) & 0xFFFF) as u16, hw: 1 },
            Instr::Movk { rd: Reg::x(6), imm16: ((base >> 32) & 0xFFFF) as u16, hw: 2 },
        ];
        // loop:
        //   x9 = x6 + x1 (request for this beat); ramindex; dsb; isb;
        //   x10..x13 <- data regs; stp pairs to [x5]; x5 += 32;
        //   x1 += 1; x2 -= 1; cbnz x2, loop
        instrs.extend([
            Instr::AddReg { rd: Reg::x(9), rn: Reg::x(6), rm: Reg::x(1) },
            Instr::RamIndex { rt: Reg::x(9) },
            Instr::DsbSy,
            Instr::Isb,
            Instr::MrsRamData { rt: Reg::x(10), n: 0 },
            Instr::MrsRamData { rt: Reg::x(11), n: 1 },
            Instr::MrsRamData { rt: Reg::x(12), n: 2 },
            Instr::MrsRamData { rt: Reg::x(13), n: 3 },
            Instr::Stp { rt1: Reg::x(10), rt2: Reg::x(11), rn: Reg::x(5), offset: 0 },
            Instr::Stp { rt1: Reg::x(12), rt2: Reg::x(13), rn: Reg::x(5), offset: 16 },
            Instr::AddImm { rd: Reg::x(5), rn: Reg::x(5), imm12: 32 },
            Instr::AddImm { rd: Reg::x(1), rn: Reg::x(1), imm12: 1 },
            Instr::SubImm { rd: Reg::x(2), rn: Reg::x(2), imm12: 1 },
            Instr::Cbnz { rt: Reg::x(2), offset: -13 },
            Instr::Hlt { imm16: 0 },
        ]);
        Program::from_instrs(instrs)
    }

    /// The post-reboot d-cache extraction routine of §6.1: for one
    /// `(ramid, way, set)` triple, issue `RAMINDEX`, run the barrier
    /// sequence, and read the four data-output words into `x10..x13`,
    /// then halt. The request word is materialized in `x9`.
    pub fn ramindex_read(ramid: u8, way: u8, index: u32) -> Program {
        let request = crate::bus::RamIndexRequest { ramid, way, index }.pack();
        Program::from_instrs(vec![
            Instr::Movz { rd: Reg::x(9), imm16: (request & 0xFFFF) as u16, hw: 0 },
            Instr::Movk { rd: Reg::x(9), imm16: ((request >> 16) & 0xFFFF) as u16, hw: 1 },
            Instr::Movk { rd: Reg::x(9), imm16: ((request >> 32) & 0xFFFF) as u16, hw: 2 },
            Instr::RamIndex { rt: Reg::x(9) },
            Instr::DsbSy,
            Instr::Isb,
            Instr::MrsRamData { rt: Reg::x(10), n: 0 },
            Instr::MrsRamData { rt: Reg::x(11), n: 1 },
            Instr::MrsRamData { rt: Reg::x(12), n: 2 },
            Instr::MrsRamData { rt: Reg::x(13), n: 3 },
            Instr::Hlt { imm16: 0 },
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::builders::*;
    use super::*;
    use crate::bus::FlatMemory;
    use crate::cpu::{Cpu, RunExit};

    fn run(p: &Program, mem_size: usize) -> (Cpu, FlatMemory, RunExit) {
        let mut mem = FlatMemory::new(mem_size);
        mem.load(0, &p.bytes());
        let mut cpu = Cpu::new(0);
        let exit = cpu.run(&mut mem, 10_000_000);
        (cpu, mem, exit)
    }

    #[test]
    fn nop_sled_is_real_nops() {
        let p = nop_sled(16);
        assert_eq!(p.len(), 17);
        assert!(p.words()[..16].iter().all(|&w| w == 0xD503201F));
        let (_, _, exit) = run(&p, 4096);
        assert_eq!(exit, RunExit::Halted(0));
    }

    #[test]
    fn fill_bytes_writes_the_pattern() {
        let p = fill_bytes(0x1000, 0xAA, 256);
        let (_, mem, exit) = run(&p, 1 << 16);
        assert_eq!(exit, RunExit::Halted(0));
        assert!(mem.bytes()[0x1000..0x1100].iter().all(|&b| b == 0xAA));
        assert_eq!(mem.bytes()[0x1100], 0);
    }

    #[test]
    fn fill_words_writes_indexed_elements() {
        let p = fill_words(0x2000, 0xBEEF, 64);
        let (_, mem, exit) = run(&p, 1 << 16);
        assert_eq!(exit, RunExit::Halted(0));
        for i in 0..64u64 {
            let a = 0x2000 + i as usize * 8;
            let v = u64::from_le_bytes(mem.bytes()[a..a + 8].try_into().unwrap());
            assert_eq!(v, (0xBEEFu64 << 48) | i, "element {i}");
        }
    }

    #[test]
    fn vector_fill_sets_all_32_registers() {
        let p = fill_vector_registers();
        let (cpu, _, exit) = run(&p, 4096);
        assert_eq!(exit, RunExit::Halted(0));
        for n in 0..32u8 {
            let expected =
                if n % 2 == 0 { 0xFFFF_FFFF_FFFF_FFFFu64 } else { 0xAAAA_AAAA_AAAA_AAAA };
            assert_eq!(cpu.v(n), [expected; 2], "v{n}");
        }
    }

    #[test]
    fn ramindex_dump_way_loops_and_stores() {
        // FlatMemory's ramindex returns zeros, so the observable effect
        // is the loop structure itself: 8 beats -> 256 bytes written.
        let p = ramindex_dump_way(0x09, 1, 8, 0x4000);
        let (cpu, mem, exit) = run(&p, 1 << 16);
        assert_eq!(exit, RunExit::Halted(0));
        assert_eq!(cpu.x(1), 8, "beat counter ran to completion");
        assert_eq!(cpu.x(5), 0x4000 + 8 * 32, "write cursor advanced");
        assert!(mem.bytes()[0x4000..0x4100].iter().all(|&b| b == 0));
    }

    #[test]
    fn ramindex_program_runs_at_el3() {
        let p = ramindex_read(0x08, 1, 42);
        let (cpu, _, exit) = run(&p, 4096);
        assert_eq!(exit, RunExit::Halted(0));
        // FlatMemory returns zeros; the point is that the sequence is valid.
        assert_eq!(cpu.x(10), 0);
    }

    #[test]
    fn disassemble_roundtrip() {
        let p = fill_bytes(0x1234_5678, 0x5A, 10);
        let back = Program::disassemble(&p.bytes()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn disassemble_rejects_garbage() {
        assert!(Program::disassemble(&[0x78, 0x56, 0x34, 0x12]).is_err());
    }
}
