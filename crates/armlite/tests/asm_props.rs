//! Property tests on the assembler/disassembler pair.

use proptest::prelude::*;
use voltboot_armlite::asm::assemble;
use voltboot_armlite::insn::{Cond, Instr, Reg, VReg};

/// A strategy over non-branch instructions whose `Display` text is valid
/// assembler input.
fn displayable_instr() -> impl Strategy<Value = Instr> {
    let reg = (0u8..31).prop_map(Reg);
    let vreg = (0u8..32).prop_map(VReg);
    let cond = (0u32..14).prop_map(|c| Cond::from_bits(c).unwrap());
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Ret),
        Just(Instr::DsbSy),
        Just(Instr::Isb),
        Just(Instr::IcIallu),
        (reg.clone(), any::<u16>(), 0u8..4).prop_map(|(rd, imm16, hw)| Instr::Movz {
            rd,
            imm16,
            hw
        }),
        (reg.clone(), any::<u16>(), 0u8..4).prop_map(|(rd, imm16, hw)| Instr::Movk {
            rd,
            imm16,
            hw
        }),
        (reg.clone(), any::<u16>(), 0u8..4).prop_map(|(rd, imm16, hw)| Instr::Movn {
            rd,
            imm16,
            hw
        }),
        (reg.clone(), reg.clone(), 0u16..4096).prop_map(|(rd, rn, imm12)| Instr::AddImm {
            rd,
            rn,
            imm12
        }),
        (reg.clone(), reg.clone(), 0u16..4096).prop_map(|(rd, rn, imm12)| Instr::SubImm {
            rd,
            rn,
            imm12
        }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rn, rm)| Instr::AndReg {
            rd,
            rn,
            rm
        }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rn, rm)| Instr::EorReg {
            rd,
            rn,
            rm
        }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rn, rm)| Instr::Udiv { rd, rn, rm }),
        (reg.clone(), reg.clone(), reg.clone(), cond.clone())
            .prop_map(|(rd, rn, rm, cond)| Instr::Csel { rd, rn, rm, cond }),
        (reg.clone(), reg.clone(), reg.clone(), cond).prop_map(|(rd, rn, rm, cond)| Instr::Csinc {
            rd,
            rn,
            rm,
            cond
        }),
        (reg.clone(), reg.clone(), 0u16..4096).prop_map(|(rt, rn, offset)| Instr::Ldrb {
            rt,
            rn,
            offset
        }),
        (reg.clone(), reg.clone(), 0u16..4095).prop_map(|(rt, rn, offset)| Instr::LdrX {
            rt,
            rn,
            offset: offset / 8 * 8
        }),
        (reg.clone(), reg.clone(), reg.clone(), 0i16..64)
            .prop_map(|(rt1, rt2, rn, o)| { Instr::Ldp { rt1, rt2, rn, offset: o * 8 } }),
        (reg.clone(), any::<u8>()).prop_map(|(rt, _)| Instr::DcZva { rt }),
        (vreg.clone(), any::<u8>()).prop_map(|(vd, imm8)| Instr::MoviV16b { vd, imm8 }),
        (vreg.clone(), 0u8..2, reg.clone()).prop_map(|(vd, idx, rn)| Instr::InsVD { vd, idx, rn }),
        (reg, vreg, 0u8..2).prop_map(|(rd, vn, idx)| Instr::UmovXD { rd, vn, idx }),
    ]
}

proptest! {
    /// Display → assemble is the identity on non-branch instructions.
    #[test]
    fn display_assemble_identity(instr in displayable_instr()) {
        let text = instr.to_string();
        let program = assemble(&text)
            .map_err(|e| TestCaseError::fail(format!("{text:?}: {e}")))?;
        prop_assert_eq!(program.instrs(), &[instr], "text was {}", text);
    }

    /// Encode → decode is the identity for generated instructions.
    #[test]
    fn encode_decode_identity(instr in displayable_instr()) {
        prop_assert_eq!(Instr::decode(instr.encode()).unwrap(), instr);
    }

    /// The assembler rejects junk without panicking.
    #[test]
    fn assembler_never_panics(line in "[a-z0-9#, .\\[\\]]{0,40}") {
        let _ = assemble(&line);
    }
}
