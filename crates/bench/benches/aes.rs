//! Microbenchmarks of the from-scratch AES and the key-schedule scan.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use voltboot_crypto::aes::{Aes, AesKey, KeySchedule};
use voltboot_sram::PackedBits;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes::new(&AesKey::Aes128([7; 16]));
    let block = [0x5Au8; 16];
    c.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| black_box(aes.encrypt_block(black_box(&block))))
    });
    c.bench_function("aes128_key_expansion", |b| {
        b.iter(|| black_box(KeySchedule::expand(&AesKey::Aes128(black_box([7; 16])))))
    });
}

fn bench_key_scan(c: &mut Criterion) {
    // A 32 KB image with one schedule planted in the middle.
    let schedule = KeySchedule::expand(&AesKey::Aes128([9; 16]));
    let mut bytes = vec![0xC3u8; 32 * 1024];
    bytes[16_000..16_176].copy_from_slice(&schedule.to_bytes());
    let image = PackedBits::from_bytes(&bytes);
    c.bench_function("key_schedule_scan_32k_image", |b| {
        b.iter(|| black_box(voltboot::analysis::find_key_schedules(black_box(&image)).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3));
    targets = bench_aes, bench_key_scan
}
criterion_main!(benches);
