//! Microbenchmarks of the armlite CPU: interpreter throughput on its
//! own flat memory and through the full SoC cache hierarchy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use voltboot_armlite::program::builders;
use voltboot_armlite::{Cpu, FlatMemory};

fn bench_interpreter(c: &mut Criterion) {
    // A tight arithmetic loop: 10k iterations x 5 instructions.
    let program = voltboot_armlite::asm::assemble(
        r#"
        movz x0, #10000
        movz x1, #0
    loop:
        add  x1, x1, #3
        mul  x2, x1, x1
        sub  x0, x0, #1
        cbnz x0, loop
        hlt  #0
    "#,
    )
    .unwrap();
    c.bench_function("armlite_flat_memory_50k_instrs", |b| {
        b.iter(|| {
            let mut mem = FlatMemory::new(4096);
            mem.load(0, &program.bytes());
            let mut cpu = Cpu::new(0);
            let exit = cpu.run(&mut mem, 1_000_000);
            black_box((exit, cpu.retired()))
        });
    });
}

fn bench_through_caches(c: &mut Criterion) {
    c.bench_function("armlite_soc_cached_fill_16k", |b| {
        b.iter(|| {
            let mut soc = voltboot_soc::devices::raspberry_pi_4(0xBE);
            soc.power_on_all();
            soc.enable_caches(0);
            let exit = soc.run_program(
                0,
                &builders::fill_bytes(0x10_0000, 0x5A, 16 * 1024),
                0x8_0000,
                50_000_000,
            );
            black_box(exit)
        });
    });
}

fn bench_assembler(c: &mut Criterion) {
    let source = r#"
        movz x0, #0xFFFF, lsl #16
        movk x0, #0x1234
    again:
        sub  x0, x0, #1
        tbz  x0, #3, skip
        add  x1, x1, #1
    skip:
        cbnz x0, again
        ret
    "#;
    c.bench_function("armlite_assemble_small_source", |b| {
        b.iter(|| black_box(voltboot_armlite::asm::assemble(black_box(source)).unwrap().len()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3));
    targets = bench_interpreter, bench_through_caches, bench_assembler
}
criterion_main!(benches);
