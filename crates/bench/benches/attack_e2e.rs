//! End-to-end attack benches: Figure 7 (bare-metal cache theft), §7.2
//! (registers), and the key-theft scenario, plus the probe ablation
//! (bench supply vs weak source — the droop failure mode).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use voltboot::attack::{Extraction, VoltBootAttack};
use voltboot::experiments::{fig7, keytheft, sec72};
use voltboot_pdn::Probe;
use voltboot_soc::{devices, PowerCycleSpec};

/// Full-board power cycles through the batched engine: the warm case
/// reuses memoized die planes (every sweep's steady state), the cold
/// case pays plane building plus first-cycle resolution each iteration.
fn bench_power_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("soc_power_cycle");
    group.bench_function("pi4_warm_planes", |b| {
        let mut soc = devices::raspberry_pi_4(0xCC);
        soc.power_on_all();
        b.iter(|| {
            let report = soc.power_cycle(PowerCycleSpec::quick()).unwrap();
            black_box(report.retention_of("core0.l1d.data").is_some())
        });
    });
    group.bench_function("pi4_cold_planes", |b| {
        b.iter(|| {
            voltboot_sram::clear_plane_cache();
            let mut soc = devices::raspberry_pi_4(0xCC);
            soc.power_on_all();
            let report = soc.power_cycle(PowerCycleSpec::quick()).unwrap();
            black_box(report.retention_of("core0.l1d.data").is_some())
        });
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let result = fig7::run(0xF7);
    for d in &result.devices {
        let min = d.per_core_accuracy.iter().copied().fold(f64::INFINITY, f64::min);
        println!("Figure 7 {}: min per-core accuracy {:.2}% (paper 100%)", d.soc, min * 100.0);
    }
    c.bench_function("fig7_baremetal_attack_bcm2711", |b| {
        b.iter(|| {
            let mut soc = devices::raspberry_pi_4(0x77);
            soc.power_on_all();
            voltboot::workloads::baremetal_nop_fill(&mut soc).unwrap();
            let outcome = VoltBootAttack::new("TP15")
                .extraction(Extraction::Caches { cores: vec![0] })
                .execute(&mut soc)
                .unwrap();
            black_box(outcome.images.len())
        });
    });
}

fn bench_registers_and_keys(c: &mut Criterion) {
    let regs = sec72::run(0x72);
    for d in &regs.devices {
        println!(
            "Section 7.2 {}: {}/{} registers retained (paper: all)",
            d.soc, d.retained_registers, d.total_registers
        );
    }
    let theft = keytheft::run(0x17, keytheft::KeyHome::Registers);
    println!(
        "Key theft: voltboot recovers = {}, cold boot recovers = {}",
        theft.voltboot_recovers, theft.coldboot_recovers
    );
    c.bench_function("keytheft_registers_e2e", |b| {
        b.iter(|| black_box(keytheft::run(0x17, keytheft::KeyHome::Registers).voltboot_recovers));
    });
}

fn bench_probe_ablation(c: &mut Criterion) {
    // Design-choice ablation: the probe's current capability decides
    // whether the held rail rides through the core surge (paper §6).
    let mut group = c.benchmark_group("probe_ablation");
    for (label, probe) in
        [("bench_3a", Probe::bench_supply(0.0, 3.0)), ("weak_0a2", Probe::weak_source(0.0, 0.2))]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut soc = devices::raspberry_pi_4(0xAB);
                soc.power_on_all();
                voltboot::workloads::baremetal_nop_fill(&mut soc).unwrap();
                let before = soc.core(0).unwrap().l1i.way_image(0).unwrap();
                let outcome = VoltBootAttack::new("TP15")
                    .probe(probe)
                    .extraction(Extraction::Caches { cores: vec![0] })
                    .execute(&mut soc)
                    .unwrap();
                let got = &outcome.image("core0.l1i.way0").unwrap().bits;
                black_box(got.fractional_hamming(&before))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_power_cycle, bench_fig7, bench_registers_and_keys, bench_probe_ablation
}
criterion_main!(benches);
