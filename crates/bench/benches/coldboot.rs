//! Table 1 / Figure 3 regeneration bench: the cold-boot baseline across
//! temperatures. Prints the table rows alongside the timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use voltboot::experiments::{fig3, table1};

fn bench_table1(c: &mut Criterion) {
    // Print the rows once so the bench log carries the reproduction.
    let result = table1::run(0xBE7C);
    println!("\nTable 1 (cold boot on BCM2711 d-cache):");
    for row in &result.rows {
        println!(
            "  {:>6.1} C: mean error {:.2}% (paper ~50%), HD vs startup {:.3} (paper ~0.10)",
            row.celsius,
            row.mean_error * 100.0,
            row.hd_vs_startup
        );
    }

    let mut group = c.benchmark_group("table1_coldboot");
    for celsius in [0.0f64, -40.0] {
        group.bench_with_input(BenchmarkId::new("cold_boot", celsius as i64), &celsius, |b, _| {
            b.iter(|| black_box(fig3::run(0xF3)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_table1
}
criterion_main!(benches);
