//! §8 regeneration bench: the countermeasure matrix and the purge-timing
//! demonstration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use voltboot::experiments::sec8;

fn bench_sec8(c: &mut Criterion) {
    let result = sec8::run(0x8888);
    println!("\nSection 8 countermeasure matrix:");
    for row in &result.rows {
        println!(
            "  {:<36} attack {} (recovered {:.1}%)",
            row.countermeasure.name(),
            if row.attack_succeeded { "SUCCEEDS" } else { "stopped " },
            row.recovered_fraction * 100.0
        );
    }
    let (orderly, abrupt) = sec8::purge_timing_demo(0x8889);
    println!(
        "  power-down purge: orderly shutdown leaves {:.1}%, abrupt disconnect leaves {:.1}%",
        orderly * 100.0,
        abrupt * 100.0
    );

    c.bench_function("sec8_full_matrix", |b| {
        b.iter(|| black_box(sec8::run(0x8888).rows.len()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_sec8
}
criterion_main!(benches);
