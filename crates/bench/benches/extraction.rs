//! Table 4 / Figures 7-10 regeneration bench: extraction throughput and
//! accuracy. Prints the table rows alongside the timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use voltboot::attack::{extract_caches, Extraction, VoltBootAttack};
use voltboot::experiments::{fig9_10, table4};
use voltboot_soc::devices;

fn bench_table4(c: &mut Criterion) {
    let result = table4::run(0x7AB4, 1);
    println!("\nTable 4 (mean % extracted vs array size):");
    for &kb in &table4::ARRAY_KB {
        println!("  {kb:>2} KB: {:.2}%", result.mean_extracted(kb) * 100.0);
    }

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for kb in [4u32, 32] {
        group.bench_with_input(BenchmarkId::new("array_sweep", kb), &kb, |b, &_kb| {
            b.iter(|| black_box(table4::run(0x7AB4, 1).mean_extracted(32)));
        });
    }
    group.finish();
}

fn bench_ramindex_throughput(c: &mut Criterion) {
    // How fast the RAMINDEX beat loop dumps one core's caches.
    let mut soc = devices::raspberry_pi_4(0xEE);
    soc.power_on_all();
    soc.enable_caches(0);
    soc.run_program(0, &voltboot_armlite::program::builders::nop_sled(2048), 0x10000, 1_000_000);
    c.bench_function("ramindex_dump_one_core", |b| {
        b.iter(|| black_box(extract_caches(&soc, &[0]).unwrap().len()));
    });
}

fn bench_iram_dump(c: &mut Criterion) {
    let result = fig9_10::run(0x910);
    println!(
        "\nFigures 9/10: overall iRAM error {:.2}% (paper 2.7%), {} damaged windows",
        result.overall_error * 100.0,
        result.error_clusters.len()
    );
    c.bench_function("iram_jtag_attack_e2e", |b| {
        b.iter(|| {
            let mut soc = devices::imx53_qsb(0x99);
            soc.power_on_all();
            voltboot::workloads::iram_bitmap(&mut soc).unwrap();
            let outcome = VoltBootAttack::new("SH13")
                .extraction(Extraction::IramJtag)
                .execute(&mut soc)
                .unwrap();
            black_box(outcome.images.len())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(8));
    targets = bench_table4, bench_ramindex_throughput, bench_iram_dump
}
criterion_main!(benches);
