//! Microbenchmarks of the SRAM physics substrate: power-up sampling,
//! decay resolution, and the fast retention paths.
//!
//! Every resolution benchmark runs in both [`ResolutionMode`]s so the
//! batched engine's speedup over the scalar reference is directly
//! measurable from the criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use voltboot_sram::{ArrayConfig, OffEvent, ResolutionMode, SramArray, Temperature};

const MODES: [(ResolutionMode, &str); 2] =
    [(ResolutionMode::Scalar, "scalar"), (ResolutionMode::Batched, "batched")];

fn bench_power_on(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram_power_on");
    for kb in [4usize, 32, 128] {
        for (mode, name) in MODES {
            let id = BenchmarkId::new(format!("first_powerup/{name}"), kb);
            group.bench_with_input(id, &kb, |b, &kb| {
                b.iter(|| {
                    let mut s = SramArray::new(ArrayConfig::with_bytes("b", kb * 1024), 7);
                    s.power_on_with(mode).unwrap();
                    black_box(s.len_bytes())
                });
            });
        }
    }
    group.finish();
}

/// The headline case: repeated power cycles of a 1 MiB array with the
/// die planes already built (every sweep in the reproduction is this
/// shape). The array is constructed once outside the timing loop, so
/// plane building and the first cycle are excluded.
fn bench_warm_1mib(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram_warm_cycle_1mib");
    group.throughput(criterion::Throughput::Bytes(1 << 20));
    for (mode, name) in MODES {
        let mut s = SramArray::new(ArrayConfig::with_bytes("b", 1 << 20), 7);
        s.power_on_with(mode).unwrap();
        group.bench_function(BenchmarkId::new("partial_retention_minus110c", name), |b| {
            b.iter(|| {
                s.power_off(OffEvent::unpowered()).unwrap();
                s.elapse(Duration::from_millis(20), Temperature::from_celsius(-110.0));
                black_box(s.power_on_with(mode).unwrap().retained)
            });
        });
    }
    group.finish();
}

fn bench_cycle_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram_power_cycle");
    for (mode, name) in MODES {
        group.bench_function(BenchmarkId::new("held_fast_path_32k", name), |b| {
            b.iter(|| {
                let mut s = SramArray::new(ArrayConfig::with_bytes("b", 32 * 1024), 7);
                s.power_on_with(mode).unwrap();
                s.power_off(OffEvent::held(0.8)).unwrap();
                s.elapse(Duration::from_secs(60), Temperature::ROOM);
                black_box(s.power_on_with(mode).unwrap().retained)
            });
        });
        group.bench_function(BenchmarkId::new("unpowered_full_loss_32k", name), |b| {
            b.iter(|| {
                let mut s = SramArray::new(ArrayConfig::with_bytes("b", 32 * 1024), 7);
                s.power_on_with(mode).unwrap();
                s.power_off(OffEvent::unpowered()).unwrap();
                s.elapse(Duration::from_millis(500), Temperature::ROOM);
                black_box(s.power_on_with(mode).unwrap().lost)
            });
        });
        group.bench_function(BenchmarkId::new("partial_retention_minus110c_32k", name), |b| {
            b.iter(|| {
                let mut s = SramArray::new(ArrayConfig::with_bytes("b", 32 * 1024), 7);
                s.power_on_with(mode).unwrap();
                s.power_off(OffEvent::unpowered()).unwrap();
                s.elapse(Duration::from_millis(20), Temperature::from_celsius(-110.0));
                black_box(s.power_on_with(mode).unwrap().retained)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3));
    targets = bench_power_on, bench_warm_1mib, bench_cycle_paths
}
criterion_main!(benches);
