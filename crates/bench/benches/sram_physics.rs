//! Microbenchmarks of the SRAM physics substrate: power-up sampling,
//! decay resolution, and the fast retention paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use voltboot_sram::{ArrayConfig, OffEvent, SramArray, Temperature};

fn bench_power_on(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram_power_on");
    for kb in [4usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("first_powerup", kb), &kb, |b, &kb| {
            b.iter(|| {
                let mut s = SramArray::new(ArrayConfig::with_bytes("b", kb * 1024), 7);
                s.power_on().unwrap();
                black_box(s.len_bytes())
            });
        });
    }
    group.finish();
}

fn bench_cycle_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram_power_cycle");
    group.bench_function("held_fast_path_32k", |b| {
        b.iter(|| {
            let mut s = SramArray::new(ArrayConfig::with_bytes("b", 32 * 1024), 7);
            s.power_on().unwrap();
            s.power_off(OffEvent::held(0.8)).unwrap();
            s.elapse(Duration::from_secs(60), Temperature::ROOM);
            black_box(s.power_on().unwrap().retained)
        });
    });
    group.bench_function("unpowered_full_loss_32k", |b| {
        b.iter(|| {
            let mut s = SramArray::new(ArrayConfig::with_bytes("b", 32 * 1024), 7);
            s.power_on().unwrap();
            s.power_off(OffEvent::unpowered()).unwrap();
            s.elapse(Duration::from_millis(500), Temperature::ROOM);
            black_box(s.power_on().unwrap().lost)
        });
    });
    group.bench_function("partial_retention_minus110c_32k", |b| {
        b.iter(|| {
            let mut s = SramArray::new(ArrayConfig::with_bytes("b", 32 * 1024), 7);
            s.power_on().unwrap();
            s.power_off(OffEvent::unpowered()).unwrap();
            s.elapse(Duration::from_millis(20), Temperature::from_celsius(-110.0));
            black_box(s.power_on().unwrap().retained)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3));
    targets = bench_power_on, bench_cycle_paths
}
criterion_main!(benches);
