//! Ablation: attack accuracy vs the probe's current limit on a rail that
//! also feeds the CPU cluster — locating the paper's ">3 A supply"
//! requirement and the hold-voltage (DRV) curve behind it.

use voltboot::experiments::ablations;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Ablation", "probe current limit vs extraction accuracy (BCM2711)");
    let sweep = ablations::probe_current_sweep(seed());
    let mut table = TextTable::new(["Current limit", "Transient min voltage", "Accuracy"]);
    for p in &sweep {
        table.row([
            format!("{:.1} A", p.current_limit),
            format!("{:.3} V", p.transient_min_voltage),
            pct(p.accuracy),
        ]);
    }
    println!("{}", table.render());
    let three_amp = sweep.iter().find(|p| p.current_limit == 3.0).unwrap();
    compare("accuracy with the paper's 3 A supply", "100%", &pct(three_amp.accuracy));

    banner("Ablation", "held voltage vs retention (the DRV distribution)");
    let hv = ablations::hold_voltage_sweep(seed());
    let mut table = TextTable::new(["Held voltage", "Retention"]);
    for p in &hv {
        table.row([format!("{:.2} V", p.volts), pct(p.retention)]);
    }
    println!("{}", table.render());
    println!("The curve is the CDF of per-cell data-retention voltages: anything");
    println!("above ~0.55 V retains every cell, which is why holding the nominal");
    println!("rail (0.8-1.3 V on the evaluated boards) is always sufficient.");
}
