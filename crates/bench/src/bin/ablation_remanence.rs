//! Ablation: the SRAM remanence surface (retention vs temperature and
//! off-time), validating the calibration against the literature anchors
//! the paper cites in §3.

use voltboot::experiments::ablations;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Ablation", "SRAM remanence: retention vs temperature and off-time");
    let curve = ablations::remanence_curve(seed());

    let temps = [-150.0, -110.0, -90.0, -40.0, 0.0, 25.0];
    let times = [1u64, 5, 20, 100, 500];
    let mut table = TextTable::new(
        std::iter::once("off time".to_string())
            .chain(temps.iter().map(|t| format!("{t:.0} C")))
            .collect::<Vec<_>>(),
    );
    for &ms in &times {
        let mut row = vec![format!("{ms} ms")];
        for &t in &temps {
            let p = curve.iter().find(|p| p.celsius == t && p.off_ms == ms).expect("point");
            row.push(pct(p.retention));
        }
        table.row(row);
    }
    println!("{}", table.render());

    let anchor = curve.iter().find(|p| p.celsius == -110.0 && p.off_ms == 20).unwrap();
    compare("retention at -110 C / 20 ms", "~80% [lit.]", &pct(anchor.retention));
    let at40 = curve.iter().find(|p| p.celsius == -40.0 && p.off_ms == 100).unwrap();
    compare("retention at -40 C / 100 ms", "~0% [paper]", &pct(at40.retention));
}
