//! Quick, harness-free performance snapshot for trajectory tracking.
//!
//! Times the hot paths of `sram_physics` (repeated power cycles of a
//! 1 MiB array, scalar vs batched-warm) and `attack_e2e` (a full board
//! power cycle), then writes the numbers to `BENCH_sram.json` in the
//! current directory so successive PRs can compare. Also times the
//! telemetry layer — a disabled `Recorder` on the traced power-cycle
//! path must cost nothing measurable, and histogram recording must
//! stay cheap enough to live on hot paths — and writes
//! `BENCH_telemetry.json`.
//!
//! ```text
//! cargo run --release -p voltboot-bench --bin bench_snapshot
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use voltboot::telemetry::hist::Histogram;
use voltboot::telemetry::Recorder;
use voltboot_soc::{devices, PowerCycleSpec};
use voltboot_sram::{par, ArrayConfig, OffEvent, ResolutionMode, SramArray, Temperature};

/// Heap-allocation counter wrapped around the system allocator. Only
/// counts while [`ALLOC_COUNTING`] is set, so the rest of the benchmark
/// (and the runtime itself) costs nothing and pollutes nothing. The
/// count gates the zero-steady-state-allocation contract of the warm
/// resolution path: once the die planes are built and the arena is
/// primed, a power cycle must not touch the allocator at all.
struct CountingAlloc;

static ALLOC_COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter has no effect on
// the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ALLOC_COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ALLOC_COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ALLOC_COUNTING.load(Ordering::Relaxed) {
            ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const MIB: usize = 1 << 20;

/// Median wall time of `iters` runs of `f`.
fn time_median<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Minimum wall time of `iters` runs of `f` — the gate metric. On a
/// noisy shared VM the median wobbles ±40%; the minimum is the run the
/// machine didn't interrupt, which is what the code's speed actually is.
fn time_min<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// One warm power cycle (partial retention at −110 °C / 20 ms — the
/// general resolution path, no fast-path shortcuts).
fn cycle(s: &mut SramArray, mode: ResolutionMode) {
    s.power_off(OffEvent::unpowered()).unwrap();
    s.elapse(Duration::from_millis(20), Temperature::from_celsius(-110.0));
    black_box(s.power_on_with(mode).unwrap().retained);
}

/// `cycle` through the instrumented entry point instead; with a
/// disabled recorder this must cost the same as `cycle`.
fn cycle_traced(s: &mut SramArray, mode: ResolutionMode, rec: &Recorder) {
    s.power_off(OffEvent::unpowered()).unwrap();
    s.elapse(Duration::from_millis(20), Temperature::from_celsius(-110.0));
    black_box(s.power_on_traced(mode, rec).unwrap().retained);
}

fn main() {
    // -- sram_physics hot path: repeated 1 MiB power cycles ------------
    let mut scalar = SramArray::new(ArrayConfig::with_bytes("snap", MIB), 7);
    scalar.power_on_with(ResolutionMode::Scalar).unwrap();
    let t_scalar = time_median(5, || cycle(&mut scalar, ResolutionMode::Scalar));

    let mut batched = SramArray::new(ArrayConfig::with_bytes("snap", MIB), 7);
    // First batched cycle builds the die planes; the timed loop below is
    // the plane-cache-warm steady state every sweep runs in.
    batched.power_on_with(ResolutionMode::Batched).unwrap();
    cycle(&mut batched, ResolutionMode::Batched);
    let t_batched = time_median(15, || cycle(&mut batched, ResolutionMode::Batched));
    let t_batched_min = time_min(15, || cycle(&mut batched, ResolutionMode::Batched));

    let mib_per_s = |t: Duration| 1.0 / t.as_secs_f64();
    let batched_gib_per_s = 1.0 / 1024.0 / t_batched_min.as_secs_f64();
    let speedup = t_scalar.as_secs_f64() / t_batched.as_secs_f64();

    // -- zero-steady-state-allocation gate -----------------------------
    // The warm single-threaded cycle must never touch the allocator:
    // planes are memoized, the image resolves in place, and the report
    // shares its name through an `Arc<str>`. Measured under a budget of
    // one so the sharded path's scoped threads (which do allocate, in
    // `std`, per spawn) don't obscure the engine's own behaviour.
    let steady_state_allocs = par::with_budget(1, || {
        cycle(&mut batched, ResolutionMode::Batched); // settle the budgeted path
        ALLOC_COUNT.store(0, Ordering::Relaxed);
        ALLOC_COUNTING.store(true, Ordering::Relaxed);
        for _ in 0..10 {
            cycle(&mut batched, ResolutionMode::Batched);
        }
        ALLOC_COUNTING.store(false, Ordering::Relaxed);
        ALLOC_COUNT.load(Ordering::Relaxed)
    });

    // -- attack_e2e hot path: full-board warm power cycle --------------
    let mut soc = devices::raspberry_pi_4(0xCC);
    soc.power_on_all();
    let _ = soc.power_cycle(PowerCycleSpec::quick()).unwrap();
    let t_soc = time_median(9, || {
        black_box(soc.power_cycle(PowerCycleSpec::quick()).unwrap().retention.len());
    });

    let threads = voltboot_sram::par::thread_count();
    // What the batched engine actually used for this array, not the
    // pool's nominal size: small arrays and single-thread pools shard
    // less than `threads` suggests.
    let workers = voltboot_sram::engine::resolution_workers(MIB * 8);
    println!("1 MiB warm power cycle, scalar : {t_scalar:?} ({:.1} MiB/s)", mib_per_s(t_scalar));
    println!("1 MiB warm power cycle, batched: {t_batched:?} ({:.1} MiB/s)", mib_per_s(t_batched));
    println!("batched best-of-15             : {t_batched_min:?} ({batched_gib_per_s:.3} GiB/s)");
    println!("speedup (batched vs scalar)    : {speedup:.1}x");
    println!("steady-state allocations       : {steady_state_allocs} per 10 warm cycles");
    println!("pi4 full-board warm power cycle: {t_soc:?}");
    println!("threads: {threads} (pool), resolution workers used: {workers}");

    // Hand-rolled JSON: the workspace intentionally has no serde_json.
    let json = format!(
        "{{\n  \"bench\": \"sram\",\n  \"array_bytes\": {MIB},\n  \
         \"scalar_warm_cycle_ms\": {:.3},\n  \"batched_warm_cycle_ms\": {:.3},\n  \
         \"batched_warm_cycle_min_ms\": {:.3},\n  \
         \"scalar_mib_per_s\": {:.2},\n  \"batched_mib_per_s\": {:.2},\n  \
         \"batched_gib_per_s\": {batched_gib_per_s:.3},\n  \
         \"steady_state_allocs\": {steady_state_allocs},\n  \
         \"speedup\": {:.2},\n  \"pi4_power_cycle_ms\": {:.3},\n  \"threads\": {workers}\n}}\n",
        t_scalar.as_secs_f64() * 1e3,
        t_batched.as_secs_f64() * 1e3,
        t_batched_min.as_secs_f64() * 1e3,
        mib_per_s(t_scalar),
        mib_per_s(t_batched),
        speedup,
        t_soc.as_secs_f64() * 1e3,
    );
    std::fs::write("BENCH_sram.json", &json).expect("write BENCH_sram.json");
    println!("wrote BENCH_sram.json");

    // -- telemetry: disabled recorders must be free --------------------
    // Same plane-cache-warm batched cycle as above, but entered through
    // the instrumented path with a disabled recorder. The two medians
    // must be indistinguishable; a generous 50% gate keeps machine
    // noise from flapping CI while still catching a hot-path `match`
    // turning into real work.
    let disabled = Recorder::disabled();
    cycle_traced(&mut batched, ResolutionMode::Batched, &disabled);
    let t_plain = time_median(15, || cycle(&mut batched, ResolutionMode::Batched));
    let t_disabled =
        time_median(15, || cycle_traced(&mut batched, ResolutionMode::Batched, &disabled));
    let overhead_pct = (t_disabled.as_secs_f64() / t_plain.as_secs_f64() - 1.0) * 100.0;

    // -- telemetry: histogram record/query throughput ------------------
    const HIST_OPS: u64 = 1_000_000;
    let mut hist = Histogram::new();
    let t_record = time_median(5, || {
        let mut h = Histogram::new();
        for i in 0..HIST_OPS {
            // Spread across many buckets: low singletons through
            // multi-millisecond log buckets.
            h.record(black_box(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20));
        }
        hist = h;
    });
    let t_query = time_median(5, || {
        for _ in 0..1_000 {
            black_box((hist.p50(), hist.p90(), hist.p99()));
        }
    });
    let record_mops = HIST_OPS as f64 / t_record.as_secs_f64() / 1e6;
    let query_kops = 3_000.0 / t_query.as_secs_f64() / 1e3;

    // Recorder-enabled histogram path (mutex + name lookup included).
    let rec = Recorder::new();
    let t_rec_hist = time_median(5, || {
        for i in 0..100_000u64 {
            rec.record("bench.hist", black_box(i & 0xFFFF));
        }
    });
    let rec_hist_mops = 100_000.0 / t_rec_hist.as_secs_f64() / 1e6;

    println!("disabled-recorder overhead     : {overhead_pct:+.1}% (gate: +50%)");
    println!("histogram record               : {record_mops:.1} Mops/s");
    println!("histogram quantile query       : {query_kops:.1} kops/s");
    println!("recorder histogram record      : {rec_hist_mops:.2} Mops/s");

    let telemetry_json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \
         \"disabled_recorder_overhead_pct\": {overhead_pct:.2},\n  \
         \"hist_record_mops\": {record_mops:.2},\n  \
         \"hist_query_kops\": {query_kops:.2},\n  \
         \"recorder_hist_record_mops\": {rec_hist_mops:.2}\n}}\n"
    );
    std::fs::write("BENCH_telemetry.json", &telemetry_json).expect("write BENCH_telemetry.json");
    println!("wrote BENCH_telemetry.json");

    let mut failed = false;
    if overhead_pct > 50.0 {
        eprintln!(
            "BENCH FAIL: disabled recorder costs {overhead_pct:.1}% on the warm power-cycle \
             path; the disabled path must stay free"
        );
        failed = true;
    }
    // 0.195 GiB/s ≈ a 5 ms warm 1 MiB cycle — 5x the pre-bit-slicing
    // engine (30 ms). Gated on the best-of-N minimum so shared-VM noise
    // (±40% on the median here) cannot flap CI.
    if batched_gib_per_s < 0.195 {
        eprintln!(
            "BENCH FAIL: warm batched cycle at {batched_gib_per_s:.3} GiB/s \
             (best-of-15 {t_batched_min:?}); the bit-sliced engine floor is 0.195 GiB/s"
        );
        failed = true;
    }
    if steady_state_allocs != 0 {
        eprintln!(
            "BENCH FAIL: {steady_state_allocs} heap allocations across 10 warm power cycles; \
             the plane-cache-warm resolution path must not allocate"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
