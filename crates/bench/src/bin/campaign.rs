//! Attack-campaign replay under fault-rate sweeps.
//!
//! Runs the Volt Boot attack N times per fault rate against a Raspberry
//! Pi 4 victim, with the campaign runner's retry/backoff and the seeded
//! fault plan deciding which repetitions glitch. Writes the full
//! machine-readable report (per-sweep summaries, per-rep records,
//! per-step timings and counters) to `BENCH_campaign.json` next to
//! `BENCH_sram.json`.
//!
//! ```text
//! cargo run --release -p voltboot-bench --bin campaign -- [--reps N] [--smoke]
//! ```
//!
//! Everything is virtual-clock deterministic: two runs with the same
//! `VOLTBOOT_SEED` / `VOLTBOOT_FAULT_SEED` produce byte-identical
//! reports. `--smoke` runs a small fixed-seed campaign twice, fails the
//! process on any byte drift or schema regression, and skips the file
//! write — the CI gate.

use voltboot::attack::VoltBootAttack;
use voltboot::campaign::{Campaign, RepStatus, RetryPolicy};
use voltboot::fault::{FaultPlan, FaultRates};
use voltboot::telemetry::json::Value;
use voltboot_armlite::program::builders;
use voltboot_soc::{devices, Soc};

/// The fault rates the sweep replays the attack under.
const SWEEP_RATES: [f64; 3] = [0.0, 0.05, 0.2];

fn victim(die_seed: u64) -> impl FnMut(u64) -> Soc {
    move |rep| {
        let mut soc = devices::raspberry_pi_4(die_seed ^ rep.wrapping_mul(0x9E37_79B9));
        soc.power_on_all();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(128), 0x10000, 100_000);
        soc
    }
}

/// Runs the full sweep and renders the report document.
fn sweep_report(die_seed: u64, fault_seed: u64, reps: u64) -> String {
    let mut sweeps = Vec::new();
    for (i, &rate) in SWEEP_RATES.iter().enumerate() {
        let plan = FaultPlan::new(fault_seed.wrapping_add(i as u64), FaultRates::uniform(rate));
        let campaign = Campaign::new(VoltBootAttack::new("TP15"), plan, reps)
            .retry(RetryPolicy { max_attempts: 3, initial_backoff_ns: 50_000_000 });
        let result = campaign.run(victim(die_seed));
        println!(
            "rate {rate:>4}: {} success / {} degraded / {} failed over {reps} reps",
            result.count(RepStatus::Success),
            result.count(RepStatus::Degraded),
            result.count(RepStatus::Failed),
        );
        sweeps.push(Value::object(vec![
            ("fault_rate", Value::from(rate)),
            ("result", result.to_value()),
        ]));
    }
    Value::object(vec![
        ("bench", Value::from("campaign")),
        ("die_seed", Value::from(die_seed)),
        ("fault_seed", Value::from(fault_seed)),
        ("reps_per_rate", Value::from(reps)),
        ("sweeps", Value::Array(sweeps)),
    ])
    .render_pretty()
}

/// Keys any schema-compatible report must contain; CI fails on drift.
const SCHEMA_KEYS: [&str; 10] = [
    "\"bench\"",
    "\"fault_seed\"",
    "\"sweeps\"",
    "\"fault_rate\"",
    "\"summary\"",
    "\"records\"",
    "\"telemetry\"",
    "\"counters\"",
    "\"timings\"",
    "\"clock_ns\"",
];

fn smoke() -> i32 {
    // Fixed seeds: the smoke gate checks reproducibility and schema, not
    // the user's environment.
    let (die_seed, fault_seed, reps) = (0x0020_22A5_B007, 0x000F_A017_C0DE, 4);
    let a = sweep_report(die_seed, fault_seed, reps);
    let b = sweep_report(die_seed, fault_seed, reps);
    if a != b {
        eprintln!("SMOKE FAIL: same-seed campaign reports differ byte-wise");
        return 1;
    }
    for key in SCHEMA_KEYS {
        if !a.contains(key) {
            eprintln!("SMOKE FAIL: report schema is missing {key}");
            return 1;
        }
    }
    println!("smoke ok: {} bytes, byte-identical across runs, schema intact", a.len());
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let mut reps: u64 = 100;
    if let Some(i) = args.iter().position(|a| a == "--reps") {
        reps = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("--reps needs an integer, got {:?}", args.get(i + 1)));
    }

    voltboot_bench::banner("CAMPAIGN", "attack replay under fault-rate sweeps");
    let report = sweep_report(voltboot_bench::seed(), voltboot_bench::fault_seed(), reps);
    std::fs::write("BENCH_campaign.json", &report).expect("write BENCH_campaign.json");
    println!("wrote BENCH_campaign.json ({} bytes)", report.len());
}
