//! Attack-campaign replay under fault-rate sweeps.
//!
//! Runs the Volt Boot attack N times per fault rate against a Raspberry
//! Pi 4 victim, with the campaign runner's retry/backoff and the seeded
//! fault plan deciding which repetitions glitch. Writes the full
//! machine-readable report (per-sweep summaries, per-rep records,
//! per-step timings and counters) to `BENCH_campaign.json` next to
//! `BENCH_sram.json`.
//!
//! ```text
//! cargo run --release -p voltboot-bench --bin campaign -- \
//!     [--reps N] [--passes N] [--threads N] [--deadline-ns N] \
//!     [--checkpoint PATH [--resume]] [--trace-out STEM] \
//!     [--smoke] [--resume-smoke]
//! ```
//!
//! * `--passes N` reads each SRAM unit N times and majority-votes the
//!   bits (odd, capped; see `voltboot::recover`).
//! * `--threads N` shards each campaign's repetitions across N worker
//!   threads; the report stays byte-identical to a single-thread run
//!   (only the measured `reps_per_s` changes).
//! * `--deadline-ns N` bounds each repetition's retry loop on the
//!   virtual clock; overruns are recorded as `timed_out`.
//! * `--checkpoint PATH` saves an integrity-sealed checkpoint after
//!   every repetition (one file per sweep rate, `PATH.rateI`); with
//!   `--resume`, a killed run continues from the checkpoints and the
//!   final report is byte-identical to an uninterrupted run.
//! * `--trace-out STEM` additionally writes the merged telemetry of
//!   every sweep as `STEM.trace.json` (Chrome `trace_event` — open in
//!   `chrome://tracing`), `STEM.folded` (collapsed stacks for
//!   flamegraphs), and `STEM.waves.csv` (PDN rail waveforms). All
//!   three are deterministic: byte-identical for equal seeds at any
//!   `--threads`.
//!
//! Everything is virtual-clock deterministic: two runs with the same
//! `VOLTBOOT_SEED` / `VOLTBOOT_FAULT_SEED` produce byte-identical
//! reports — whatever `--threads` says. `--smoke` runs a small
//! fixed-seed campaign sequentially and again under `--threads`, fails
//! the process on any byte drift or schema regression, and skips the
//! file write — the CI gate. `--resume-smoke` is the companion gate for
//! the checkpoint path: it kills a fixed-seed campaign halfway under
//! `--threads`, resumes it under a *different* thread count, and fails
//! on any byte drift against the uninterrupted report.

use std::path::{Path, PathBuf};
use voltboot::attack::VoltBootAttack;
use voltboot::campaign::{Campaign, RepStatus, RetryPolicy};
use voltboot::fault::{FaultPlan, FaultRates};
use voltboot::telemetry::json::Value;
use voltboot::telemetry::{export, Recorder};
use voltboot_armlite::program::builders;
use voltboot_soc::{devices, Soc};

/// The fault rates the sweep replays the attack under.
const SWEEP_RATES: [f64; 3] = [0.0, 0.05, 0.2];

fn victim(die_seed: u64) -> impl Fn(u64) -> Soc + Sync {
    move |rep| {
        let mut soc = devices::raspberry_pi_4(die_seed ^ rep.wrapping_mul(0x9E37_79B9));
        soc.power_on_all();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(128), 0x10000, 100_000);
        soc
    }
}

/// Everything a sweep run is parameterised on.
struct SweepConfig {
    die_seed: u64,
    fault_seed: u64,
    reps: u64,
    passes: u32,
    /// Worker threads per campaign (1 = the sequential runner).
    threads: usize,
    deadline_ns: Option<u64>,
    /// Checkpoint file stem and whether to resume from existing files.
    checkpoint: Option<(PathBuf, bool)>,
}

fn build_campaign(cfg: &SweepConfig, sweep: usize, rate: f64) -> Campaign {
    let plan = FaultPlan::new(cfg.fault_seed.wrapping_add(sweep as u64), FaultRates::uniform(rate));
    let mut campaign =
        Campaign::new(VoltBootAttack::new("TP15").passes(cfg.passes), plan, cfg.reps)
            .retry(RetryPolicy { max_attempts: 3, initial_backoff_ns: 50_000_000 });
    if let Some(deadline) = cfg.deadline_ns {
        campaign = campaign.deadline_ns(deadline);
    }
    campaign
}

/// Per-sweep checkpoint file: one campaign per rate, one file per campaign.
fn sweep_checkpoint(stem: &Path, sweep: usize) -> PathBuf {
    let mut name = stem.as_os_str().to_os_string();
    name.push(format!(".rate{sweep}"));
    PathBuf::from(name)
}

/// Runs the full sweep and builds the report document plus a merged
/// trace recorder (every sweep's telemetry absorbed in sweep order,
/// ready for `--trace-out`). Both are deterministic (byte-identical
/// for equal seeds, any thread count); wall-clock scaling stats are
/// appended by `main` outside the document, behind the
/// `# nondeterministic` trailer.
fn sweep_document(cfg: &SweepConfig) -> (Value, Recorder) {
    let trace = Recorder::new();
    let mut sweeps = Vec::new();
    for (i, &rate) in SWEEP_RATES.iter().enumerate() {
        let campaign = build_campaign(cfg, i, rate);
        // The parallel entry points run the sequential path at 1 thread,
        // so every configuration goes through one dispatch.
        let result = match &cfg.checkpoint {
            None => campaign.run_parallel(cfg.threads, victim(cfg.die_seed)),
            Some((stem, resume)) => {
                let path = sweep_checkpoint(stem, i);
                if *resume && path.exists() {
                    campaign
                        .resume_parallel(cfg.threads, &path, victim(cfg.die_seed))
                        .unwrap_or_else(|e| panic!("resume from {}: {e}", path.display()))
                } else {
                    campaign
                        .run_checkpointed_parallel(cfg.threads, &path, victim(cfg.die_seed))
                        .unwrap_or_else(|e| panic!("checkpoint to {}: {e}", path.display()))
                }
            }
        };
        let confidence = result.confidence_total();
        println!(
            "rate {rate:>4}: {} success / {} degraded / {} failed / {} timed out over {} reps \
             ({} bits repaired, {} unresolved)",
            result.count(RepStatus::Success),
            result.count(RepStatus::Degraded),
            result.count(RepStatus::Failed),
            result.count(RepStatus::TimedOut),
            cfg.reps,
            confidence.repaired,
            confidence.unresolved,
        );
        trace.absorb(&result.recorder);
        sweeps.push(Value::object(vec![
            ("fault_rate", Value::from(rate)),
            ("result", result.to_value()),
        ]));
    }
    let doc = Value::object(vec![
        ("bench", Value::from("campaign")),
        ("die_seed", Value::from(cfg.die_seed)),
        ("fault_seed", Value::from(cfg.fault_seed)),
        ("reps_per_rate", Value::from(cfg.reps)),
        ("passes", Value::from(u64::from(cfg.passes))),
        ("sweeps", Value::Array(sweeps)),
    ]);
    (doc, trace)
}

/// The rendered deterministic report (the smoke gates compare this
/// byte-wise).
fn sweep_report(cfg: &SweepConfig) -> String {
    sweep_document(cfg).0.render_pretty()
}

/// Appends wall-clock (nondeterministic) stats to a deterministic
/// report as a clearly separated trailer: the deterministic bytes come
/// first, unchanged, then a `# nondeterministic` marker line, then the
/// stats as one compact JSON line. Anything diffing reports for
/// byte-identity can split on the marker.
fn with_nondeterministic_trailer(deterministic: &str, stats: Value) -> String {
    let mut out = String::from(deterministic);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("# nondeterministic\n");
    out.push_str(&stats.render());
    out.push('\n');
    out
}

/// Writes the merged trace recorder's three export views next to `stem`.
fn write_trace_exports(stem: &str, trace: &Recorder) {
    let write = |ext: &str, contents: String| {
        let path = format!("{stem}{ext}");
        std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    };
    write(".trace.json", export::chrome_trace(trace).render_pretty());
    write(".folded", export::folded(trace));
    write(".waves.csv", export::waveforms_csv(trace));
}

/// Keys any schema-compatible report must contain; CI fails on drift.
const SCHEMA_KEYS: [&str; 18] = [
    "\"bench\"",
    "\"fault_seed\"",
    "\"passes\"",
    "\"sweeps\"",
    "\"fault_rate\"",
    "\"summary\"",
    "\"timed_out\"",
    "\"bits_repaired\"",
    "\"records\"",
    "\"confidence\"",
    "\"telemetry\"",
    "\"counters\"",
    "\"timings\"",
    "\"clock_ns\"",
    "\"gauges\"",
    "\"hists\"",
    "\"spans\"",
    "\"waves\"",
];

/// Fixed seeds for the smoke gates: they check reproducibility and
/// schema, not the user's environment.
const SMOKE_SEEDS: (u64, u64) = (0x0020_22A5_B007, 0x000F_A017_C0DE);

fn smoke(threads: usize) -> i32 {
    let cfg = SweepConfig {
        die_seed: SMOKE_SEEDS.0,
        fault_seed: SMOKE_SEEDS.1,
        reps: 4,
        passes: 3,
        threads: 1,
        deadline_ns: None,
        checkpoint: None,
    };
    let a = sweep_report(&cfg);
    // The second run re-runs under `--threads`: the byte-compare gates
    // both plain reproducibility and determinism under parallelism.
    let b = sweep_report(&SweepConfig { threads, ..cfg });
    if a != b {
        eprintln!(
            "SMOKE FAIL: same-seed campaign reports differ byte-wise \
             (sequential vs {threads} threads)"
        );
        return 1;
    }
    for key in SCHEMA_KEYS {
        if !a.contains(key) {
            eprintln!("SMOKE FAIL: report schema is missing {key}");
            return 1;
        }
    }
    println!(
        "smoke ok: {} bytes, byte-identical across runs (1 vs {threads} threads), schema intact",
        a.len()
    );
    0
}

/// Kill-and-resume determinism gate: run a fixed-seed campaign to
/// completion, then run the same campaign again but stop it after half
/// the repetitions (simulating a kill) under `--threads`, resume from
/// the checkpoint under a *different* thread count, and demand the
/// resumed report byte-match the uninterrupted one — checkpoints must
/// compose across thread counts.
fn resume_smoke(threads: usize) -> i32 {
    let (die_seed, fault_seed, reps, kill_at) = (SMOKE_SEEDS.0, SMOKE_SEEDS.1, 6, 3);
    // Crossing thread counts is the point of the gate; with
    // `--threads 1` the resume side exercises the parallel runner.
    let resume_threads = if threads > 1 { 1 } else { 2 };
    let plan = FaultPlan::new(fault_seed, FaultRates::uniform(0.2));
    let campaign = Campaign::new(VoltBootAttack::new("TP15").passes(3), plan, reps)
        .retry(RetryPolicy { max_attempts: 3, initial_backoff_ns: 50_000_000 });

    let uninterrupted = campaign.run(victim(die_seed)).to_json();

    let path = std::env::temp_dir()
        .join(format!("voltboot_resume_smoke_{}.checkpoint", std::process::id()));
    if let Err(e) = campaign.run_partial_parallel(threads, kill_at, &path, victim(die_seed)) {
        eprintln!("RESUME SMOKE FAIL: partial run did not checkpoint: {e}");
        return 1;
    }
    let resumed = match campaign.resume_parallel(resume_threads, &path, victim(die_seed)) {
        Ok(result) => result.to_json(),
        Err(e) => {
            eprintln!("RESUME SMOKE FAIL: resume from {}: {e}", path.display());
            return 1;
        }
    };
    let _ = std::fs::remove_file(&path);

    if resumed != uninterrupted {
        eprintln!(
            "RESUME SMOKE FAIL: report killed at rep {kill_at} under {threads} threads and \
             resumed under {resume_threads} differs from the uninterrupted run ({} vs {} bytes)",
            resumed.len(),
            uninterrupted.len()
        );
        return 1;
    }
    println!(
        "resume smoke ok: killed at rep {kill_at}/{reps} under {threads} threads, resumed under \
         {resume_threads}, report is byte-identical ({} bytes)",
        resumed.len()
    );
    0
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{flag} needs a value")).clone())
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{flag} needs an integer, got {v:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = parsed_flag(&args, "--threads").unwrap_or(1).max(1);
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke(threads.max(2)));
    }
    if args.iter().any(|a| a == "--resume-smoke") {
        std::process::exit(resume_smoke(threads));
    }
    let cfg = SweepConfig {
        die_seed: voltboot_bench::seed(),
        fault_seed: voltboot_bench::fault_seed(),
        reps: parsed_flag(&args, "--reps").unwrap_or(100),
        passes: parsed_flag(&args, "--passes").unwrap_or(1),
        threads,
        deadline_ns: parsed_flag(&args, "--deadline-ns"),
        checkpoint: flag_value(&args, "--checkpoint")
            .map(|p| (PathBuf::from(p), args.iter().any(|a| a == "--resume"))),
    };

    voltboot_bench::banner("CAMPAIGN", "attack replay under fault-rate sweeps");
    let started = std::time::Instant::now();
    let (doc, trace) = sweep_document(&cfg);
    let elapsed_s = started.elapsed().as_secs_f64();
    if let Some(stem) = flag_value(&args, "--trace-out") {
        write_trace_exports(&stem, &trace);
    }
    // Wall-clock scaling stats ride outside the deterministic document,
    // behind the `# nondeterministic` trailer: everything above the
    // marker stays byte-identical across thread counts, the measured
    // rep throughput below it is what `--threads` buys.
    let total_reps = cfg.reps * SWEEP_RATES.len() as u64;
    let reps_per_s = if elapsed_s > 0.0 { total_reps as f64 / elapsed_s } else { 0.0 };
    let stats = Value::object(vec![
        ("threads", Value::from(cfg.threads)),
        ("elapsed_s", Value::from(elapsed_s)),
        ("reps_per_s", Value::from(reps_per_s)),
    ]);
    let report = with_nondeterministic_trailer(&doc.render_pretty(), stats);
    std::fs::write("BENCH_campaign.json", &report).expect("write BENCH_campaign.json");
    println!(
        "wrote BENCH_campaign.json ({} bytes): {total_reps} reps on {} threads in {elapsed_s:.2} s \
         ({reps_per_s:.2} reps/s)",
        report.len(),
        cfg.threads
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailer_leaves_the_deterministic_prefix_unchanged() {
        let deterministic = "{\n  \"bench\": \"campaign\"\n}";
        let stats =
            Value::object(vec![("threads", Value::from(4u64)), ("elapsed_s", Value::from(1.5))]);
        let report = with_nondeterministic_trailer(deterministic, stats);
        assert!(report.starts_with(deterministic));
        let (prefix, trailer) = report
            .split_once("# nondeterministic\n")
            .expect("report carries the nondeterministic marker");
        assert_eq!(prefix, format!("{deterministic}\n"));
        assert_eq!(trailer, "{\"threads\":4,\"elapsed_s\":1.5}\n");
    }

    #[test]
    fn trailer_does_not_double_terminal_newlines() {
        let report =
            with_nondeterministic_trailer("{}\n", Value::object(vec![("x", Value::from(1u64))]));
        assert_eq!(report, "{}\n# nondeterministic\n{\"x\":1}\n");
    }
}
