//! Regenerates the §2–3 background comparison: classic cold boot works
//! on DRAM (directional decay + repair) and fails on on-chip SRAM.

use voltboot::experiments::dram_baseline;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, seed};

fn main() {
    banner("Background (2-3)", "cold boot on DRAM vs on-chip SRAM");
    let result = dram_baseline::run(seed());

    let mut table = TextTable::new([
        "Temperature",
        "Off time",
        "DRAM decay (schedule window)",
        "DRAM key recovered",
        "Repaired bits",
        "SRAM key recovered",
    ]);
    for row in &result.rows {
        table.row([
            format!("{:.0} C", row.celsius),
            format!("{} s", row.off_seconds),
            pct(row.dram_decay),
            if row.dram_key_recovered { "YES" } else { "no" }.to_string(),
            row.repaired_bits.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            if row.sram_key_recovered { "YES" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("DRAM decays toward a known ground state, so a chilled transplant's few");
    println!("errors are correctable; SRAM is bistable and yields nothing — which is");
    println!("why keys moved on-chip, and why Volt Boot matters.");
}
