//! Regenerates Figure 10: Hamming distance between the staged iRAM image
//! and the post-attack dump, at 512-bit granularity.

use voltboot::experiments::fig9_10;
use voltboot::report::pct;
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Figure 10", "Hamming distance across the iRAM (512-bit windows)");
    let result = fig9_10::run(seed());

    compare("overall error", "2.7%", &pct(result.overall_error));
    println!(
        "  windows with errors: {} of {}",
        result.error_clusters.len(),
        result.hamming_series.len()
    );
    println!(
        "  error cluster windows: first block {:?}..{:?}, tail block from {:?}",
        result.error_clusters.first(),
        result.error_clusters.iter().take_while(|&&w| w < 1000).last(),
        result.error_clusters.iter().find(|&&w| w >= 1000)
    );

    // A text plot: one row per 32 windows, column height = max HD.
    println!("\nHD series (each char = 32 windows; '#' = heavy damage):");
    let mut line = String::new();
    for chunk in result.hamming_series.chunks(32) {
        let max = *chunk.iter().max().unwrap_or(&0);
        line.push(match max {
            0 => '_',
            1..=63 => '.',
            64..=191 => 'o',
            _ => '#',
        });
    }
    println!("{line}");
    println!("\nThe damage clusters at the start (boot-ROM scratchpad 0x83C..0x18CC)");
    println!("and at the very end (boot stack); everything between is error-free.");
}
