//! Regenerates Figure 3: a d-cache way image after a cold boot at
//! −40 °C. Writes `fig3_dcache.pbm` and prints an ASCII thumbnail.

use voltboot::analysis;
use voltboot::experiments::fig3;
use voltboot::report::pct;
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Figure 3", "d-cache snapshot after cold boot at -40 C");
    let result = fig3::run(seed());

    compare("ones fraction (random state ~50%)", "~50%", &pct(result.ones_fraction));
    compare("error vs stored pattern", "~50%", &pct(result.error_vs_stored));

    let pbm = fig3::render_pbm(&result);
    let path = "fig3_dcache.pbm";
    if std::fs::write(path, &pbm).is_ok() {
        println!("\nwrote {path} (512x256, WAY0 = 16 KB as in the paper's caption)");
    }
    println!("\nASCII thumbnail (uniform speckle = power-up state):\n");
    println!("{}", analysis::ascii_thumbnail(&result.way_image, 64, 16));
}
