//! Regenerates Figure 7: Volt Boot against bare-metal NOP victims on the
//! BCM2711 and BCM2837. Writes per-device PBM snapshots.

use voltboot::analysis;
use voltboot::experiments::fig7;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Figure 7", "i-cache retention for bare-metal victims (Volt Boot)");
    let result = fig7::run(seed());

    let mut table =
        TextTable::new(["SoC", "Core 0", "Core 1", "Core 2", "Core 3", "NOP words (c0/w0)"]);
    for d in &result.devices {
        let mut cells: Vec<String> = vec![d.soc.clone()];
        cells.extend(d.per_core_accuracy.iter().map(|&a| pct(a)));
        cells.push(d.nop_words_core0.to_string());
        table.row(cells);
    }
    println!("{}", table.render());

    for d in &result.devices {
        compare(
            &format!("{} retention accuracy (all cores)", d.soc),
            "100%",
            &pct(d.per_core_accuracy.iter().copied().fold(f64::INFINITY, f64::min)),
        );
        let path = format!("fig7_{}_icache.pbm", d.soc.to_lowercase());
        if std::fs::write(&path, analysis::to_pbm(&d.way_image_core0, 512)).is_ok() {
            println!("  wrote {path}");
        }
    }
    println!("\nCompare with Figure 3: the same memory after a cold boot is speckle;");
    println!("after Volt Boot it is the victim's machine code, bit-exact.");
}
