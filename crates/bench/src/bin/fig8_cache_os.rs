//! Regenerates Figure 8: Volt Boot against a 0xAA-pattern application
//! under a running OS.

use voltboot::analysis;
use voltboot::experiments::fig8;
use voltboot::report::pct;
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Figure 8", "cache snapshots with an OS running (0xAA victim app)");
    let result = fig8::run(seed());

    compare("victim instructions found in i-cache", "all", &pct(result.instruction_fraction));
    println!("  0xAA bytes in extracted d-cache way 0: {}", result.pattern_bytes);

    for (name, bits) in
        [("fig8_dcache.pbm", &result.dcache_way), ("fig8_icache.pbm", &result.icache_way)]
    {
        if std::fs::write(name, analysis::to_pbm(bits, 512)).is_ok() {
            println!("  wrote {name}");
        }
    }
    println!("\nD-cache thumbnail (banded regions = the 0xAA structure):\n");
    println!("{}", analysis::ascii_thumbnail(&result.dcache_way, 64, 16));
}
