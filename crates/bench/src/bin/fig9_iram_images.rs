//! Regenerates Figure 9: the four 32 KB iRAM quadrants extracted from an
//! i.MX535 over JTAG. Writes one PBM per quadrant.

use voltboot::analysis;
use voltboot::experiments::fig9_10;
use voltboot::report::pct;
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Figure 9", "iRAM bitmap extraction on the i.MX535 (JTAG)");
    let result = fig9_10::run(seed());

    compare("overall error", "2.7%", &pct(result.overall_error));
    let ranges = [
        "0xF8000000..0xF8007FFF",
        "0xF8008000..0xF800FFFF",
        "0xF8010000..0xF8017FFF",
        "0xF8018000..0xF8020000",
    ];
    for (q, range) in ranges.iter().enumerate() {
        let pbm = fig9_10::render_quadrant_pbm(&result, q);
        let path = format!("fig9_iram_q{q}.pbm");
        if std::fs::write(&path, pbm).is_ok() {
            println!("  wrote {path} ({range})");
        }
    }
    println!("\nFirst quadrant thumbnail (damage at the top = ROM scratchpad):\n");
    let quad0 = {
        let bytes = result.extracted.to_bytes();
        voltboot_sram::PackedBits::from_bytes(&bytes[..32 * 1024])
    };
    println!("{}", analysis::ascii_thumbnail(&quad0, 64, 24));
}
