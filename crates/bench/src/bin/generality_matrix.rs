//! Generality: the identical attack pipeline on all three platforms
//! (the paper's "three distinct microarchitectures" claim).

use voltboot::experiments::generality;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, seed};

fn main() {
    banner("Generality", "one pipeline, three platforms");
    let result = generality::run(seed());
    let mut table = TextTable::new(["Board", "SoC", "Pad", "Target", "Accuracy"]);
    for row in &result.rows {
        table.row([
            row.board.clone(),
            row.soc.clone(),
            row.pad.clone(),
            row.target.clone(),
            pct(row.accuracy),
        ]);
    }
    println!("{}", table.render());
    println!("Every (platform, memory) pair retains error-free under the held rail —");
    println!("the property the paper demonstrates across its Table 2 devices.");
}
