//! End-to-end secret theft (the paper's motivating scenario): steal an
//! FDE key schedule from on-chip storage and decrypt the disk offline.

use voltboot::experiments::keytheft::{self, KeyHome};
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("End-to-end", "full-disk-encryption key theft via Volt Boot");
    for home in [KeyHome::Registers, KeyHome::LockedCache] {
        let result = keytheft::run(seed(), home);
        let label = match home {
            KeyHome::Registers => "TRESOR-style NEON registers",
            KeyHome::LockedCache => "CaSE-style locked cache way",
        };
        println!("\nkey home: {label}");
        compare(
            "Volt Boot recovers working disk key",
            "yes",
            if result.voltboot_recovers { "yes" } else { "NO" },
        );
        compare(
            "cold boot (-40 C) recovers key",
            "no",
            if result.coldboot_recovers { "YES" } else { "no" },
        );
        if let Some(pt) = &result.recovered_plaintext {
            println!("  decrypted sector 0: {pt:?}");
        }
    }
}
