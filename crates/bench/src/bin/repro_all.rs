//! Regenerates the paper's entire evaluation in one run and prints a
//! combined paper-vs-measured report (the source of `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run --release -p voltboot-bench --bin repro_all
//! ```
//!
//! Takes a few minutes in release mode; set `VOLTBOOT_SEED` to try a
//! different simulated die.

use voltboot::experiments::*;
use voltboot::report::pct;
use voltboot_bench::{banner, compare, seed};
use voltboot_sram::par;

fn main() {
    let seed = seed();
    println!("Volt Boot reproduction — full evaluation run (die seed {seed:#x})\n");

    // Every experiment builds its own boards from the seed, so the
    // sections are independent: compute them in parallel (each one also
    // fans out internally), then print the report in the fixed order.
    let (g1, (g2, (g3, g4))) = par::join(
        || (table1::run(seed), fig3::run(seed), sec62::run(seed)),
        || {
            par::join(
                || (fig7::run(seed), fig8::run(seed), table4::run(seed, 3)),
                || {
                    par::join(
                        || (sec72::run(seed), fig9_10::run(seed), sec8::run(seed)),
                        || {
                            (
                                dram_baseline::run(seed),
                                keytheft::run(seed, keytheft::KeyHome::Registers),
                                keytheft::run(seed, keytheft::KeyHome::LockedCache),
                            )
                        },
                    )
                },
            )
        },
    );
    let (t1, f3, s62) = g1;
    let (f7, f8, t4) = g2;
    let (s72, f910, s8) = g3;
    let (db, kt_regs, kt_lock) = g4;

    banner("Table 1", "cold boot on BCM2711 d-cache");
    for (row, paper) in t1.rows.iter().zip([0.5014, 0.5006, 0.5039]) {
        compare(&format!("error at {:.0} C", row.celsius), &pct(paper), &pct(row.mean_error));
    }
    compare("HD vs startup state", "~0.10", &format!("{:.3}", t1.rows[2].hd_vs_startup));

    banner("Figure 3", "d-cache snapshot after cold boot at -40 C");
    compare("ones fraction", "~50%", &pct(f3.ones_fraction));
    compare("error vs stored pattern", "~50%", &pct(f3.error_vs_stored));

    banner("Section 6.2", "memory accessible after boot");
    compare("BCM L1 caches", "100%", &pct(s62.rows[0].accessible_fraction));
    compare("BCM shared L2", "~0%", &pct(s62.rows[1].accessible_fraction));
    compare("i.MX535 iRAM", "~95%", &pct(s62.rows[2].accessible_fraction));

    banner("Figure 7", "bare-metal i-cache retention");
    for d in &f7.devices {
        let min = d.per_core_accuracy.iter().copied().fold(f64::INFINITY, f64::min);
        compare(&format!("{} all-core accuracy", d.soc), "100%", &pct(min));
    }

    banner("Figure 8", "caches under a running OS");
    compare("victim instructions in i-cache", "all", &pct(f8.instruction_fraction));

    banner("Table 4", "d-cache extraction vs array size (3 trials)");
    compare("mean extraction at 4 KB", "100.00%", &pct(t4.mean_extracted(4)));
    compare("mean extraction at 8 KB", "~99.99%", &pct(t4.mean_extracted(8)));
    compare("mean extraction at 16 KB", "~99.96%", &pct(t4.mean_extracted(16)));
    compare("mean extraction at 32 KB", "85.7-91.8%", &pct(t4.mean_extracted(32)));

    banner("Section 7.2", "vector registers");
    for d in &s72.devices {
        compare(
            &format!("{} registers retained", d.soc),
            "all",
            &format!("{}/{}", d.retained_registers, d.total_registers),
        );
    }

    banner("Figures 9/10", "iRAM extraction on the i.MX535");
    compare("overall error", "2.7%", &pct(f910.overall_error));
    compare(
        "error clusters",
        "start + end",
        &format!("{} windows, first {:?}", f910.error_clusters.len(), f910.error_clusters.first()),
    );

    banner("Section 8", "countermeasures");
    for row in &s8.rows {
        compare(
            row.countermeasure.name(),
            match row.countermeasure.name() {
                "none" | "power-down purge" | "nL2RST (L2 only)" => "attack succeeds",
                _ => "attack stopped",
            },
            if row.attack_succeeded { "succeeds" } else { "stopped" },
        );
    }

    banner("Background", "DRAM vs SRAM cold boot");
    compare(
        "chilled DRAM transplant key recovery",
        "yes",
        if db.rows[0].dram_key_recovered { "yes" } else { "NO" },
    );
    compare(
        "any SRAM key recovery",
        "no",
        if db.rows.iter().any(|r| r.sram_key_recovered) { "YES" } else { "no" },
    );

    banner("End-to-end", "FDE key theft");
    for (home, kt) in
        [(keytheft::KeyHome::Registers, &kt_regs), (keytheft::KeyHome::LockedCache, &kt_lock)]
    {
        compare(
            &format!("{home:?}: volt boot steals the key"),
            "yes",
            if kt.voltboot_recovers { "yes" } else { "NO" },
        );
    }

    println!("\nDone. Individual regenerators (table1_coldboot, fig9_iram_images, ...)");
    println!("print the full row-by-row tables and write the PBM figures.");
}
