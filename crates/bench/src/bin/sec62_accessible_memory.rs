//! Regenerates §6.2: how much retained SRAM the attacker can access
//! after the device's own boot path runs.

use voltboot::experiments::sec62;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Section 6.2", "memory accessible to an attacker after boot");
    let result = sec62::run(seed());

    let mut table = TextTable::new(["Device", "Memory", "Accessible"]);
    for row in &result.rows {
        table.row([row.device.clone(), row.memory.clone(), pct(row.accessible_fraction)]);
    }
    println!("{}", table.render());

    compare("BCM L1 caches", "100%", &pct(result.rows[0].accessible_fraction));
    compare(
        "BCM shared L2 (VideoCore boots first)",
        "~0%",
        &pct(result.rows[1].accessible_fraction),
    );
    compare("i.MX535 iRAM (ROM scratchpad)", "~95%", &pct(result.rows[2].accessible_fraction));
}
