//! Regenerates §7.2: vector registers fully retain across Volt Boot.

use voltboot::experiments::sec72;
use voltboot::report::TextTable;
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Section 7.2", "attacking CPU vector registers (v0..v31)");
    let result = sec72::run(seed());

    let mut table = TextTable::new(["SoC", "Registers retained", "Total"]);
    for d in &result.devices {
        table.row([d.soc.clone(), d.retained_registers.to_string(), d.total_registers.to_string()]);
    }
    println!("{}", table.render());

    for d in &result.devices {
        compare(
            &format!("{} register retention", d.soc),
            "full (100%)",
            &format!("{}/{}", d.retained_registers, d.total_registers),
        );
    }
    println!("\nAny cryptographic scheme hiding key schedules in these registers");
    println!("(TRESOR/PRIME-style) is vulnerable — see the key_theft example.");
}
