//! Regenerates the §8 countermeasure matrix plus the power-down-purge
//! timing demonstration.

use voltboot::experiments::sec8;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Section 8", "countermeasure effectiveness matrix");
    let result = sec8::run(seed());

    let mut table = TextTable::new([
        "Countermeasure",
        "Attack succeeded",
        "Recovered",
        "Stopped at",
        "Deployable w/o new silicon",
    ]);
    for row in &result.rows {
        table.row([
            row.countermeasure.name().to_string(),
            if row.attack_succeeded { "YES" } else { "no" }.to_string(),
            pct(row.recovered_fraction),
            row.stopped_at.clone().unwrap_or_else(|| "-".into()),
            if row.deployable { "yes" } else { "needs hardware" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    let (orderly, abrupt) = sec8::purge_timing_demo(seed());
    banner("Section 8 (cont.)", "why software power-down purging fails");
    compare("recovered after ORDERLY shutdown + purge", "~0%", &pct(orderly));
    compare("recovered after ABRUPT disconnect", "high", &pct(abrupt));
    println!("\nAn abrupt power disconnect stops all operations immediately — the");
    println!("purge handler never runs, exactly as the paper argues.");
}
