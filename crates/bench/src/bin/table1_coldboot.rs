//! Regenerates Table 1: cold-boot errors on the BCM2711 d-cache at
//! 0 °C, −5 °C, and −40 °C.

use voltboot::experiments::table1;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Table 1", "cold boot on BCM2711 d-cache is ineffective");
    let result = table1::run(seed());

    let mut table = TextTable::new(["Temperature", "Mean error", "HD vs startup state"]);
    for row in &result.rows {
        table.row([
            format!("{:.0} C", row.celsius),
            pct(row.mean_error),
            format!("{:.3}", row.hd_vs_startup),
        ]);
    }
    println!("{}", table.render());

    let paper = [("0 C", 0.5014), ("-5 C", 0.5006), ("-40 C", 0.5039)];
    for ((label, p), row) in paper.iter().zip(&result.rows) {
        compare(&format!("error at {label}"), &pct(*p), &pct(row.mean_error));
    }
    compare("fractional HD vs startup", "~0.10", &format!("{:.3}", result.rows[2].hd_vs_startup));
    println!("\nConclusion: ~50% error at every achievable temperature — no retention;");
    println!("the cache simply reset to its power-up state.");
}
