//! Regenerates Table 2 (evaluated platforms) and the Figure 4 view of
//! each board's PDN (rails, regulators, domains).

use voltboot::report::TextTable;
use voltboot_bench::{banner, seed};
use voltboot_soc::devices;

fn main() {
    banner("Table 2", "evaluated platforms and SoCs");
    let mut table = TextTable::new(["Board", "SoC", "CPU", "L1D", "L1I", "L2", "iRAM", "JTAG"]);
    for build in [devices::raspberry_pi_4, devices::raspberry_pi_3, devices::imx53_qsb] {
        let soc = build(seed());
        let core = soc.core(0).unwrap();
        let geom =
            |g: voltboot_soc::CacheGeometry| format!("{}KB/{}w", g.size_bytes / 1024, g.ways);
        table.row([
            soc.board_name().to_string(),
            soc.soc_name().to_string(),
            format!("{}x {}", soc.core_count(), soc.cpu_name()),
            geom(core.l1d.geometry()),
            geom(core.l1i.geometry()),
            geom(soc.l2().geometry()),
            soc.iram().map(|i| format!("{}KB", i.len() / 1024)).unwrap_or_else(|| "-".into()),
            if soc.jtag_read(0, 0).is_ok() || soc.iram().is_some() { "yes" } else { "no" }
                .to_string(),
        ]);
    }
    println!("{}", table.render());

    banner("Figure 4", "power-delivery topology per board");
    for build in [devices::raspberry_pi_4, devices::raspberry_pi_3, devices::imx53_qsb] {
        let soc = build(seed());
        println!("{} — PMIC {}", soc.board_name(), soc.network().pmic().model);
        for rail in &soc.network().pmic().rails {
            let domains: Vec<&str> = soc
                .network()
                .domains()
                .iter()
                .filter(|d| d.rail == rail.name)
                .map(|d| d.name.as_str())
                .collect();
            println!(
                "  {:<10} {:>4.2} V  {:<4} -> domains: {}",
                rail.name,
                rail.nominal_voltage,
                rail.regulator.label(),
                if domains.is_empty() { "-".into() } else { domains.join(", ") }
            );
        }
        println!();
    }
}
