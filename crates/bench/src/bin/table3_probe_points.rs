//! Regenerates Table 3: PCB test pads, nominal voltages, target
//! memories, and power domains.

use voltboot::report::TextTable;
use voltboot_bench::banner;
use voltboot_soc::devices;

fn main() {
    banner("Table 3", "probe points and target power domains");
    let mut table = TextTable::new([
        "Board",
        "PCB test pad",
        "Nominal voltage",
        "Target memories",
        "Power domain (rail)",
    ]);
    for (board, _, _, pad, rail, volts, memories) in devices::catalog_rows() {
        table.row([
            board.to_string(),
            pad.to_string(),
            format!("{volts} V"),
            memories.to_string(),
            rail.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Cross-check against the live device models.
    for build in [devices::raspberry_pi_4, devices::raspberry_pi_3, devices::imx53_qsb] {
        let soc = build(1);
        for p in soc.network().probe_points() {
            let v = soc.network().pmic().rail(&p.rail).unwrap().nominal_voltage;
            println!(
                "verified: {} pad {} -> rail {} at {:.1} V ({})",
                soc.board_name(),
                p.pad,
                p.rail,
                v,
                p.notes
            );
        }
    }
}
