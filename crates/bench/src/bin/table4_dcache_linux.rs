//! Regenerates Table 4: d-cache extraction vs victim array size under a
//! running OS, 3 trials per size, four cores.

use voltboot::experiments::table4;
use voltboot::report::{pct, TextTable};
use voltboot_bench::{banner, compare, seed};

fn main() {
    banner("Table 4", "d-cache extraction vs array size (BCM2711, Linux-like noise)");
    let result = table4::run(seed(), 3);

    for &kb in &table4::ARRAY_KB {
        println!("array size {kb} KB ({} elements):", kb * 128);
        let mut table = TextTable::new(["", "Core 0", "Core 1", "Core 2", "Core 3"]);
        for (label, f) in [
            (
                "W0",
                Box::new(|c: &table4::Table4Cell| format!("{:.1}", c.w0))
                    as Box<dyn Fn(&table4::Table4Cell) -> String>,
            ),
            ("W1", Box::new(|c| format!("{:.1}", c.w1))),
            ("W0 u W1", Box::new(|c| format!("{:.1}", c.union))),
            ("% extracted", Box::new(|c| pct(c.extracted_fraction))),
        ] {
            let mut cells = vec![label.to_string()];
            for core in 0..4 {
                cells.push(f(result.cell(kb, core).unwrap()));
            }
            table.row(cells);
        }
        println!("{}", table.render());
    }

    compare("mean extraction at 4 KB", "100.00%", &pct(result.mean_extracted(4)));
    compare("mean extraction at 8 KB", "~99.99%", &pct(result.mean_extracted(8)));
    compare("mean extraction at 16 KB", "~99.96%", &pct(result.mean_extracted(16)));
    compare("mean extraction at 32 KB", "85.7-91.8%", &pct(result.mean_extracted(32)));
    println!("\nShape: full extraction while the array fits beside OS noise, degrading");
    println!("as the array approaches the cache size and every eviction hits it.");

    // Cross-device check: the BCM2837's 4-way L1D shows the same shape.
    println!("\nBCM2837 (4-way L1D) cross-check, 1 trial:");
    let pi3 = table4::run_pi3(seed() ^ 0x3, 1);
    for &kb in &table4::ARRAY_KB {
        println!("  {kb:>2} KB: {}", pct(pi3.mean_extracted(kb)));
    }
}
