//! `trace` — run one fault-injected Volt Boot campaign with the full
//! observability layer enabled and write its three telemetry exports:
//!
//! ```text
//! cargo run --release -p voltboot-bench --bin trace -- \
//!     [--reps N] [--threads N] [--out STEM] [--smoke]
//! ```
//!
//! * `STEM.trace.json` — Chrome `trace_event` JSON; open in
//!   `chrome://tracing` or Perfetto to see the span tree (campaign
//!   reps → attack phases → pdn/soc/sram work) on the virtual clock.
//! * `STEM.folded` — collapsed stacks (`parent;child self_ns`) for
//!   `flamegraph.pl` or speedscope.
//! * `STEM.waves.csv` — PDN rail waveform samples
//!   (`channel,at_ns,value`): disconnect droop, unheld collapse,
//!   decay-window flat-tops, reconnect staircase (paper Fig. 4–6 as
//!   data).
//!
//! All three exports are deterministic: byte-identical for equal seeds
//! at any `--threads`. `--smoke` gates exactly that — it runs a small
//! campaign sequentially and under 2 worker threads, byte-compares all
//! three exports, re-parses the Chrome trace with the in-repo JSON
//! parser, and checks spans from at least four instrumented crates are
//! present. Exits nonzero on any mismatch (CI runs this).

use voltboot::attack::VoltBootAttack;
use voltboot::campaign::{Campaign, RetryPolicy};
use voltboot::fault::{FaultPlan, FaultRates};
use voltboot::telemetry::{export, json, parse, Recorder};
use voltboot_armlite::program::builders;
use voltboot_soc::{devices, Soc};

/// Fault rate for the traced campaign: high enough that retries, PDN
/// glitches, and bit repair all show up in the trace.
const FAULT_RATE: f64 = 0.2;

/// Fixed seeds so the smoke gate checks reproducibility, not the
/// user's environment.
const SMOKE_SEEDS: (u64, u64) = (0x0020_22A5_B007, 0x000F_A017_C0DE);

fn victim(die_seed: u64) -> impl Fn(u64) -> Soc + Sync {
    move |rep| {
        let mut soc = devices::raspberry_pi_4(die_seed ^ rep.wrapping_mul(0x9E37_79B9));
        soc.power_on_all();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(128), 0x10000, 100_000);
        soc
    }
}

/// Runs the traced campaign and returns its recorder.
fn traced_campaign(die_seed: u64, fault_seed: u64, reps: u64, threads: usize) -> Recorder {
    let plan = FaultPlan::new(fault_seed, FaultRates::uniform(FAULT_RATE));
    let campaign = Campaign::new(VoltBootAttack::new("TP15").passes(3), plan, reps)
        .retry(RetryPolicy { max_attempts: 3, initial_backoff_ns: 50_000_000 });
    campaign.run_parallel(threads, victim(die_seed)).recorder
}

/// The three export views, rendered.
fn exports(rec: &Recorder) -> (String, String, String) {
    (export::chrome_trace(rec).render_pretty(), export::folded(rec), export::waveforms_csv(rec))
}

/// Crate prefixes the trace must cover for the instrumentation to
/// count as end-to-end (pdn, sram, soc, and the attack/campaign core).
const REQUIRED_PREFIXES: [&str; 5] = ["pdn.", "sram.", "soc.", "attack.", "campaign."];

fn smoke() -> i32 {
    let (die_seed, fault_seed, reps) = (SMOKE_SEEDS.0, SMOKE_SEEDS.1, 2);
    let sequential = traced_campaign(die_seed, fault_seed, reps, 1);
    let threaded = traced_campaign(die_seed, fault_seed, reps, 2);
    let (trace_a, folded_a, waves_a) = exports(&sequential);
    let (trace_b, folded_b, waves_b) = exports(&threaded);
    for (name, a, b) in [
        ("chrome trace", &trace_a, &trace_b),
        ("folded stacks", &folded_a, &folded_b),
        ("waveform csv", &waves_a, &waves_b),
    ] {
        if a != b {
            eprintln!(
                "TRACE SMOKE FAIL: {name} differs byte-wise between 1 and 2 worker threads \
                 ({} vs {} bytes)",
                a.len(),
                b.len()
            );
            return 1;
        }
    }

    // The Chrome trace must be valid JSON by our own parser and carry
    // spans from every instrumented layer.
    let doc = match parse::parse(&trace_a) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("TRACE SMOKE FAIL: chrome trace does not re-parse: {e}");
            return 1;
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(json::Value::as_array) else {
        eprintln!("TRACE SMOKE FAIL: chrome trace has no traceEvents array");
        return 1;
    };
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(json::Value::as_str)).collect();
    for prefix in REQUIRED_PREFIXES {
        if !names.iter().any(|n| n.starts_with(prefix)) {
            eprintln!(
                "TRACE SMOKE FAIL: no trace event from the {prefix}* layer \
                 ({} events total)",
                names.len()
            );
            return 1;
        }
    }
    if waves_a.lines().count() < 2 {
        eprintln!("TRACE SMOKE FAIL: waveform csv has no samples");
        return 1;
    }
    println!(
        "trace smoke ok: {} events across {} layers, exports byte-identical (1 vs 2 threads, \
         trace {} B / folded {} B / waves {} B)",
        names.len(),
        REQUIRED_PREFIXES.len(),
        trace_a.len(),
        folded_a.len(),
        waves_a.len()
    );
    0
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).unwrap_or_else(|| panic!("{flag} needs a value")).clone())
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{flag} needs an integer, got {v:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let reps: u64 = parsed_flag(&args, "--reps").unwrap_or(8);
    let threads: usize = parsed_flag::<usize>(&args, "--threads").unwrap_or(1).max(1);
    let stem = flag_value(&args, "--out").unwrap_or_else(|| "trace".to_string());

    voltboot_bench::banner("TRACE", "observability exports for a traced campaign");
    let rec = traced_campaign(voltboot_bench::seed(), voltboot_bench::fault_seed(), reps, threads);
    let (trace, folded, waves) = exports(&rec);
    for (ext, contents) in [(".trace.json", &trace), (".folded", &folded), (".waves.csv", &waves)] {
        let path = format!("{stem}{ext}");
        std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path} ({} bytes)", contents.len());
    }
    println!(
        "{} spans ({} dropped), {} waveform channels, virtual clock {} ns",
        rec.spans().len(),
        rec.spans_dropped(),
        rec.waveforms().len(),
        rec.now_ns()
    );
}
