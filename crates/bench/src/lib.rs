//! Shared helpers for the Volt Boot repro binaries and benches.
//!
//! Each `repro_*` binary regenerates one of the paper's tables or
//! figures (see `DESIGN.md` for the index) and prints the measured
//! values next to the paper's reported values where the paper gives
//! concrete numbers.

/// The die seed the repro binaries use, overridable via the
/// `VOLTBOOT_SEED` environment variable.
pub fn seed() -> u64 {
    std::env::var("VOLTBOOT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x2022_A5_B007)
}

/// Prints a banner for one experiment.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// Prints a paper-vs-measured line.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:<12} measured: {measured}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn seed_has_a_default() {
        assert_ne!(super::seed(), 0);
    }
}
