//! Shared helpers for the Volt Boot repro binaries and benches.
//!
//! Each `repro_*` binary regenerates one of the paper's tables or
//! figures (see `DESIGN.md` for the index) and prints the measured
//! values next to the paper's reported values where the paper gives
//! concrete numbers.

/// The die seed the repro binaries use, overridable via the
/// `VOLTBOOT_SEED` environment variable (decimal, or hex with a `0x`
/// prefix).
pub fn seed() -> u64 {
    std::env::var("VOLTBOOT_SEED").ok().and_then(|s| parse_seed(&s)).unwrap_or(0x0020_22A5_B007)
}

/// The fault-plan seed the campaign binary uses, overridable via the
/// `VOLTBOOT_FAULT_SEED` environment variable (decimal, or hex with a
/// `0x` prefix). Kept separate from [`seed`] so the silicon and the
/// glitch schedule can vary independently.
pub fn fault_seed() -> u64 {
    std::env::var("VOLTBOOT_FAULT_SEED")
        .ok()
        .and_then(|s| parse_seed(&s))
        .unwrap_or(0x000F_A017_C0DE)
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Prints a banner for one experiment.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// Prints a paper-vs-measured line.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:<12} measured: {measured}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn seed_has_a_default() {
        assert_ne!(super::seed(), 0);
    }

    #[test]
    fn fault_seed_has_a_distinct_default() {
        assert_ne!(super::fault_seed(), 0);
        assert_ne!(super::fault_seed(), super::seed());
    }
}
