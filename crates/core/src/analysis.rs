//! Offline analysis of extracted memory images.
//!
//! Step 4 of the attack (§6.1): "Depending on the target SRAM and the
//! objective, an attacker needs to adapt post-processing." This module
//! provides the post-processing the paper's evaluation uses:
//!
//! * Hamming-distance metrics and the 512-bit-window series of Figure 10;
//! * bitmap rendering of cache ways and iRAM (Figures 3, 7, 8, 9);
//! * pattern and instruction grep (Figures 7/8's "we grep the i-cache
//!   contents and confirm that we find all the instructions");
//! * Table 4's array-element accounting;
//! * AES key-schedule search: exact for Volt Boot's error-free images,
//!   and a Halderman-style tolerant search to show why noisy SRAM images
//!   defeat it (bistable cells give no error direction).

use crate::attack::ExtractedImage;
use crate::recover::IntegrityError;
use voltboot_crypto::aes::KeySchedule;
use voltboot_sram::PackedBits;

// ----------------------------------------------------------------------
// Integrity
// ----------------------------------------------------------------------

/// Re-verifies the readout CRC of every image before analysis — the
/// report-time half of the integrity seal
/// ([`ExtractedImage::verify`]): any corruption that crept in between
/// extraction and post-processing surfaces here as a typed error
/// instead of a silently wrong table entry.
///
/// # Errors
///
/// The first [`IntegrityError::CrcMismatch`] found, naming the image.
pub fn verify_integrity<'a>(
    images: impl IntoIterator<Item = &'a ExtractedImage>,
) -> Result<(), IntegrityError> {
    for image in images {
        image.verify()?;
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Hamming metrics
// ----------------------------------------------------------------------

/// Fractional Hamming distance between two images.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn fractional_hamming(a: &PackedBits, b: &PackedBits) -> f64 {
    a.fractional_hamming(b)
}

/// The Figure 10 series: Hamming distance per `window`-bit chunk.
///
/// # Panics
///
/// Panics if the lengths differ or `window == 0`.
pub fn hamming_series(a: &PackedBits, b: &PackedBits, window: usize) -> Vec<usize> {
    a.windowed_hamming(b, window)
}

/// Indices of windows whose Hamming distance exceeds `threshold` — the
/// "where do the errors cluster" question of Figure 10.
pub fn error_clusters(series: &[usize], threshold: usize) -> Vec<usize> {
    series.iter().enumerate().filter(|(_, &h)| h > threshold).map(|(i, _)| i).collect()
}

// ----------------------------------------------------------------------
// Bitmap rendering
// ----------------------------------------------------------------------

/// Renders an image as a PBM (portable bitmap) file body, `cols` bits per
/// row — loadable by any image viewer, mirroring the paper's cache
/// snapshots.
///
/// # Panics
///
/// Panics if `cols == 0`.
pub fn to_pbm(bits: &PackedBits, cols: usize) -> String {
    assert!(cols > 0, "cols must be positive");
    let rows = bits.len().div_ceil(cols);
    let mut out = format!("P1\n{cols} {rows}\n");
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            let bit = if i < bits.len() && bits.get(i) { '1' } else { '0' };
            out.push(bit);
            out.push(if c + 1 == cols { '\n' } else { ' ' });
        }
    }
    out
}

/// Renders a coarse ASCII thumbnail (`width x height` characters) of an
/// image, daRk blocks for dense-ones regions — the quick-look view the
/// repro binaries print.
pub fn ascii_thumbnail(bits: &PackedBits, width: usize, height: usize) -> String {
    let total = bits.len().max(1);
    let cell = (total / (width * height)).max(1);
    let mut out = String::with_capacity((width + 1) * height);
    for row in 0..height {
        for col in 0..width {
            let start = (row * width + col) * cell;
            let end = (start + cell).min(total);
            if start >= total {
                out.push(' ');
                continue;
            }
            let ones: usize = (start..end).filter(|&i| bits.get(i)).count();
            let density = ones as f64 / (end - start) as f64;
            out.push(match density {
                d if d < 0.1 => ' ',
                d if d < 0.3 => '.',
                d if d < 0.5 => ':',
                d if d < 0.7 => 'o',
                d if d < 0.9 => 'O',
                _ => '#',
            });
        }
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Pattern search
// ----------------------------------------------------------------------

/// Counts non-overlapping occurrences of `needle` in the image bytes.
pub fn count_pattern(bits: &PackedBits, needle: &[u8]) -> usize {
    if needle.is_empty() {
        return 0;
    }
    let hay = bits.to_bytes();
    let mut count = 0;
    let mut i = 0;
    while i + needle.len() <= hay.len() {
        if &hay[i..i + needle.len()] == needle {
            count += 1;
            i += needle.len();
        } else {
            i += 1;
        }
    }
    count
}

/// Byte offsets of every occurrence of `needle` (overlapping allowed).
pub fn find_pattern(bits: &PackedBits, needle: &[u8]) -> Vec<usize> {
    let hay = bits.to_bytes();
    if needle.is_empty() || needle.len() > hay.len() {
        return Vec::new();
    }
    (0..=hay.len() - needle.len()).filter(|&i| &hay[i..i + needle.len()] == needle).collect()
}

/// Counts 32-bit words in the image that decode as supported A64
/// instructions — the i-cache "is this machine code?" check.
pub fn count_decodable_instructions(bits: &PackedBits) -> usize {
    bits.to_bytes()
        .chunks_exact(4)
        .filter(|c| {
            voltboot_armlite::Instr::decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])).is_ok()
        })
        .count()
}

/// Fraction of ones in the image — ≈0.5 indicates an uninitialized
/// power-up state (Figure 3's observation).
pub fn ones_fraction(bits: &PackedBits) -> f64 {
    bits.ones_fraction()
}

/// Renders an ASCII *damage map* of two images: each character covers an
/// equal share of the bits and shows the local mismatch density
/// (`' '` none → `'#'` heavy). The Figure 10 view at a glance.
///
/// # Panics
///
/// Panics if the lengths differ or `width == 0`.
pub fn diff_map(a: &PackedBits, b: &PackedBits, width: usize, rows: usize) -> String {
    assert_eq!(a.len(), b.len(), "diff map needs equal lengths");
    assert!(width > 0 && rows > 0, "dimensions must be positive");
    let cells = width * rows;
    let per_cell = (a.len() / cells).max(1);
    let mut out = String::with_capacity((width + 1) * rows);
    for row in 0..rows {
        for col in 0..width {
            let start = (row * width + col) * per_cell;
            if start >= a.len() {
                out.push(' ');
                continue;
            }
            let end = (start + per_cell).min(a.len());
            let mismatches = (start..end).filter(|&i| a.get(i) != b.get(i)).count();
            let density = mismatches as f64 / (end - start) as f64;
            out.push(match density {
                d if d <= 0.0 => ' ',
                d if d < 0.05 => '.',
                d if d < 0.2 => ':',
                d if d < 0.4 => 'o',
                _ => '#',
            });
        }
        out.push('\n');
    }
    out
}

/// Extracts printable-ASCII runs of at least `min_len` bytes from an
/// image — the classic forensic `strings` pass over an extracted dump.
pub fn printable_strings(bits: &PackedBits, min_len: usize) -> Vec<(usize, String)> {
    let bytes = bits.to_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut current = String::new();
    for (i, &b) in bytes.iter().enumerate() {
        if (0x20..0x7F).contains(&b) {
            if current.is_empty() {
                start = i;
            }
            current.push(b as char);
        } else {
            if current.len() >= min_len {
                out.push((start, std::mem::take(&mut current)));
            }
            current.clear();
        }
    }
    if current.len() >= min_len {
        out.push((start, current));
    }
    out
}

/// Disassembles an image into an address-annotated listing, marking
/// undecodable words as data. `base` is the address of byte 0.
pub fn disassembly_listing(bits: &PackedBits, base: u64) -> String {
    let bytes = bits.to_bytes();
    let mut out = String::new();
    for (i, chunk) in bytes.chunks_exact(4).enumerate() {
        let word = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        let addr = base + i as u64 * 4;
        match voltboot_armlite::Instr::decode(word) {
            Ok(instr) => out.push_str(&format!("{addr:#010x}: {word:08x}  {instr}\n")),
            Err(_) => out.push_str(&format!("{addr:#010x}: {word:08x}  .word\n")),
        }
    }
    out
}

/// Shannon entropy estimate of the image's byte distribution, in bits
/// per byte (0–8). Power-up SRAM reads ≈8; machine code and structured
/// data read noticeably lower — a quick classifier for extracted images.
pub fn byte_entropy(bits: &PackedBits) -> f64 {
    let bytes = bits.to_bytes();
    if bytes.is_empty() {
        return 0.0;
    }
    let mut histogram = [0usize; 256];
    for &b in &bytes {
        histogram[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    -histogram
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            p * p.log2()
        })
        .sum::<f64>()
}

// ----------------------------------------------------------------------
// Table 4 accounting
// ----------------------------------------------------------------------

/// Counts which of the `count` 8-byte victim array elements
/// (`elem(i) = (seed << 48) | i`) appear in an extracted way image.
/// Returns the per-element presence mask.
pub fn elements_present(way_image: &PackedBits, seed: u16, count: usize) -> Vec<bool> {
    let bytes = way_image.to_bytes();
    let mut present = vec![false; count];
    for window in bytes.windows(8).step_by(8) {
        let v = u64::from_le_bytes(window.try_into().expect("8 bytes"));
        if v >> 48 == seed as u64 {
            let idx = (v & 0xFFFF_FFFF_FFFF) as usize;
            if idx < count {
                present[idx] = true;
            }
        }
    }
    present
}

/// Table 4 row fragment: elements found in W0 only, W1 only, and the
/// union, given both way images.
pub fn table4_counts(
    w0: &PackedBits,
    w1: &PackedBits,
    seed: u16,
    count: usize,
) -> (usize, usize, usize) {
    let p0 = elements_present(w0, seed, count);
    let p1 = elements_present(w1, seed, count);
    let in0 = p0.iter().filter(|&&p| p).count();
    let in1 = p1.iter().filter(|&&p| p).count();
    let union = p0.iter().zip(&p1).filter(|(a, b)| **a || **b).count();
    (in0, in1, union)
}

// ----------------------------------------------------------------------
// Key recovery
// ----------------------------------------------------------------------

/// Scans an image for byte runs that form a *consistent* AES key
/// schedule (AES-128/192/256). Works on error-free images — the Volt
/// Boot case — and returns every schedule found with its byte offset.
///
/// ```rust
/// use voltboot::analysis::find_key_schedules;
/// use voltboot_crypto::aes::{AesKey, KeySchedule};
/// use voltboot_sram::PackedBits;
///
/// let key = AesKey::Aes128(*b"hidden-in-sram!!");
/// let mut dump = vec![0u8; 100];
/// dump.extend(KeySchedule::expand(&key).to_bytes());
/// let found = find_key_schedules(&PackedBits::from_bytes(&dump));
/// assert_eq!(found[0].0, 100);
/// assert_eq!(found[0].1.original_key(), key);
/// ```
pub fn find_key_schedules(bits: &PackedBits) -> Vec<(usize, KeySchedule)> {
    let bytes = bits.to_bytes();
    let mut found = Vec::new();
    for (nk, sched_len) in [(4usize, 176usize), (6, 208), (8, 240)] {
        if bytes.len() < sched_len {
            continue;
        }
        for offset in 0..=bytes.len() - sched_len {
            if let Some(ks) = KeySchedule::from_bytes(&bytes[offset..offset + sched_len], nk) {
                found.push((offset, ks));
            }
        }
    }
    found
}

/// A Halderman-style tolerant search: accepts schedules whose recurrence
/// holds for all but `max_bad_words` of the expansion words, then repairs
/// them by re-expanding from the first `Nk` words. Returns candidates
/// with their error count.
///
/// On a noisy SRAM image this fails in an instructive way: SRAM cells are
/// bistable, so a decayed bit carries no bias toward its old value
/// (paper §5.1: "SRAM cells are bistable, which makes it harder to look
/// for keys using the algorithm proposed in the original cold boot
/// attack"), and the first words themselves are as likely to be corrupt
/// as any others.
pub fn find_key_schedules_tolerant(
    bits: &PackedBits,
    nk: usize,
    max_bad_words: usize,
) -> Vec<(usize, usize, KeySchedule)> {
    let sched_len = match nk {
        4 => 176,
        6 => 208,
        8 => 240,
        _ => return Vec::new(),
    };
    let bytes = bits.to_bytes();
    if bytes.len() < sched_len {
        return Vec::new();
    }
    let mut found = Vec::new();
    for offset in (0..=bytes.len() - sched_len).step_by(4) {
        let window = &bytes[offset..offset + sched_len];
        let words: Vec<u32> =
            window.chunks_exact(4).map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]])).collect();
        let bad = schedule_violations(&words, nk);
        if bad <= max_bad_words {
            // Repair: re-expand from the candidate key words.
            let key_bytes: Vec<u8> = words[..nk].iter().flat_map(|w| w.to_be_bytes()).collect();
            let key = match nk {
                4 => voltboot_crypto::aes::AesKey::Aes128(key_bytes.try_into().expect("16")),
                6 => voltboot_crypto::aes::AesKey::Aes192(key_bytes.try_into().expect("24")),
                _ => voltboot_crypto::aes::AesKey::Aes256(key_bytes.try_into().expect("32")),
            };
            found.push((offset, bad, KeySchedule::expand(&key)));
        }
    }
    found
}

/// Number of key-expansion recurrence violations in a word sequence.
fn schedule_violations(words: &[u32], nk: usize) -> usize {
    use voltboot_crypto::aes::{gf_mul, sbox};
    let sub_word = |w: u32| -> u32 { u32::from_be_bytes(w.to_be_bytes().map(sbox)) };
    let mut rcon: u8 = 1;
    let mut bad = 0;
    for i in nk..words.len() {
        let mut temp = words[i - 1];
        if i % nk == 0 {
            temp = sub_word(temp.rotate_left(8)) ^ ((rcon as u32) << 24);
            rcon = gf_mul(rcon, 2);
        } else if nk > 6 && i % nk == 4 {
            temp = sub_word(temp);
        }
        if words[i] != words[i - nk] ^ temp {
            bad += 1;
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltboot_crypto::aes::AesKey;

    #[test]
    fn verify_integrity_finds_the_tampered_image() {
        let good = ExtractedImage::new("a", PackedBits::from_bytes(&[0xAA; 16]));
        let mut bad = ExtractedImage::new("b", PackedBits::from_bytes(&[0x55; 16]));
        bad.bits.set(0, !bad.bits.get(0));
        assert!(verify_integrity([&good]).is_ok());
        let err = verify_integrity([&good, &bad]).unwrap_err();
        match err {
            IntegrityError::CrcMismatch { ref source, .. } => assert_eq!(source, "b"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn pbm_shape() {
        let bits = PackedBits::from_bytes(&[0b0000_0001, 0b1000_0000]);
        let pbm = to_pbm(&bits, 8);
        let mut lines = pbm.lines();
        assert_eq!(lines.next(), Some("P1"));
        assert_eq!(lines.next(), Some("8 2"));
        assert_eq!(lines.next(), Some("1 0 0 0 0 0 0 0"));
        assert_eq!(lines.next(), Some("0 0 0 0 0 0 0 1"));
    }

    #[test]
    fn ascii_thumbnail_density() {
        let ones = PackedBits::ones(64 * 64);
        let zeros = PackedBits::zeros(64 * 64);
        let t1 = ascii_thumbnail(&ones, 8, 4);
        let t0 = ascii_thumbnail(&zeros, 8, 4);
        assert!(t1.contains('#'));
        assert!(!t0.contains('#'));
    }

    #[test]
    fn pattern_search() {
        let bits = PackedBits::from_bytes(b"xxAAAAyyAAAAzz");
        assert_eq!(count_pattern(&bits, b"AAAA"), 2);
        assert_eq!(find_pattern(&bits, b"AAAA"), vec![2, 8]);
        assert_eq!(count_pattern(&bits, b""), 0);
    }

    #[test]
    fn instruction_grep_sees_nops() {
        let mut bytes = Vec::new();
        for _ in 0..10 {
            bytes.extend_from_slice(&0xD503201Fu32.to_le_bytes());
        }
        bytes.extend_from_slice(&0x12345678u32.to_le_bytes());
        let bits = PackedBits::from_bytes(&bytes);
        assert_eq!(count_decodable_instructions(&bits), 10);
    }

    #[test]
    fn element_accounting() {
        let mut bytes = vec![0u8; 64];
        let e5 = (0xBEEFu64 << 48) | 5;
        let e9 = (0xBEEFu64 << 48) | 9;
        bytes[8..16].copy_from_slice(&e5.to_le_bytes());
        bytes[40..48].copy_from_slice(&e9.to_le_bytes());
        let bits = PackedBits::from_bytes(&bytes);
        let present = elements_present(&bits, 0xBEEF, 16);
        assert!(present[5] && present[9]);
        assert_eq!(present.iter().filter(|&&p| p).count(), 2);
    }

    #[test]
    fn table4_union_counts() {
        let e = |i: u64| ((0xCAFEu64 << 48) | i).to_le_bytes();
        let mut w0 = vec![0u8; 32];
        w0[..8].copy_from_slice(&e(0));
        w0[8..16].copy_from_slice(&e(1));
        let mut w1 = vec![0u8; 32];
        w1[..8].copy_from_slice(&e(1));
        w1[8..16].copy_from_slice(&e(2));
        let (a, b, u) =
            table4_counts(&PackedBits::from_bytes(&w0), &PackedBits::from_bytes(&w1), 0xCAFE, 4);
        assert_eq!((a, b, u), (2, 2, 3));
    }

    #[test]
    fn exact_key_search_finds_embedded_schedule() {
        let key = AesKey::Aes128(*b"findme-findme-16");
        let schedule = KeySchedule::expand(&key);
        let mut bytes = vec![0x5Au8; 64];
        bytes.extend(schedule.to_bytes());
        bytes.extend(vec![0xC3u8; 32]);
        let found = find_key_schedules(&PackedBits::from_bytes(&bytes));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 64);
        assert_eq!(found[0].1.original_key(), key);
    }

    #[test]
    fn exact_key_search_rejects_corruption() {
        let schedule = KeySchedule::expand(&AesKey::Aes128([3; 16]));
        let mut bytes = schedule.to_bytes();
        bytes[100] ^= 0x40;
        assert!(find_key_schedules(&PackedBits::from_bytes(&bytes)).is_empty());
    }

    #[test]
    fn tolerant_search_recovers_lightly_damaged_schedule() {
        let key = AesKey::Aes128([0x42; 16]);
        let schedule = KeySchedule::expand(&key);
        let mut bytes = schedule.to_bytes();
        // Corrupt two words beyond the key itself.
        bytes[80] ^= 0x10;
        bytes[120] ^= 0x01;
        let found = find_key_schedules_tolerant(&PackedBits::from_bytes(&bytes), 4, 8);
        assert!(found.iter().any(|(_, _, ks)| ks.original_key() == key));
    }

    #[test]
    fn tolerant_search_fails_when_key_words_are_hit() {
        let key = AesKey::Aes128([0x42; 16]);
        let mut bytes = KeySchedule::expand(&key).to_bytes();
        bytes[3] ^= 0x80; // inside the key itself
        let found = find_key_schedules_tolerant(&PackedBits::from_bytes(&bytes), 4, 40);
        assert!(found.iter().all(|(_, _, ks)| ks.original_key() != key));
    }

    #[test]
    fn diff_map_localizes_damage() {
        let a = PackedBits::zeros(64 * 64);
        let mut b = a.clone();
        // Damage only the first sixteenth.
        for i in 0..256 {
            b.set(i, true);
        }
        let map = diff_map(&a, &b, 16, 1);
        assert!(map.starts_with('#'), "{map:?}");
        assert!(map[1..].trim_end().chars().all(|c| c == ' '), "{map:?}");
    }

    #[test]
    fn strings_pass_finds_text_runs() {
        let mut bytes = vec![0u8; 16];
        bytes.extend(b"password=hunter2");
        bytes.push(0);
        bytes.extend(b"ab"); // too short
        bytes.push(0xFF);
        bytes.extend(b"PIN 2071");
        let found = printable_strings(&PackedBits::from_bytes(&bytes), 4);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0], (16, "password=hunter2".to_string()));
        assert_eq!(found[1].1, "PIN 2071");
    }

    #[test]
    fn disassembly_listing_annotates_addresses() {
        let mut bytes = 0xD503201Fu32.to_le_bytes().to_vec(); // nop
        bytes.extend(0x12345678u32.to_le_bytes()); // not an instruction
        let listing = disassembly_listing(&PackedBits::from_bytes(&bytes), 0x8000);
        let lines: Vec<&str> = listing.lines().collect();
        assert!(lines[0].starts_with("0x00008000: d503201f  nop"));
        assert!(lines[1].contains(".word"));
    }

    #[test]
    fn entropy_separates_random_from_structured() {
        let random: Vec<u8> = (0..4096u32)
            .map(|i| {
                let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z ^= z >> 29;
                z as u8
            })
            .collect();
        let structured = vec![0xAAu8; 4096];
        let h_random = byte_entropy(&PackedBits::from_bytes(&random));
        let h_structured = byte_entropy(&PackedBits::from_bytes(&structured));
        assert!(h_random > 7.5, "random entropy {h_random}");
        assert!(h_structured < 0.01, "structured entropy {h_structured}");
        assert_eq!(byte_entropy(&PackedBits::zeros(0)), 0.0);
    }

    #[test]
    fn hamming_helpers() {
        let a = PackedBits::ones(1024);
        let b = PackedBits::zeros(1024);
        assert_eq!(fractional_hamming(&a, &b), 1.0);
        let series = hamming_series(&a, &b, 512);
        assert_eq!(series, vec![512, 512]);
        assert_eq!(error_clusters(&series, 100), vec![0, 1]);
        assert_eq!(error_clusters(&[0, 5, 600], 100), vec![2]);
    }
}
