//! The Volt Boot attack and the cold-boot baseline.
//!
//! The attack follows the paper's Figure 5 flow:
//!
//! 1. **Identify** the target power domain and its exposed pad (Table 3);
//! 2. **Attach** an external voltage probe at the measured live voltage;
//! 3. **Power-cycle** the board abruptly — the probe keeps the target
//!    SRAM above its retention voltage while everything else resets;
//! 4. **Reboot** from attacker-controlled media (or the internal ROM);
//! 5. **Extract** the retained SRAM through debug interfaces;
//! 6. **Analyse** the images offline ([`crate::analysis`]).
//!
//! The same machinery runs the temperature-based cold-boot baseline of
//! §3 ([`ColdBootAttack`]) — which fails on on-chip SRAM, reproducing the
//! paper's Table 1.

use crate::error::AttackError;
use crate::fault::{self, FaultPlan, StepFaults};
use crate::recover::{self, ConfidenceMap, IntegrityError};
use serde::{Deserialize, Serialize};
use voltboot_pdn::Probe;
use voltboot_soc::debug::RamId;
use voltboot_soc::{BootSource, CycleFaults, PowerCycleSpec, Soc};
use voltboot_sram::{par, PackedBits, Temperature};
use voltboot_telemetry::Recorder;

/// Virtual duration of the pad-voltage measurement (identify step).
pub const IDENTIFY_STEP_NS: u64 = 150_000;
/// Virtual duration of clipping the probe on (attach step).
pub const ATTACH_STEP_NS: u64 = 2_000_000;
/// Virtual duration of the reboot into the extraction image.
pub const REBOOT_STEP_NS: u64 = 120_000_000;
/// Virtual duration of extracting one image over the debug port.
pub const EXTRACT_IMAGE_NS: u64 = 8_000_000;

/// Extra contact resistance (ohms) a glitched probe clip adds.
pub const PROBE_GLITCH_EXTRA_OHMS: f64 = 0.6;
/// Factor a glitched contact sags the probe's deliverable current by.
pub const PROBE_GLITCH_LIMIT_FACTOR: f64 = 0.15;

/// What the attacker reads out after the reboot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Extraction {
    /// L1 cache data RAMs of the listed cores, via CP15 `RAMINDEX` from
    /// the attacker's EL3 extraction image.
    Caches {
        /// Cores to extract.
        cores: Vec<usize>,
    },
    /// NEON register files of the listed cores.
    Registers {
        /// Cores to extract.
        cores: Vec<usize>,
    },
    /// The iRAM, over JTAG (the i.MX535 path).
    IramJtag,
    /// A raw dump of off-chip DRAM cells (the classic cold-boot /
    /// FROST-style target) — what a transplanted or rebooted module
    /// yields, scrambling and decay included.
    DramRaw {
        /// First physical address.
        addr: u64,
        /// Bytes to dump.
        len: usize,
    },
    /// The main TLB entry RAMs of the listed cores, via `RAMINDEX` —
    /// retained translations leak the victim's address trace even where
    /// the data itself was evicted.
    Tlbs {
        /// Cores to extract.
        cores: Vec<usize>,
    },
    /// The branch target buffers of the listed cores, via `RAMINDEX` —
    /// retained branch entries leak the victim's control-flow history.
    Btbs {
        /// Cores to extract.
        cores: Vec<usize>,
    },
}

/// One extracted memory image, integrity-sealed at readout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractedImage {
    /// Source label, e.g. `"core0.l1d.way1"`, `"core2.vregs"`, `"iram"`.
    pub source: String,
    /// The raw bits.
    pub bits: PackedBits,
    /// CRC-64 of the bits as received at readout time
    /// ([`recover::crc64_bits`]); [`ExtractedImage::verify`] re-checks
    /// it, so silent corruption anywhere between extraction and
    /// reporting surfaces as a typed [`IntegrityError`].
    #[serde(default)]
    pub crc64: u64,
}

impl ExtractedImage {
    /// Builds an image and seals its readout CRC.
    pub fn new(source: impl Into<String>, bits: PackedBits) -> Self {
        let crc64 = recover::crc64_bits(&bits);
        ExtractedImage { source: source.into(), bits, crc64 }
    }

    /// Builds an image from bits whose CRC was already computed in the
    /// same pass that produced them (e.g.
    /// [`recover::vote_owned_sealed`]), skipping the re-hash
    /// [`ExtractedImage::new`] would do. The caller vouches that
    /// `crc64 == crc64_bits(&bits)`; debug builds verify it.
    pub fn from_sealed(source: impl Into<String>, bits: PackedBits, crc64: u64) -> Self {
        debug_assert_eq!(crc64, recover::crc64_bits(&bits), "sealed CRC must match the bits");
        ExtractedImage { source: source.into(), bits, crc64 }
    }

    /// Re-seals the CRC after a *legitimate* in-place mutation (the
    /// fault layer corrupting the readout models noise on the wire: the
    /// attacker checksums what it received).
    pub fn reseal(&mut self) {
        self.crc64 = recover::crc64_bits(&self.bits);
    }

    /// Re-verifies the bits against the sealed CRC.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::CrcMismatch`] when the bits no longer hash to
    /// the CRC sealed at readout.
    pub fn verify(&self) -> Result<(), IntegrityError> {
        let actual = recover::crc64_bits(&self.bits);
        if actual == self.crc64 {
            Ok(())
        } else {
            Err(IntegrityError::CrcMismatch {
                source: self.source.clone(),
                sealed: self.crc64,
                actual,
            })
        }
    }
}

/// Per-image confidence from a voted multi-pass readout: the sealed CRC
/// plus the bit-level vote classification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageConfidence {
    /// The image's source label.
    pub source: String,
    /// CRC-64 sealed on the resolved image.
    pub crc64: u64,
    /// Bit-level vote classification.
    pub map: ConfidenceMap,
}

/// A step of the attack flow, for the outcome log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step name (identify / attach / power-cycle / reboot / extract).
    pub step: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Everything an attack run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The executed steps, in order.
    pub steps: Vec<StepRecord>,
    /// Whether the target rail was held across the cycle.
    pub rail_held: bool,
    /// Minimum instantaneous voltage on the target rail during the
    /// disconnect surge, if held.
    pub transient_min_voltage: Option<f64>,
    /// The extracted images.
    pub images: Vec<ExtractedImage>,
    /// Per-image vote confidence — empty on the classic single-pass
    /// path, one entry per image (same order) on voted multi-pass
    /// extraction.
    #[serde(default)]
    pub confidence: Vec<ImageConfidence>,
}

impl AttackOutcome {
    /// Looks up one image by exact source name.
    pub fn image(&self, source: &str) -> Option<&ExtractedImage> {
        self.images.iter().find(|i| i.source == source)
    }

    /// All images whose source contains `fragment`.
    pub fn images_matching<'a>(
        &'a self,
        fragment: &'a str,
    ) -> impl Iterator<Item = &'a ExtractedImage> {
        self.images.iter().filter(move |i| i.source.contains(fragment))
    }

    /// Re-verifies every image against the CRC sealed at readout.
    ///
    /// # Errors
    ///
    /// The first [`IntegrityError::CrcMismatch`] found, naming the
    /// offending image.
    pub fn verify_integrity(&self) -> Result<(), IntegrityError> {
        for image in &self.images {
            image.verify()?;
        }
        Ok(())
    }

    /// Campaign-level confidence aggregate over all images.
    pub fn confidence_total(&self) -> ConfidenceMap {
        let mut total = ConfidenceMap::default();
        for c in &self.confidence {
            total.absorb(&c.map);
        }
        total
    }
}

/// Execution environment of one attack attempt: where telemetry goes and
/// which injected faults the attempt must weather.
///
/// `Default` is a disabled recorder and no faults — running through it is
/// bit-identical to the plain [`VoltBootAttack::execute`] path.
#[derive(Debug, Clone, Default)]
pub struct AttackContext {
    /// Telemetry sink (spans, counters, events, virtual clock).
    pub recorder: Recorder,
    /// Faults injected into this attempt.
    pub faults: StepFaults,
}

impl AttackContext {
    /// A context that records telemetry but injects nothing.
    pub fn recording() -> Self {
        AttackContext { recorder: Recorder::new(), faults: StepFaults::none() }
    }
}

/// An attack attempt that failed partway: the error plus everything the
/// flow completed before it — so a campaign can record a *partial*
/// outcome instead of discarding the attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackFailure {
    /// What stopped the attempt.
    pub error: AttackError,
    /// The steps that completed before the failure, in order.
    pub steps: Vec<StepRecord>,
}

impl std::fmt::Display for AttackFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (after {} completed steps)", self.error, self.steps.len())
    }
}

impl std::error::Error for AttackFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The Volt Boot attack, configured builder-style.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoltBootAttack {
    pad: String,
    probe: Probe,
    cycle: PowerCycleSpec,
    extraction: Extraction,
    skip_reboot: bool,
    #[serde(default = "default_passes")]
    passes: u32,
}

// Referenced through the `#[serde(default = ...)]` attribute only.
#[allow(dead_code)]
fn default_passes() -> u32 {
    1
}

impl VoltBootAttack {
    /// Creates an attack against the probe point `pad`, with a 3 A bench
    /// supply, a realistic ~500 ms room-temperature power cycle, and
    /// cache extraction of core 0. The probe's setpoint is taken from the
    /// pad's measured live voltage at execution time.
    pub fn new(pad: impl Into<String>) -> Self {
        VoltBootAttack {
            pad: pad.into(),
            probe: Probe::bench_supply(0.0, 3.0),
            cycle: PowerCycleSpec::quick(),
            extraction: Extraction::Caches { cores: vec![0] },
            skip_reboot: false,
            passes: 1,
        }
    }

    /// Overrides the probe (e.g. a weak source, to reproduce the droop
    /// failure mode). The voltage setpoint is still re-measured at the
    /// pad unless it is non-zero.
    pub fn probe(mut self, probe: Probe) -> Self {
        self.probe = probe;
        self
    }

    /// Overrides the power-cycle parameters.
    pub fn cycle(mut self, cycle: PowerCycleSpec) -> Self {
        self.cycle = cycle;
        self
    }

    /// Sets what to extract.
    pub fn extraction(mut self, extraction: Extraction) -> Self {
        self.extraction = extraction;
        self
    }

    /// Skips the reboot step (for devices already running an attacker
    /// context, or when a test drives boot manually).
    pub fn skip_reboot(mut self, skip: bool) -> Self {
        self.skip_reboot = skip;
        self
    }

    /// Sets how many readout passes the extract step takes per unit
    /// (cache way, register file, iRAM, …). `1` — the default — is the
    /// classic single-shot readout, bit-identical to the pre-voting
    /// flow. Higher counts enable voted multi-pass extraction with
    /// selective repair: every unit is read twice and cross-checked by
    /// CRC, and only units whose passes disagree are read again and
    /// resolved by per-bit majority vote. The stored value is
    /// normalized at execution time ([`VoltBootAttack::normalized_passes`]).
    pub fn passes(mut self, passes: u32) -> Self {
        self.passes = passes;
        self
    }

    /// The effective pass count `execute` uses: the configured value
    /// clamped to `1..=`[`recover::MAX_PASSES`] and bumped up to odd —
    /// an even pass count can only tie where an odd one resolves.
    pub fn normalized_passes(&self) -> u32 {
        let k = self.passes.clamp(1, recover::MAX_PASSES);
        if k > 1 && k.is_multiple_of(2) {
            k + 1
        } else {
            k
        }
    }

    /// Runs the full attack flow against `soc`.
    ///
    /// # Errors
    ///
    /// [`AttackError::BootDefeated`] / [`AttackError::ExtractionDenied`]
    /// when a countermeasure stops the attack, [`AttackError::Soc`] for
    /// device-level failures.
    pub fn execute(&self, soc: &mut Soc) -> Result<AttackOutcome, AttackError> {
        self.execute_in(soc, &AttackContext::default()).map_err(|failure| failure.error)
    }

    /// [`VoltBootAttack::execute`] under an explicit [`AttackContext`]:
    /// per-step telemetry spans on the context's recorder and the
    /// context's injected faults applied at their named injection points.
    ///
    /// With a default context this is exactly `execute` (which delegates
    /// here), so the fault-free outcome is bit-identical by construction.
    ///
    /// # Errors
    ///
    /// [`AttackFailure`] wrapping the same error classes as `execute`,
    /// plus the steps that completed before the failure.
    pub fn execute_in(
        &self,
        soc: &mut Soc,
        ctx: &AttackContext,
    ) -> Result<AttackOutcome, AttackFailure> {
        let rec = &ctx.recorder;
        let faults = ctx.faults;
        rec.incr("attack.executions", 1);
        let mut steps = Vec::new();

        // Step 1: identify the domain and measure the pad.
        let span = rec.span("attack.identify");
        let live = match soc.network().measure_pad(&self.pad) {
            Ok(v) => v,
            Err(e) => {
                return Err(AttackFailure { error: voltboot_soc::SocError::Pdn(e).into(), steps })
            }
        };
        rec.advance(IDENTIFY_STEP_NS);
        span.attr("pad", self.pad.as_str());
        span.attr("live_v", live);
        span.end();
        steps.push(StepRecord {
            step: "identify".into(),
            detail: format!("pad {} reads {live:.2} V", self.pad),
        });

        // Step 2: attach the probe at the measured voltage. A glitched
        // contact adds series resistance and sags the deliverable
        // current — the probe is still attached, just badly.
        let span = rec.span("attack.attach");
        let mut probe = self.probe;
        if probe.voltage == 0.0 {
            probe.voltage = live;
        }
        if faults.probe_glitch {
            probe.series_resistance += PROBE_GLITCH_EXTRA_OHMS;
            probe.current_limit *= PROBE_GLITCH_LIMIT_FACTOR;
            rec.incr("attack.fault.probe_glitch", 1);
            rec.event(
                "attack.fault.probe_glitch",
                &format!(
                    "contact glitch: +{PROBE_GLITCH_EXTRA_OHMS} ohm, limit {:.2} A",
                    probe.current_limit
                ),
            );
        }
        if let Err(e) = soc.attach_probe(&self.pad, probe) {
            return Err(AttackFailure { error: e.into(), steps });
        }
        rec.advance(ATTACH_STEP_NS);
        span.attr("setpoint_v", probe.voltage);
        span.attr("limit_a", probe.current_limit);
        span.end();
        steps.push(StepRecord {
            step: "attach".into(),
            detail: format!(
                "probe at {:.2} V, {:.1} A limit on {}",
                probe.voltage, probe.current_limit, self.pad
            ),
        });

        // Step 3: abrupt power cycle, with rail-level faults mapped down
        // into the SoC layer.
        let cycle_faults = CycleFaults {
            brownout_min_voltage: faults.brownout_min_voltage,
            reconnect_misorder: faults.reconnect_misorder,
        };
        let report = match soc.power_cycle_with(self.cycle, cycle_faults, rec) {
            Ok(r) => r,
            Err(e) => return Err(AttackFailure { error: e.into(), steps }),
        };
        let target_rail = soc
            .network()
            .probe_points()
            .iter()
            .find(|p| p.pad == self.pad)
            .map(|p| p.rail.clone())
            .expect("pad resolved during attach");
        let rail = report.outcome.rail(&target_rail);
        let rail_held = rail.map(|r| r.is_held()).unwrap_or(false);
        let transient_min_voltage = rail.and_then(|r| r.transient_min_voltage());
        if rail_held {
            rec.incr("attack.rail_held", 1);
        }
        steps.push(StepRecord {
            step: "power-cycle".into(),
            detail: match transient_min_voltage {
                Some(v) => format!("{target_rail} held; transient minimum {v:.3} V"),
                None => format!("{target_rail} not held"),
            },
        });

        // Step 4: reboot into the attacker's context.
        if !self.skip_reboot {
            let span = rec.span("attack.reboot");
            let source = if soc.boot_rom().boots_from_internal_rom {
                BootSource::InternalRom
            } else {
                // The attacker's USB extraction image: unsigned.
                BootSource::ExternalMedia {
                    image: extraction_stub_image(),
                    entry: 0x8_0000,
                    signed: false,
                }
            };
            let outcome = match soc.boot_traced(source, rec) {
                Ok(o) => o,
                Err(e) => return Err(AttackFailure { error: e.into(), steps }),
            };
            rec.advance(REBOOT_STEP_NS);
            span.end();
            steps.push(StepRecord {
                step: "reboot".into(),
                detail: format!(
                    "entry {:#x}; l2 clobbered: {}; iram clobbered: {} bytes; mbist: {}",
                    outcome.entry,
                    outcome.l2_clobbered,
                    outcome.iram_bytes_clobbered,
                    outcome.mbist_ran
                ),
            });
        }

        // Step 5: extract. Single-pass: a dropout fails the attempt and
        // bit errors corrupt the images silently — the classic flow.
        // Multi-pass: a dropout erases a (deterministic) subset of the
        // passes, bit errors are voted back out, and only the attempt
        // whose *every* pass dropped fails.
        let span = rec.span("attack.extract");
        let passes = self.normalized_passes();
        let mut confidence = Vec::new();
        let images = if passes == 1 {
            if faults.extraction_dropout {
                rec.incr("attack.fault.extraction_dropout", 1);
                rec.event("attack.fault.extraction_dropout", "debug port failed to enumerate");
                return Err(AttackFailure {
                    error: AttackError::ExtractionDenied {
                        detail: "debug port failed to enumerate (injected dropout)".into(),
                    },
                    steps,
                });
            }
            let mut images = match self.extract(soc) {
                Ok(i) => i,
                Err(e) => return Err(AttackFailure { error: e, steps }),
            };
            rec.advance(EXTRACT_IMAGE_NS * images.len() as u64);
            rec.incr("attack.images_extracted", images.len() as u64);
            if faults.readout_bit_error_fraction > 0.0 {
                let mut flipped = 0usize;
                for (i, image) in images.iter_mut().enumerate() {
                    flipped += fault::corrupt_bits(
                        &mut image.bits,
                        faults.readout_bit_error_fraction,
                        faults.readout_noise_seed.wrapping_add(i as u64),
                    );
                    // The attacker checksums what it received — the CRC
                    // seals the corrupted wire bytes, not the silicon.
                    image.reseal();
                }
                rec.incr("attack.fault.readout_bits_flipped", flipped as u64);
                rec.event(
                    "attack.fault.readout_bit_error",
                    &format!("{flipped} bits flipped across {} images", images.len()),
                );
            }
            images
        } else {
            match self.extract_voted(soc, rec, &faults, passes) {
                Ok((images, conf)) => {
                    confidence = conf;
                    images
                }
                Err(e) => return Err(AttackFailure { error: e, steps }),
            }
        };
        span.attr("passes", u64::from(passes));
        span.attr("images", images.len());
        span.end();
        steps.push(StepRecord {
            step: "extract".into(),
            detail: if passes == 1 {
                format!("{} images", images.len())
            } else {
                format!("{} images over {passes} voting passes", images.len())
            },
        });

        Ok(AttackOutcome { steps, rail_held, transient_min_voltage, images, confidence })
    }

    fn extract(&self, soc: &Soc) -> Result<Vec<ExtractedImage>, AttackError> {
        match &self.extraction {
            Extraction::Caches { cores } => extract_caches(soc, cores),
            Extraction::Registers { cores } => extract_registers(soc, cores),
            Extraction::IramJtag => extract_iram(soc),
            Extraction::DramRaw { addr, len } => extract_dram_raw(soc, *addr, *len),
            Extraction::Tlbs { cores } => extract_tlbs(soc, cores),
            Extraction::Btbs { cores } => extract_btbs(soc, cores),
        }
    }

    /// Enumerates the extraction plan's readout units — the granules
    /// (cache way, register file, iRAM, DRAM window) the voted path can
    /// re-read independently — in exactly the order
    /// [`VoltBootAttack::extract`] emits images.
    fn units(&self, soc: &Soc) -> Result<Vec<UnitSpec>, AttackError> {
        let mut units = Vec::new();
        match &self.extraction {
            Extraction::Caches { cores } => {
                for &core in cores {
                    let c = soc.core(core).map_err(|_| bad_core(core))?;
                    for (label, ram, geometry) in [
                        ("l1d", RamId::L1DData, c.l1d.geometry()),
                        ("l1i", RamId::L1IData, c.l1i.geometry()),
                    ] {
                        for way in 0..geometry.ways {
                            units.push(UnitSpec {
                                source: format!("core{core}.{label}.way{way}"),
                                kind: UnitKind::Ram { core, ram, way: way as u8 },
                            });
                        }
                    }
                }
            }
            Extraction::Registers { cores } => {
                for &core in cores {
                    soc.core(core).map_err(|_| bad_core(core))?;
                    units.push(UnitSpec {
                        source: format!("core{core}.vregs"),
                        kind: UnitKind::Registers { core },
                    });
                }
            }
            Extraction::IramJtag => {
                units.push(UnitSpec { source: "iram".into(), kind: UnitKind::Iram });
            }
            Extraction::DramRaw { addr, len } => {
                units.push(UnitSpec {
                    source: format!("dram@{addr:#x}"),
                    kind: UnitKind::DramRaw { addr: *addr, len: *len },
                });
            }
            Extraction::Tlbs { cores } => {
                for &core in cores {
                    soc.core(core).map_err(|_| bad_core(core))?;
                    units.push(UnitSpec {
                        source: format!("core{core}.tlb"),
                        kind: UnitKind::Ram { core, ram: RamId::Tlb, way: 0 },
                    });
                }
            }
            Extraction::Btbs { cores } => {
                for &core in cores {
                    soc.core(core).map_err(|_| bad_core(core))?;
                    units.push(UnitSpec {
                        source: format!("core{core}.btb"),
                        kind: UnitKind::Ram { core, ram: RamId::Btb, way: 0 },
                    });
                }
            }
        }
        Ok(units)
    }

    /// The voted multi-pass readout: cross-check every unit over its
    /// first two surviving passes, selectively re-read only the units
    /// whose CRCs disagree, and resolve disagreements by per-bit
    /// majority vote ([`recover::vote_owned`]) with dropped passes as
    /// erasures. The vote consumes the per-unit dumps, so no pass
    /// buffer is ever copied.
    fn extract_voted(
        &self,
        soc: &Soc,
        rec: &Recorder,
        faults: &StepFaults,
        passes: u32,
    ) -> Result<(Vec<ExtractedImage>, Vec<ImageConfidence>), AttackError> {
        // Which passes a firing dropout erases, decided up front: the
        // port's flakiness is a property of the attempt, not of the
        // read order.
        let erased: Vec<bool> = (0..passes)
            .map(|p| faults.extraction_dropout && FaultPlan::pass_erased(faults.dropout_seed, p))
            .collect();
        let available: Vec<u32> = (0..passes).filter(|&p| !erased[p as usize]).collect();
        if faults.extraction_dropout {
            let dropped = passes as u64 - available.len() as u64;
            rec.incr("attack.fault.extraction_dropout", 1);
            rec.incr("attack.repair.passes_erased", dropped);
            rec.event(
                "attack.fault.extraction_dropout",
                &format!("flaky debug port: {dropped} of {passes} passes dropped"),
            );
        }
        if available.is_empty() {
            return Err(AttackError::ExtractionDenied {
                detail: format!(
                    "debug port dropped all {passes} readout passes (injected dropout)"
                ),
            });
        }

        // One read of `unit` on pass `p`, with that pass's wire noise.
        let read_pass =
            |u: usize, unit: &UnitSpec, p: u32| -> Result<(PackedBits, usize), AttackError> {
                let mut bits = read_unit(soc, unit, rec)?;
                rec.advance(EXTRACT_IMAGE_NS);
                let mut flipped = 0;
                if faults.readout_bit_error_fraction > 0.0 {
                    flipped = fault::corrupt_bits(
                        &mut bits,
                        faults.readout_bit_error_fraction,
                        faults
                            .readout_noise_seed
                            .wrapping_add(u as u64)
                            .wrapping_add(u64::from(p).wrapping_mul(PASS_NOISE_STRIDE)),
                    );
                }
                Ok((bits, flipped))
            };

        let units = self.units(soc)?;
        let mut images = Vec::with_capacity(units.len());
        let mut confidence = Vec::with_capacity(units.len());
        let mut unit_reads = 0u64;
        let mut units_flagged = 0u64;
        let mut flipped_total = 0usize;
        let mut repaired_total = 0u64;
        let mut unresolved_total = 0u64;
        // Passes aligned to their pass index; `None` is an erasure
        // (dropped pass) or a read selective repair skipped. One slot
        // vector serves every unit: the draining vote empties it and
        // the leftover pass buffers retire to the rep arena, so the
        // per-unit loop allocates nothing once the arena is warm.
        let mut pass_bits: Vec<Option<PackedBits>> = (0..passes).map(|_| None).collect();
        for (u, unit) in units.into_iter().enumerate() {
            let reads_before = unit_reads;
            debug_assert!(pass_bits.iter().all(Option::is_none), "slots reset between units");
            // The cross-check CRC of each pass is computed once, right
            // as the dump comes off the wire (while it is cache-hot),
            // never re-derived from the stored buffer.
            let mut check_crcs = [0u64; 2];
            for (slot, &p) in available.iter().take(2).enumerate() {
                let (bits, flipped) = read_pass(u, &unit, p)?;
                unit_reads += 1;
                flipped_total += flipped;
                check_crcs[slot] = recover::crc64_bits(&bits);
                pass_bits[p as usize] = Some(bits);
            }
            // Integrity cross-check: two clean reads of retained SRAM
            // hash identically; a mismatch flags the unit for repair.
            let agree = available.len() < 2 || check_crcs[0] == check_crcs[1];
            if !agree {
                units_flagged += 1;
                for &p in available.iter().skip(2) {
                    let (bits, flipped) = read_pass(u, &unit, p)?;
                    unit_reads += 1;
                    flipped_total += flipped;
                    pass_bits[p as usize] = Some(bits);
                }
            }
            // Draining vote: the resolved image is voted *into* the
            // first surviving pass's buffer, and the unit's label is
            // moved — nothing in the per-unit hot loop copies a dump.
            // The vote seals the resolved CRC in the same word loop, so
            // the image is built without another full hash sweep; the
            // passes it leaves behind are recycled.
            let (resolved, map, crc) =
                recover::vote_sealed_draining(&mut pass_bits).map_err(AttackError::from)?;
            for slot in &mut pass_bits {
                if let Some(p) = slot.take() {
                    par::give_words(p.into_words());
                }
            }
            repaired_total += map.repaired;
            unresolved_total += map.unresolved;
            // Distributions over units: how many reads each one cost
            // (2 when the cross-check agreed, more when repair re-read)
            // and how many bits the vote had to repair in it.
            rec.record("attack.repair.reads_per_unit", unit_reads - reads_before);
            rec.record("attack.repair.repaired_per_unit", map.repaired);
            let image = ExtractedImage::from_sealed(unit.source, resolved, crc);
            confidence.push(ImageConfidence {
                source: image.source.clone(),
                crc64: image.crc64,
                map,
            });
            images.push(image);
        }

        rec.incr("attack.images_extracted", images.len() as u64);
        rec.incr("attack.repair.unit_reads", unit_reads);
        rec.incr("attack.repair.units_flagged", units_flagged);
        rec.incr("attack.repair.bits_repaired", repaired_total);
        rec.incr("attack.repair.bits_unresolved", unresolved_total);
        if faults.readout_bit_error_fraction > 0.0 {
            rec.incr("attack.fault.readout_bits_flipped", flipped_total as u64);
            rec.event(
                "attack.fault.readout_bit_error",
                &format!("{flipped_total} bits flipped across {unit_reads} unit reads"),
            );
        }
        Ok((images, confidence))
    }
}

/// Per-pass stride mixed into the readout noise seed so repeated passes
/// of the same unit see independent wire noise; pass 0 reproduces the
/// single-pass seed exactly.
pub const PASS_NOISE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

fn bad_core(core: usize) -> AttackError {
    AttackError::BadConfiguration { detail: format!("core {core} does not exist") }
}

/// One independently re-readable granule of an extraction plan.
struct UnitSpec {
    source: String,
    kind: UnitKind,
}

enum UnitKind {
    Ram { core: usize, ram: RamId, way: u8 },
    Registers { core: usize },
    Iram,
    DramRaw { addr: u64, len: usize },
}

/// Reads one unit's current bits through the same debug paths the
/// whole-plan extractors use, recording RAMINDEX readout telemetry.
///
/// The dump's byte scratch and the image's word storage both come from
/// the calling thread's [rep arena](par): after the first few reads
/// warm the freelist, re-reading a unit allocates nothing. The returned
/// image's buffer goes back to the arena when the caller retires it
/// ([`PackedBits::into_words`] + [`par::give_words`]).
fn read_unit(soc: &Soc, unit: &UnitSpec, rec: &Recorder) -> Result<PackedBits, AttackError> {
    Ok(match unit.kind {
        UnitKind::Ram { core, ram, way } => {
            let mut bytes = par::take_bytes(0);
            soc.ramindex_unit_into(core, ram, way, false, rec, &mut bytes)?;
            let bits =
                PackedBits::from_bytes_reusing(&bytes, par::take_words(bytes.len().div_ceil(8)));
            par::give_bytes(bytes);
            bits
        }
        UnitKind::Registers { core } => {
            soc.core(core).map_err(|_| bad_core(core))?.vregs.image().map_err(AttackError::from)?
        }
        UnitKind::Iram => {
            let iram = soc
                .iram()
                .ok_or(AttackError::BadConfiguration { detail: "device has no iram".into() })?;
            let bytes = soc.jtag_read(iram.base(), iram.len())?;
            PackedBits::from_bytes_reusing(&bytes, par::take_words(bytes.len().div_ceil(8)))
        }
        UnitKind::DramRaw { addr, len } => {
            let cells = soc.dram().raw_cells(addr, len).map_err(AttackError::from)?;
            PackedBits::from_bytes_reusing(cells, par::take_words(cells.len().div_ceil(8)))
        }
    })
}

/// Reads every way of both L1 caches of the given cores through the
/// `RAMINDEX` debug path — the whole-way read
/// ([`voltboot_soc::Soc::ramindex_unit`]) issues every beat in order,
/// exactly as the EL3 extraction image does (request → `DSB SY` → `ISB`
/// → four data registers).
pub fn extract_caches(soc: &Soc, cores: &[usize]) -> Result<Vec<ExtractedImage>, AttackError> {
    let mut images = Vec::new();
    for &core in cores {
        let c = soc.core(core).map_err(|_| bad_core(core))?;
        for (label, ram, geometry) in
            [("l1d", RamId::L1DData, c.l1d.geometry()), ("l1i", RamId::L1IData, c.l1i.geometry())]
        {
            for way in 0..geometry.ways {
                let bytes = soc.ramindex_unit(core, ram, way as u8, false)?;
                images.push(ExtractedImage::new(
                    format!("core{core}.{label}.way{way}"),
                    PackedBits::from_bytes(&bytes),
                ));
            }
        }
    }
    Ok(images)
}

/// Reads the NEON register files of the given cores (the §7.2 target).
pub fn extract_registers(soc: &Soc, cores: &[usize]) -> Result<Vec<ExtractedImage>, AttackError> {
    let mut images = Vec::new();
    for &core in cores {
        let c = soc.core(core).map_err(|_| bad_core(core))?;
        let image = c.vregs.image().map_err(AttackError::from)?;
        images.push(ExtractedImage::new(format!("core{core}.vregs"), image));
    }
    Ok(images)
}

/// Dumps the iRAM over JTAG (the §7.3 path; no external boot media
/// needed on the i.MX535).
pub fn extract_iram(soc: &Soc) -> Result<Vec<ExtractedImage>, AttackError> {
    let iram =
        soc.iram().ok_or(AttackError::BadConfiguration { detail: "device has no iram".into() })?;
    let bytes = soc.jtag_read(iram.base(), iram.len())?;
    Ok(vec![ExtractedImage::new("iram", PackedBits::from_bytes(&bytes))])
}

/// Reads the main TLB entry RAM of each listed core through `RAMINDEX`,
/// one entry word per beat.
pub fn extract_tlbs(soc: &Soc, cores: &[usize]) -> Result<Vec<ExtractedImage>, AttackError> {
    let mut images = Vec::new();
    for &core in cores {
        soc.core(core).map_err(|_| bad_core(core))?;
        let bytes = soc.ramindex_unit(core, RamId::Tlb, 0, false)?;
        images.push(ExtractedImage::new(format!("core{core}.tlb"), PackedBits::from_bytes(&bytes)));
    }
    Ok(images)
}

/// Reads the BTB entry RAM of each listed core through `RAMINDEX`.
pub fn extract_btbs(soc: &Soc, cores: &[usize]) -> Result<Vec<ExtractedImage>, AttackError> {
    let mut images = Vec::new();
    for &core in cores {
        soc.core(core).map_err(|_| bad_core(core))?;
        let bytes = soc.ramindex_unit(core, RamId::Btb, 0, false)?;
        images.push(ExtractedImage::new(format!("core{core}.btb"), PackedBits::from_bytes(&bytes)));
    }
    Ok(images)
}

/// Decodes `(branch_pc, target)` pairs from an extracted BTB image.
pub fn btb_branches(image: &ExtractedImage) -> Vec<(u64, u64)> {
    image
        .bits
        .to_bytes()
        .chunks_exact(8)
        .enumerate()
        .filter_map(|(i, c)| {
            let word = u64::from_le_bytes(c.try_into().expect("8 bytes"));
            if word & (1 << 63) == 0 {
                return None;
            }
            let tag = (word >> 38) & ((1 << 24) - 1);
            let pc = ((tag << 6) | i as u64) << 2;
            let target = (word & ((1 << 38) - 1)) << 2;
            Some((pc, target))
        })
        .collect()
}

/// Decodes the valid page numbers from an extracted TLB image.
pub fn tlb_pages(image: &ExtractedImage) -> Vec<u64> {
    image
        .bits
        .to_bytes()
        .chunks_exact(8)
        .filter_map(|c| {
            let word = u64::from_le_bytes(c.try_into().expect("8 bytes"));
            (word & (1 << 63) != 0).then_some(word & 0x000F_FFFF_FFFF_FFFF)
        })
        .collect()
}

/// Dumps raw DRAM cells — what a physical probe on the module (or a
/// FROST-style minimal kernel) sees: post-decay, and scrambled if the
/// controller scrambles.
pub fn extract_dram_raw(
    soc: &Soc,
    addr: u64,
    len: usize,
) -> Result<Vec<ExtractedImage>, AttackError> {
    let bytes = soc.dram().raw_cells(addr, len).map_err(AttackError::from)?.to_vec();
    Ok(vec![ExtractedImage::new(format!("dram@{addr:#x}"), PackedBits::from_bytes(&bytes))])
}

/// A placeholder extraction image: the attacker's USB payload. Its
/// contents never execute in the simulation (extraction runs through the
/// host-side debug path), but it must exist, be unsigned, and load.
fn extraction_stub_image() -> Vec<u8> {
    voltboot_armlite::program::builders::ramindex_read(RamId::L1DData.code(), 0, 0).bytes()
}

/// The §3 baseline: a traditional cold-boot attempt — chill the board,
/// cut power briefly, reboot, extract. No probe is attached, so survival
/// depends entirely on the SRAM's intrinsic retention at temperature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdBootAttack {
    /// Ambient temperature the device was cooled to.
    pub temperature: Temperature,
    /// How long the board stays without power (manual re-plug).
    pub off_millis: u64,
    /// What to extract after reboot.
    pub extraction: Extraction,
}

impl ColdBootAttack {
    /// A cold boot at `celsius` with a fast (few-ms) power cycle.
    pub fn new(celsius: f64, off_millis: u64) -> Self {
        ColdBootAttack {
            temperature: Temperature::from_celsius(celsius),
            off_millis,
            extraction: Extraction::Caches { cores: vec![0] },
        }
    }

    /// Sets what to extract.
    pub fn extraction(mut self, extraction: Extraction) -> Self {
        self.extraction = extraction;
        self
    }

    /// Runs the cold-boot flow against `soc`.
    ///
    /// # Errors
    ///
    /// Same classes as [`VoltBootAttack::execute`].
    pub fn execute(&self, soc: &mut Soc) -> Result<AttackOutcome, AttackError> {
        let mut steps = vec![StepRecord {
            step: "chill".into(),
            detail: format!("device stabilized at {}", self.temperature),
        }];
        soc.power_cycle(PowerCycleSpec {
            off_duration: std::time::Duration::from_millis(self.off_millis),
            temperature: self.temperature,
        })?;
        steps.push(StepRecord {
            step: "power-cycle".into(),
            detail: format!("{} ms without power at {}", self.off_millis, self.temperature),
        });
        let source = if soc.boot_rom().boots_from_internal_rom {
            BootSource::InternalRom
        } else {
            BootSource::ExternalMedia {
                image: extraction_stub_image(),
                entry: 0x8_0000,
                signed: false,
            }
        };
        soc.boot(source)?;
        steps.push(StepRecord { step: "reboot".into(), detail: "attacker media".into() });

        let attack = VoltBootAttack {
            pad: String::new(),
            probe: Probe::bench_supply(0.0, 0.0),
            cycle: PowerCycleSpec::quick(),
            extraction: self.extraction.clone(),
            skip_reboot: true,
            passes: 1,
        };
        let images = attack.extract(soc)?;
        steps.push(StepRecord {
            step: "extract".into(),
            detail: format!("{} images", images.len()),
        });
        Ok(AttackOutcome {
            steps,
            rail_held: false,
            transient_min_voltage: None,
            images,
            confidence: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltboot_armlite::program::builders;
    use voltboot_soc::devices;

    fn prepared_pi4() -> Soc {
        let mut soc = devices::raspberry_pi_4(0xA11ACE);
        soc.power_on_all();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(512), 0x10000, 1_000_000);
        soc
    }

    fn nop_count(bits: &PackedBits) -> usize {
        bits.to_bytes()
            .chunks_exact(4)
            .filter(|w| u32::from_le_bytes([w[0], w[1], w[2], w[3]]) == 0xD503201F)
            .count()
    }

    #[test]
    fn volt_boot_retains_icache_exactly() {
        let mut soc = prepared_pi4();
        let before = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let outcome = VoltBootAttack::new("TP15").execute(&mut soc).unwrap();
        assert!(outcome.rail_held);
        assert!(outcome.transient_min_voltage.unwrap() > 0.6);
        let extracted = outcome.image("core0.l1i.way0").unwrap();
        assert_eq!(extracted.bits, before, "100% accuracy: extraction == pre-cycle image");
        assert!(nop_count(&extracted.bits) >= 256);
        assert_eq!(outcome.steps.len(), 5);
    }

    #[test]
    fn weak_probe_loses_cells() {
        let mut soc = prepared_pi4();
        let before = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let outcome = VoltBootAttack::new("TP15")
            .probe(Probe::weak_source(0.0, 0.2))
            .execute(&mut soc)
            .unwrap();
        assert!(outcome.rail_held);
        assert!(outcome.transient_min_voltage.unwrap() < 0.3);
        let extracted = outcome.image("core0.l1i.way0").unwrap();
        let hd = extracted.bits.fractional_hamming(&before);
        assert!(hd > 0.05, "droop below retention voltage must corrupt cells, hd={hd}");
    }

    #[test]
    fn cold_boot_fails_at_minus_forty() {
        let mut soc = prepared_pi4();
        let before = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let outcome = ColdBootAttack::new(-40.0, 5).execute(&mut soc).unwrap();
        assert!(!outcome.rail_held);
        let extracted = outcome.image("core0.l1i.way0").unwrap();
        // The sled occupied 2 KB of the 16 KB way; the rest was already
        // power-up state, so the whole-way distance lands around
        // (2/16)*0.5 + (14/16)*0.1 ~= 0.15. What matters: the sled is gone.
        let hd = extracted.bits.fractional_hamming(&before);
        assert!(hd > 0.1, "cold boot at -40C must lose the data, hd={hd}");
        assert_eq!(nop_count(&extracted.bits), 0);
    }

    #[test]
    fn cold_boot_partially_works_at_minus_110() {
        let mut soc = prepared_pi4();
        let before = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let outcome = ColdBootAttack::new(-110.0, 20).execute(&mut soc).unwrap();
        let extracted = outcome.image("core0.l1i.way0").unwrap();
        let hd = extracted.bits.fractional_hamming(&before);
        // ~80% retention -> ~10% bit error (half the lost cells flip).
        assert!(hd > 0.02 && hd < 0.25, "deep cold retains partially, hd={hd}");
    }

    #[test]
    fn register_extraction_after_attack() {
        let mut soc = devices::raspberry_pi_4(7);
        soc.power_on_all();
        soc.run_program(0, &builders::fill_vector_registers(), 0x10000, 10_000);
        let outcome = VoltBootAttack::new("TP15")
            .extraction(Extraction::Registers { cores: vec![0] })
            .execute(&mut soc)
            .unwrap();
        let image = outcome.image("core0.vregs").unwrap();
        let bytes = image.bits.to_bytes();
        assert_eq!(&bytes[..16], &[0xFF; 16], "v0 pattern");
        assert_eq!(&bytes[16..32], &[0xAA; 16], "v1 pattern");
    }

    #[test]
    fn iram_extraction_on_imx() {
        let mut soc = devices::imx53_qsb(3);
        soc.power_on_all();
        let base = soc.iram().unwrap().base();
        soc.jtag_write(base + 0x8000, &[0xB1; 256]).unwrap();
        let outcome =
            VoltBootAttack::new("SH13").extraction(Extraction::IramJtag).execute(&mut soc).unwrap();
        let image = outcome.image("iram").unwrap();
        assert_eq!(&image.bits.to_bytes()[0x8000..0x8100], &[0xB1; 256][..]);
    }

    #[test]
    fn tlb_extraction_leaks_the_victims_address_trace() {
        let mut soc = devices::raspberry_pi_4(0x71B);
        soc.power_on_all();
        soc.enable_caches(0);
        // The victim touches a recognizable data page.
        let p = builders::fill_bytes(0x55_5000, 0x11, 64);
        soc.run_program(0, &p, 0x10000, 1_000_000);

        let outcome = VoltBootAttack::new("TP15")
            .extraction(Extraction::Tlbs { cores: vec![0] })
            .execute(&mut soc)
            .unwrap();
        let image = outcome.image("core0.tlb").unwrap();
        let pages = crate::attack::tlb_pages(image);
        assert!(pages.contains(&0x555), "victim data page must appear: {pages:x?}");
        assert!(pages.contains(&0x10), "victim code page must appear: {pages:x?}");
    }

    #[test]
    fn btb_extraction_leaks_control_flow_history() {
        let mut soc = devices::raspberry_pi_4(0xB7B);
        soc.power_on_all();
        soc.enable_caches(0);
        // A victim with a loop: the backward branch lands in the BTB.
        let p = builders::fill_bytes(0x20_0000, 0x22, 256);
        soc.run_program(0, &p, 0x10000, 1_000_000);

        let outcome = VoltBootAttack::new("TP15")
            .extraction(Extraction::Btbs { cores: vec![0] })
            .execute(&mut soc)
            .unwrap();
        let branches = crate::attack::btb_branches(outcome.image("core0.btb").unwrap());
        // The fill loop's cbnz branches backwards within the program.
        assert!(
            branches.iter().any(|&(pc, target)| pc > target
                && (0x10000..0x10100).contains(&pc)
                && (0x10000..0x10100).contains(&target)),
            "expected the victim's loop branch: {branches:x?}"
        );
    }

    #[test]
    fn tlb_trace_is_gone_after_plain_reboot() {
        let mut soc = devices::raspberry_pi_4(0x71C);
        soc.power_on_all();
        soc.enable_caches(0);
        let p = builders::fill_bytes(0x55_5000, 0x11, 64);
        soc.run_program(0, &p, 0x10000, 1_000_000);
        let cold = ColdBootAttack::new(-40.0, 5)
            .extraction(Extraction::Tlbs { cores: vec![0] })
            .execute(&mut soc)
            .unwrap();
        let pages = crate::attack::tlb_pages(cold.image("core0.tlb").unwrap());
        assert!(!pages.contains(&0x555), "trace must not survive: {pages:x?}");
    }

    #[test]
    fn authenticated_boot_defeats_the_attack() {
        let mut soc = prepared_pi4();
        let mut policy = soc.policy();
        policy.mandated_authenticated_boot = true;
        soc.set_policy(policy);
        let err = VoltBootAttack::new("TP15").execute(&mut soc).unwrap_err();
        assert!(matches!(err, AttackError::BootDefeated { .. }));
    }

    #[test]
    fn bad_core_is_a_configuration_error() {
        let mut soc = prepared_pi4();
        let err = VoltBootAttack::new("TP15")
            .extraction(Extraction::Caches { cores: vec![9] })
            .execute(&mut soc)
            .unwrap_err();
        assert!(matches!(err, AttackError::BadConfiguration { .. }));
    }

    #[test]
    fn iram_extraction_on_pi_is_a_configuration_error() {
        let mut soc = prepared_pi4();
        let err = VoltBootAttack::new("TP15")
            .extraction(Extraction::IramJtag)
            .execute(&mut soc)
            .unwrap_err();
        assert!(matches!(err, AttackError::BadConfiguration { .. }));
    }

    #[test]
    fn passes_are_normalized_to_odd_in_range() {
        let a = VoltBootAttack::new("TP15");
        assert_eq!(a.clone().passes(0).normalized_passes(), 1);
        assert_eq!(a.clone().passes(1).normalized_passes(), 1);
        assert_eq!(a.clone().passes(2).normalized_passes(), 3);
        assert_eq!(a.clone().passes(3).normalized_passes(), 3);
        assert_eq!(a.clone().passes(14).normalized_passes(), 15);
        assert_eq!(a.passes(99).normalized_passes(), 15);
    }

    #[test]
    fn quiescent_multi_pass_is_bit_identical_to_single_pass() {
        let single = VoltBootAttack::new("TP15").execute(&mut prepared_pi4()).unwrap();
        let voted = VoltBootAttack::new("TP15").passes(3).execute(&mut prepared_pi4()).unwrap();
        assert_eq!(single.images, voted.images, "no faults: voting must change nothing");
        assert!(single.confidence.is_empty(), "single-pass carries no vote confidence");
        assert_eq!(voted.confidence.len(), voted.images.len());
        for c in &voted.confidence {
            assert_eq!(c.map.unanimous, c.map.total_bits, "clean reads agree everywhere");
            assert_eq!(c.map.votes, 2, "a clean cross-check stops after two passes");
        }
    }

    #[test]
    fn voting_repairs_readout_bit_errors() {
        let noisy = |passes: u32| {
            let mut soc = prepared_pi4();
            let before = soc.core(0).unwrap().l1i.way_image(0).unwrap();
            let ctx = AttackContext {
                recorder: Recorder::new(),
                faults: StepFaults {
                    readout_bit_error_fraction: fault::READOUT_ERROR_FRACTION,
                    readout_noise_seed: 0xBEEF,
                    ..StepFaults::none()
                },
            };
            let out =
                VoltBootAttack::new("TP15").passes(passes).execute_in(&mut soc, &ctx).unwrap();
            (out, before)
        };
        let (single, before) = noisy(1);
        let (voted, _) = noisy(3);
        let err1 = single.image("core0.l1i.way0").unwrap().bits.fractional_hamming(&before);
        let err3 = voted.image("core0.l1i.way0").unwrap().bits.fractional_hamming(&before);
        assert!(err1 > 0.0, "single-pass wire noise must corrupt bits");
        assert!(err3 < err1, "3-pass voting must strictly reduce errors: {err3} vs {err1}");
        let total = voted.confidence_total();
        assert!(total.repaired > 0, "disagreeing passes must repair bits");
        assert_eq!(
            total.unanimous + total.repaired + total.unresolved,
            total.total_bits,
            "every bit is classified exactly once"
        );
    }

    #[test]
    fn flaky_port_survives_multi_pass_but_kills_single_pass() {
        // A dropout seed that erases some but not all of 5 passes.
        let seed = (1u64..)
            .find(|&s| {
                let alive = (0..5).filter(|&p| !FaultPlan::pass_erased(s, p)).count();
                (1..5).contains(&alive)
            })
            .unwrap();
        let faults =
            StepFaults { extraction_dropout: true, dropout_seed: seed, ..StepFaults::none() };
        let ctx = AttackContext { recorder: Recorder::new(), faults };
        let err = VoltBootAttack::new("TP15").execute_in(&mut prepared_pi4(), &ctx).unwrap_err();
        assert!(matches!(err.error, AttackError::ExtractionDenied { .. }));
        let out =
            VoltBootAttack::new("TP15").passes(5).execute_in(&mut prepared_pi4(), &ctx).unwrap();
        assert!(!out.images.is_empty(), "surviving passes still yield images");
        assert!(out.confidence.iter().all(|c| c.map.votes >= 1));
    }

    #[test]
    fn all_passes_erased_denies_extraction() {
        let seed = (1u64..).find(|&s| (0..3).all(|p| FaultPlan::pass_erased(s, p))).unwrap();
        let faults =
            StepFaults { extraction_dropout: true, dropout_seed: seed, ..StepFaults::none() };
        let ctx = AttackContext { recorder: Recorder::new(), faults };
        let err = VoltBootAttack::new("TP15")
            .passes(3)
            .execute_in(&mut prepared_pi4(), &ctx)
            .unwrap_err();
        assert!(matches!(err.error, AttackError::ExtractionDenied { .. }));
        assert_eq!(err.steps.len(), 4, "all pre-extract steps completed");
    }

    #[test]
    fn outcome_integrity_checks_catch_tampering() {
        let mut outcome = VoltBootAttack::new("TP15").execute(&mut prepared_pi4()).unwrap();
        outcome.verify_integrity().unwrap();
        let victim = &mut outcome.images[0];
        let flipped = !victim.bits.get(3);
        victim.bits.set(3, flipped);
        assert!(matches!(
            outcome.verify_integrity().unwrap_err(),
            IntegrityError::CrcMismatch { .. }
        ));
    }
}
