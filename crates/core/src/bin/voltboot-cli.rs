//! `voltboot-cli` — drive the simulated Volt Boot attack from the shell.
//!
//! ```text
//! voltboot-cli devices
//! voltboot-cli attack   --device pi4 --victim pattern --extract caches
//! voltboot-cli attack   --device imx53 --extract iram
//! voltboot-cli coldboot --device pi4 --celsius -40 --off-ms 5
//! voltboot-cli sweep    --device pi4
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use voltboot::analysis;
use voltboot::attack::{ColdBootAttack, Extraction, VoltBootAttack};
use voltboot::report::{pct, TextTable};
use voltboot::workloads;
use voltboot_pdn::Probe;
use voltboot_soc::{devices, Soc};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  voltboot-cli devices
  voltboot-cli attack   --device <pi4|pi3|imx53> [--victim <nop|pattern|registers|bitmap>]
                        [--extract <caches|registers|iram|tlb>] [--current <amps>]
                        [--seed <n>]
  voltboot-cli coldboot --device <pi4|pi3|imx53> [--celsius <t>] [--off-ms <ms>]
                        [--victim ...] [--extract ...] [--seed <n>]
  voltboot-cli sweep    --device <pi4|pi3> [--seed <n>]";

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let opts = parse_flags(rest)?;
    match command.as_str() {
        "devices" => {
            cmd_devices();
            Ok(())
        }
        "attack" => cmd_attack(&opts),
        "coldboot" => cmd_coldboot(&opts),
        "sweep" => cmd_sweep(&opts),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Parses `--key value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key =
            flag.strip_prefix("--").ok_or_else(|| format!("expected --flag, found {flag:?}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), value.clone());
    }
    Ok(out)
}

fn build_device(opts: &HashMap<String, String>) -> Result<(Soc, &'static str), String> {
    let seed: u64 =
        opts.get("seed").map(|s| s.parse()).transpose().map_err(|_| "bad --seed")?.unwrap_or(0xC11);
    let device = opts.get("device").map(String::as_str).ok_or("--device is required")?;
    let (soc, pad) = match device {
        "pi4" => (devices::raspberry_pi_4(seed), "TP15"),
        "pi3" => (devices::raspberry_pi_3(seed), "PP58"),
        "imx53" => (devices::imx53_qsb(seed), "SH13"),
        other => return Err(format!("unknown device {other:?} (pi4, pi3, imx53)")),
    };
    Ok((soc, pad))
}

fn stage_victim(soc: &mut Soc, victim: &str) -> Result<(), String> {
    match victim {
        "nop" => workloads::baremetal_nop_fill(soc).map_err(|e| e.to_string()),
        "pattern" => {
            let mut noise = voltboot::os_noise::OsNoise::new(1);
            workloads::os_pattern_app(soc, 0, 0xAA, 8 * 1024, &mut noise).map_err(|e| e.to_string())
        }
        "registers" => {
            for core in 0..soc.core_count() {
                workloads::register_fill(soc, core).map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        "bitmap" => workloads::iram_bitmap(soc).map(|_| ()).map_err(|e| e.to_string()),
        other => Err(format!("unknown victim {other:?} (nop, pattern, registers, bitmap)")),
    }
}

fn parse_extraction(soc: &Soc, opts: &HashMap<String, String>) -> Result<Extraction, String> {
    let all_cores: Vec<usize> = (0..soc.core_count()).collect();
    match opts.get("extract").map(String::as_str).unwrap_or("caches") {
        "caches" => Ok(Extraction::Caches { cores: all_cores }),
        "registers" => Ok(Extraction::Registers { cores: all_cores }),
        "iram" => Ok(Extraction::IramJtag),
        "tlb" => Ok(Extraction::Tlbs { cores: all_cores }),
        "btb" => Ok(Extraction::Btbs { cores: all_cores }),
        other => Err(format!("unknown extraction {other:?} (caches, registers, iram, tlb, btb)")),
    }
}

fn cmd_devices() {
    let mut table = TextTable::new(["id", "Board", "SoC", "CPU", "Pad", "Rail"]);
    for (id, build) in [
        ("pi4", devices::raspberry_pi_4 as fn(u64) -> Soc),
        ("pi3", devices::raspberry_pi_3),
        ("imx53", devices::imx53_qsb),
    ] {
        let soc = build(0);
        let pad = soc.network().probe_points()[0].clone();
        let volts = soc.network().pmic().rail(&pad.rail).unwrap().nominal_voltage;
        table.row([
            id.to_string(),
            soc.board_name().to_string(),
            soc.soc_name().to_string(),
            format!("{}x {}", soc.core_count(), soc.cpu_name()),
            pad.pad,
            format!("{} ({volts} V)", pad.rail),
        ]);
    }
    println!("{}", table.render());
}

fn summarize(outcome: &voltboot::AttackOutcome) {
    for step in &outcome.steps {
        println!("  [{}] {}", step.step, step.detail);
    }
    println!();
    let mut table =
        TextTable::new(["Image", "Bits", "Ones", "Entropy", "Decodable instrs", "Key schedules"]);
    for img in &outcome.images {
        table.row([
            img.source.clone(),
            img.bits.len().to_string(),
            pct(img.bits.ones_fraction()),
            format!("{:.2} b/B", analysis::byte_entropy(&img.bits)),
            analysis::count_decodable_instructions(&img.bits).to_string(),
            analysis::find_key_schedules(&img.bits).len().to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn cmd_attack(opts: &HashMap<String, String>) -> Result<(), String> {
    let (mut soc, pad) = build_device(opts)?;
    soc.power_on_all();
    let default_victim = if soc.iram().is_some() { "bitmap" } else { "nop" };
    stage_victim(&mut soc, opts.get("victim").map(String::as_str).unwrap_or(default_victim))?;

    let current: f64 = opts
        .get("current")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --current")?
        .unwrap_or(3.0);
    let default_extract = if soc.iram().is_some() { "iram" } else { "caches" };
    let extraction = match opts.get("extract") {
        Some(_) => parse_extraction(&soc, opts)?,
        None => {
            let mut opts2 = opts.clone();
            opts2.insert("extract".into(), default_extract.into());
            parse_extraction(&soc, &opts2)?
        }
    };

    let outcome = VoltBootAttack::new(pad)
        .probe(Probe::bench_supply(0.0, current))
        .extraction(extraction)
        .execute(&mut soc)
        .map_err(|e| e.to_string())?;
    println!("Volt Boot against {} ({}):\n", soc.board_name(), soc.soc_name());
    summarize(&outcome);
    Ok(())
}

fn cmd_coldboot(opts: &HashMap<String, String>) -> Result<(), String> {
    let (mut soc, _) = build_device(opts)?;
    soc.power_on_all();
    let default_victim = if soc.iram().is_some() { "bitmap" } else { "nop" };
    stage_victim(&mut soc, opts.get("victim").map(String::as_str).unwrap_or(default_victim))?;

    let celsius: f64 = opts
        .get("celsius")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --celsius")?
        .unwrap_or(-40.0);
    let off_ms: u64 =
        opts.get("off-ms").map(|s| s.parse()).transpose().map_err(|_| "bad --off-ms")?.unwrap_or(5);
    let default_extract = if soc.iram().is_some() { "iram" } else { "caches" };
    let extraction = match opts.get("extract") {
        Some(_) => parse_extraction(&soc, opts)?,
        None => {
            let mut opts2 = opts.clone();
            opts2.insert("extract".into(), default_extract.into());
            parse_extraction(&soc, &opts2)?
        }
    };

    let outcome = ColdBootAttack::new(celsius, off_ms)
        .extraction(extraction)
        .execute(&mut soc)
        .map_err(|e| e.to_string())?;
    println!("Cold boot ({celsius} C, {off_ms} ms) against {}:\n", soc.board_name());
    summarize(&outcome);
    Ok(())
}

fn cmd_sweep(opts: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 =
        opts.get("seed").map(|s| s.parse()).transpose().map_err(|_| "bad --seed")?.unwrap_or(0xC11);
    println!("probe current limit vs extraction accuracy:\n");
    let mut table = TextTable::new(["Limit", "Transient min", "Accuracy"]);
    for p in voltboot::experiments::ablations::probe_current_sweep(seed) {
        table.row([
            format!("{:.1} A", p.current_limit),
            format!("{:.3} V", p.transient_min_voltage),
            pct(p.accuracy),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}
