//! Campaign runner: many attack repetitions under a fault plan.
//!
//! A single [`VoltBootAttack::execute`] answers "does the attack work
//! once, on a clean bench". A [`Campaign`] answers the operational
//! question: across N repetitions with realistic glitch rates, how often
//! does it work, how often does it degrade, and what does a failed
//! extraction leave behind? Each repetition gets a fresh victim from a
//! factory closure, each attempt draws its faults deterministically from
//! the campaign's [`FaultPlan`], failed attempts retry with doubling
//! (virtual-clock) backoff, and an exhausted repetition records a
//! *partial* outcome — the campaign never panics and never aborts early.
//!
//! Long campaigns can **checkpoint** after every repetition
//! ([`Campaign::run_checkpointed`]) and **resume** from where they were
//! killed ([`Campaign::resume`]): because the fault plan is counter-mode
//! and the telemetry clock is virtual, a resumed campaign's final report
//! is *byte-identical* to the uninterrupted run's. A per-repetition
//! virtual-clock deadline ([`Campaign::deadline_ns`]) bounds how long a
//! repetition may keep retrying before it records
//! [`RepStatus::TimedOut`].
//!
//! Everything the run produces — per-step timings, fault counters, the
//! per-rep records — exports as hand-rolled JSON that is byte-identical
//! across runs with the same seeds.
//!
//! Repetitions are independent by construction (counter-mode faults, a
//! fresh victim per attempt, per-rep telemetry on the virtual clock), so
//! campaigns also run **sharded across threads**
//! ([`Campaign::run_parallel`] and friends): workers claim reps from a
//! shared counter and a merger absorbs the results back in rep order,
//! keeping the report and every checkpoint byte-identical to the
//! sequential run's for any thread count.

use crate::attack::{AttackContext, VoltBootAttack};
use crate::fault::FaultPlan;
use crate::recover::{self, ConfidenceMap};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use voltboot_soc::Soc;
use voltboot_sram::par;
use voltboot_telemetry::{json, parse, Recorder};

/// Retry behaviour for failed attack attempts within one repetition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per repetition (at least 1).
    pub max_attempts: u32,
    /// Virtual backoff before the first retry; doubles per retry.
    pub initial_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, initial_backoff_ns: 50_000_000 }
    }
}

impl RetryPolicy {
    /// The virtual backoff after failed attempt `attempt` (0-based):
    /// `initial_backoff_ns * 2^attempt`, saturating at `u64::MAX`
    /// instead of overflowing once the shift passes 63 — a
    /// `max_attempts` beyond 64 is unusual but must not panic the
    /// campaign.
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.initial_backoff_ns.saturating_mul(factor)
    }
}

/// How one repetition ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepStatus {
    /// The attack completed with the rail held and no fault fired on the
    /// winning attempt.
    Success,
    /// The attack completed, but a fault fired (or the rail was not
    /// held): the outcome exists but is degraded.
    Degraded,
    /// Every attempt failed; the record holds the partial outcome of the
    /// last attempt.
    Failed,
    /// Retries pushed the repetition past the campaign's per-rep
    /// virtual-clock deadline; the record holds the partial outcome of
    /// the last attempt tried.
    TimedOut,
}

impl RepStatus {
    fn as_str(self) -> &'static str {
        match self {
            RepStatus::Success => "success",
            RepStatus::Degraded => "degraded",
            RepStatus::Failed => "failed",
            RepStatus::TimedOut => "timed_out",
        }
    }

    fn parse(s: &str) -> Option<RepStatus> {
        Some(match s {
            "success" => RepStatus::Success,
            "degraded" => RepStatus::Degraded,
            "failed" => RepStatus::Failed,
            "timed_out" => RepStatus::TimedOut,
            _ => return None,
        })
    }
}

/// What one repetition recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct RepRecord {
    /// Repetition index.
    pub rep: u64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// How the repetition ended.
    pub status: RepStatus,
    /// Whether the winning attempt held the rail (false when failed).
    pub rail_held: bool,
    /// Images the winning attempt extracted (0 when failed).
    pub images: usize,
    /// Fault classes that fired across all attempts of this repetition.
    pub faults_fired: Vec<String>,
    /// Steps the last attempt completed (the partial outcome on failure;
    /// the full flow on success).
    pub steps_completed: usize,
    /// The last attempt's error, when the repetition failed.
    pub error: Option<String>,
    /// Aggregate vote confidence across the winning attempt's images
    /// (all zeros on single-pass runs and on failures).
    pub confidence: ConfidenceMap,
}

impl RepRecord {
    /// The record as a deterministic JSON object — the exact shape the
    /// campaign report and the checkpoint file both embed.
    pub fn to_value(&self) -> json::Value {
        json::Value::object(vec![
            ("rep", json::Value::from(self.rep)),
            ("attempts", json::Value::from(u64::from(self.attempts))),
            ("status", json::Value::from(self.status.as_str())),
            ("rail_held", json::Value::from(self.rail_held)),
            ("images", json::Value::from(self.images)),
            (
                "faults_fired",
                json::Value::Array(
                    self.faults_fired.iter().map(|f| json::Value::from(f.as_str())).collect(),
                ),
            ),
            ("steps_completed", json::Value::from(self.steps_completed)),
            ("error", self.error.as_deref().map(json::Value::from).unwrap_or(json::Value::Null)),
            (
                "confidence",
                json::Value::object(vec![
                    ("total_bits", json::Value::from(self.confidence.total_bits)),
                    ("unanimous", json::Value::from(self.confidence.unanimous)),
                    ("repaired", json::Value::from(self.confidence.repaired)),
                    ("unresolved", json::Value::from(self.confidence.unresolved)),
                    ("votes", json::Value::from(u64::from(self.confidence.votes))),
                ]),
            ),
        ])
    }

    /// Rebuilds a record from [`RepRecord::to_value`] output (the
    /// checkpoint-load path).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Corrupt`] naming the missing or mistyped field.
    pub fn from_value(v: &json::Value) -> Result<RepRecord, CampaignError> {
        let field = |k: &str| {
            v.get(k).and_then(json::Value::as_u64).ok_or_else(|| CampaignError::Corrupt {
                detail: format!("record field {k} must be a u64"),
            })
        };
        let status_str = v.get("status").and_then(json::Value::as_str).ok_or_else(|| {
            CampaignError::Corrupt { detail: "record field status must be a string".into() }
        })?;
        let status = RepStatus::parse(status_str).ok_or_else(|| CampaignError::Corrupt {
            detail: format!("unknown rep status {status_str:?}"),
        })?;
        let mut faults_fired = Vec::new();
        for f in v.get("faults_fired").and_then(json::Value::as_array).ok_or_else(|| {
            CampaignError::Corrupt { detail: "record field faults_fired must be an array".into() }
        })? {
            faults_fired.push(
                f.as_str()
                    .ok_or_else(|| CampaignError::Corrupt {
                        detail: "faults_fired entries must be strings".into(),
                    })?
                    .to_string(),
            );
        }
        let error = match v.get("error") {
            Some(json::Value::Null) | None => None,
            Some(e) => Some(
                e.as_str()
                    .ok_or_else(|| CampaignError::Corrupt {
                        detail: "record field error must be a string or null".into(),
                    })?
                    .to_string(),
            ),
        };
        let conf = v.get("confidence").ok_or_else(|| CampaignError::Corrupt {
            detail: "record missing confidence object".into(),
        })?;
        let conf_field = |k: &str| {
            conf.get(k).and_then(json::Value::as_u64).ok_or_else(|| CampaignError::Corrupt {
                detail: format!("confidence field {k} must be a u64"),
            })
        };
        let confidence = ConfidenceMap {
            total_bits: conf_field("total_bits")?,
            unanimous: conf_field("unanimous")?,
            repaired: conf_field("repaired")?,
            unresolved: conf_field("unresolved")?,
            votes: conf_field("votes")? as u32,
        };
        let rail_held = v.get("rail_held").and_then(json::Value::as_bool).ok_or_else(|| {
            CampaignError::Corrupt { detail: "record field rail_held must be a bool".into() }
        })?;
        Ok(RepRecord {
            rep: field("rep")?,
            attempts: field("attempts")? as u32,
            status,
            rail_held,
            images: field("images")? as usize,
            faults_fired,
            steps_completed: field("steps_completed")? as usize,
            error,
            confidence,
        })
    }
}

/// Why a checkpoint could not be written, loaded, or resumed.
#[derive(Debug)]
pub enum CampaignError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The checkpoint file failed parsing, checksum, or structural
    /// validation.
    Corrupt {
        /// What is wrong with the file.
        detail: String,
    },
    /// The checkpoint belongs to a different campaign configuration.
    Mismatch {
        /// Which parameter disagrees.
        detail: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CampaignError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            CampaignError::Mismatch { detail } => {
                write!(f, "checkpoint does not match this campaign: {detail}")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

impl From<parse::ParseError> for CampaignError {
    fn from(e: parse::ParseError) -> Self {
        CampaignError::Corrupt { detail: e.to_string() }
    }
}

/// Checkpoint schema version [`Checkpoint::to_json`] writes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A campaign checkpoint: everything a resumed run needs to continue
/// from repetition `next_rep` and still produce a final report that is
/// byte-identical to the uninterrupted run's — the completed records,
/// the full telemetry state (virtual clock included), and the identity
/// of the fault plan. The rendered file carries a CRC-64 over its
/// payload; loading re-verifies it.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Seed of the fault plan that produced the records (validated on
    /// resume; the counter-mode plan needs no other state).
    pub fault_seed: u64,
    /// Total repetitions of the checkpointed campaign.
    pub reps: u64,
    /// First repetition the resumed run must execute.
    pub next_rep: u64,
    /// Records of the completed repetitions, in order.
    pub records: Vec<RepRecord>,
    /// The run's telemetry at the checkpoint.
    pub recorder: Recorder,
}

/// Renders a checkpoint from borrowed campaign state, sealing a CRC-64
/// over the payload's compact rendering as the trailing `crc64` key.
/// The checkpointing loops call this directly so writing a checkpoint
/// after every repetition never clones the accumulated records.
fn render_checkpoint(
    fault_seed: u64,
    reps: u64,
    next_rep: u64,
    records: &[RepRecord],
    recorder: &Recorder,
) -> String {
    let payload = json::Value::object(vec![
        ("voltboot_checkpoint", json::Value::from(CHECKPOINT_VERSION)),
        ("fault_seed", json::Value::from(fault_seed)),
        ("reps", json::Value::from(reps)),
        ("next_rep", json::Value::from(next_rep)),
        ("records", json::Value::Array(records.iter().map(RepRecord::to_value).collect())),
        ("recorder", recorder.to_value()),
    ]);
    let crc = recover::crc64(payload.render().as_bytes());
    let json::Value::Object(mut pairs) = payload else { unreachable!("payload is an object") };
    pairs.push(("crc64".to_string(), json::Value::from(crc)));
    json::Value::Object(pairs).render_pretty()
}

/// Writes a checkpoint assembled from borrowed campaign state to `path`.
fn save_checkpoint(
    path: &Path,
    fault_seed: u64,
    reps: u64,
    next_rep: u64,
    records: &[RepRecord],
    recorder: &Recorder,
) -> Result<(), CampaignError> {
    std::fs::write(path, render_checkpoint(fault_seed, reps, next_rep, records, recorder))
        .map_err(CampaignError::Io)
}

impl Checkpoint {
    /// Renders the checkpoint, sealing a CRC-64 over the payload's
    /// compact rendering as the trailing `crc64` key.
    pub fn to_json(&self) -> String {
        render_checkpoint(self.fault_seed, self.reps, self.next_rep, &self.records, &self.recorder)
    }

    /// Parses and verifies a checkpoint rendered by
    /// [`Checkpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`CampaignError::Corrupt`] on a parse failure, checksum mismatch,
    /// unknown version, or structural problem.
    pub fn from_json(input: &str) -> Result<Checkpoint, CampaignError> {
        let v = parse::parse(input)?;
        let pairs = v.as_object().ok_or_else(|| CampaignError::Corrupt {
            detail: "checkpoint must be a JSON object".into(),
        })?;
        let mut payload_pairs = Vec::new();
        let mut sealed = None;
        for (k, val) in pairs {
            if k == "crc64" {
                sealed = val.as_u64();
            } else {
                payload_pairs.push((k.clone(), val.clone()));
            }
        }
        let sealed = sealed.ok_or_else(|| CampaignError::Corrupt {
            detail: "checkpoint missing its crc64 seal".into(),
        })?;
        let payload = json::Value::Object(payload_pairs);
        let actual = recover::crc64(payload.render().as_bytes());
        if actual != sealed {
            return Err(CampaignError::Corrupt {
                detail: format!(
                    "checksum mismatch: sealed {sealed:#018x}, payload hashes to {actual:#018x}"
                ),
            });
        }
        let field = |k: &str| {
            payload.get(k).and_then(json::Value::as_u64).ok_or_else(|| CampaignError::Corrupt {
                detail: format!("checkpoint field {k} must be a u64"),
            })
        };
        let version = field("voltboot_checkpoint")?;
        if version != CHECKPOINT_VERSION {
            return Err(CampaignError::Corrupt {
                detail: format!("unsupported checkpoint version {version}"),
            });
        }
        let mut records = Vec::new();
        for r in payload.get("records").and_then(json::Value::as_array).ok_or_else(|| {
            CampaignError::Corrupt { detail: "checkpoint records must be an array".into() }
        })? {
            records.push(RepRecord::from_value(r)?);
        }
        let next_rep = field("next_rep")?;
        if next_rep != records.len() as u64 {
            return Err(CampaignError::Corrupt {
                detail: format!(
                    "next_rep {next_rep} disagrees with {} stored records",
                    records.len()
                ),
            });
        }
        let recorder = Recorder::from_value(payload.get("recorder").ok_or_else(|| {
            CampaignError::Corrupt { detail: "checkpoint missing recorder state".into() }
        })?)?;
        Ok(Checkpoint {
            fault_seed: field("fault_seed")?,
            reps: field("reps")?,
            next_rep,
            records,
            recorder,
        })
    }

    /// Writes the checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] when the write fails.
    pub fn save(&self, path: &Path) -> Result<(), CampaignError> {
        std::fs::write(path, self.to_json()).map_err(CampaignError::Io)
    }

    /// Loads and verifies a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] when the read fails; the
    /// [`Checkpoint::from_json`] classes otherwise.
    pub fn load(path: &Path) -> Result<Checkpoint, CampaignError> {
        Checkpoint::from_json(&std::fs::read_to_string(path).map_err(CampaignError::Io)?)
    }
}

/// Shared state between the parallel scheduler's workers and its
/// merger: finished reps not yet absorbed, keyed by rep index, plus the
/// count of workers still running (so the merger never waits on a dead
/// pool).
struct MergeState {
    ready: BTreeMap<u64, (RepRecord, Recorder)>,
    live_workers: usize,
}

/// Drop guard a worker holds for its whole run: on any exit — normal or
/// panic — it decrements the live-worker count and wakes the merger.
struct WorkerExit<'a> {
    state: &'a Mutex<MergeState>,
    wake: &'a Condvar,
}

impl Drop for WorkerExit<'_> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.state.lock() {
            st.live_workers -= 1;
        }
        self.wake.notify_all();
    }
}

/// A campaign: one attack, one fault plan, N repetitions.
#[derive(Debug, Clone)]
pub struct Campaign {
    attack: VoltBootAttack,
    plan: FaultPlan,
    reps: u64,
    retry: RetryPolicy,
    deadline_ns: Option<u64>,
}

impl Campaign {
    /// Creates a campaign running `attack` `reps` times under `plan`.
    pub fn new(attack: VoltBootAttack, plan: FaultPlan, reps: u64) -> Self {
        Campaign { attack, plan, reps, retry: RetryPolicy::default(), deadline_ns: None }
    }

    /// Overrides the retry policy (builder style).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets a per-repetition virtual-clock deadline: once a repetition's
    /// retries (attack time plus backoff) push its elapsed virtual time
    /// past `ns`, it stops retrying and records [`RepStatus::TimedOut`]
    /// with the last attempt's partial outcome.
    pub fn deadline_ns(mut self, ns: u64) -> Self {
        self.deadline_ns = Some(ns);
        self
    }

    /// Runs the campaign. `victim` builds a fresh, fully-prepared SoC
    /// (powered on, victim software run) for every attempt; it receives
    /// the repetition index so a campaign can vary the victim per rep
    /// while staying deterministic.
    ///
    /// Never panics on attempt failures: a repetition whose attempts are
    /// exhausted records a partial outcome and the campaign moves on.
    pub fn run(&self, victim: impl FnMut(u64) -> Soc) -> CampaignResult {
        self.run_range(0, self.reps, Vec::new(), Recorder::new(), None, victim)
            .expect("no checkpoint configured, no i/o to fail")
    }

    /// [`Campaign::run`], writing a [`Checkpoint`] to `path` after every
    /// completed repetition, so a killed campaign can
    /// [`Campaign::resume`] without losing (or re-running) finished reps.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] when a checkpoint write fails.
    pub fn run_checkpointed(
        &self,
        path: impl AsRef<Path>,
        victim: impl FnMut(u64) -> Soc,
    ) -> Result<CampaignResult, CampaignError> {
        self.run_range(0, self.reps, Vec::new(), Recorder::new(), Some(path.as_ref()), victim)
    }

    /// Resumes a campaign from the checkpoint at `path` and runs it to
    /// completion (checkpointing onward as it goes). The resumed run's
    /// final report is byte-identical to what the uninterrupted run
    /// would have produced: the fault plan is counter-mode (no stream
    /// state to lose) and the checkpoint restores the full telemetry
    /// state including the virtual clock.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Mismatch`] when the checkpoint's seed or rep
    /// count disagrees with this campaign; [`CampaignError::Corrupt`] /
    /// [`CampaignError::Io`] for unloadable checkpoints.
    pub fn resume(
        &self,
        path: impl AsRef<Path>,
        victim: impl FnMut(u64) -> Soc,
    ) -> Result<CampaignResult, CampaignError> {
        let cp = self.load_validated(path.as_ref())?;
        self.run_range(cp.next_rep, self.reps, cp.records, cp.recorder, Some(path.as_ref()), victim)
    }

    /// Loads the checkpoint at `path` and validates it against this
    /// campaign's configuration (shared by [`Campaign::resume`] and
    /// [`Campaign::resume_parallel`]).
    fn load_validated(&self, path: &Path) -> Result<Checkpoint, CampaignError> {
        let cp = Checkpoint::load(path)?;
        if cp.fault_seed != self.plan.seed() {
            return Err(CampaignError::Mismatch {
                detail: format!(
                    "fault seed {} in checkpoint, {} in campaign",
                    cp.fault_seed,
                    self.plan.seed()
                ),
            });
        }
        if cp.reps != self.reps {
            return Err(CampaignError::Mismatch {
                detail: format!("{} reps in checkpoint, {} in campaign", cp.reps, self.reps),
            });
        }
        Ok(cp)
    }

    /// Runs only repetitions `0..upto` and leaves the checkpoint behind
    /// — an interrupted campaign in miniature, for tests and the CI
    /// resume-determinism smoke check.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] when a checkpoint write fails.
    pub fn run_partial(
        &self,
        upto: u64,
        path: impl AsRef<Path>,
        victim: impl FnMut(u64) -> Soc,
    ) -> Result<(), CampaignError> {
        let upto = upto.min(self.reps);
        self.run_range(0, upto, Vec::new(), Recorder::new(), Some(path.as_ref()), victim)
            .map(|_| ())
    }

    fn run_range(
        &self,
        start: u64,
        end: u64,
        mut records: Vec<RepRecord>,
        rec: Recorder,
        checkpoint: Option<&Path>,
        mut victim: impl FnMut(u64) -> Soc,
    ) -> Result<CampaignResult, CampaignError> {
        // Cap the pre-allocation: `reps` is attacker-controlled config
        // and a huge ask must not allocate gigabytes up front.
        records.reserve(((end - start).min(1024)) as usize);
        for rep in start..end {
            records.push(self.run_rep(rep, &rec, &mut victim));
            if let Some(path) = checkpoint {
                save_checkpoint(path, self.plan.seed(), self.reps, rep + 1, &records, &rec)?;
            }
        }
        Ok(CampaignResult { plan: self.plan, reps: self.reps, records, recorder: rec })
    }

    /// Runs the campaign with repetitions sharded across `threads`
    /// worker threads.
    ///
    /// The scheduler is deterministic end-to-end, whatever the thread
    /// count: each repetition draws its faults from the counter-mode
    /// plan's per-rep sub-stream ([`FaultPlan::rep_stream`]), records
    /// telemetry into a forked virtual-clock sub-recorder
    /// (`Recorder::fork`), and the merger absorbs completed repetitions
    /// strictly in rep order — so the returned [`CampaignResult`] and
    /// its JSON report are **byte-identical** to [`Campaign::run`]'s.
    /// `threads <= 1` runs the sequential path.
    ///
    /// `victim` is called concurrently from several workers; like the
    /// sequential path it must be a pure function of the rep index for
    /// the campaign to be deterministic.
    pub fn run_parallel(
        &self,
        threads: usize,
        victim: impl Fn(u64) -> Soc + Sync,
    ) -> CampaignResult {
        self.run_range_parallel(0, self.reps, Vec::new(), Recorder::new(), None, threads, &victim)
            .expect("no checkpoint configured, no i/o to fail")
    }

    /// [`Campaign::run_parallel`] with a [`Checkpoint`] written to
    /// `path` every time the merged prefix grows, exactly as
    /// [`Campaign::run_checkpointed`] writes one per completed rep.
    /// Only fully-merged rep prefixes are ever checkpointed, so a
    /// checkpoint written by an N-thread run resumes correctly under
    /// any thread count — in-flight reps simply re-run.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] when a checkpoint write fails.
    pub fn run_checkpointed_parallel(
        &self,
        threads: usize,
        path: impl AsRef<Path>,
        victim: impl Fn(u64) -> Soc + Sync,
    ) -> Result<CampaignResult, CampaignError> {
        self.run_range_parallel(
            0,
            self.reps,
            Vec::new(),
            Recorder::new(),
            Some(path.as_ref()),
            threads,
            &victim,
        )
    }

    /// [`Campaign::resume`] across `threads` workers. Checkpoints
    /// compose across thread counts: the checkpoint stores only the
    /// merged rep prefix plus the absorbed telemetry, which is the same
    /// state the sequential runner would have at that rep.
    ///
    /// # Errors
    ///
    /// As [`Campaign::resume`].
    pub fn resume_parallel(
        &self,
        threads: usize,
        path: impl AsRef<Path>,
        victim: impl Fn(u64) -> Soc + Sync,
    ) -> Result<CampaignResult, CampaignError> {
        let cp = self.load_validated(path.as_ref())?;
        self.run_range_parallel(
            cp.next_rep,
            self.reps,
            cp.records,
            cp.recorder,
            Some(path.as_ref()),
            threads,
            &victim,
        )
    }

    /// [`Campaign::run_partial`] across `threads` workers — runs only
    /// repetitions `0..upto` and leaves the checkpoint behind, for the
    /// cross-thread-count resume tests and CI smoke.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Io`] when a checkpoint write fails.
    pub fn run_partial_parallel(
        &self,
        threads: usize,
        upto: u64,
        path: impl AsRef<Path>,
        victim: impl Fn(u64) -> Soc + Sync,
    ) -> Result<(), CampaignError> {
        let upto = upto.min(self.reps);
        self.run_range_parallel(
            0,
            upto,
            Vec::new(),
            Recorder::new(),
            Some(path.as_ref()),
            threads,
            &victim,
        )
        .map(|_| ())
    }

    /// The parallel scheduler behind the `*_parallel` entry points.
    ///
    /// Workers claim repetition indices from a shared atomic counter
    /// (work stealing in its simplest form: a fast rep frees its worker
    /// to claim the next one immediately), run each claimed rep against
    /// a forked sub-recorder, and post `(rep, record, sub)` into a
    /// results map. The calling thread is the merger: it absorbs
    /// results strictly in rep order, which rebuilds the exact counter,
    /// event, and clock state the sequential loop would have — and
    /// checkpoints each newly merged prefix.
    ///
    /// Worker panics cannot deadlock the merger: a drop guard
    /// decrements the live-worker count and wakes the merger, which
    /// stops waiting for reps that will never arrive and lets the scope
    /// propagate the panic.
    #[allow(clippy::too_many_arguments)]
    fn run_range_parallel(
        &self,
        start: u64,
        end: u64,
        mut records: Vec<RepRecord>,
        rec: Recorder,
        checkpoint: Option<&Path>,
        threads: usize,
        victim: &(impl Fn(u64) -> Soc + Sync),
    ) -> Result<CampaignResult, CampaignError> {
        let pending = end.saturating_sub(start);
        let workers = threads.clamp(1, pending.clamp(1, 1024) as usize);
        if workers <= 1 {
            return self.run_range(start, end, records, rec, checkpoint, victim);
        }
        records.reserve((pending.min(1024)) as usize);
        // Rep-level and word-level parallelism share one conceptual
        // pool: each worker's inner fan-out gets an equal slice of the
        // machine instead of multiplying it.
        let inner_budget = (par::thread_count() / workers).max(1);
        let next = AtomicU64::new(start);
        let state = Mutex::new(MergeState { ready: BTreeMap::new(), live_workers: workers });
        let merged_one = Condvar::new();
        let mut save_err: Option<CampaignError> = None;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let _exit = WorkerExit { state: &state, wake: &merged_one };
                    loop {
                        let rep = next.fetch_add(1, Ordering::Relaxed);
                        if rep >= end {
                            break;
                        }
                        let sub = rec.fork();
                        let record = par::with_budget(inner_budget, || {
                            self.run_rep(rep, &sub, &mut |r| victim(r))
                        });
                        let mut st = state.lock().expect("scheduler state poisoned");
                        st.ready.insert(rep, (record, sub));
                        merged_one.notify_all();
                    }
                });
            }
            let mut merged = start;
            while merged < end {
                let entry = {
                    let mut st = state.lock().expect("scheduler state poisoned");
                    loop {
                        if let Some(e) = st.ready.remove(&merged) {
                            break Some(e);
                        }
                        if st.live_workers == 0 {
                            break None;
                        }
                        st = merged_one.wait(st).expect("scheduler state poisoned");
                    }
                };
                let Some((record, sub)) = entry else {
                    // A worker died without posting this rep; stop
                    // merging and let the scope propagate its panic.
                    break;
                };
                rec.absorb(&sub);
                records.push(record);
                merged += 1;
                if save_err.is_none() {
                    if let Some(path) = checkpoint {
                        save_err = save_checkpoint(
                            path,
                            self.plan.seed(),
                            self.reps,
                            merged,
                            &records,
                            &rec,
                        )
                        .err();
                        if save_err.is_some() {
                            // Checkpointing broke: stop handing out new
                            // reps (workers drain what they claimed) and
                            // report the error, like the sequential path.
                            next.store(end, Ordering::Relaxed);
                        }
                    }
                }
            }
        });
        if let Some(e) = save_err {
            return Err(e);
        }
        Ok(CampaignResult { plan: self.plan, reps: self.reps, records, recorder: rec })
    }

    fn run_rep(&self, rep: u64, rec: &Recorder, victim: &mut impl FnMut(u64) -> Soc) -> RepRecord {
        let span = rec.span("campaign.rep");
        rec.incr("campaign.reps", 1);
        let rep_started_ns = rec.now_ns();
        let max_attempts = self.retry.max_attempts.max(1);
        let mut faults_fired: Vec<String> = Vec::new();
        let mut record = None;
        // This rep's split of the fault plan: stateless, so reps can run
        // in any order (or concurrently) with identical draws.
        let faults_of = self.plan.rep_stream(rep);

        for attempt in 0..max_attempts {
            rec.incr("campaign.attempts", 1);
            let faults = faults_of.draw(attempt);
            faults_fired.extend(faults.fired().iter().map(|s| s.to_string()));

            let mut soc = victim(rep);
            let ctx = AttackContext { recorder: rec.clone(), faults };
            match self.attack.execute_in(&mut soc, &ctx) {
                Ok(outcome) => {
                    let clean = !faults.any() && outcome.rail_held;
                    record = Some(RepRecord {
                        rep,
                        attempts: attempt + 1,
                        status: if clean { RepStatus::Success } else { RepStatus::Degraded },
                        rail_held: outcome.rail_held,
                        images: outcome.images.len(),
                        faults_fired: Vec::new(),
                        steps_completed: outcome.steps.len(),
                        error: None,
                        confidence: outcome.confidence_total(),
                    });
                    break;
                }
                Err(failure) => {
                    rec.event(
                        "campaign.attempt_failed",
                        &format!("rep {rep} attempt {attempt}: {failure}"),
                    );
                    if attempt + 1 < max_attempts {
                        rec.incr("campaign.retries", 1);
                        // Doubling virtual backoff between attempts.
                        rec.advance(self.retry.backoff_ns(attempt));
                        if let Some(deadline) = self.deadline_ns {
                            if rec.now_ns().saturating_sub(rep_started_ns) > deadline {
                                rec.event(
                                    "campaign.rep_timed_out",
                                    &format!(
                                        "rep {rep} past its {deadline} ns deadline after {} attempts",
                                        attempt + 1
                                    ),
                                );
                                record = Some(RepRecord {
                                    rep,
                                    attempts: attempt + 1,
                                    status: RepStatus::TimedOut,
                                    rail_held: false,
                                    images: 0,
                                    faults_fired: Vec::new(),
                                    steps_completed: failure.steps.len(),
                                    error: Some(failure.error.to_string()),
                                    confidence: ConfidenceMap::default(),
                                });
                                break;
                            }
                        }
                    } else {
                        // Retries exhausted: keep the partial outcome.
                        record = Some(RepRecord {
                            rep,
                            attempts: max_attempts,
                            status: RepStatus::Failed,
                            rail_held: false,
                            images: 0,
                            faults_fired: Vec::new(),
                            steps_completed: failure.steps.len(),
                            error: Some(failure.error.to_string()),
                            confidence: ConfidenceMap::default(),
                        });
                    }
                }
            }
        }

        let mut record = record.expect("every rep produces a record");
        record.faults_fired = faults_fired;
        match record.status {
            RepStatus::Success => rec.incr("campaign.successes", 1),
            RepStatus::Degraded => rec.incr("campaign.degraded", 1),
            RepStatus::Failed => rec.incr("campaign.failures", 1),
            RepStatus::TimedOut => rec.incr("campaign.timed_out", 1),
        }
        // Distribution views of the campaign: per-rep virtual latency
        // and attempts-to-outcome, plus a rolling progress gauge. All
        // recorded on the rep's (forked) recorder, so the merged
        // histograms match a sequential run exactly.
        rec.record("campaign.rep_ns", rec.now_ns().saturating_sub(rep_started_ns));
        rec.record("campaign.attempts_per_rep", u64::from(record.attempts));
        rec.gauge("campaign.last_rep", rep as f64);
        span.attr("rep", rep);
        span.attr("attempts", record.attempts);
        span.attr("status", record.status.as_str());
        span.attr("images", record.images);
        span.end();
        record
    }
}

/// Everything a campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The plan the campaign ran under.
    pub plan: FaultPlan,
    /// Requested repetitions.
    pub reps: u64,
    /// One record per repetition, in order.
    pub records: Vec<RepRecord>,
    /// The run's telemetry (spans, counters, events, virtual clock).
    pub recorder: Recorder,
}

impl CampaignResult {
    /// Repetitions that ended with the given status.
    pub fn count(&self, status: RepStatus) -> usize {
        self.records.iter().filter(|r| r.status == status).count()
    }

    /// Aggregate vote confidence across every repetition's images.
    pub fn confidence_total(&self) -> ConfidenceMap {
        let mut total = ConfidenceMap::default();
        for r in &self.records {
            total.absorb(&r.confidence);
        }
        total
    }

    /// The machine-readable report as a JSON value. Deterministic: equal
    /// seeds produce byte-identical renderings.
    pub fn to_value(&self) -> json::Value {
        let confidence = self.confidence_total();
        let summary = json::Value::object(vec![
            ("reps", json::Value::from(self.reps)),
            ("successes", json::Value::from(self.count(RepStatus::Success))),
            ("degraded", json::Value::from(self.count(RepStatus::Degraded))),
            ("failures", json::Value::from(self.count(RepStatus::Failed))),
            ("timed_out", json::Value::from(self.count(RepStatus::TimedOut))),
            ("bits_repaired", json::Value::from(confidence.repaired)),
            ("bits_unresolved", json::Value::from(confidence.unresolved)),
        ]);
        let records: Vec<json::Value> = self.records.iter().map(RepRecord::to_value).collect();
        json::Value::object(vec![
            ("fault_seed", json::Value::from(self.plan.seed())),
            ("summary", summary),
            ("records", json::Value::Array(records)),
            ("telemetry", self.recorder.to_value()),
        ])
    }

    /// The report rendered as pretty JSON (stable key order, trailing
    /// newline).
    pub fn to_json(&self) -> String {
        self.to_value().render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let retry = RetryPolicy { max_attempts: 70, initial_backoff_ns: 50_000_000 };
        assert_eq!(retry.backoff_ns(0), 50_000_000);
        assert_eq!(retry.backoff_ns(1), 100_000_000);
        let mut last = 0;
        for attempt in 0..70 {
            let b = retry.backoff_ns(attempt); // must not panic or wrap
            assert!(b >= last, "backoff must be monotone, attempt {attempt}");
            last = b;
        }
        assert_eq!(retry.backoff_ns(63), u64::MAX, "shift past 63 saturates");
        assert_eq!(retry.backoff_ns(69), u64::MAX);
        let zero = RetryPolicy { max_attempts: 70, initial_backoff_ns: 0 };
        assert_eq!(zero.backoff_ns(69), 0, "zero base stays zero at any attempt");
    }

    #[test]
    fn rep_status_strings_roundtrip() {
        for s in [RepStatus::Success, RepStatus::Degraded, RepStatus::Failed, RepStatus::TimedOut] {
            assert_eq!(RepStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(RepStatus::parse("nope"), None);
    }

    fn sample_records() -> Vec<RepRecord> {
        vec![
            RepRecord {
                rep: 0,
                attempts: 1,
                status: RepStatus::Success,
                rail_held: true,
                images: 8,
                faults_fired: vec!["brownout".into()],
                steps_completed: 5,
                error: None,
                confidence: ConfidenceMap {
                    total_bits: 10,
                    unanimous: 9,
                    repaired: 1,
                    unresolved: 0,
                    votes: 3,
                },
            },
            RepRecord {
                rep: 1,
                attempts: 3,
                status: RepStatus::TimedOut,
                rail_held: false,
                images: 0,
                faults_fired: vec![],
                steps_completed: 4,
                error: Some("extraction denied: flaky port".into()),
                confidence: ConfidenceMap::default(),
            },
        ]
    }

    #[test]
    fn rep_records_roundtrip_through_json() {
        for record in sample_records() {
            let back = RepRecord::from_value(&record.to_value()).unwrap();
            assert_eq!(back, record);
        }
        assert!(RepRecord::from_value(&json::Value::Null).is_err());
    }

    #[test]
    fn checkpoint_roundtrips_and_detects_corruption() {
        let rec = Recorder::new();
        rec.incr("campaign.reps", 2);
        rec.advance(1234);
        let cp = Checkpoint {
            fault_seed: 7,
            reps: 6,
            next_rep: 2,
            records: sample_records(),
            recorder: rec,
        };
        let text = cp.to_json();
        let back = Checkpoint::from_json(&text).unwrap();
        assert_eq!(back.records, cp.records);
        assert_eq!(back.next_rep, 2);
        assert_eq!(back.reps, 6);
        assert_eq!(back.recorder.to_json(), cp.recorder.to_json());
        assert_eq!(back.to_json(), text, "reload + re-render is byte-identical");

        // A payload edit trips the checksum.
        let tampered = text.replace("\"images\": 8", "\"images\": 9");
        assert_ne!(tampered, text, "tamper target must exist");
        assert!(matches!(
            Checkpoint::from_json(&tampered),
            Err(CampaignError::Corrupt { detail }) if detail.contains("checksum")
        ));
        // Structural garbage is rejected, not panicked on.
        assert!(matches!(Checkpoint::from_json("[]"), Err(CampaignError::Corrupt { .. })));
        assert!(Checkpoint::from_json("{").is_err());
    }

    #[test]
    fn checkpoint_rejects_inconsistent_next_rep() {
        let cp = Checkpoint {
            fault_seed: 7,
            reps: 6,
            next_rep: 5, // but only 2 records
            records: sample_records(),
            recorder: Recorder::new(),
        };
        assert!(matches!(
            Checkpoint::from_json(&cp.to_json()),
            Err(CampaignError::Corrupt { detail }) if detail.contains("next_rep")
        ));
    }
}
