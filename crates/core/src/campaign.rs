//! Campaign runner: many attack repetitions under a fault plan.
//!
//! A single [`VoltBootAttack::execute`] answers "does the attack work
//! once, on a clean bench". A [`Campaign`] answers the operational
//! question: across N repetitions with realistic glitch rates, how often
//! does it work, how often does it degrade, and what does a failed
//! extraction leave behind? Each repetition gets a fresh victim from a
//! factory closure, each attempt draws its faults deterministically from
//! the campaign's [`FaultPlan`], failed attempts retry with doubling
//! (virtual-clock) backoff, and an exhausted repetition records a
//! *partial* outcome — the campaign never panics and never aborts early.
//!
//! Everything the run produces — per-step timings, fault counters, the
//! per-rep records — exports as hand-rolled JSON that is byte-identical
//! across runs with the same seeds.

use crate::attack::{AttackContext, VoltBootAttack};
use crate::fault::FaultPlan;
use voltboot_soc::Soc;
use voltboot_telemetry::{json, Recorder};

/// Retry behaviour for failed attack attempts within one repetition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per repetition (at least 1).
    pub max_attempts: u32,
    /// Virtual backoff before the first retry; doubles per retry.
    pub initial_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, initial_backoff_ns: 50_000_000 }
    }
}

/// How one repetition ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepStatus {
    /// The attack completed with the rail held and no fault fired on the
    /// winning attempt.
    Success,
    /// The attack completed, but a fault fired (or the rail was not
    /// held): the outcome exists but is degraded.
    Degraded,
    /// Every attempt failed; the record holds the partial outcome of the
    /// last attempt.
    Failed,
}

impl RepStatus {
    fn as_str(self) -> &'static str {
        match self {
            RepStatus::Success => "success",
            RepStatus::Degraded => "degraded",
            RepStatus::Failed => "failed",
        }
    }
}

/// What one repetition recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct RepRecord {
    /// Repetition index.
    pub rep: u64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// How the repetition ended.
    pub status: RepStatus,
    /// Whether the winning attempt held the rail (false when failed).
    pub rail_held: bool,
    /// Images the winning attempt extracted (0 when failed).
    pub images: usize,
    /// Fault classes that fired across all attempts of this repetition.
    pub faults_fired: Vec<String>,
    /// Steps the last attempt completed (the partial outcome on failure;
    /// the full flow on success).
    pub steps_completed: usize,
    /// The last attempt's error, when the repetition failed.
    pub error: Option<String>,
}

/// A campaign: one attack, one fault plan, N repetitions.
#[derive(Debug, Clone)]
pub struct Campaign {
    attack: VoltBootAttack,
    plan: FaultPlan,
    reps: u64,
    retry: RetryPolicy,
}

impl Campaign {
    /// Creates a campaign running `attack` `reps` times under `plan`.
    pub fn new(attack: VoltBootAttack, plan: FaultPlan, reps: u64) -> Self {
        Campaign { attack, plan, reps, retry: RetryPolicy::default() }
    }

    /// Overrides the retry policy (builder style).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Runs the campaign. `victim` builds a fresh, fully-prepared SoC
    /// (powered on, victim software run) for every attempt; it receives
    /// the repetition index so a campaign can vary the victim per rep
    /// while staying deterministic.
    ///
    /// Never panics on attempt failures: a repetition whose attempts are
    /// exhausted records a partial outcome and the campaign moves on.
    pub fn run(&self, mut victim: impl FnMut(u64) -> Soc) -> CampaignResult {
        let rec = Recorder::new();
        let max_attempts = self.retry.max_attempts.max(1);
        let mut records = Vec::with_capacity(self.reps as usize);

        for rep in 0..self.reps {
            let span = rec.span("campaign.rep");
            rec.incr("campaign.reps", 1);
            let mut faults_fired: Vec<String> = Vec::new();
            let mut record = None;

            for attempt in 0..max_attempts {
                rec.incr("campaign.attempts", 1);
                let faults = self.plan.draw(rep, attempt);
                faults_fired.extend(faults.fired().iter().map(|s| s.to_string()));

                let mut soc = victim(rep);
                let ctx = AttackContext { recorder: rec.clone(), faults };
                match self.attack.execute_in(&mut soc, &ctx) {
                    Ok(outcome) => {
                        let clean = !faults.any() && outcome.rail_held;
                        record = Some(RepRecord {
                            rep,
                            attempts: attempt + 1,
                            status: if clean { RepStatus::Success } else { RepStatus::Degraded },
                            rail_held: outcome.rail_held,
                            images: outcome.images.len(),
                            faults_fired: Vec::new(),
                            steps_completed: outcome.steps.len(),
                            error: None,
                        });
                        break;
                    }
                    Err(failure) => {
                        rec.event(
                            "campaign.attempt_failed",
                            &format!("rep {rep} attempt {attempt}: {failure}"),
                        );
                        if attempt + 1 < max_attempts {
                            rec.incr("campaign.retries", 1);
                            // Doubling virtual backoff between attempts.
                            rec.advance(self.retry.initial_backoff_ns << attempt);
                        } else {
                            // Retries exhausted: keep the partial outcome.
                            record = Some(RepRecord {
                                rep,
                                attempts: max_attempts,
                                status: RepStatus::Failed,
                                rail_held: false,
                                images: 0,
                                faults_fired: Vec::new(),
                                steps_completed: failure.steps.len(),
                                error: Some(failure.error.to_string()),
                            });
                        }
                    }
                }
            }

            let mut record = record.expect("every rep produces a record");
            record.faults_fired = faults_fired;
            match record.status {
                RepStatus::Success => rec.incr("campaign.successes", 1),
                RepStatus::Degraded => rec.incr("campaign.degraded", 1),
                RepStatus::Failed => rec.incr("campaign.failures", 1),
            }
            span.end();
            records.push(record);
        }

        CampaignResult { plan: self.plan, reps: self.reps, records, recorder: rec }
    }
}

/// Everything a campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The plan the campaign ran under.
    pub plan: FaultPlan,
    /// Requested repetitions.
    pub reps: u64,
    /// One record per repetition, in order.
    pub records: Vec<RepRecord>,
    /// The run's telemetry (spans, counters, events, virtual clock).
    pub recorder: Recorder,
}

impl CampaignResult {
    /// Repetitions that ended with the given status.
    pub fn count(&self, status: RepStatus) -> usize {
        self.records.iter().filter(|r| r.status == status).count()
    }

    /// The machine-readable report as a JSON value. Deterministic: equal
    /// seeds produce byte-identical renderings.
    pub fn to_value(&self) -> json::Value {
        let summary = json::Value::object(vec![
            ("reps", json::Value::from(self.reps)),
            ("successes", json::Value::from(self.count(RepStatus::Success))),
            ("degraded", json::Value::from(self.count(RepStatus::Degraded))),
            ("failures", json::Value::from(self.count(RepStatus::Failed))),
        ]);
        let records: Vec<json::Value> = self
            .records
            .iter()
            .map(|r| {
                json::Value::object(vec![
                    ("rep", json::Value::from(r.rep)),
                    ("attempts", json::Value::from(u64::from(r.attempts))),
                    ("status", json::Value::from(r.status.as_str())),
                    ("rail_held", json::Value::from(r.rail_held)),
                    ("images", json::Value::from(r.images)),
                    (
                        "faults_fired",
                        json::Value::Array(
                            r.faults_fired.iter().map(|f| json::Value::from(f.as_str())).collect(),
                        ),
                    ),
                    ("steps_completed", json::Value::from(r.steps_completed)),
                    (
                        "error",
                        r.error.as_deref().map(json::Value::from).unwrap_or(json::Value::Null),
                    ),
                ])
            })
            .collect();
        json::Value::object(vec![
            ("fault_seed", json::Value::from(self.plan.seed())),
            ("summary", summary),
            ("records", json::Value::Array(records)),
            ("telemetry", self.recorder.to_value()),
        ])
    }

    /// The report rendered as pretty JSON (stable key order, trailing
    /// newline).
    pub fn to_json(&self) -> String {
        self.to_value().render_pretty()
    }
}
