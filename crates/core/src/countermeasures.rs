//! The §8 countermeasure survey, as executable configurations.
//!
//! Each variant corresponds to one defence the paper assesses. Apply one
//! to a device with [`Countermeasure::apply`], re-run the attack, and see
//! which step it breaks (the paper's framing: a defence must prevent
//! either *inducing retention* or *accessing the retained contents*).

use serde::{Deserialize, Serialize};
use voltboot_soc::cache::SecurityState;
use voltboot_soc::{Soc, SocError};

/// One countermeasure from the paper's survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Countermeasure {
    /// No defence (the evaluation platforms as shipped).
    None,
    /// Purge residual memory in the software power-down path. Defeated
    /// by the abrupt disconnect: the handler never runs.
    PowerDownPurge,
    /// Hardware MBIST-style SRAM reset at every boot: removes the
    /// attacker's post-reboot access to retained contents.
    BootTimeMemoryReset,
    /// Reset only the L2 via the `nL2RST` pin (exists architecturally for
    /// L2; L1 has no equivalent).
    L2ResetPin,
    /// Enforce TrustZone NS checks on debug reads: secure lines become
    /// unreadable from the attacker's non-secure extraction context.
    TrustZoneEnforcement,
    /// Fused authenticated boot: the device refuses the attacker's
    /// unsigned extraction image.
    MandatedAuthenticatedBoot,
    /// Gate the target SRAM's power internally at reset (toggling power
    /// erases contents) — effective but needs new silicon.
    InternalPowerToggle,
}

impl Countermeasure {
    /// All variants, for sweep experiments.
    pub fn all() -> [Countermeasure; 7] {
        [
            Countermeasure::None,
            Countermeasure::PowerDownPurge,
            Countermeasure::BootTimeMemoryReset,
            Countermeasure::L2ResetPin,
            Countermeasure::TrustZoneEnforcement,
            Countermeasure::MandatedAuthenticatedBoot,
            Countermeasure::InternalPowerToggle,
        ]
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Countermeasure::None => "none",
            Countermeasure::PowerDownPurge => "power-down purge",
            Countermeasure::BootTimeMemoryReset => "boot-time SRAM reset (MBIST)",
            Countermeasure::L2ResetPin => "nL2RST (L2 only)",
            Countermeasure::TrustZoneEnforcement => "TrustZone enforcement",
            Countermeasure::MandatedAuthenticatedBoot => "mandated authenticated boot",
            Countermeasure::InternalPowerToggle => "internal SRAM power toggle at reset",
        }
    }

    /// Whether the paper considers the defence deployable on *existing*
    /// silicon (no hardware change).
    pub fn deployable_without_new_silicon(self) -> bool {
        !matches!(
            self,
            Countermeasure::BootTimeMemoryReset
                | Countermeasure::L2ResetPin
                | Countermeasure::InternalPowerToggle
        )
    }

    /// Configures `soc` with this countermeasure.
    ///
    /// `PowerDownPurge` installs nothing here — it is a *software* path
    /// that only runs on orderly shutdowns; use
    /// [`run_power_down_purge`] to model an orderly shutdown and observe
    /// that an abrupt disconnect skips it.
    pub fn apply(self, soc: &mut Soc) {
        let mut policy = soc.policy();
        match self {
            Countermeasure::None | Countermeasure::PowerDownPurge => {}
            Countermeasure::BootTimeMemoryReset => policy.mbist_reset = true,
            Countermeasure::L2ResetPin => policy.l2_reset_pin = true,
            Countermeasure::TrustZoneEnforcement => policy.trustzone_enforced = true,
            Countermeasure::MandatedAuthenticatedBoot => policy.mandated_authenticated_boot = true,
            Countermeasure::InternalPowerToggle => policy.mbist_reset = true,
        }
        soc.set_policy(policy);
    }
}

/// The software purge handler: zeroes caches (via `DC ZVA` semantics) and
/// registers. Called on an *orderly* shutdown; an abrupt power disconnect
/// never reaches it — which is exactly why the paper rules this defence
/// out.
///
/// # Errors
///
/// Propagates SRAM failures.
pub fn run_power_down_purge(soc: &mut Soc) -> Result<(), SocError> {
    for core in 0..soc.core_count() {
        let c = soc.core_mut(core)?;
        for n in 0..32 {
            c.cpu.set_v(n, [0, 0]);
        }
        let file = *c.cpu.vector_file();
        c.vregs.store(&file)?;
        c.l1d.hardware_reset()?;
        c.l1i.hardware_reset()?;
    }
    Ok(())
}

/// Marks every valid line currently in a core's L1 d-cache as secure —
/// the state a TrustZone-protected secret would be in (filled from the
/// secure world).
///
/// # Errors
///
/// Propagates SRAM failures.
pub fn mark_dcache_secure(soc: &mut Soc, core: usize) -> Result<(), SocError> {
    let geometry = soc.core(core)?.l1d.geometry();
    let c = soc.core_mut(core)?;
    for set in 0..geometry.sets() {
        for way in 0..geometry.ways {
            let word = c.l1d.raw_tag_word(way, set)?;
            if word & (1 << 63) != 0 {
                // Valid line: clear the NS bit (bit 61) to mark it secure.
                c.l1d.write_tag_raw(set, way, word & !(1 << 61))?;
            }
        }
    }
    let _ = SecurityState::Secure;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltboot_soc::devices;

    #[test]
    fn names_and_deployability() {
        assert_eq!(Countermeasure::all().len(), 7);
        assert!(Countermeasure::PowerDownPurge.deployable_without_new_silicon());
        assert!(Countermeasure::MandatedAuthenticatedBoot.deployable_without_new_silicon());
        assert!(!Countermeasure::BootTimeMemoryReset.deployable_without_new_silicon());
        assert!(!Countermeasure::InternalPowerToggle.deployable_without_new_silicon());
    }

    #[test]
    fn apply_sets_policy_bits() {
        let mut soc = devices::raspberry_pi_4(1);
        Countermeasure::TrustZoneEnforcement.apply(&mut soc);
        assert!(soc.policy().trustzone_enforced);
        Countermeasure::MandatedAuthenticatedBoot.apply(&mut soc);
        assert!(soc.policy().mandated_authenticated_boot);
        Countermeasure::BootTimeMemoryReset.apply(&mut soc);
        assert!(soc.policy().mbist_reset);
    }

    #[test]
    fn purge_clears_registers_and_caches() {
        let mut soc = devices::raspberry_pi_4(2);
        soc.power_on_all();
        soc.run_program(
            0,
            &voltboot_armlite::program::builders::fill_vector_registers(),
            0x8_0000,
            10_000,
        );
        run_power_down_purge(&mut soc).unwrap();
        assert_eq!(soc.core(0).unwrap().cpu.v(0), [0, 0]);
        assert_eq!(soc.core(0).unwrap().l1d.way_image(0).unwrap().count_ones(), 0);
    }
}
