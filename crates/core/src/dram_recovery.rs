//! Halderman-style key recovery from *decayed DRAM* images.
//!
//! This is the algorithm the original cold-boot paper made famous, and
//! the algorithm the Volt Boot paper explains will **not** transfer to
//! SRAM (§5.1): DRAM decay is *directional* — an unrefreshed cell drifts
//! toward its known ground state — so a bit that still reads "charged"
//! is trustworthy and a bit that reads "ground" may have decayed. That
//! asymmetry turns key reconstruction into a small search. SRAM cells
//! are bistable: a lost cell resolves to an arbitrary power-up value, no
//! direction exists, and the search space explodes.
//!
//! The implementation here is a compact version of the idea for AES-128
//! key schedules: scan the image for schedule-shaped windows, treat
//! ground-state bits as "possibly decayed", and repair up to
//! [`MAX_REPAIR_BITS`] decayed key bits by searching candidates whose
//! re-expanded schedule is decay-consistent with every observed byte.

use voltboot_crypto::aes::{Aes, AesKey, KeySchedule};
use voltboot_sram::PackedBits;

/// Maximum number of decayed key bits the repair search will flip back.
/// (0, 1, and 2-bit repairs: ~8k candidates per window.)
pub const MAX_REPAIR_BITS: usize = 2;

/// Byte length of an AES-128 schedule.
const SCHED_LEN: usize = 176;

/// The decay polarity of a region: which value cells drift toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundState {
    /// Cells decay toward 0 ("true cells").
    Zero,
    /// Cells decay toward 1 ("anti cells").
    One,
}

impl GroundState {
    /// Whether an observed byte could have decayed from `original`.
    ///
    /// With ground 0, decay clears bits: `observed` must be a submask of
    /// `original`. With ground 1, decay sets bits.
    pub fn consistent(self, original: u8, observed: u8) -> bool {
        match self {
            GroundState::Zero => observed & !original == 0,
            GroundState::One => !observed & original == 0,
        }
    }

    /// Bits of `observed` that may have decayed (read as ground state).
    pub fn repairable_mask(self, observed: u8) -> u8 {
        match self {
            GroundState::Zero => !observed,
            GroundState::One => observed,
        }
    }
}

/// One recovered key with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredKey {
    /// Byte offset of the schedule window in the image.
    pub offset: usize,
    /// Number of key bits the search repaired.
    pub repaired_bits: usize,
    /// The reconstructed cipher.
    pub schedule: KeySchedule,
}

/// Scans a decayed DRAM image for AES-128 key schedules, repairing up to
/// [`MAX_REPAIR_BITS`] decayed bits in the key itself.
///
/// `ground` is the region's decay polarity (real attacks determine it
/// per block; callers slice the image accordingly).
pub fn recover_aes128_keys(image: &PackedBits, ground: GroundState) -> Vec<RecoveredKey> {
    let bytes = image.to_bytes();
    if bytes.len() < SCHED_LEN {
        return Vec::new();
    }
    let mut out = Vec::new();
    for offset in (0..=bytes.len() - SCHED_LEN).step_by(4) {
        let window = &bytes[offset..offset + SCHED_LEN];
        if let Some(rec) = try_window(window, ground) {
            out.push(RecoveredKey { offset, repaired_bits: rec.1, schedule: rec.0 });
        }
    }
    out
}

/// Pre-filter: a plausible decayed schedule window still has most of its
/// expansion relations intact in the "charged" direction. We check that
/// every word relation is decay-consistent before paying for repair.
fn window_plausible(window: &[u8], ground: GroundState) -> bool {
    // Quick structural check: the window must not be all-ground (fully
    // decayed or empty memory).
    let interesting = window.iter().filter(|&&b| match ground {
        GroundState::Zero => b != 0,
        GroundState::One => b != 0xFF,
    });
    interesting.count() > SCHED_LEN / 4
}

fn try_window(window: &[u8], ground: GroundState) -> Option<(KeySchedule, usize)> {
    if !window_plausible(window, ground) {
        return None;
    }
    let observed_key: [u8; 16] = window[..16].try_into().expect("16 bytes");

    // Candidate 0: the key survived untouched.
    if let Some(ks) = validate(&observed_key, window, ground) {
        return Some((ks, 0));
    }
    if MAX_REPAIR_BITS == 0 {
        return None;
    }

    // Single-bit repairs over the repairable positions.
    let mut repairable: Vec<(usize, u8)> = Vec::new();
    for (i, &b) in observed_key.iter().enumerate() {
        let mask = ground.repairable_mask(b);
        for bit in 0..8 {
            if mask & (1 << bit) != 0 {
                repairable.push((i, bit));
            }
        }
    }
    for &(i, bit) in &repairable {
        let mut candidate = observed_key;
        flip(&mut candidate, i, bit, ground);
        if let Some(ks) = validate(&candidate, window, ground) {
            return Some((ks, 1));
        }
    }
    if MAX_REPAIR_BITS < 2 {
        return None;
    }
    for (a, &(i, bi)) in repairable.iter().enumerate() {
        for &(j, bj) in &repairable[a + 1..] {
            let mut candidate = observed_key;
            flip(&mut candidate, i, bi, ground);
            flip(&mut candidate, j, bj, ground);
            if let Some(ks) = validate(&candidate, window, ground) {
                return Some((ks, 2));
            }
        }
    }
    None
}

fn flip(key: &mut [u8; 16], byte: usize, bit: u8, ground: GroundState) {
    match ground {
        GroundState::Zero => key[byte] |= 1 << bit,
        GroundState::One => key[byte] &= !(1 << bit),
    }
}

/// Re-expands `candidate` and accepts it iff every observed schedule
/// byte is decay-consistent with the re-expansion, with a meaningful
/// fraction still fully intact (guards against the all-ground window).
fn validate(candidate: &[u8; 16], window: &[u8], ground: GroundState) -> Option<KeySchedule> {
    let schedule = KeySchedule::expand(&AesKey::Aes128(*candidate));
    let expanded = schedule.to_bytes();
    let mut exact = 0usize;
    for (o, e) in window.iter().zip(&expanded) {
        if !ground.consistent(*e, *o) {
            return None;
        }
        if o == e {
            exact += 1;
        }
    }
    (exact * 2 >= SCHED_LEN).then_some(schedule)
}

/// Convenience: recover and verify against a known-plaintext check.
pub fn recover_and_verify(
    image: &PackedBits,
    ground: GroundState,
    verify: impl Fn(&Aes) -> bool,
) -> Option<RecoveredKey> {
    recover_aes128_keys(image, ground)
        .into_iter()
        .find(|rec| verify(&Aes::from_schedule(rec.schedule.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decayed_schedule_image(key: [u8; 16], flips: &[(usize, u8)]) -> PackedBits {
        // A schedule embedded in zeroed (ground-state) memory, with the
        // given (byte, bit) positions decayed to 0.
        let schedule = KeySchedule::expand(&AesKey::Aes128(key));
        let mut bytes = vec![0u8; 64];
        bytes.extend(schedule.to_bytes());
        bytes.extend(vec![0u8; 64]);
        for &(byte, bit) in flips {
            bytes[64 + byte] &= !(1 << bit);
        }
        PackedBits::from_bytes(&bytes)
    }

    #[test]
    fn intact_schedule_recovers_with_zero_repairs() {
        let key = *b"cold boot aes128";
        let image = decayed_schedule_image(key, &[]);
        let found = recover_aes128_keys(&image, GroundState::Zero);
        assert!(found
            .iter()
            .any(|r| r.repaired_bits == 0 && r.schedule.original_key().bytes() == key));
    }

    #[test]
    fn decay_outside_the_key_is_tolerated() {
        let key = *b"cold boot aes128";
        // Decay several bits in later round keys (offsets >= 16).
        let image = decayed_schedule_image(key, &[(20, 3), (50, 7), (100, 1), (160, 4)]);
        let found = recover_aes128_keys(&image, GroundState::Zero);
        assert!(found.iter().any(|r| r.schedule.original_key().bytes() == key));
    }

    #[test]
    fn one_decayed_key_bit_is_repaired() {
        let key = [0xFFu8; 16];
        let image = decayed_schedule_image(key, &[(5, 2), (90, 6)]);
        let found = recover_aes128_keys(&image, GroundState::Zero);
        let hit = found.iter().find(|r| r.schedule.original_key().bytes() == key).unwrap();
        assert_eq!(hit.repaired_bits, 1);
    }

    #[test]
    fn two_decayed_key_bits_are_repaired() {
        let key = [0xFFu8; 16];
        let image = decayed_schedule_image(key, &[(2, 0), (11, 7), (130, 2)]);
        let found = recover_aes128_keys(&image, GroundState::Zero);
        let hit = found.iter().find(|r| r.schedule.original_key().bytes() == key).unwrap();
        assert_eq!(hit.repaired_bits, 2);
    }

    #[test]
    fn wrong_direction_errors_are_rejected() {
        // A bit that flipped 0 -> 1 contradicts ground-zero decay; the
        // window must not validate as that candidate.
        let key = *b"0123456789abcdef";
        let schedule = KeySchedule::expand(&AesKey::Aes128(key));
        let mut bytes = schedule.to_bytes();
        // Set a bit that is currently clear somewhere past the key: a
        // 0 -> 1 flip contradicts ground-zero decay.
        let (idx, bit) = (16..bytes.len())
            .find_map(|i| (0..8).find(|&b| bytes[i] & (1 << b) == 0).map(|b| (i, b)))
            .expect("some clear bit exists");
        bytes[idx] |= 1 << bit;
        let image = PackedBits::from_bytes(&bytes);
        let found = recover_aes128_keys(&image, GroundState::Zero);
        assert!(found.iter().all(|r| r.schedule.original_key().bytes() != key));
    }

    #[test]
    fn anti_cell_polarity_works_too() {
        let key = *b"anti-cell-ground";
        let schedule = KeySchedule::expand(&AesKey::Aes128(key));
        let mut bytes = vec![0xFFu8; 32];
        bytes.extend(schedule.to_bytes());
        // One key bit decays toward 1.
        bytes[32 + 7] |= 0x01;
        let had_bit = KeySchedule::expand(&AesKey::Aes128(key)).to_bytes()[7] & 0x01 != 0;
        let image = PackedBits::from_bytes(&bytes);
        let found = recover_aes128_keys(&image, GroundState::One);
        let hit = found.iter().find(|r| r.schedule.original_key().bytes() == key);
        assert!(hit.is_some(), "anti-cell recovery failed");
        if !had_bit {
            assert_eq!(hit.unwrap().repaired_bits, 1);
        }
    }

    #[test]
    fn ground_state_consistency_rules() {
        assert!(GroundState::Zero.consistent(0b1010, 0b1010));
        assert!(GroundState::Zero.consistent(0b1010, 0b0010));
        assert!(!GroundState::Zero.consistent(0b1010, 0b1110));
        assert!(GroundState::One.consistent(0b1010, 0b1011));
        assert!(!GroundState::One.consistent(0b1010, 0b0010));
    }
}
