//! Error type for attack orchestration.

use crate::recover::IntegrityError;
use std::error::Error;
use std::fmt;
use voltboot_soc::SocError;

/// Error returned by attack execution.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// A lower layer (SoC, SRAM, PDN) failed.
    Soc(SocError),
    /// The victim refused to boot the attacker's image (e.g. mandated
    /// authenticated boot) — the attack is defeated at the reboot step.
    BootDefeated {
        /// The boot ROM's reason.
        reason: String,
    },
    /// The extraction interface was unavailable or denied (no JTAG,
    /// TrustZone enforcement).
    ExtractionDenied {
        /// What was denied.
        detail: String,
    },
    /// The attack configuration does not fit the device (e.g. cache
    /// extraction requested for a core that does not exist).
    BadConfiguration {
        /// What is wrong.
        detail: String,
    },
    /// An extracted image failed an integrity check (CRC mismatch, an
    /// unresolvable vote, a corrupt checkpoint).
    Integrity(IntegrityError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Soc(e) => write!(f, "device error: {e}"),
            AttackError::BootDefeated { reason } => write!(f, "boot defeated the attack: {reason}"),
            AttackError::ExtractionDenied { detail } => write!(f, "extraction denied: {detail}"),
            AttackError::BadConfiguration { detail } => {
                write!(f, "bad attack configuration: {detail}")
            }
            AttackError::Integrity(e) => write!(f, "{e}"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Soc(e) => Some(e),
            AttackError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IntegrityError> for AttackError {
    fn from(e: IntegrityError) -> Self {
        AttackError::Integrity(e)
    }
}

impl From<SocError> for AttackError {
    fn from(e: SocError) -> Self {
        match e {
            SocError::BootRejected { reason } => AttackError::BootDefeated { reason },
            SocError::NoJtag => {
                AttackError::ExtractionDenied { detail: "device has no jtag port".into() }
            }
            SocError::TrustZoneViolation => {
                AttackError::ExtractionDenied { detail: "trustzone enforcement".into() }
            }
            other => AttackError::Soc(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_classify_defeats() {
        let e: AttackError = SocError::BootRejected { reason: "signed boot".into() }.into();
        assert!(matches!(e, AttackError::BootDefeated { .. }));
        let e: AttackError = SocError::NoJtag.into();
        assert!(matches!(e, AttackError::ExtractionDenied { .. }));
        let e: AttackError = SocError::TrustZoneViolation.into();
        assert!(matches!(e, AttackError::ExtractionDenied { .. }));
        let e: AttackError = SocError::NoIram.into();
        assert!(matches!(e, AttackError::Soc(_)));
        let e: AttackError = IntegrityError::AllPassesErased.into();
        assert!(matches!(e, AttackError::Integrity(IntegrityError::AllPassesErased)));
        assert!(e.to_string().contains("integrity violation"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
