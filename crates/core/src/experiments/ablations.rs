//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! * [`remanence_curve`] — retention vs (temperature × off-time),
//!   validating the SRAM calibration against the published remanence
//!   numbers the paper cites (≈80 % at −110 °C / 20 ms, 0 % at −40 °C);
//! * [`probe_current_sweep`] — attack accuracy vs probe current limit on
//!   a core-shared rail, locating the paper's ">3 A supply" requirement;
//! * [`hold_voltage_sweep`] — retention vs held voltage, tracing the
//!   data-retention-voltage distribution that makes the attack possible
//!   at any rail level above ≈0.5 V.

use crate::analysis;
use crate::attack::{Extraction, VoltBootAttack};
use crate::workloads;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use voltboot_pdn::Probe;
use voltboot_soc::devices;
use voltboot_sram::{ArrayConfig, OffEvent, SramArray, Temperature};

/// One point of the remanence surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemanencePoint {
    /// Temperature in Celsius.
    pub celsius: f64,
    /// Time without power, in milliseconds.
    pub off_ms: u64,
    /// Fraction of cells that retained their value.
    pub retention: f64,
}

/// Sweeps retention over temperature × off-time on a standalone array
/// (no shared-domain drain, like the benchtop SRAM studies the paper
/// cites).
pub fn remanence_curve(seed: u64) -> Vec<RemanencePoint> {
    let mut out = Vec::new();
    for &celsius in &[-150.0, -110.0, -90.0, -40.0, 0.0, 25.0] {
        for &off_ms in &[1u64, 5, 20, 100, 500] {
            let mut array = SramArray::new(ArrayConfig::with_bytes("curve", 2048), seed);
            array.power_on().expect("fresh array");
            array.fill(0xA5).expect("powered");
            array.power_off(OffEvent::unpowered()).expect("powered");
            array.elapse(Duration::from_millis(off_ms), Temperature::from_celsius(celsius));
            let report = array.power_on().expect("cycled");
            out.push(RemanencePoint { celsius, off_ms, retention: report.retention_fraction() });
        }
    }
    out
}

/// One point of the probe-current ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeSweepPoint {
    /// Probe current limit in amperes.
    pub current_limit: f64,
    /// Minimum rail voltage during the disconnect surge.
    pub transient_min_voltage: f64,
    /// Extraction accuracy vs the pre-attack image.
    pub accuracy: f64,
}

/// Sweeps the probe's current limit against a Raspberry Pi 4 victim
/// (whose core rail also feeds the CPU cluster — the worst case).
pub fn probe_current_sweep(seed: u64) -> Vec<ProbeSweepPoint> {
    probe_current_sweep_points(seed, &[0.1, 0.3, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 5.0])
}

/// [`probe_current_sweep`] over caller-chosen current limits.
pub fn probe_current_sweep_points(seed: u64, limits: &[f64]) -> Vec<ProbeSweepPoint> {
    let mut out = Vec::new();
    for &limit in limits {
        let mut soc = devices::raspberry_pi_4(seed ^ limit.to_bits());
        soc.power_on_all();
        workloads::baremetal_nop_fill(&mut soc).expect("victim runs");
        let truth = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let outcome = VoltBootAttack::new("TP15")
            .probe(Probe { voltage: 0.0, current_limit: limit, series_resistance: 0.02 })
            .extraction(Extraction::Caches { cores: vec![0] })
            .execute(&mut soc)
            .expect("attack runs");
        let got = &outcome.image("core0.l1i.way0").unwrap().bits;
        out.push(ProbeSweepPoint {
            current_limit: limit,
            transient_min_voltage: outcome.transient_min_voltage.unwrap_or(0.0),
            accuracy: 1.0 - analysis::fractional_hamming(got, &truth),
        });
    }
    out
}

/// One point of the hold-voltage ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoldVoltagePoint {
    /// Held voltage in volts.
    pub volts: f64,
    /// Fraction of cells retained.
    pub retention: f64,
}

/// Sweeps the steady hold voltage on a standalone array: the retention
/// curve is the CDF of the cells' data-retention voltages.
pub fn hold_voltage_sweep(seed: u64) -> Vec<HoldVoltagePoint> {
    let mut out = Vec::new();
    for &centivolts in &[5u32, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 80] {
        let volts = centivolts as f64 / 100.0;
        let mut array = SramArray::new(ArrayConfig::with_bytes("hv", 4096), seed);
        array.power_on().expect("fresh array");
        array.fill(0x3C).expect("powered");
        array.power_off(OffEvent::held(volts)).expect("powered");
        array.elapse(Duration::from_secs(10), Temperature::ROOM);
        let report = array.power_on().expect("cycled");
        out.push(HoldVoltagePoint { volts, retention: report.retention_fraction() });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(points: &[RemanencePoint], celsius: f64, off_ms: u64) -> f64 {
        points
            .iter()
            .find(|p| p.celsius == celsius && p.off_ms == off_ms)
            .expect("point exists")
            .retention
    }

    #[test]
    fn remanence_curve_matches_the_literature_anchors() {
        let curve = remanence_curve(0xCE11);
        // The calibration anchor: ~80% at -110 C / 20 ms.
        let anchor = point(&curve, -110.0, 20);
        assert!((anchor - 0.79).abs() < 0.06, "-110C/20ms: {anchor}");
        // Nothing at -40 C past a few ms.
        assert!(point(&curve, -40.0, 100) < 0.01);
        assert!(point(&curve, -40.0, 500) < 0.01);
        // Room temperature: gone within a millisecond.
        assert!(point(&curve, 25.0, 1) < 0.01);
        // Deep cryogenic: nearly everything survives short cycles.
        assert!(point(&curve, -150.0, 20) > 0.95);
    }

    #[test]
    fn remanence_is_monotone_along_both_axes() {
        let curve = remanence_curve(0xCE12);
        for &t in &[-150.0, -110.0, -90.0, -40.0, 0.0, 25.0] {
            let series: Vec<f64> =
                [1u64, 5, 20, 100, 500].iter().map(|&ms| point(&curve, t, ms)).collect();
            assert!(series.windows(2).all(|w| w[0] >= w[1] - 1e-9), "{t} C: {series:?}");
        }
        for &ms in &[1u64, 5, 20, 100, 500] {
            let series: Vec<f64> = [25.0, 0.0, -40.0, -90.0, -110.0, -150.0]
                .iter()
                .map(|&t| point(&curve, t, ms))
                .collect();
            assert!(series.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{ms} ms: {series:?}");
        }
    }

    #[test]
    fn probe_sweep_shows_the_current_threshold() {
        // A reduced sweep keeps the debug-mode test quick; the bench
        // binary runs the full nine-point curve.
        let sweep = probe_current_sweep_points(0x53EE, &[0.1, 1.0, 3.0]);
        let acc =
            |limit: f64| sweep.iter().find(|p| p.current_limit == limit).expect("point").accuracy;
        assert!(acc(0.1) < 0.95, "a 0.1 A source must corrupt cells: {}", acc(0.1));
        assert_eq!(acc(3.0), 1.0, "the paper's 3 A supply is error-free");
        // Accuracy is monotone in current capability, up to chance-level
        // noise at the bottom of the curve (each point is its own die).
        let accs: Vec<f64> = sweep.iter().map(|p| p.accuracy).collect();
        assert!(accs.windows(2).all(|w| w[0] <= w[1] + 0.02), "{accs:?}");
    }

    #[test]
    fn hold_voltage_sweep_traces_the_drv_cdf() {
        let sweep = hold_voltage_sweep(0xD2F);
        let ret = |v: f64| sweep.iter().find(|p| p.volts == v).expect("point").retention;
        assert!(ret(0.05) < 0.01, "0.05 V holds nothing: {}", ret(0.05));
        assert!((ret(0.30) - 0.5).abs() < 0.05, "0.30 V is the DRV median: {}", ret(0.30));
        assert_eq!(ret(0.60), 1.0, "0.60 V holds everything");
        assert_eq!(ret(0.80), 1.0, "nominal rail holds everything");
        let rets: Vec<f64> = sweep.iter().map(|p| p.retention).collect();
        assert!(rets.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{rets:?}");
    }
}
