//! Background reproduction (§2–3): classic cold boot *works* on DRAM and
//! fails on on-chip SRAM — the asymmetry that motivated fully on-chip
//! crypto in the first place.
//!
//! A disk-encryption key schedule sits in DRAM (the pre-TRESOR world).
//! The attacker chills the module, cuts power for a transplant-scale
//! interval, dumps the raw cells, and runs the Halderman-style
//! directional repair ([`crate::dram_recovery`]). The same procedure
//! against an identical schedule held in on-chip SRAM recovers nothing.

use crate::attack::{ColdBootAttack, Extraction};
use crate::dram_recovery::{recover_and_verify, GroundState};
use serde::{Deserialize, Serialize};
use voltboot_crypto::aes::{Aes, AesKey, KeySchedule};
use voltboot_crypto::tresor::TresorContext;
use voltboot_soc::devices;

/// One (temperature, off-time) data point of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramBaselineRow {
    /// Module temperature in Celsius.
    pub celsius: f64,
    /// Time without power, in seconds.
    pub off_seconds: u64,
    /// Bit-decay fraction observed in the DRAM dump.
    pub dram_decay: f64,
    /// Whether the DRAM key was recovered (with repair).
    pub dram_key_recovered: bool,
    /// Bits the repair search had to fix.
    pub repaired_bits: Option<usize>,
    /// Whether the SRAM (register) key was recovered by any means.
    pub sram_key_recovered: bool,
}

/// The comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramBaselineResult {
    /// One row per scenario.
    pub rows: Vec<DramBaselineRow>,
}

/// Where the victim's schedule lives in DRAM (inside a true-cell block).
pub const SCHEDULE_ADDR: u64 = 0x30_0000;

/// Scenarios: a chilled transplant (works) and a warm transplant (fails),
/// as in the original cold-boot evaluation.
pub const SCENARIOS: [(f64, u64); 2] = [(-50.0, 30), (25.0, 60)];

/// Runs the comparison.
pub fn run(seed: u64) -> DramBaselineResult {
    let key = AesKey::Aes128(*b"pre-tresor aes k");
    let reference = Aes::new(&key);
    let probe_block = reference.encrypt_block(b"known plaintext!");

    let mut rows = Vec::new();
    for (i, &(celsius, off_seconds)) in SCENARIOS.iter().enumerate() {
        let mut soc = devices::raspberry_pi_4(seed ^ ((i as u64 + 1) << 40));
        soc.power_on_all();

        // The victim's software keeps the schedule in DRAM (old world)...
        let schedule = KeySchedule::expand(&key);
        soc.dram_mut().write(SCHEDULE_ADDR, &schedule.to_bytes()).expect("schedule staged");
        // ...and, for the contrast, also on-chip in NEON registers.
        TresorContext::install(&mut soc, 0, &key).expect("tresor install");

        // Cold boot with a transplant-scale off time.
        let outcome = ColdBootAttack::new(celsius, off_seconds * 1000)
            .extraction(Extraction::DramRaw { addr: SCHEDULE_ADDR, len: 4096 })
            .execute(&mut soc)
            .expect("cold boot flow");
        let dram_image = &outcome.image(&format!("dram@{SCHEDULE_ADDR:#x}")).unwrap().bits;

        // Decay measured over the 176-byte schedule window only (the
        // surrounding padding already sits at ground state).
        let staged_window = voltboot_sram::PackedBits::from_bytes(&schedule.to_bytes());
        let observed_window = voltboot_sram::PackedBits::from_bytes(&dram_image.bytes_at(0, 176));
        let dram_decay = observed_window.fractional_hamming(&staged_window);

        let recovered = recover_and_verify(dram_image, GroundState::Zero, |aes| {
            aes.encrypt_block(b"known plaintext!") == probe_block
        });

        // The SRAM side: dump the registers and scan, exact + tolerant.
        let reg_image = crate::attack::extract_registers(&soc, &[0]).expect("register dump");
        let sram_key_recovered = crate::analysis::find_key_schedules(&reg_image[0].bits)
            .iter()
            .any(|(_, ks)| ks.original_key() == key)
            || crate::analysis::find_key_schedules_tolerant(&reg_image[0].bits, 4, 10)
                .iter()
                .any(|(_, _, ks)| ks.original_key() == key);

        rows.push(DramBaselineRow {
            celsius,
            off_seconds,
            dram_decay,
            dram_key_recovered: recovered.is_some(),
            repaired_bits: recovered.map(|r| r.repaired_bits),
            sram_key_recovered,
        });
    }
    DramBaselineResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chilled_dram_yields_the_key_but_sram_never_does() {
        let r = run(0xD2A3);
        let chilled = &r.rows[0];
        assert!(chilled.dram_decay < 0.02, "chilled decay {}", chilled.dram_decay);
        assert!(chilled.dram_key_recovered, "chilled DRAM transplant must succeed");
        assert!(!chilled.sram_key_recovered, "the SRAM key must be gone");

        let warm = &r.rows[1];
        assert!(warm.dram_decay > 0.2, "warm decay {}", warm.dram_decay);
        assert!(!warm.dram_key_recovered, "warm transplant must fail");
        assert!(!warm.sram_key_recovered);
    }
}
