//! Figure 3: a d-cache way snapshot after a cold boot at −40 °C.
//!
//! The rendered bitmap shows an ≈50/50 mix of ones and zeros — the cache
//! reset to its power-on state, so nothing of the victim's data remains.

use crate::analysis;
use crate::attack::{ColdBootAttack, Extraction};
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;
use voltboot_sram::PackedBits;

/// The figure's data: the post-attack way image and summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// WAY0 of core 0's d-cache after the cold boot (256 sets × 512 bits
    /// = 16 KB, matching the paper's caption).
    pub way_image: PackedBits,
    /// Fraction of ones (≈0.5 for a power-up state).
    pub ones_fraction: f64,
    /// Error vs the victim's stored pattern (≈0.5 — no retention).
    pub error_vs_stored: f64,
}

/// Runs the experiment: victim fill, cold boot at −40 °C, extract.
pub fn run(seed: u64) -> Fig3Result {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    soc.enable_caches(0);
    let p = voltboot_armlite::program::builders::fill_bytes(
        workloads::VICTIM_DATA_ADDR,
        0xA5,
        16 * 1024,
    );
    soc.run_program(0, &p, workloads::VICTIM_CODE_ADDR, 50_000_000);
    let stored = soc.core(0).unwrap().l1d.way_image(0).unwrap();

    let outcome = ColdBootAttack::new(-40.0, 5)
        .extraction(Extraction::Caches { cores: vec![0] })
        .execute(&mut soc)
        .expect("cold boot flow");
    let way_image = outcome.image("core0.l1d.way0").unwrap().bits.clone();
    let ones_fraction = analysis::ones_fraction(&way_image);
    let error_vs_stored = analysis::fractional_hamming(&way_image, &stored);
    Fig3Result { way_image, ones_fraction, error_vs_stored }
}

/// Renders the figure as a PBM bitmap, 512 bits per row as in the paper.
pub fn render_pbm(result: &Fig3Result) -> String {
    analysis::to_pbm(&result.way_image, 512)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_resets_to_random_state() {
        let r = run(0xF163);
        assert_eq!(r.way_image.len(), 16 * 1024 * 8);
        assert!((r.ones_fraction - 0.5).abs() < 0.03, "ones {}", r.ones_fraction);
        assert!((r.error_vs_stored - 0.5).abs() < 0.05, "error {}", r.error_vs_stored);
    }

    #[test]
    fn pbm_renders_512_columns() {
        let r = run(0xF164);
        let pbm = render_pbm(&r);
        assert!(pbm.starts_with("P1\n512 256\n"));
    }
}
