//! Figure 7: Volt Boot against bare-metal victims retains i-caches with
//! 100 % accuracy on both Broadcom SoCs.
//!
//! The victim enables its caches and executes a NOP sled on all four
//! cores; the attack holds VDD_CORE across the power cycle; the
//! extracted i-cache images match the pre-attack images bit for bit and
//! are full of the sled's `0xD503201F` words.

use crate::analysis;
use crate::attack::{Extraction, VoltBootAttack};
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;
use voltboot_sram::PackedBits;

/// Result for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Device {
    /// SoC name (`BCM2711` / `BCM2837`).
    pub soc: String,
    /// Per-core retention accuracy (extracted vs pre-attack image) of
    /// i-cache way 0.
    pub per_core_accuracy: Vec<f64>,
    /// NOP words found in core 0's extracted way-0 image.
    pub nop_words_core0: usize,
    /// Core 0's extracted way-0 image (for rendering).
    pub way_image_core0: PackedBits,
}

/// The two-device figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// One entry per device.
    pub devices: Vec<Fig7Device>,
}

/// Runs the experiment on both Raspberry Pis (in parallel — the two
/// boards are independent).
pub fn run(seed: u64) -> Fig7Result {
    let jobs: Vec<Box<dyn FnOnce() -> Fig7Device + Send>> = [
        (devices::raspberry_pi_4 as fn(u64) -> voltboot_soc::Soc, "TP15"),
        (devices::raspberry_pi_3 as fn(u64) -> voltboot_soc::Soc, "PP58"),
    ]
    .into_iter()
    .map(|(build, pad)| Box::new(move || run_device(seed, build, pad)) as Box<_>)
    .collect();
    Fig7Result { devices: voltboot_sram::par::join_all(jobs) }
}

/// The attack flow on one device.
fn run_device(seed: u64, build: fn(u64) -> voltboot_soc::Soc, pad: &str) -> Fig7Device {
    {
        let mut soc = build(seed);
        soc.power_on_all();
        workloads::baremetal_nop_fill(&mut soc).expect("victim runs");
        let cores: Vec<usize> = (0..soc.core_count()).collect();
        let before: Vec<PackedBits> =
            cores.iter().map(|&c| soc.core(c).unwrap().l1i.way_image(0).unwrap()).collect();

        let outcome = VoltBootAttack::new(pad)
            .extraction(Extraction::Caches { cores: cores.clone() })
            .execute(&mut soc)
            .expect("attack runs");

        let per_core_accuracy: Vec<f64> = cores
            .iter()
            .map(|&c| {
                let image = &outcome.image(&format!("core{c}.l1i.way0")).unwrap().bits;
                1.0 - analysis::fractional_hamming(image, &before[c])
            })
            .collect();
        let way0 = outcome.image("core0.l1i.way0").unwrap().bits.clone();
        let nop_words_core0 = analysis::count_pattern(&way0, &0xD503201Fu32.to_le_bytes());
        Fig7Device {
            soc: soc.soc_name().to_string(),
            per_core_accuracy,
            nop_words_core0,
            way_image_core0: way0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_devices_retain_with_full_accuracy() {
        let r = run(0xF167);
        assert_eq!(r.devices.len(), 2);
        for d in &r.devices {
            assert_eq!(d.per_core_accuracy.len(), 4);
            for (core, &acc) in d.per_core_accuracy.iter().enumerate() {
                assert_eq!(acc, 1.0, "{} core {core}: accuracy {acc}", d.soc);
            }
            assert!(d.nop_words_core0 > 1000, "{}: {} NOPs", d.soc, d.nop_words_core0);
        }
    }
}
