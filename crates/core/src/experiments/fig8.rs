//! Figure 8: Volt Boot against a user application under a running OS.
//!
//! The victim app stores `0xAA` into a large structure while the kernel
//! and background processes run (the OS-noise model). After the attack,
//! the d-cache image contains the expected pattern and the i-cache image
//! contains the application's instructions in consecutive lines.

use crate::analysis;
use crate::attack::{Extraction, VoltBootAttack};
use crate::os_noise::OsNoise;
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;
use voltboot_sram::PackedBits;

/// The figure's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One way of the post-attack d-cache.
    pub dcache_way: PackedBits,
    /// One way of the post-attack i-cache.
    pub icache_way: PackedBits,
    /// `0xAA` bytes found in the extracted d-cache way.
    pub pattern_bytes: usize,
    /// Fraction of the victim's instruction words found in the i-cache.
    pub instruction_fraction: f64,
}

/// Runs the experiment on a Raspberry Pi 4.
pub fn run(seed: u64) -> Fig8Result {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    let mut noise = OsNoise::new(seed ^ 0x05);
    workloads::os_pattern_app(&mut soc, 0, 0xAA, 12 * 1024, &mut noise).expect("victim runs");

    // Ground truth: the victim program's machine code.
    let victim_words: Vec<[u8; 4]> = voltboot_armlite::program::builders::fill_bytes(
        workloads::VICTIM_DATA_ADDR,
        0xAA,
        12 * 1024,
    )
    .words()
    .iter()
    .map(|w| w.to_le_bytes())
    .collect();

    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Caches { cores: vec![0] })
        .execute(&mut soc)
        .expect("attack runs");

    let dcache_way = outcome.image("core0.l1d.way0").unwrap().bits.clone();
    let icache_way = outcome.image("core0.l1i.way0").unwrap().bits.clone();
    let pattern_bytes = dcache_way.to_bytes().iter().filter(|&&b| b == 0xAA).count();

    // Grep the i-cache (all ways) for the victim's instructions.
    let mut icache_bytes = Vec::new();
    for img in outcome.images_matching("core0.l1i") {
        icache_bytes.extend(img.bits.to_bytes());
    }
    let icache_all = PackedBits::from_bytes(&icache_bytes);
    let found =
        victim_words.iter().filter(|w| analysis::count_pattern(&icache_all, *w) > 0).count();
    let instruction_fraction = found as f64 / victim_words.len() as f64;

    Fig8Result { dcache_way, icache_way, pattern_bytes, instruction_fraction }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_and_instructions_survive() {
        let r = run(0xF168);
        assert!(r.pattern_bytes > 4 * 1024, "0xAA bytes: {}", r.pattern_bytes);
        assert!(
            r.instruction_fraction >= 0.99,
            "victim instructions found: {}",
            r.instruction_fraction
        );
    }
}
