//! Figures 9 & 10: iRAM bitmap extraction on the i.MX535 and the
//! Hamming-distance error map.
//!
//! Four copies of a 512×512 bitmap fill the 128 KB iRAM over JTAG; the
//! attack holds VDDAL1 (pad SH13), the device reboots from its internal
//! ROM — which scribbles over the scratchpad window `0x83C..0x18CC` and
//! a small tail — and JTAG dumps the rest intact. The 512-bit-window
//! Hamming series (Figure 10) localizes the error to those clusters, and
//! the overall error is ≈2.7 %.

use crate::analysis;
use crate::attack::{Extraction, VoltBootAttack};
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;
use voltboot_sram::PackedBits;

/// The combined figure data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig910Result {
    /// The reference contents written before the attack.
    pub reference: PackedBits,
    /// The post-attack JTAG dump.
    pub extracted: PackedBits,
    /// Overall bit-error fraction (paper: ≈2.7 %).
    pub overall_error: f64,
    /// Hamming distance per 512-bit window (the Figure 10 series).
    pub hamming_series: Vec<usize>,
    /// Window indices with clustered errors.
    pub error_clusters: Vec<usize>,
}

/// Window width used by the paper for Figure 10.
pub const WINDOW_BITS: usize = 512;

/// Runs the experiment on an i.MX53 QSB.
pub fn run(seed: u64) -> Fig910Result {
    let mut soc = devices::imx53_qsb(seed);
    soc.power_on_all();
    let reference = workloads::iram_bitmap(&mut soc).expect("bitmap staged");

    let outcome = VoltBootAttack::new("SH13")
        .extraction(Extraction::IramJtag)
        .execute(&mut soc)
        .expect("attack runs");
    let extracted = outcome.image("iram").unwrap().bits.clone();

    let overall_error = analysis::fractional_hamming(&extracted, &reference);
    let hamming_series = analysis::hamming_series(&extracted, &reference, WINDOW_BITS);
    let error_clusters = analysis::error_clusters(&hamming_series, WINDOW_BITS / 8);
    Fig910Result { reference, extracted, overall_error, hamming_series, error_clusters }
}

/// Renders one quadrant (32 KB) of the extracted iRAM as a 512-wide PBM,
/// as in Figure 9's four panels. `quadrant` is 0–3.
///
/// # Panics
///
/// Panics if `quadrant > 3`.
pub fn render_quadrant_pbm(result: &Fig910Result, quadrant: usize) -> String {
    assert!(quadrant < 4, "iRAM has four 32 KB quadrants");
    let bits_per_quadrant = result.extracted.len() / 4;
    let bytes = result.extracted.to_bytes();
    let start = quadrant * bits_per_quadrant / 8;
    let quad = PackedBits::from_bytes(&bytes[start..start + bits_per_quadrant / 8]);
    analysis::to_pbm(&quad, 512)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_small_and_clustered() {
        let r = run(0xF169);
        // Paper: 2.7% overall; our clobber map gives the same ballpark.
        assert!(
            r.overall_error > 0.015 && r.overall_error < 0.04,
            "overall error {}",
            r.overall_error
        );
        assert!(!r.error_clusters.is_empty());
        // Clusters sit at the start (scratchpad window: bytes
        // 0x83C..0x18CC = windows 32..100) and end (tail stack).
        let windows = r.hamming_series.len();
        assert!(
            r.error_clusters.iter().all(|&w| w < 100 || w >= windows - 40),
            "clusters not at start/end: {:?}",
            r.error_clusters
        );
        // The scratchpad window 0x83C..0x18CC covers bits 16864..50784,
        // i.e. windows ~32..99... confirm a cluster near window 40.
        assert!(r.error_clusters.iter().any(|&w| (30..100).contains(&w)));
    }

    #[test]
    fn untouched_middle_is_error_free() {
        let r = run(0xF16A);
        let mid = r.hamming_series.len() / 2;
        assert!(r.hamming_series[mid - 10..mid + 10].iter().all(|&h| h == 0));
    }

    #[test]
    fn quadrants_render() {
        let r = run(0xF16B);
        let pbm = render_quadrant_pbm(&r, 0);
        assert!(pbm.starts_with("P1\n512 512\n"));
    }
}
