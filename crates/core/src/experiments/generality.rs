//! Generality check: the attack pipeline on all three platforms.
//!
//! The paper's claim is that Volt Boot generalizes across vendors,
//! microarchitectures, and memory types ("three distinct
//! microarchitectures"). This experiment runs the identical pipeline on
//! every catalog device and reports per-target retention.

use crate::analysis;
use crate::attack::{Extraction, VoltBootAttack};
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::{devices, Soc};

/// One device's generality row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneralityRow {
    /// Board name.
    pub board: String,
    /// SoC name.
    pub soc: String,
    /// Probe pad used.
    pub pad: String,
    /// Target memory label.
    pub target: String,
    /// Retention accuracy of the extraction.
    pub accuracy: f64,
}

/// The generality matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneralityResult {
    /// One row per (device, target).
    pub rows: Vec<GeneralityRow>,
}

/// Runs the pipeline on all three devices.
pub fn run(seed: u64) -> GeneralityResult {
    let mut rows = Vec::new();

    for (build, pad) in
        [(devices::raspberry_pi_4 as fn(u64) -> Soc, "TP15"), (devices::raspberry_pi_3, "PP58")]
    {
        let mut soc = build(seed);
        soc.power_on_all();
        workloads::baremetal_nop_fill(&mut soc).expect("victim runs");
        workloads::register_fill(&mut soc, 0).expect("victim runs");
        let icache_truth = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let reg_truth = soc.core(0).unwrap().vregs.image().unwrap();

        let outcome = VoltBootAttack::new(pad)
            .extraction(Extraction::Caches { cores: vec![0] })
            .execute(&mut soc)
            .expect("attack runs");
        let got = &outcome.image("core0.l1i.way0").unwrap().bits;
        rows.push(GeneralityRow {
            board: soc.board_name().into(),
            soc: soc.soc_name().into(),
            pad: pad.into(),
            target: "L1 i-cache".into(),
            accuracy: 1.0 - analysis::fractional_hamming(got, &icache_truth),
        });
        let regs = crate::attack::extract_registers(&soc, &[0]).expect("register dump");
        rows.push(GeneralityRow {
            board: soc.board_name().into(),
            soc: soc.soc_name().into(),
            pad: pad.into(),
            target: "NEON registers".into(),
            accuracy: 1.0 - analysis::fractional_hamming(&regs[0].bits, &reg_truth),
        });
    }

    // The i.MX535: iRAM through JTAG, measured over the unclobbered span.
    let mut imx = devices::imx53_qsb(seed ^ 0x9E);
    imx.power_on_all();
    let reference = workloads::iram_bitmap(&mut imx).expect("bitmap staged");
    let outcome = VoltBootAttack::new("SH13")
        .extraction(Extraction::IramJtag)
        .execute(&mut imx)
        .expect("attack runs");
    let dump = &outcome.image("iram").unwrap().bits;
    // Middle half of the iRAM: untouched by the boot ROM.
    let quarter = reference.len() / 8 / 4;
    let mid_ref =
        voltboot_sram::PackedBits::from_bytes(&reference.to_bytes()[quarter..3 * quarter]);
    let mid_got = voltboot_sram::PackedBits::from_bytes(&dump.to_bytes()[quarter..3 * quarter]);
    rows.push(GeneralityRow {
        board: imx.board_name().into(),
        soc: imx.soc_name().into(),
        pad: "SH13".into(),
        target: "iRAM (unclobbered span)".into(),
        accuracy: 1.0 - analysis::fractional_hamming(&mid_got, &mid_ref),
    });

    GeneralityResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_platform_and_target_is_error_free() {
        let r = run(0x6E6E);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert_eq!(
                row.accuracy, 1.0,
                "{} / {}: accuracy {}",
                row.soc, row.target, row.accuracy
            );
        }
    }
}
