//! End-to-end secret theft: the scenario the paper's introduction
//! motivates.
//!
//! A device uses full-disk encryption; the key schedule lives fully
//! on-chip (TRESOR-style NEON registers, or a CaSE-style locked cache
//! way). The attacker captures the unlocked device, runs Volt Boot,
//! scans the extracted images for a consistent AES key schedule, and
//! decrypts the stolen disk offline — with zero search effort, because
//! the images are error-free. The cold-boot baseline on the same victim
//! recovers nothing.

use crate::analysis;
use crate::attack::{ColdBootAttack, Extraction, VoltBootAttack};
use serde::{Deserialize, Serialize};
use voltboot_crypto::aes::{Aes, AesKey};
use voltboot_crypto::fde::{EncryptedDisk, SECTOR_BYTES};
use voltboot_crypto::tresor::TresorContext;
use voltboot_soc::devices;

/// Where the victim hides the key schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyHome {
    /// TRESOR-style: NEON registers.
    Registers,
    /// CaSE-style: a locked d-cache way.
    LockedCache,
}

/// The end-to-end result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyTheftResult {
    /// Where the key was hidden.
    pub home: KeyHome,
    /// Whether Volt Boot recovered a working disk key.
    pub voltboot_recovers: bool,
    /// Plaintext recovered from the stolen disk with the stolen key.
    pub recovered_plaintext: Option<String>,
    /// Whether the cold-boot baseline recovered a working key.
    pub coldboot_recovers: bool,
}

/// The secret the victim writes to disk.
pub const SECRET: &str = "account=9149; pin=2071; seed=correct horse battery staple";

/// Runs the scenario: stage the victim, attack, recover, decrypt.
pub fn run(seed: u64, home: KeyHome) -> KeyTheftResult {
    // --- Victim setup: unlocked FDE with the key schedule on-chip. ---
    let mut disk = EncryptedDisk::create("owner-password", seed, 16);
    let aes = disk.unlock("owner-password").expect("owner unlocks");
    let mut sector = [0u8; SECTOR_BYTES];
    sector[..SECRET.len()].copy_from_slice(SECRET.as_bytes());
    disk.write_sector(&aes, 0, &sector).expect("write");
    let key = schedule_key(&aes);

    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    match home {
        KeyHome::Registers => {
            TresorContext::install(&mut soc, 0, &key).expect("tresor install");
        }
        KeyHome::LockedCache => {
            voltboot_crypto::case_exec::CaseEnclave::install(&mut soc, 0, 0x9000, &key)
                .expect("case install");
        }
    }

    // --- Volt Boot. ---
    let extraction = match home {
        KeyHome::Registers => Extraction::Registers { cores: vec![0] },
        KeyHome::LockedCache => Extraction::Caches { cores: vec![0] },
    };
    let outcome = VoltBootAttack::new("TP15")
        .extraction(extraction.clone())
        .execute(&mut soc)
        .expect("attack runs");
    let stolen = outcome
        .images
        .iter()
        .flat_map(|img| analysis::find_key_schedules(&img.bits))
        .map(|(_, ks)| Aes::from_schedule(ks))
        .find(|cipher| disk.verify_cipher(cipher));
    let recovered_plaintext = stolen.as_ref().map(|cipher| {
        let pt = disk.read_sector(cipher, 0).expect("read");
        String::from_utf8_lossy(&pt[..SECRET.len()]).to_string()
    });

    // --- Cold-boot baseline on an identically staged victim. ---
    let mut soc2 = devices::raspberry_pi_4(seed ^ 0xC01D);
    soc2.power_on_all();
    match home {
        KeyHome::Registers => {
            TresorContext::install(&mut soc2, 0, &key).expect("tresor install");
        }
        KeyHome::LockedCache => {
            voltboot_crypto::case_exec::CaseEnclave::install(&mut soc2, 0, 0x9000, &key)
                .expect("case install");
        }
    }
    let cold = ColdBootAttack::new(-40.0, 5).extraction(extraction).execute(&mut soc2).unwrap();
    let coldboot_recovers = cold
        .images
        .iter()
        .flat_map(|img| analysis::find_key_schedules(&img.bits))
        .map(|(_, ks)| Aes::from_schedule(ks))
        .any(|cipher| disk.verify_cipher(&cipher));

    KeyTheftResult {
        home,
        voltboot_recovers: stolen.is_some(),
        recovered_plaintext,
        coldboot_recovers,
    }
}

/// Rebuilds the victim's `AesKey` from its cipher (the victim knows its
/// own key; this is staging, not attack code).
fn schedule_key(aes: &Aes) -> AesKey {
    aes.schedule().original_key()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltboot_steals_register_keys_and_coldboot_does_not() {
        let r = run(0x1D3A, KeyHome::Registers);
        assert!(r.voltboot_recovers);
        assert_eq!(r.recovered_plaintext.as_deref(), Some(SECRET));
        assert!(!r.coldboot_recovers);
    }

    #[test]
    fn voltboot_steals_locked_cache_keys() {
        let r = run(0x1D3B, KeyHome::LockedCache);
        assert!(r.voltboot_recovers);
        assert_eq!(r.recovered_plaintext.as_deref(), Some(SECRET));
        assert!(!r.coldboot_recovers);
    }
}
