//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each submodule runs one experiment end-to-end on the simulated
//! hardware and returns a typed result; the `voltboot-bench` crate's
//! `repro_*` binaries print them in the paper's layout, and
//! `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! | Module      | Reproduces |
//! |-------------|------------|
//! | [`table1`]  | Table 1 — cold-boot error vs temperature on BCM2711 |
//! | [`fig3`]    | Figure 3 — d-cache snapshot after a cold boot |
//! | [`table4`]  | Table 4 — d-cache extraction vs array size under Linux |
//! | [`fig7`]    | Figure 7 — i-cache retention for bare-metal victims |
//! | [`fig8`]    | Figure 8 — cache snapshots under an OS |
//! | [`fig9_10`] | Figures 9 & 10 — iRAM bitmap extraction and error map |
//! | [`sec62`]   | §6.2 — SRAM accessible to an attacker after boot |
//! | [`sec72`]   | §7.2 — vector-register retention |
//! | [`sec8`]    | §8 — countermeasure effectiveness matrix |
//! | [`keytheft`]| §1/§2 motivation — end-to-end FDE key theft |

pub mod ablations;
pub mod dram_baseline;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9_10;
pub mod generality;
pub mod keytheft;
pub mod sec62;
pub mod sec72;
pub mod sec8;
pub mod table1;
pub mod table4;
