//! §6.2: how much retained SRAM is accessible to an attacker after boot?
//!
//! The experiment fills a target memory with a known pattern, runs the
//! attack, and measures how much of the pattern survives the device's own
//! boot path. On the Broadcom SoCs the software-enabled L1 caches are
//! untouched (100 % accessible, while the VideoCore clobbers L2); on the
//! i.MX535 the boot ROM's scratchpad writes reduce the accessible iRAM to
//! ≈95 %.

use crate::analysis;
use crate::attack::{Extraction, VoltBootAttack};
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;

/// One memory's accessibility result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessibilityRow {
    /// Device name.
    pub device: String,
    /// Target memory label.
    pub memory: String,
    /// Fraction of the pre-attack contents intact after the boot path.
    pub accessible_fraction: f64,
}

/// The section's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec62Result {
    /// One row per (device, memory).
    pub rows: Vec<AccessibilityRow>,
}

/// Runs the accessibility survey on the Pi 4 (L1 caches, L2) and the
/// i.MX53 QSB (iRAM).
pub fn run(seed: u64) -> Sec62Result {
    let mut rows = Vec::new();

    // Broadcom: stage L2 data first (a 64 KB fill overflows the 32 KB
    // L1D, forcing dirty writebacks into L2), then run the bare-metal
    // NOP victim last so nothing evicts its L1 lines before the attack.
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    soc.enable_l2();
    soc.enable_caches(0);
    let p = voltboot_armlite::program::builders::fill_bytes(0x20_0000, 0x3C, 64 * 1024);
    soc.run_program(0, &p, workloads::VICTIM_CODE_ADDR, 50_000_000);
    workloads::baremetal_nop_fill(&mut soc).expect("victim runs");
    let before_l1 = soc.core(0).unwrap().l1i.way_image(0).unwrap();
    // Count 16-byte pattern runs so random bytes contribute nothing.
    let l2_pattern_runs = |soc: &voltboot_soc::Soc| -> usize {
        let g = soc.l2().geometry();
        let mut n = 0usize;
        for way in 0..g.ways {
            let bytes = soc.l2().raw_way_bytes(way, 0, g.sets() * g.line_bytes).unwrap();
            n += bytes.chunks_exact(16).filter(|c| c.iter().all(|&b| b == 0x3C)).count();
        }
        n
    };
    let before_l2_pattern = l2_pattern_runs(&soc);

    let outcome = VoltBootAttack::new("TP15")
        .extraction(Extraction::Caches { cores: vec![0] })
        .execute(&mut soc)
        .expect("attack runs");
    let after_l1 = &outcome.image("core0.l1i.way0").unwrap().bits;
    rows.push(AccessibilityRow {
        device: "BCM2711".into(),
        memory: "L1 i-cache".into(),
        accessible_fraction: 1.0 - analysis::fractional_hamming(after_l1, &before_l1),
    });

    // L2 after the VideoCore boot: pattern gone.
    let after_l2_pattern = l2_pattern_runs(&soc);
    rows.push(AccessibilityRow {
        device: "BCM2711".into(),
        memory: "shared L2 (VideoCore clobbers)".into(),
        accessible_fraction: if before_l2_pattern == 0 {
            0.0
        } else {
            after_l2_pattern as f64 / before_l2_pattern as f64
        },
    });

    // i.MX535: iRAM pattern, attack, measure surviving bytes.
    let mut imx = devices::imx53_qsb(seed ^ 0x62);
    imx.power_on_all();
    let reference = workloads::iram_bitmap(&mut imx).expect("bitmap staged");
    let outcome = VoltBootAttack::new("SH13")
        .extraction(Extraction::IramJtag)
        .execute(&mut imx)
        .expect("attack runs");
    let extracted = &outcome.image("iram").unwrap().bits;
    // Accessible = bytes that survived exactly.
    let ref_bytes = reference.to_bytes();
    let got_bytes = extracted.to_bytes();
    let intact = ref_bytes.iter().zip(&got_bytes).filter(|(a, b)| a == b).count();
    rows.push(AccessibilityRow {
        device: "i.MX535".into(),
        memory: "iRAM (boot ROM scratchpad)".into(),
        accessible_fraction: intact as f64 / ref_bytes.len() as f64,
    });

    Sec62Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessibility_matches_the_paper() {
        let r = run(0x5EC62);
        let l1 = &r.rows[0];
        assert_eq!(l1.accessible_fraction, 1.0, "L1 must be fully accessible");
        let l2 = &r.rows[1];
        assert!(l2.accessible_fraction < 0.05, "L2 must be clobbered: {}", l2.accessible_fraction);
        let iram = &r.rows[2];
        assert!(
            (iram.accessible_fraction - 0.95).abs() < 0.02,
            "iRAM accessibility {}",
            iram.accessible_fraction
        );
    }
}
