//! §7.2: CPU vector registers fully retain their state under Volt Boot.
//!
//! The victim fills `v0..v31` with distinguishable patterns (`0xFF` /
//! `0xAA`); after the held power cycle both Broadcom devices return the
//! whole register file intact. A TRESOR-style key schedule stored there
//! is therefore recoverable.

use crate::attack::{Extraction, VoltBootAttack};
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;

/// Result for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec72Device {
    /// SoC name.
    pub soc: String,
    /// Registers (out of 32 per core × cores) that fully retained their
    /// pattern.
    pub retained_registers: usize,
    /// Total registers checked.
    pub total_registers: usize,
}

/// The section's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec72Result {
    /// One entry per device.
    pub devices: Vec<Sec72Device>,
}

/// Runs the register experiment on both Raspberry Pis.
pub fn run(seed: u64) -> Sec72Result {
    let mut devices_out = Vec::new();
    for (build, pad) in [
        (devices::raspberry_pi_4 as fn(u64) -> voltboot_soc::Soc, "TP15"),
        (devices::raspberry_pi_3 as fn(u64) -> voltboot_soc::Soc, "PP58"),
    ] {
        let mut soc = build(seed);
        soc.power_on_all();
        let cores: Vec<usize> = (0..soc.core_count()).collect();
        for &core in &cores {
            workloads::register_fill(&mut soc, core).expect("victim runs");
        }
        let outcome = VoltBootAttack::new(pad)
            .extraction(Extraction::Registers { cores: cores.clone() })
            .execute(&mut soc)
            .expect("attack runs");

        let mut retained = 0usize;
        for &core in &cores {
            let bytes = outcome.image(&format!("core{core}.vregs")).unwrap().bits.to_bytes();
            for (n, chunk) in bytes.chunks_exact(16).enumerate() {
                let expected = if n % 2 == 0 { 0xFFu8 } else { 0xAA };
                if chunk.iter().all(|&b| b == expected) {
                    retained += 1;
                }
            }
        }
        devices_out.push(Sec72Device {
            soc: soc.soc_name().to_string(),
            retained_registers: retained,
            total_registers: cores.len() * 32,
        });
    }
    Sec72Result { devices: devices_out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vector_registers_retain() {
        let r = run(0x5EC72);
        for d in &r.devices {
            assert_eq!(
                d.retained_registers, d.total_registers,
                "{}: {}/{}",
                d.soc, d.retained_registers, d.total_registers
            );
        }
    }
}
