//! §8: the countermeasure effectiveness matrix.
//!
//! For each surveyed countermeasure, run the full attack against a
//! prepared victim and record whether any victim data survives into the
//! attacker's hands. Also demonstrates why the software power-down purge
//! fails: the abrupt disconnect never executes it.

use crate::analysis;
use crate::attack::{Extraction, VoltBootAttack};
use crate::countermeasures::{mark_dcache_secure, Countermeasure};
use crate::error::AttackError;
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;

/// One countermeasure's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec8Row {
    /// The countermeasure.
    pub countermeasure: Countermeasure,
    /// Whether the attack still recovered the victim pattern.
    pub attack_succeeded: bool,
    /// Which step stopped it, if any.
    pub stopped_at: Option<String>,
    /// Fraction of the victim pattern recovered.
    pub recovered_fraction: f64,
    /// Deployable without a silicon change?
    pub deployable: bool,
}

/// The matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec8Result {
    /// One row per countermeasure.
    pub rows: Vec<Sec8Row>,
}

/// Number of `0xAA` bytes the victim stages per way (ground truth).
const VICTIM_BYTES: u32 = 8 * 1024;

/// Runs the matrix on a Raspberry Pi 4. Each countermeasure is evaluated
/// on its own fresh board, so the rows run in parallel.
pub fn run(seed: u64) -> Sec8Result {
    let jobs: Vec<Box<dyn FnOnce() -> Sec8Row + Send>> = Countermeasure::all()
        .into_iter()
        .map(|cm| Box::new(move || evaluate(seed, cm)) as Box<_>)
        .collect();
    Sec8Result { rows: voltboot_sram::par::join_all(jobs) }
}

fn evaluate(seed: u64, cm: Countermeasure) -> Sec8Row {
    let mut soc = devices::raspberry_pi_4(seed ^ (cm as u64) << 16);
    soc.power_on_all();
    cm.apply(&mut soc);

    // Victim: the 0xAA pattern app (bare-metal flavour for determinism).
    soc.enable_caches(0);
    let p = voltboot_armlite::program::builders::fill_bytes(
        workloads::VICTIM_DATA_ADDR,
        0xAA,
        VICTIM_BYTES,
    );
    soc.run_program(0, &p, workloads::VICTIM_CODE_ADDR, 50_000_000);
    if cm == Countermeasure::TrustZoneEnforcement {
        // The protected deployment: the secrets were filled from the
        // secure world, so their lines carry secure NS bits.
        mark_dcache_secure(&mut soc, 0).expect("mark secure");
    }

    let attack = VoltBootAttack::new("TP15").extraction(Extraction::Caches { cores: vec![0] });
    match attack.execute(&mut soc) {
        Ok(outcome) => {
            let mut recovered = 0usize;
            for img in outcome.images_matching("core0.l1d") {
                recovered += img.bits.to_bytes().iter().filter(|&&b| b == 0xAA).count();
            }
            let fraction = (recovered as f64 / VICTIM_BYTES as f64).min(1.0);
            // Noise floor: random SRAM has 1/256 of bytes = any value.
            let succeeded = fraction > 0.05;
            Sec8Row {
                countermeasure: cm,
                attack_succeeded: succeeded,
                stopped_at: (!succeeded).then(|| "extraction yields no victim data".to_string()),
                recovered_fraction: fraction,
                deployable: cm.deployable_without_new_silicon(),
            }
        }
        Err(AttackError::BootDefeated { reason }) => Sec8Row {
            countermeasure: cm,
            attack_succeeded: false,
            stopped_at: Some(format!("reboot: {reason}")),
            recovered_fraction: 0.0,
            deployable: cm.deployable_without_new_silicon(),
        },
        Err(AttackError::ExtractionDenied { detail }) => Sec8Row {
            countermeasure: cm,
            attack_succeeded: false,
            stopped_at: Some(format!("extraction: {detail}")),
            recovered_fraction: 0.0,
            deployable: cm.deployable_without_new_silicon(),
        },
        Err(e) => Sec8Row {
            countermeasure: cm,
            attack_succeeded: false,
            stopped_at: Some(format!("error: {e}")),
            recovered_fraction: 0.0,
            deployable: cm.deployable_without_new_silicon(),
        },
    }
}

/// The §8 power-down-purge demonstration: an *orderly* shutdown purges
/// the SRAM, but an abrupt disconnect leaves the purge handler unrun.
/// Returns `(recovered_after_orderly, recovered_after_abrupt)` fractions.
pub fn purge_timing_demo(seed: u64) -> (f64, f64) {
    let stage = |seed: u64| {
        let mut soc = devices::raspberry_pi_4(seed);
        soc.power_on_all();
        soc.enable_caches(0);
        let p = voltboot_armlite::program::builders::fill_bytes(
            workloads::VICTIM_DATA_ADDR,
            0xAA,
            VICTIM_BYTES,
        );
        soc.run_program(0, &p, workloads::VICTIM_CODE_ADDR, 50_000_000);
        soc
    };
    let recovered = |soc: &mut voltboot_soc::Soc| {
        let outcome = VoltBootAttack::new("TP15")
            .extraction(Extraction::Caches { cores: vec![0] })
            .execute(soc)
            .expect("attack runs");
        let mut n = 0usize;
        for img in outcome.images_matching("core0.l1d") {
            n += analysis::count_pattern(&img.bits, &[0xAA; 8]);
        }
        (n * 8) as f64 / VICTIM_BYTES as f64
    };

    // Orderly shutdown: the OS runs the purge handler before power-off.
    let mut orderly = stage(seed);
    crate::countermeasures::run_power_down_purge(&mut orderly).expect("purge runs");
    let after_orderly = recovered(&mut orderly);

    // Abrupt disconnect: the handler never runs.
    let mut abrupt = stage(seed ^ 1);
    let after_abrupt = recovered(&mut abrupt);

    (after_orderly, after_abrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_the_papers_assessment() {
        let r = run(0x5EC8);
        let row = |cm: Countermeasure| r.rows.iter().find(|x| x.countermeasure == cm).unwrap();

        assert!(row(Countermeasure::None).attack_succeeded);
        // The purge handler never runs on an abrupt disconnect.
        assert!(row(Countermeasure::PowerDownPurge).attack_succeeded);
        // Hardware resets and policy gates stop the attack.
        assert!(!row(Countermeasure::BootTimeMemoryReset).attack_succeeded);
        assert!(!row(Countermeasure::MandatedAuthenticatedBoot).attack_succeeded);
        assert!(!row(Countermeasure::TrustZoneEnforcement).attack_succeeded);
        assert!(!row(Countermeasure::InternalPowerToggle).attack_succeeded);
        // Resetting only L2 does not protect L1 contents.
        assert!(row(Countermeasure::L2ResetPin).attack_succeeded);
    }

    #[test]
    fn purge_only_helps_on_orderly_shutdown() {
        let (orderly, abrupt) = purge_timing_demo(0x5EC9);
        assert!(orderly < 0.02, "orderly shutdown leaves {orderly}");
        assert!(abrupt > 0.5, "abrupt disconnect leaves {abrupt}");
    }
}
