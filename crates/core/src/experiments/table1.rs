//! Table 1: cold-boot attacks on the BCM2711's d-cache are ineffective.
//!
//! The paper chills a Raspberry Pi 4 in a thermal chamber, power-cycles
//! it for a few milliseconds, and compares each core's extracted d-cache
//! against the pre-stored pattern. At 0 °C, −5 °C, and −40 °C (the SoC's
//! hard limit) the mean mismatch is ≈50 % — no retention — while the
//! fractional Hamming distance against the cache's *startup* state is
//! ≈0.10, showing the cache simply reset to its power-up fingerprint.

use crate::analysis;
use crate::attack::{ColdBootAttack, Extraction};
use crate::workloads;
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;
use voltboot_sram::PackedBits;

/// One temperature point of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Chamber temperature in Celsius.
    pub celsius: f64,
    /// Mean per-core error (fraction of mismatched bits vs the stored
    /// pattern).
    pub mean_error: f64,
    /// Per-core errors.
    pub per_core_error: Vec<f64>,
    /// Mean fractional Hamming distance vs the cache's startup state.
    pub hd_vs_startup: f64,
}

/// The full Table 1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// One row per temperature.
    pub rows: Vec<Table1Row>,
}

/// Temperatures evaluated by the paper (°C).
pub const TEMPERATURES: [f64; 3] = [0.0, -5.0, -40.0];

/// Runs the experiment on a BCM2711 with the given die seed.
///
/// The three chamber runs use fresh, independent boards, so they execute
/// in parallel; each row depends only on `(seed, temperature index)`.
pub fn run(seed: u64) -> Table1Result {
    let jobs: Vec<Box<dyn FnOnce() -> Table1Row + Send>> = TEMPERATURES
        .iter()
        .enumerate()
        .map(|(i, &celsius)| Box::new(move || run_temperature(seed, i, celsius)) as Box<_>)
        .collect();
    Table1Result { rows: voltboot_sram::par::join_all(jobs) }
}

/// One chamber run at one temperature.
fn run_temperature(seed: u64, i: usize, celsius: f64) -> Table1Row {
    {
        // A fresh board per chamber run, as in the paper's methodology.
        let mut soc = devices::raspberry_pi_4(seed ^ ((i as u64 + 1) << 32));
        soc.power_on_all();

        // Record each core's cache startup fingerprint before the victim
        // writes anything (the caches hold their power-up state now).
        let startup: Vec<PackedBits> =
            (0..4).map(|c| soc.core(c).unwrap().l1d.way_image(0).unwrap()).collect();

        // Bare-metal victim fills the caches on every core.
        workloads::baremetal_nop_fill(&mut soc).expect("victim runs");
        for core in 0..4 {
            let p = voltboot_armlite::program::builders::fill_bytes(
                workloads::VICTIM_DATA_ADDR + core as u64 * 0x4_0000,
                0xA5,
                16 * 1024,
            );
            soc.run_program(core, &p, workloads::VICTIM_CODE_ADDR, 50_000_000);
        }
        let stored: Vec<PackedBits> =
            (0..4).map(|c| soc.core(c).unwrap().l1d.way_image(0).unwrap()).collect();

        // Cold boot: a few milliseconds without power at temperature.
        let outcome = ColdBootAttack::new(celsius, 5)
            .extraction(Extraction::Caches { cores: vec![0, 1, 2, 3] })
            .execute(&mut soc)
            .expect("cold boot flow");

        let mut per_core_error = Vec::new();
        let mut hd_startup_acc = 0.0;
        for core in 0..4 {
            let image = &outcome.image(&format!("core{core}.l1d.way0")).unwrap().bits;
            per_core_error.push(analysis::fractional_hamming(image, &stored[core]));
            hd_startup_acc += analysis::fractional_hamming(image, &startup[core]);
        }
        let mean_error = per_core_error.iter().sum::<f64>() / per_core_error.len() as f64;
        Table1Row { celsius, mean_error, per_core_error, hd_vs_startup: hd_startup_acc / 4.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_boot_error_is_about_fifty_percent_at_every_temperature() {
        let result = run(0x7AB1E1);
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert!(
                (row.mean_error - 0.5).abs() < 0.05,
                "{} C: error {}",
                row.celsius,
                row.mean_error
            );
            // The paper's footnote: HD vs the startup state is ~0.10.
            assert!(
                (row.hd_vs_startup - 0.10).abs() < 0.04,
                "{} C: hd vs startup {}",
                row.celsius,
                row.hd_vs_startup
            );
        }
    }
}
