//! Table 4: d-cache extraction accuracy vs victim array size under Linux.
//!
//! One microbenchmark process per core stores an array of 8-byte
//! elements (4 KB → 32 KB) through the d-cache while background OS
//! activity evicts lines. Volt Boot then extracts both ways of every
//! core's d-cache, and the analysis counts how many array elements
//! survive in W0, W1, and their union.
//!
//! Shape to reproduce: 100 % extraction up to half the cache (the array
//! fits beside the noise), dropping to ≈85–92 % when the array is
//! cache-sized (every noise eviction destroys a victim line).

use crate::analysis;
use crate::attack::{Extraction, VoltBootAttack};
use crate::os_noise::OsNoise;
use crate::workloads::{self, ARRAY_SEED};
use serde::{Deserialize, Serialize};
use voltboot_soc::devices;

/// Array sizes evaluated by the paper.
pub const ARRAY_KB: [u32; 4] = [4, 8, 16, 32];

/// One (array size × core) cell of the table, averaged over trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Cell {
    /// Victim array size in KB.
    pub array_kb: u32,
    /// Core index.
    pub core: usize,
    /// Mean elements found only counting W0.
    pub w0: f64,
    /// Mean elements found only counting W1.
    pub w1: f64,
    /// Mean elements found in W0 ∪ W1.
    pub union: f64,
    /// Union as a fraction of the array's element count.
    pub extracted_fraction: f64,
}

/// The full table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Result {
    /// All cells, ordered by array size then core.
    pub cells: Vec<Table4Cell>,
    /// Trials averaged per cell.
    pub trials: usize,
}

impl Table4Result {
    /// The cell for one `(array_kb, core)` pair.
    pub fn cell(&self, array_kb: u32, core: usize) -> Option<&Table4Cell> {
        self.cells.iter().find(|c| c.array_kb == array_kb && c.core == core)
    }

    /// Mean extraction fraction across cores for one array size.
    pub fn mean_extracted(&self, array_kb: u32) -> f64 {
        let cells: Vec<&Table4Cell> =
            self.cells.iter().filter(|c| c.array_kb == array_kb).collect();
        cells.iter().map(|c| c.extracted_fraction).sum::<f64>() / cells.len() as f64
    }
}

/// Runs the experiment: `trials` repetitions per array size (the paper
/// uses 3), all four cores per trial.
pub fn run(seed: u64, trials: usize) -> Table4Result {
    run_on(seed, trials, devices::raspberry_pi_4, "TP15")
}

/// The same sweep on a Raspberry Pi 3 — a 4-way 32 KB L1D, so noise has
/// more ways to land in before it must evict the victim. The crossover
/// shape is the same; the degradation point sits at the same total
/// capacity.
pub fn run_pi3(seed: u64, trials: usize) -> Table4Result {
    run_on(seed, trials, devices::raspberry_pi_3, "PP58")
}

/// Per-core `(w0, w1, union)` element counts from one trial.
type TrialCounts = [(f64, f64, f64); 4];

fn run_on(
    seed: u64,
    trials: usize,
    build: fn(u64) -> voltboot_soc::Soc,
    pad: &str,
) -> Table4Result {
    // Every (array size, trial) cell uses a fresh board and its own
    // noise stream, so they all run in parallel; the accumulation below
    // folds the results in the original deterministic order.
    let jobs: Vec<Box<dyn FnOnce() -> TrialCounts + Send + '_>> = ARRAY_KB
        .iter()
        .flat_map(|&kb| {
            (0..trials).map(move |trial| {
                Box::new(move || run_trial(seed, build, pad, kb, trial)) as Box<_>
            })
        })
        .collect();
    let per_trial = voltboot_sram::par::join_all(jobs);

    let mut cells: Vec<Table4Cell> = Vec::new();
    for (ki, &kb) in ARRAY_KB.iter().enumerate() {
        let count = kb * 1024 / 8;
        // Accumulators per core.
        let mut acc = vec![(0.0f64, 0.0f64, 0.0f64); 4];
        for trial in 0..trials {
            let counts = &per_trial[ki * trials + trial];
            for (acc_core, c) in acc.iter_mut().zip(counts.iter()) {
                acc_core.0 += c.0;
                acc_core.1 += c.1;
                acc_core.2 += c.2;
            }
        }
        for (core, (w0, w1, union)) in acc.into_iter().enumerate() {
            let t = trials as f64;
            cells.push(Table4Cell {
                array_kb: kb,
                core,
                w0: w0 / t,
                w1: w1 / t,
                union: union / t,
                extracted_fraction: union / t / count as f64,
            });
        }
    }
    Table4Result { cells, trials }
}

/// One `(array size, trial)` cell: stage the victims, attack, count
/// surviving elements per core.
fn run_trial(
    seed: u64,
    build: fn(u64) -> voltboot_soc::Soc,
    pad: &str,
    kb: u32,
    trial: usize,
) -> TrialCounts {
    let count = kb * 1024 / 8;
    let mut soc = build(seed ^ ((kb as u64) << 24) ^ (trial as u64));
    soc.power_on_all();
    let mut noise = OsNoise::new(seed ^ 0xBAD ^ ((kb as u64) << 8) ^ trial as u64);
    // One benchmark process per core, as in the paper (§7.1.2:
    // "We launch one benchmark process per core").
    for core in 0..4 {
        workloads::microbenchmark_array(&mut soc, core, count, &mut noise).expect("victim runs");
    }
    let ways = soc.core(0).expect("core 0").l1d.geometry().ways;
    let outcome = VoltBootAttack::new(pad)
        .extraction(Extraction::Caches { cores: vec![0, 1, 2, 3] })
        .execute(&mut soc)
        .expect("attack runs");
    let mut counts: TrialCounts = [(0.0, 0.0, 0.0); 4];
    for (core, acc_core) in counts.iter_mut().enumerate() {
        // W0/W1 columns as in the paper's table; the union spans
        // every way the device has (2 on the A72, 4 on the A53).
        let per_way: Vec<Vec<bool>> = (0..ways)
            .map(|w| {
                let img = &outcome.image(&format!("core{core}.l1d.way{w}")).unwrap().bits;
                analysis::elements_present(img, ARRAY_SEED, count as usize)
            })
            .collect();
        let found_in = |w: usize| per_way[w].iter().filter(|&&p| p).count();
        let union = (0..count as usize).filter(|&i| per_way.iter().any(|way| way[i])).count();
        acc_core.0 += found_in(0) as f64;
        acc_core.1 += found_in(1) as f64;
        acc_core.2 += union as f64;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arrays_extract_fully_and_large_arrays_degrade() {
        // One trial to keep the test quick; the bench runs three.
        let r = run(0x7AB4E4, 1);
        assert_eq!(r.cells.len(), 16);
        for kb in [4, 8, 16] {
            let mean = r.mean_extracted(kb);
            assert!(mean > 0.99, "{kb} KB: extracted {mean}");
        }
        let mean32 = r.mean_extracted(32);
        assert!(
            mean32 > 0.75 && mean32 < 0.99,
            "32 KB should degrade into the paper's band: {mean32}"
        );
    }

    #[test]
    fn elements_split_across_both_ways_at_32kb() {
        let r = run(0x7AB4E5, 1);
        let c = r.cell(32, 0).unwrap();
        assert!(c.w0 > 100.0 && c.w1 > 100.0, "w0 {} w1 {}", c.w0, c.w1);
    }
}
