//! Deterministic fault injection for attack campaigns.
//!
//! A real Volt Boot session is not the clean five-step flow of the
//! paper's Figure 5: probe clips slip, bench supplies brown out, PMICs
//! re-sequence rails in the wrong order after a sloppy reconnect, and
//! debug readouts return flipped bits. This module models that glitch
//! surface as a *seeded plan*: a [`FaultPlan`] deterministically decides,
//! per repetition and per retry attempt, which faults fire — so a
//! campaign with a fixed seed replays bit-identically, faults included.
//!
//! Fault classes (and where they inject):
//!
//! * **Probe contact glitch** — extra contact resistance and a sagging
//!   current limit at the *attach* step;
//! * **Rail brown-out** — a momentary dip of every held rail below its
//!   steady hold voltage during the *power-cycle* step;
//! * **Reconnect misordering** — the PMIC restores rails in reverse
//!   order at the *reconnect* step, with a small extra inrush dip;
//! * **Readout bit errors** — sparse deterministic bit flips in the
//!   *extracted* images;
//! * **Extraction dropout** — the debug port fails to enumerate at the
//!   *extract* step, failing the whole attempt (the retryable fault).

use serde::{Deserialize, Serialize};
use voltboot_sram::PackedBits;

/// SplitMix64 finalizer — the same mixer the SRAM substrate uses for
/// per-cell derivation, duplicated here so fault draws never perturb
/// (or depend on) the silicon's random stream.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a mixed word to a unit-interval sample in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-class fault probabilities, each in `[0, 1]`. The default is all
/// zeros: no fault ever fires and every drawn [`StepFaults`] is
/// [`StepFaults::none`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability the probe contact glitches at the attach step.
    pub probe_glitch: f64,
    /// Probability of a momentary rail brown-out during the hold.
    pub brownout: f64,
    /// Probability the PMIC misorders rails at reconnect.
    pub reconnect_misorder: f64,
    /// Probability the debug readout suffers bit errors; when it fires,
    /// roughly [`READOUT_ERROR_FRACTION`] of extracted bits flip.
    pub readout_bit_error: f64,
    /// Probability the debug port fails to enumerate at the extract
    /// step, failing the attempt outright (the retryable fault).
    pub extraction_dropout: f64,
}

impl FaultRates {
    /// All classes at the same rate — the campaign sweep's knob.
    pub fn uniform(rate: f64) -> Self {
        FaultRates {
            probe_glitch: rate,
            brownout: rate,
            reconnect_misorder: rate,
            readout_bit_error: rate,
            extraction_dropout: rate,
        }
    }

    /// Whether every rate is exactly zero.
    pub fn all_zero(&self) -> bool {
        *self == FaultRates::default()
    }
}

/// Fraction of extracted bits flipped when a readout bit-error fault
/// fires (of the order of a marginal JTAG clock, not a dead wire).
pub const READOUT_ERROR_FRACTION: f64 = 0.002;

/// Brown-out floor voltages are drawn uniformly from this range (volts).
/// The low end is far below any cell's retention voltage; the high end
/// brushes the calibrated DRV distribution, so some draws cost nothing.
pub const BROWNOUT_RANGE_V: (f64, f64) = (0.05, 0.45);

/// The faults one attack attempt must weather, drawn from a
/// [`FaultPlan`]. `Default` (== [`StepFaults::none`]) injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StepFaults {
    /// The probe contact glitches at attach: extra series resistance,
    /// sagging current limit.
    pub probe_glitch: bool,
    /// A momentary brown-out pulls held rails down to this voltage.
    pub brownout_min_voltage: Option<f64>,
    /// The PMIC restores rails in reverse order at reconnect.
    pub reconnect_misorder: bool,
    /// Fraction of extracted bits to flip (`0.0` = clean readout).
    pub readout_bit_error_fraction: f64,
    /// Seed for the readout corruption positions.
    pub readout_noise_seed: u64,
    /// The debug port fails to enumerate: the extract step errors.
    pub extraction_dropout: bool,
    /// Seed deciding *which* readout passes a firing dropout erases
    /// when the attack runs multi-pass extraction (single-pass attempts
    /// fail outright, as ever). Zero unless the dropout fired.
    pub dropout_seed: u64,
}

impl StepFaults {
    /// No faults — the nominal attempt.
    pub fn none() -> Self {
        StepFaults::default()
    }

    /// Whether any fault is armed.
    pub fn any(&self) -> bool {
        self.probe_glitch
            || self.brownout_min_voltage.is_some()
            || self.reconnect_misorder
            || self.readout_bit_error_fraction > 0.0
            || self.extraction_dropout
    }

    /// Names of the armed fault classes, for per-rep records.
    pub fn fired(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        if self.probe_glitch {
            names.push("probe_glitch");
        }
        if self.brownout_min_voltage.is_some() {
            names.push("brownout");
        }
        if self.reconnect_misorder {
            names.push("reconnect_misorder");
        }
        if self.readout_bit_error_fraction > 0.0 {
            names.push("readout_bit_error");
        }
        if self.extraction_dropout {
            names.push("extraction_dropout");
        }
        names
    }
}

/// A seeded, deterministic fault schedule for a whole campaign.
///
/// Each `(rep, attempt)` pair maps to one [`StepFaults`] draw through a
/// counter-mode generator: there is no shared stream state, so draws are
/// order-independent and a campaign resumed (or re-run) from the same
/// seed reproduces the identical fault history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    /// Per-class fault probabilities.
    pub rates: FaultRates,
}

impl FaultPlan {
    /// Creates a plan. Equal seeds and rates draw identical faults.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan { seed, rates }
    }

    /// A plan that never fires (all rates zero).
    pub fn quiescent(seed: u64) -> Self {
        FaultPlan { seed, rates: FaultRates::default() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One fault-class Bernoulli draw for `(rep, attempt, class)`.
    fn word(&self, rep: u64, attempt: u32, class: u64) -> u64 {
        mix64(
            self.seed
                ^ mix64(rep.wrapping_mul(0xA24B_AED4_963E_E407).wrapping_add(class))
                ^ mix64(u64::from(attempt).wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        )
    }

    fn fires(&self, rate: f64, rep: u64, attempt: u32, class: u64) -> bool {
        rate > 0.0 && unit(self.word(rep, attempt, class)) < rate
    }

    /// Draws the faults for attempt `attempt` of repetition `rep`.
    pub fn draw(&self, rep: u64, attempt: u32) -> StepFaults {
        let brownout = self.fires(self.rates.brownout, rep, attempt, 1).then(|| {
            let (lo, hi) = BROWNOUT_RANGE_V;
            lo + (hi - lo) * unit(self.word(rep, attempt, 101))
        });
        let readout = self.fires(self.rates.readout_bit_error, rep, attempt, 3);
        let dropout = self.fires(self.rates.extraction_dropout, rep, attempt, 4);
        StepFaults {
            probe_glitch: self.fires(self.rates.probe_glitch, rep, attempt, 0),
            brownout_min_voltage: brownout,
            reconnect_misorder: self.fires(self.rates.reconnect_misorder, rep, attempt, 2),
            readout_bit_error_fraction: if readout { READOUT_ERROR_FRACTION } else { 0.0 },
            // Only a firing fault carries its seed; a quiescent draw
            // must compare equal to `StepFaults::none()`.
            readout_noise_seed: if readout { self.word(rep, attempt, 103) } else { 0 },
            extraction_dropout: dropout,
            dropout_seed: if dropout { self.word(rep, attempt, 104) } else { 0 },
        }
    }

    /// Whether a firing dropout erases readout pass `pass` of a
    /// multi-pass extraction, given the drawn
    /// [`StepFaults::dropout_seed`]. Roughly half the passes of a flaky
    /// port drop; pass selection is deterministic in the seed.
    pub fn pass_erased(dropout_seed: u64, pass: u32) -> bool {
        unit(mix64(dropout_seed ^ u64::from(pass).wrapping_mul(0xA076_1D64_78BD_642F))) < 0.5
    }

    /// Splits off repetition `rep`'s fault sub-stream.
    ///
    /// The handle is a pure `(plan, rep)` pair — counter mode means
    /// there is no stream state to advance or hand between threads, so
    /// sub-streams for different reps can be drawn from concurrently
    /// and in any order while staying draw-for-draw identical to
    /// `plan.draw(rep, attempt)`. This is the splitting rule the
    /// parallel campaign scheduler relies on: shard reps across
    /// workers, give each worker its rep's stream, and the fault
    /// history is independent of the schedule.
    pub fn rep_stream(&self, rep: u64) -> RepFaultStream {
        RepFaultStream { plan: *self, rep }
    }
}

/// One repetition's view of a [`FaultPlan`]: draws are indexed by
/// attempt only, with the rep id baked in. See
/// [`FaultPlan::rep_stream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepFaultStream {
    plan: FaultPlan,
    rep: u64,
}

impl RepFaultStream {
    /// The repetition this stream belongs to.
    pub fn rep(&self) -> u64 {
        self.rep
    }

    /// Draws the faults for attempt `attempt` of this repetition —
    /// identical to `plan.draw(self.rep(), attempt)`.
    pub fn draw(&self, attempt: u32) -> StepFaults {
        self.plan.draw(self.rep, attempt)
    }
}

/// Flips roughly `fraction * bits.len()` bits of `bits` at deterministic
/// pseudo-random positions derived from `seed`, returning how many bits
/// actually flipped (distinct positions only — flipping a position twice
/// would undo the error).
pub fn corrupt_bits(bits: &mut PackedBits, fraction: f64, seed: u64) -> usize {
    let n = bits.len();
    if n == 0 || fraction <= 0.0 {
        return 0;
    }
    let target = ((fraction * n as f64).round() as usize).clamp(1, n);
    let mut flipped = 0usize;
    let mut counter = 0u64;
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    while flipped < target {
        let pos = (mix64(seed ^ counter.wrapping_mul(0xD6E8_FEB8_6659_FD93)) % n as u64) as usize;
        counter += 1;
        if seen.insert(pos) {
            bits.set(pos, !bits.get(pos));
            flipped += 1;
        }
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fire() {
        let plan = FaultPlan::quiescent(42);
        for rep in 0..200 {
            for attempt in 0..3 {
                assert_eq!(plan.draw(rep, attempt), StepFaults::none());
            }
        }
    }

    #[test]
    fn draws_are_deterministic_and_order_independent() {
        let plan = FaultPlan::new(7, FaultRates::uniform(0.3));
        let forward: Vec<StepFaults> = (0..50).map(|r| plan.draw(r, 0)).collect();
        let backward: Vec<StepFaults> = (0..50).rev().map(|r| plan.draw(r, 0)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        assert_eq!(plan.draw(13, 2), plan.draw(13, 2));
    }

    #[test]
    fn rates_control_fire_frequency() {
        let plan = FaultPlan::new(99, FaultRates { brownout: 0.5, ..FaultRates::default() });
        let fired = (0..1000).filter(|&r| plan.draw(r, 0).brownout_min_voltage.is_some()).count();
        assert!((350..650).contains(&fired), "brownout fired {fired}/1000 at rate 0.5");
        let never = FaultPlan::new(99, FaultRates::default());
        assert!((0..1000).all(|r| !never.draw(r, 0).any()));
    }

    #[test]
    fn attempts_draw_independent_faults() {
        let plan = FaultPlan::new(3, FaultRates::uniform(0.5));
        let distinct = (0..100).filter(|&r| plan.draw(r, 0) != plan.draw(r, 1)).count();
        assert!(distinct > 30, "attempt index must perturb draws, distinct={distinct}");
    }

    #[test]
    fn brownout_voltages_stay_in_range() {
        let plan = FaultPlan::new(11, FaultRates { brownout: 1.0, ..FaultRates::default() });
        for rep in 0..200 {
            let v = plan.draw(rep, 0).brownout_min_voltage.unwrap();
            assert!((BROWNOUT_RANGE_V.0..BROWNOUT_RANGE_V.1).contains(&v), "{v}");
        }
    }

    #[test]
    fn dropout_draws_carry_a_pass_erasure_seed() {
        let plan =
            FaultPlan::new(21, FaultRates { extraction_dropout: 1.0, ..FaultRates::default() });
        let f = plan.draw(0, 0);
        assert!(f.extraction_dropout);
        assert_ne!(f.dropout_seed, 0, "a firing dropout draws a pass-selection seed");
        assert_eq!(f.dropout_seed, plan.draw(0, 0).dropout_seed, "deterministic");
        // Quiescent draws stay equal to `none()` (seed zero).
        assert_eq!(FaultPlan::quiescent(21).draw(0, 0), StepFaults::none());
        // Pass erasure is deterministic in (seed, pass) and roughly
        // balanced, so multi-pass extraction usually keeps some passes.
        let erased: Vec<bool> =
            (0..64).map(|p| FaultPlan::pass_erased(f.dropout_seed, p)).collect();
        assert_eq!(
            erased,
            (0..64).map(|p| FaultPlan::pass_erased(f.dropout_seed, p)).collect::<Vec<_>>()
        );
        let count = erased.iter().filter(|&&e| e).count();
        assert!((16..48).contains(&count), "erasures should be roughly balanced: {count}/64");
    }

    #[test]
    fn rep_streams_match_direct_draws_in_any_order() {
        let plan = FaultPlan::new(0xFEED, FaultRates::uniform(0.4));
        // Split all streams up front, then draw from them interleaved
        // and backwards — the schedule a parallel campaign produces.
        let streams: Vec<RepFaultStream> = (0..16).map(|r| plan.rep_stream(r)).collect();
        for attempt in (0..4).rev() {
            for s in streams.iter().rev() {
                assert_eq!(s.draw(attempt), plan.draw(s.rep(), attempt));
            }
        }
        assert_eq!(streams[5].rep(), 5);
    }

    #[test]
    fn corruption_flips_the_requested_fraction() {
        let mut bits = PackedBits::zeros(10_000);
        let flipped = corrupt_bits(&mut bits, 0.01, 5);
        assert_eq!(flipped, 100);
        let ones = (0..10_000).filter(|&i| bits.get(i)).count();
        assert_eq!(ones, 100);
    }

    #[test]
    fn corruption_is_deterministic() {
        let mut a = PackedBits::zeros(4096);
        let mut b = PackedBits::zeros(4096);
        corrupt_bits(&mut a, 0.05, 77);
        corrupt_bits(&mut b, 0.05, 77);
        assert_eq!(a, b);
        let mut c = PackedBits::zeros(4096);
        corrupt_bits(&mut c, 0.05, 78);
        assert_ne!(a, c);
    }
}
