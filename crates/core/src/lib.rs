//! # Volt Boot — an ASPLOS 2022 reproduction
//!
//! This crate is the top of the reproduction stack for *SRAM Has No
//! Chill: Exploiting Power Domain Separation to Steal On-Chip Secrets*
//! (Mahmod & Hicks, ASPLOS 2022). It orchestrates the attack the paper
//! introduces — and the cold-boot baseline it contrasts against — on the
//! simulated hardware provided by the substrate crates:
//!
//! * [`voltboot_sram`] — per-cell SRAM physics (retention voltage,
//!   leakage decay, power-up state);
//! * [`voltboot_pdn`] — the board's power-delivery network, probe points,
//!   and disconnect transients;
//! * [`voltboot_armlite`] — a small aarch64-flavoured CPU that runs the
//!   victim and extraction software;
//! * [`voltboot_soc`] — the three evaluation platforms (Raspberry Pi 4,
//!   Raspberry Pi 3, i.MX53 QSB) with SRAM-backed caches, registers, and
//!   iRAM;
//! * [`voltboot_crypto`] — from-scratch AES plus the TRESOR/CaSE-style
//!   on-chip key-storage schemes the attack defeats.
//!
//! ## The attack in one example
//!
//! ```rust
//! use voltboot::attack::{Extraction, VoltBootAttack};
//! use voltboot_pdn::Probe;
//! use voltboot_soc::devices;
//! use voltboot_armlite::program::builders;
//!
//! // A Raspberry Pi 4 victim running a bare-metal NOP sled (paper §7.1.1).
//! let mut soc = devices::raspberry_pi_4(0xFEED);
//! soc.power_on_all();
//! soc.enable_caches(0);
//! soc.run_program(0, &builders::nop_sled(1024), 0x10000, 1_000_000);
//!
//! // Attach a bench supply at TP15 and power-cycle the board.
//! let attack = VoltBootAttack::new("TP15")
//!     .probe(Probe::bench_supply(0.8, 3.0))
//!     .extraction(Extraction::Caches { cores: vec![0] });
//! let outcome = attack.execute(&mut soc).unwrap();
//! assert!(outcome.rail_held);
//!
//! // The NOP sled is in the extracted i-cache image, bit-exact.
//! let image = outcome.image("core0.l1i.way0").unwrap();
//! let nops = image
//!     .bits
//!     .to_bytes()
//!     .chunks_exact(4)
//!     .filter(|w| u32::from_le_bytes([w[0], w[1], w[2], w[3]]) == 0xD503201F)
//!     .count();
//! assert!(nops >= 1024);
//! ```
//!
//! The [`experiments`] module regenerates every table and figure in the
//! paper's evaluation; `EXPERIMENTS.md` in the repository root records
//! paper-vs-measured values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attack;
pub mod campaign;
pub mod countermeasures;
pub mod dram_recovery;
pub mod error;
pub mod experiments;
pub mod fault;
pub mod os_noise;
pub mod recover;
pub mod report;
pub mod workloads;

pub use attack::{
    AttackContext, AttackFailure, AttackOutcome, ColdBootAttack, ExtractedImage, Extraction,
    ImageConfidence, VoltBootAttack,
};
pub use campaign::{
    Campaign, CampaignError, CampaignResult, Checkpoint, RepRecord, RepStatus, RetryPolicy,
};
pub use error::AttackError;
pub use fault::{FaultPlan, FaultRates, RepFaultStream, StepFaults};
pub use recover::{ConfidenceMap, IntegrityError};

/// Re-export of the telemetry substrate (recorder, spans, JSON builder).
pub use voltboot_telemetry as telemetry;
