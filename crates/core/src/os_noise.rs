//! The OS-noise model: background kernel and process activity evicting
//! victim cache lines.
//!
//! On a Linux-based victim (paper §7.1.2, Table 4) the kernel and other
//! processes keep touching memory while the victim runs, evicting some of
//! its lines. When the victim's working set fits well under the cache
//! size, the evictions land in otherwise-unused (invalid) ways and the
//! victim loses nothing; as the working set approaches the cache size,
//! every eviction destroys a victim line — that is Table 4's
//! 100 % → ≈91 % shape.
//!
//! Noise is a stream of line fills at "kernel" addresses targeting
//! uniformly random sets, interleaved with the victim's execution. The
//! intensity is expressed in *events*, calibrated so a cache-sized
//! victim array loses roughly 8–15 % of its elements (the paper's
//! Table 4 measures 85.7–91.8 % extraction at 32 KB).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use voltboot_soc::{Soc, SocError};

/// A deterministic background-activity generator for one core's L1D.
#[derive(Debug, Clone)]
pub struct OsNoise {
    rng: StdRng,
    /// Base physical address of the "kernel" region noise lines come from.
    pub kernel_base: u64,
    /// Number of distinct noise tags available per set.
    pub tag_diversity: u64,
    injected: usize,
}

impl OsNoise {
    /// Creates a generator with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        OsNoise {
            rng: StdRng::seed_from_u64(seed),
            kernel_base: 0x40_0000,
            tag_diversity: 8,
            injected: 0,
        }
    }

    /// Total noise events injected so far.
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// Injects `events` background line fills into `core`'s L1D, each
    /// targeting a uniformly random set with a random kernel tag.
    ///
    /// # Errors
    ///
    /// Propagates SoC failures (missing core, unmapped noise region).
    pub fn inject(&mut self, soc: &mut Soc, core: usize, events: usize) -> Result<(), SocError> {
        let (sets, line_bytes, way_span) = {
            let c = soc.core(core)?;
            let g = c.l1d.geometry();
            (g.sets() as u64, g.line_bytes as u64, (g.sets() * g.line_bytes) as u64)
        };
        for _ in 0..events {
            let set = self.rng.random_range(0..sets);
            let tag_pick = self.rng.random_range(0..self.tag_diversity);
            // An address in the kernel region that maps to `set`: adding
            // multiples of the way span changes the tag, not the set.
            let addr = self.kernel_base + tag_pick * way_span + set * line_bytes;
            soc.inject_noise_line(core, addr)?;
            self.injected += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltboot_armlite::program::builders;
    use voltboot_soc::devices;

    #[test]
    fn noise_needs_an_enabled_cache() {
        let mut soc = devices::raspberry_pi_4(1);
        soc.power_on_all();
        let mut noise = OsNoise::new(1);
        // Disabled cache: injections are no-ops but not errors.
        noise.inject(&mut soc, 0, 16).unwrap();
        assert_eq!(noise.injected(), 16);
    }

    #[test]
    fn noise_evicts_lines_of_a_full_cache() {
        let mut soc = devices::raspberry_pi_4(2);
        soc.power_on_all();
        soc.enable_caches(0);
        // Fill the whole 32 KB d-cache with the victim pattern.
        soc.run_program(
            0,
            &builders::fill_bytes(0x10_0000, 0xAA, 32 * 1024),
            0x70_0000,
            50_000_000,
        );
        let count_aa = |soc: &voltboot_soc::Soc| -> usize {
            (0..2)
                .map(|w| {
                    soc.core(0)
                        .unwrap()
                        .l1d
                        .way_image(w)
                        .unwrap()
                        .to_bytes()
                        .iter()
                        .filter(|&&b| b == 0xAA)
                        .count()
                })
                .sum()
        };
        let before = count_aa(&soc);
        let mut noise = OsNoise::new(3);
        noise.inject(&mut soc, 0, 64).unwrap();
        let after = count_aa(&soc);
        assert!(after < before, "noise must evict victim lines ({before} -> {after})");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut soc = devices::raspberry_pi_4(9);
            soc.power_on_all();
            soc.enable_caches(0);
            soc.run_program(
                0,
                &builders::fill_bytes(0x10_0000, 0x77, 8 * 1024),
                0x70_0000,
                20_000_000,
            );
            let mut noise = OsNoise::new(seed);
            noise.inject(&mut soc, 0, 32).unwrap();
            soc.core(0).unwrap().l1d.way_image(0).unwrap()
        };
        assert_eq!(run(5), run(5));
    }
}
