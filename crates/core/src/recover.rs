//! Readout recovery: integrity checksums, per-bit majority voting, and
//! confidence accounting for multi-pass extraction.
//!
//! The paper's extraction is 100%-accurate because the probe never lets
//! the SRAM leave retention and `RAMINDEX` reads are digital. A real
//! bench is noisier: marginal debug clocks flip bits and flaky ports
//! drop whole passes. This module supplies the three pieces the attack
//! uses to win that accuracy back:
//!
//! * a dependency-free **CRC-64** ([`crc64`]) sealed into every
//!   [`crate::attack::ExtractedImage`] at readout and re-verified at
//!   analysis/report time, so silent corruption between extraction and
//!   reporting surfaces as a typed [`IntegrityError`] instead of a
//!   wrong table entry;
//! * per-bit **majority voting** across repeated readout passes
//!   ([`vote`]), with dropped-out passes treated as *erasures* (absent
//!   votes) rather than all-zero reads;
//! * a per-image [`ConfidenceMap`] classifying every bit as unanimous,
//!   repaired (disagreement resolved by strict majority), or unresolved
//!   (tied vote, first pass kept) — the campaign report's repair
//!   accounting.

use voltboot_sram::PackedBits;

/// Maximum voting passes [`vote`] accepts (the per-bit counters are
/// four planes wide).
pub const MAX_PASSES: u32 = 15;

// ----------------------------------------------------------------------
// CRC-64
// ----------------------------------------------------------------------

/// The slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-
/// time table; `TABLES[j][i]` advances the CRC by `j` further zero bytes,
/// so eight table reads consume a whole aligned `u64` per step.
static TABLES: [[u64; 256]; 8] = crc64_tables();

/// CRC-64/XZ (reflected, polynomial `0x42F0E1EBA9EA3693`, init and
/// xorout all-ones) — the variant `xz` and `liblzma` use, implemented
/// slice-by-8 with const-fn-generated tables and no dependencies.
/// Digests are identical to the byte-at-a-time reference
/// ([`crc64_bytewise`]) at every input length.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        crc = step_word(crc, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    for &b in chunks.remainder() {
        crc = step_byte(crc, b);
    }
    !crc
}

/// The byte-at-a-time reference implementation of [`crc64`] — same
/// polynomial, same parameters, one table read per byte. Kept as the
/// oracle the slice-by-8 path is tested against.
pub fn crc64_bytewise(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = step_byte(crc, b);
    }
    !crc
}

/// Advances `crc` by one input byte.
#[inline]
fn step_byte(crc: u64, b: u8) -> u64 {
    TABLES[0][((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8)
}

/// Advances `crc` by eight input bytes packed little-endian into `w`.
#[inline]
fn step_word(crc: u64, w: u64) -> u64 {
    let x = crc ^ w;
    TABLES[7][(x & 0xFF) as usize]
        ^ TABLES[6][((x >> 8) & 0xFF) as usize]
        ^ TABLES[5][((x >> 16) & 0xFF) as usize]
        ^ TABLES[4][((x >> 24) & 0xFF) as usize]
        ^ TABLES[3][((x >> 32) & 0xFF) as usize]
        ^ TABLES[2][((x >> 40) & 0xFF) as usize]
        ^ TABLES[1][((x >> 48) & 0xFF) as usize]
        ^ TABLES[0][((x >> 56) & 0xFF) as usize]
}

const fn crc64_tables() -> [[u64; 256]; 8] {
    // Reflected form of polynomial 0x42F0E1EBA9EA3693.
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut j = 1;
        let mut crc = tables[0][i];
        while j < 8 {
            crc = tables[0][(crc & 0xFF) as usize] ^ (crc >> 8);
            tables[j][i] = crc;
            j += 1;
        }
        i += 1;
    }
    tables
}

/// [`crc64`] over a packed bit image's byte representation, computed
/// directly from the backing `u64` words — no intermediate byte buffer.
/// A word's little-endian bytes are exactly the image's byte view at
/// that offset (and tail bits beyond the length are zero by invariant),
/// so this equals `crc64(&bits.to_bytes())` without materialising the
/// copy on every seal and cross-check.
pub fn crc64_bits(bits: &PackedBits) -> u64 {
    let nbytes = bits.len().div_ceil(8);
    let words = bits.words();
    let full_words = nbytes / 8;
    let mut crc = !0u64;
    for &w in &words[..full_words] {
        crc = step_word(crc, w);
    }
    let tail_bytes = nbytes % 8;
    if tail_bytes > 0 {
        let last = words[full_words].to_le_bytes();
        for &b in &last[..tail_bytes] {
            crc = step_byte(crc, b);
        }
    }
    !crc
}

// ----------------------------------------------------------------------
// Integrity errors
// ----------------------------------------------------------------------

/// A detected integrity violation — a checksum that no longer matches
/// its data, or a vote that cannot be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// An image's bits no longer hash to the CRC sealed at readout.
    CrcMismatch {
        /// The image's source label.
        source: String,
        /// The CRC sealed at readout time.
        sealed: u64,
        /// The CRC the bits hash to now.
        actual: u64,
    },
    /// Every pass of a vote was an erasure: nothing to resolve.
    AllPassesErased,
    /// Voting passes disagree on image length.
    LengthMismatch {
        /// Bits in the first available pass.
        expected: usize,
        /// Bits in the mismatching pass.
        actual: usize,
    },
    /// More passes than the vote counters support.
    TooManyPasses {
        /// Requested pass count.
        requested: usize,
    },
    /// A checkpoint or report failed structural validation.
    Malformed {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::CrcMismatch { source, sealed, actual } => write!(
                f,
                "integrity violation: image {source} sealed crc64 {sealed:#018x} but bits hash \
                 to {actual:#018x}"
            ),
            IntegrityError::AllPassesErased => {
                write!(f, "integrity violation: every readout pass was erased")
            }
            IntegrityError::LengthMismatch { expected, actual } => write!(
                f,
                "integrity violation: voting passes disagree on length ({expected} vs {actual} \
                 bits)"
            ),
            IntegrityError::TooManyPasses { requested } => {
                write!(
                    f,
                    "integrity violation: {requested} passes exceeds the supported {MAX_PASSES}"
                )
            }
            IntegrityError::Malformed { detail } => {
                write!(f, "integrity violation: {detail}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

// ----------------------------------------------------------------------
// Confidence accounting
// ----------------------------------------------------------------------

/// Per-image bit-confidence classification produced by [`vote`]: every
/// bit of the resolved image is exactly one of unanimous, repaired, or
/// unresolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceMap {
    /// Bits in the image.
    pub total_bits: u64,
    /// Bits every available pass agreed on.
    pub unanimous: u64,
    /// Bits where passes disagreed and a strict majority resolved the
    /// value.
    pub repaired: u64,
    /// Bits where the vote tied (possible when erasures leave an even
    /// number of votes); the first available pass's value is kept.
    pub unresolved: u64,
    /// Passes that actually voted (erasures excluded).
    pub votes: u32,
}

impl ConfidenceMap {
    /// Merges another map into this one (campaign-level aggregation).
    pub fn absorb(&mut self, other: &ConfidenceMap) {
        self.total_bits += other.total_bits;
        self.unanimous += other.unanimous;
        self.repaired += other.repaired;
        self.unresolved += other.unresolved;
        self.votes = self.votes.max(other.votes);
    }
}

// ----------------------------------------------------------------------
// Majority voting
// ----------------------------------------------------------------------

/// Resolves repeated readout passes of one image into a single image by
/// per-bit majority vote.
///
/// `passes[i] = None` marks pass `i` as an *erasure* (the debug port
/// dropped out for that pass): it contributes no votes, unlike an
/// all-zero read which would vote 0 on every bit. Ties — only possible
/// when erasures leave an even number of votes — keep the first
/// available pass's value and count as unresolved. A single available
/// pass resolves to itself with every bit unanimous (`votes = 1`; the
/// caller can see from `votes` how much cross-checking backs the
/// image).
///
/// Voting over identical passes is the identity: the resolved image
/// equals the input and every bit is unanimous.
///
/// # Errors
///
/// [`IntegrityError::AllPassesErased`] when no pass is available,
/// [`IntegrityError::LengthMismatch`] when available passes disagree on
/// length, [`IntegrityError::TooManyPasses`] beyond [`MAX_PASSES`].
pub fn vote(passes: &[Option<&PackedBits>]) -> Result<(PackedBits, ConfidenceMap), IntegrityError> {
    if passes.len() > MAX_PASSES as usize {
        return Err(IntegrityError::TooManyPasses { requested: passes.len() });
    }
    let first_at =
        passes.iter().position(|p| p.is_some()).ok_or(IntegrityError::AllPassesErased)?;
    let mut resolved = passes[first_at].expect("position() found it").clone();
    let (conf, _crc) = vote_into(&mut resolved, &passes[first_at + 1..])?;
    Ok((resolved, conf))
}

/// [`vote`] over owned passes: consumes the buffers and resolves *into*
/// the first available pass instead of cloning it. Semantics (erasures,
/// ties, errors, confidence accounting) are identical to [`vote`] —
/// this is the zero-copy entry point for the multi-pass readout hot
/// path, where every pass is a fresh megabit dump nobody needs
/// afterwards.
pub fn vote_owned(
    passes: Vec<Option<PackedBits>>,
) -> Result<(PackedBits, ConfidenceMap), IntegrityError> {
    let (resolved, conf, _crc) = vote_owned_sealed(passes)?;
    Ok((resolved, conf))
}

/// [`vote_owned`], additionally returning the [`crc64_bits`] seal of
/// the resolved image.
///
/// The CRC is accumulated *inside* the vote's word loop, from the
/// resolved words as they are written — the majority planes, the
/// confidence counters, and the integrity seal all ride one pass over
/// the image instead of the vote being followed by a second full sweep
/// just to checksum its output. Identical to calling [`vote_owned`]
/// and then [`crc64_bits`] on the result, for one table-step per word
/// less memory traffic.
pub fn vote_owned_sealed(
    mut passes: Vec<Option<PackedBits>>,
) -> Result<(PackedBits, ConfidenceMap, u64), IntegrityError> {
    vote_sealed_draining(&mut passes)
}

/// [`vote_owned_sealed`] over a reusable pass slice: takes the first
/// available pass *out* of `passes` (its slot becomes `None`) and votes
/// the remaining entries in place, leaving them behind for the caller
/// to recycle. This is the steady-state entry point for campaign-scale
/// voted readout: the caller keeps one `Vec<Option<PackedBits>>` alive
/// across readout units, refills it each unit, and returns the
/// leftover pass buffers to the [rep arena](voltboot_sram::par) —
/// nothing in the loop allocates once the arena is warm.
///
/// # Errors
///
/// Same classes as [`vote_owned_sealed`]; on error `passes` keeps all
/// its entries except the first available one, which a length-mismatch
/// error has already consumed into the failed resolution attempt.
pub fn vote_sealed_draining(
    passes: &mut [Option<PackedBits>],
) -> Result<(PackedBits, ConfidenceMap, u64), IntegrityError> {
    if passes.len() > MAX_PASSES as usize {
        return Err(IntegrityError::TooManyPasses { requested: passes.len() });
    }
    let first_at =
        passes.iter().position(|p| p.is_some()).ok_or(IntegrityError::AllPassesErased)?;
    let mut resolved = passes[first_at].take().expect("position() found it");
    // Stack-buffered reference slice (no per-vote allocation): at most
    // MAX_PASSES - 1 passes can follow the first available one.
    let mut rest: [Option<&PackedBits>; (MAX_PASSES - 1) as usize] = [None; 14];
    for (slot, p) in rest.iter_mut().zip(&passes[first_at + 1..]) {
        *slot = p.as_ref();
    }
    let (conf, crc) = vote_into(&mut resolved, &rest)?;
    Ok((resolved, conf, crc))
}

/// Shared voting core: resolves `resolved` (the first available pass,
/// also the tie-breaking reference) against the `rest` of the available
/// passes in place — `None` entries are erasures and contribute no
/// votes — returning the confidence accounting and the [`crc64_bits`]
/// seal of the resolved image (fused into the same word loop). Pass
/// counts are already dealt with by the callers; `resolved` counts as
/// one vote.
fn vote_into(
    resolved: &mut PackedBits,
    rest: &[Option<&PackedBits>],
) -> Result<(ConfidenceMap, u64), IntegrityError> {
    for p in rest.iter().flatten() {
        if p.len() != resolved.len() {
            return Err(IntegrityError::LengthMismatch {
                expected: resolved.len(),
                actual: p.len(),
            });
        }
    }

    let k = rest.iter().flatten().count() + 1;
    let mut conf = ConfidenceMap {
        total_bits: resolved.len() as u64,
        votes: k as u32,
        ..ConfidenceMap::default()
    };
    if k == 1 {
        conf.unanimous = conf.total_bits;
        return Ok((conf, crc64_bits(resolved)));
    }

    // The CRC seal of the resolved image accumulates alongside the
    // vote: full words step the slice-by-8 CRC directly, the final
    // partial word (if the byte length is not word-aligned) steps its
    // live bytes — exactly the [`crc64_bits`] traversal.
    let nbytes = resolved.len().div_ceil(8);
    let full_words = nbytes / 8;
    let mut crc = !0u64;

    // Word-parallel resolution: per-bit vote counts are kept in four
    // binary "planes" (plane j holds bit j of every count), added with
    // a ripple carry — 64 bits vote at once per word.
    let majority_threshold = (k / 2) as u64; // strict majority = count > threshold
    let ties_possible = k.is_multiple_of(2);
    for w in 0..resolved.word_len() {
        let valid = resolved.valid_mask(w);
        let refw = resolved.words()[w];
        let mut planes = [0u64; 4];
        let mut all_and = !0u64;
        let mut all_or = 0u64;
        for x in std::iter::once(refw).chain(rest.iter().flatten().map(|p| p.words()[w])) {
            all_and &= x;
            all_or |= x;
            let mut carry = x;
            for plane in &mut planes {
                let sum = *plane ^ carry;
                carry &= *plane;
                *plane = sum;
            }
        }
        // Bit-sliced comparison of the 4-bit counts to the threshold:
        // gt = count > threshold, eq = count == threshold.
        let mut gt = 0u64;
        let mut eq = !0u64;
        for j in (0..4).rev() {
            let t = if (majority_threshold >> j) & 1 == 1 { !0u64 } else { 0u64 };
            gt |= eq & planes[j] & !t;
            eq &= !(planes[j] ^ t);
        }
        let unanimous = !(all_or ^ all_and) & valid;
        let tie = if ties_possible { eq & valid & !unanimous } else { 0 };
        let repaired = valid & !unanimous & !tie;
        // Majority-one bits set; tied bits keep the reference pass.
        let out = (gt | (tie & refw)) & valid;
        resolved.words_mut()[w] = out;
        if w < full_words {
            crc = step_word(crc, out);
        } else {
            for &b in &out.to_le_bytes()[..nbytes % 8] {
                crc = step_byte(crc, b);
            }
        }
        conf.unanimous += unanimous.count_ones() as u64;
        conf.unresolved += tie.count_ones() as u64;
        conf.repaired += repaired.count_ones() as u64;
    }
    Ok((conf, !crc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_matches_known_vectors() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
        assert_ne!(crc64(b"a"), crc64(b"b"));
    }

    #[test]
    fn slice_by_8_matches_bytewise_reference() {
        // Deterministic pseudo-random bytes (splitmix64 stream).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        };
        // Boundary lengths around the 8-byte slicing granule, plus
        // larger odd sizes.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 1021, 4096] {
            let data: Vec<u8> = (0..len).map(|_| next()).collect();
            assert_eq!(
                crc64(&data),
                crc64_bytewise(&data),
                "slice-by-8 and byte-at-a-time must agree at length {len}"
            );
        }
    }

    #[test]
    fn crc64_bits_equals_crc64_of_byte_view() {
        // Bit lengths straddling byte and word boundaries, including a
        // partial tail byte.
        for len in [1usize, 7, 8, 9, 63, 64, 65, 127, 128, 130, 1000, 4099] {
            let mut bits = PackedBits::zeros(len);
            for i in (0..len).step_by(3) {
                bits.set(i, true);
            }
            assert_eq!(
                crc64_bits(&bits),
                crc64(&bits.to_bytes()),
                "word-wise crc must match the byte-view crc at {len} bits"
            );
        }
    }

    #[test]
    fn crc64_bits_tracks_mutation() {
        let mut bits = PackedBits::from_bytes(&[0xAB; 64]);
        let sealed = crc64_bits(&bits);
        assert_eq!(sealed, crc64_bits(&bits), "stable on unchanged data");
        bits.set(17, !bits.get(17));
        assert_ne!(sealed, crc64_bits(&bits), "single-bit corruption must change the crc");
    }

    fn bits_of(pattern: &[bool]) -> PackedBits {
        let mut b = PackedBits::zeros(pattern.len());
        for (i, &v) in pattern.iter().enumerate() {
            b.set(i, v);
        }
        b
    }

    #[test]
    fn voting_identical_passes_is_identity() {
        let img = PackedBits::from_bytes(&[0x5A, 0xC3, 0xFF, 0x00, 0x17]);
        let (resolved, conf) = vote(&[Some(&img), Some(&img), Some(&img)]).unwrap();
        assert_eq!(resolved, img);
        assert_eq!(conf.unanimous, img.len() as u64);
        assert_eq!(conf.repaired, 0);
        assert_eq!(conf.unresolved, 0);
        assert_eq!(conf.votes, 3);
    }

    #[test]
    fn majority_repairs_minority_flips() {
        let good = bits_of(&[true, false, true, false, true]);
        let mut bad = good.clone();
        bad.set(0, false);
        bad.set(3, true);
        let (resolved, conf) = vote(&[Some(&bad), Some(&good), Some(&good)]).unwrap();
        assert_eq!(resolved, good, "two good passes outvote one bad one");
        assert_eq!(conf.repaired, 2);
        assert_eq!(conf.unanimous, 3);
        assert_eq!(conf.unresolved, 0);
    }

    #[test]
    fn erasures_are_not_votes() {
        let good = bits_of(&[true, true, false, false]);
        let mut bad = good.clone();
        bad.set(1, false);
        // With the erasure counted as an all-zero vote, bit 1 would tie
        // 1-1 after the bad pass flips it; as an erasure, the two real
        // passes resolve it 1-1... so this MUST tie — and keep pass 0.
        let (resolved, conf) = vote(&[Some(&good), Some(&bad), None]).unwrap();
        assert_eq!(conf.votes, 2);
        assert_eq!(conf.unresolved, 1, "even vote counts can tie");
        assert!(resolved.get(1), "ties keep the first available pass's value");
        assert_eq!(conf.unanimous, 3);
    }

    #[test]
    fn single_available_pass_resolves_to_itself() {
        let img = bits_of(&[true, false, true]);
        let (resolved, conf) = vote(&[None, Some(&img), None]).unwrap();
        assert_eq!(resolved, img);
        assert_eq!(conf.votes, 1);
        assert_eq!(conf.unanimous, 3);
    }

    #[test]
    fn all_erased_is_an_error() {
        assert_eq!(vote(&[None, None]).unwrap_err(), IntegrityError::AllPassesErased);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let a = PackedBits::zeros(8);
        let b = PackedBits::zeros(16);
        assert!(matches!(
            vote(&[Some(&a), Some(&b)]).unwrap_err(),
            IntegrityError::LengthMismatch { expected: 8, actual: 16 }
        ));
    }

    #[test]
    fn too_many_passes_rejected() {
        let img = PackedBits::zeros(4);
        let passes: Vec<Option<&PackedBits>> = vec![Some(&img); 16];
        assert!(matches!(vote(&passes), Err(IntegrityError::TooManyPasses { requested: 16 })));
    }

    #[test]
    fn five_way_vote_with_two_erasures() {
        // 3 real votes across 5 passes: strict majority of 3, no ties.
        let a = bits_of(&[true, true, false, false, true, false, true, true]);
        let mut b = a.clone();
        b.set(4, false);
        let mut c = a.clone();
        c.set(7, false);
        let (resolved, conf) = vote(&[None, Some(&a), Some(&b), None, Some(&c)]).unwrap();
        assert_eq!(resolved, a);
        assert_eq!(conf.votes, 3);
        assert_eq!(conf.repaired, 2);
        assert_eq!(conf.unresolved, 0);
        assert_eq!(conf.unanimous, 6);
    }

    #[test]
    fn vote_spans_word_boundaries() {
        // 130 bits: exercises full words plus a 2-bit tail and the
        // valid-mask handling.
        let mut good = PackedBits::zeros(130);
        for i in (0..130).step_by(3) {
            good.set(i, true);
        }
        let mut bad = good.clone();
        for i in [0, 63, 64, 129] {
            bad.set(i, !bad.get(i));
        }
        let (resolved, conf) = vote(&[Some(&bad), Some(&good), Some(&good)]).unwrap();
        assert_eq!(resolved, good);
        assert_eq!(conf.repaired, 4);
        assert_eq!(conf.total_bits, 130);
        assert_eq!(conf.unanimous + conf.repaired + conf.unresolved, 130);
    }

    #[test]
    fn vote_owned_matches_borrowed_vote() {
        let good = bits_of(&[true, false, true, false, true, true, false, false, true]);
        let mut bad = good.clone();
        bad.set(0, false);
        bad.set(5, false);
        let (want, want_conf) = vote(&[None, Some(&bad), Some(&good), Some(&good)]).unwrap();
        let (got, got_conf) =
            vote_owned(vec![None, Some(bad), Some(good.clone()), Some(good)]).unwrap();
        assert_eq!(got, want);
        assert_eq!(got_conf, want_conf);
    }

    #[test]
    fn sealed_vote_crc_matches_post_hoc_seal() {
        // The CRC fused into the vote loop must equal crc64_bits of the
        // resolved image, across word-boundary and tail-byte lengths
        // (including the k == 1 single-pass path).
        for len in [1usize, 7, 8, 60, 64, 65, 100, 128, 130, 255, 257] {
            let mut good = PackedBits::zeros(len);
            for i in (0..len).step_by(3) {
                good.set(i, true);
            }
            let mut bad = good.clone();
            bad.set(len / 2, !bad.get(len / 2));
            let (resolved, conf, crc) =
                vote_owned_sealed(vec![Some(bad), Some(good.clone()), Some(good.clone())]).unwrap();
            assert_eq!(resolved, good, "len {len}");
            assert_eq!(crc, crc64_bits(&resolved), "fused seal must match, len {len}");
            assert_eq!(conf.votes, 3);
            let (single, single_conf, single_crc) =
                vote_owned_sealed(vec![None, Some(good.clone())]).unwrap();
            assert_eq!(single_crc, crc64_bits(&single), "single-pass seal, len {len}");
            assert_eq!(single_conf.unanimous, len as u64);
        }
    }

    #[test]
    fn draining_vote_consumes_only_the_first_available_pass() {
        let good = bits_of(&[true, false, true, true, false, false, true, false, true]);
        let mut bad = good.clone();
        bad.set(2, false);
        let mut passes = vec![None, Some(bad.clone()), Some(good.clone()), Some(good.clone())];
        let (want, want_conf) = vote(&[None, Some(&bad), Some(&good), Some(&good)]).unwrap();
        let (resolved, conf, crc) = vote_sealed_draining(&mut passes).unwrap();
        assert_eq!(resolved, want);
        assert_eq!(conf, want_conf);
        assert_eq!(crc, crc64_bits(&resolved));
        // The first available slot was drained; the rest stay behind
        // for buffer recycling.
        assert!(passes[0].is_none() && passes[1].is_none());
        assert_eq!(passes[2].as_ref(), Some(&good));
        assert_eq!(passes[3].as_ref(), Some(&good));
    }

    #[test]
    fn vote_owned_rejects_the_same_degenerate_inputs() {
        assert_eq!(vote_owned(vec![None, None]).unwrap_err(), IntegrityError::AllPassesErased);
        assert!(matches!(
            vote_owned(vec![Some(PackedBits::zeros(8)), Some(PackedBits::zeros(16))]).unwrap_err(),
            IntegrityError::LengthMismatch { expected: 8, actual: 16 }
        ));
        let passes: Vec<Option<PackedBits>> = vec![Some(PackedBits::zeros(4)); 16];
        assert!(matches!(vote_owned(passes), Err(IntegrityError::TooManyPasses { requested: 16 })));
    }

    #[test]
    fn confidence_absorb_aggregates() {
        let mut a =
            ConfidenceMap { total_bits: 10, unanimous: 8, repaired: 1, unresolved: 1, votes: 3 };
        let b = ConfidenceMap { total_bits: 5, unanimous: 5, repaired: 0, unresolved: 0, votes: 1 };
        a.absorb(&b);
        assert_eq!(a.total_bits, 15);
        assert_eq!(a.unanimous, 13);
        assert_eq!(a.votes, 3);
    }
}
