//! Plain-text table formatting for the repro binaries and EXPERIMENTS.md.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < cells.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals (`0.9149` →
/// `"91.49%"`).
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22222");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.0), "100.00%");
        assert_eq!(pct(0.9149), "91.49%");
        assert_eq!(pct(0.5006), "50.06%");
    }
}
