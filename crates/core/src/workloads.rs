//! Victim workloads: the software running on the device when the
//! attacker strikes.
//!
//! Each workload mirrors one of the paper's victim scenarios:
//!
//! * [`baremetal_nop_fill`] — §7.1.1's bare-metal program that enables
//!   the caches and executes NOPs on every core;
//! * [`os_pattern_app`] — §7.1.2's Linux application storing `0xAA` into
//!   a large data structure, with background OS noise;
//! * [`microbenchmark_array`] — Table 4's variable-size array benchmark,
//!   one process per core, interleaved with OS noise;
//! * [`register_fill`] — §7.2's vector-register fill;
//! * [`iram_bitmap`] — §7.3's four copies of a 512×512 bitmap in iRAM;
//! * [`test_bitmap`] — the recognizable bitmap itself.

use crate::os_noise::OsNoise;
use voltboot_armlite::program::builders;
use voltboot_armlite::RunExit;
use voltboot_soc::{Soc, SocError};
use voltboot_sram::PackedBits;

/// Physical address victims load their code at.
pub const VICTIM_CODE_ADDR: u64 = 0x8_0000;
/// Physical address of the victim's data buffer.
pub const VICTIM_DATA_ADDR: u64 = 0x10_0000;
/// The Table 4 element-pattern seed (`elem(i) = (seed << 48) | i`).
pub const ARRAY_SEED: u16 = 0x51AB;

/// Runs the §7.1.1 bare-metal victim: enables caches and runs a NOP sled
/// sized to one i-cache way on every core.
///
/// # Errors
///
/// Fails if any core's program does not halt cleanly.
pub fn baremetal_nop_fill(soc: &mut Soc) -> Result<(), SocError> {
    let sled_words = {
        let g = soc.core(0)?.l1i.geometry();
        g.sets() * g.line_bytes / 4
    };
    for core in 0..soc.core_count() {
        soc.enable_caches(core);
        let exit = soc.run_program(
            core,
            &builders::nop_sled(sled_words - 1),
            VICTIM_CODE_ADDR,
            (sled_words as u64) * 4,
        );
        if !matches!(exit, RunExit::Halted(0)) {
            return Err(SocError::BootRejected {
                reason: format!("victim on core {core}: {exit:?}"),
            });
        }
    }
    Ok(())
}

/// Runs the §7.1.2 victim: a user application storing `pattern` into a
/// `bytes`-sized structure under a running OS (noise interleaved).
///
/// # Errors
///
/// Fails if the victim program faults.
pub fn os_pattern_app(
    soc: &mut Soc,
    core: usize,
    pattern: u8,
    bytes: u32,
    noise: &mut OsNoise,
) -> Result<(), SocError> {
    soc.enable_caches(core);
    let program = builders::fill_bytes(VICTIM_DATA_ADDR, pattern, bytes);
    run_with_noise(soc, core, &program, noise, 6)
}

/// Runs one Table 4 microbenchmark process on `core`: an array of
/// `count` 8-byte elements loaded through the d-cache, with OS noise.
///
/// # Errors
///
/// Fails if the victim program faults.
pub fn microbenchmark_array(
    soc: &mut Soc,
    core: usize,
    count: u32,
    noise: &mut OsNoise,
) -> Result<(), SocError> {
    soc.enable_caches(core);
    let program =
        builders::fill_words(VICTIM_DATA_ADDR + (core as u64) * 0x4_0000, ARRAY_SEED, count);
    run_with_noise(soc, core, &program, noise, 6)
}

/// Runs the §7.2 victim: fills `v0..v31` with `0xFF`/`0xAA` patterns.
///
/// # Errors
///
/// Fails if the victim program faults.
pub fn register_fill(soc: &mut Soc, core: usize) -> Result<(), SocError> {
    let exit = soc.run_program(core, &builders::fill_vector_registers(), VICTIM_CODE_ADDR, 10_000);
    if !matches!(exit, RunExit::Halted(0)) {
        return Err(SocError::BootRejected { reason: format!("register fill: {exit:?}") });
    }
    Ok(())
}

/// Writes four copies of the 512×512 test bitmap into the device's iRAM
/// over JTAG (as the paper stages its §7.3 experiment).
///
/// # Errors
///
/// [`SocError::NoIram`] on devices without iRAM, or JTAG failures.
pub fn iram_bitmap(soc: &mut Soc) -> Result<PackedBits, SocError> {
    let bitmap = test_bitmap();
    let bytes = bitmap.to_bytes();
    let (base, len) = {
        let iram = soc.iram().ok_or(SocError::NoIram)?;
        (iram.base(), iram.len())
    };
    let copies = len / bytes.len();
    let mut reference = Vec::with_capacity(len);
    for c in 0..copies {
        soc.jtag_write(base + (c * bytes.len()) as u64, &bytes)?;
        reference.extend_from_slice(&bytes);
    }
    reference.resize(len, 0);
    let remainder = len - copies * bytes.len();
    if remainder > 0 {
        soc.jtag_write(base + (copies * bytes.len()) as u64, &vec![0u8; remainder])?;
    }
    Ok(PackedBits::from_bytes(&reference))
}

/// A recognizable 512×512 1-bit test image (32 KB): concentric circles
/// over a checkerboard quadrant, so clobbered regions are visually
/// obvious in rendered dumps.
pub fn test_bitmap() -> PackedBits {
    let mut bits = PackedBits::zeros(512 * 512);
    for y in 0..512i64 {
        for x in 0..512i64 {
            let dx = x - 256;
            let dy = y - 256;
            let r2 = dx * dx + dy * dy;
            let ring = (((r2 as f64).sqrt() / 24.0) as i64) % 2 == 0 && r2 < 240 * 240;
            let checker = (x / 32 + y / 32) % 2 == 0 && r2 >= 240 * 240;
            if ring || checker {
                bits.set((y * 512 + x) as usize, true);
            }
        }
    }
    bits
}

/// Assembles and runs victim software written as assembly text — the
/// paper's "we write the software in assembly (i.e., aarch64)" staging
/// path (§7.1.1). Returns an error naming the offending source line on
/// assembly failure.
///
/// # Errors
///
/// Assembly errors or a non-clean victim exit.
pub fn run_asm_victim(soc: &mut Soc, core: usize, source: &str) -> Result<(), SocError> {
    let program = voltboot_armlite::asm::assemble(source)
        .map_err(|e| SocError::BootRejected { reason: format!("victim assembly: {e}") })?;
    soc.enable_caches(core);
    let exit = soc.run_program(core, &program, VICTIM_CODE_ADDR, 50_000_000);
    if !matches!(exit, RunExit::Halted(0)) {
        return Err(SocError::BootRejected { reason: format!("asm victim: {exit:?}") });
    }
    Ok(())
}

/// Runs `program` on `core` in slices, injecting `noise_per_slice` OS
/// noise events between slices — the "victim under a live OS" execution
/// mode.
fn run_with_noise(
    soc: &mut Soc,
    core: usize,
    program: &voltboot_armlite::Program,
    noise: &mut OsNoise,
    noise_per_slice: usize,
) -> Result<(), SocError> {
    if soc.dram_mut().write(VICTIM_CODE_ADDR, &program.bytes()).is_err() {
        return Err(SocError::Unmapped { addr: VICTIM_CODE_ADDR });
    }
    soc.core_mut(core)?.cpu.set_pc(VICTIM_CODE_ADDR);
    const SLICE_STEPS: u64 = 2048;
    for _ in 0..100_000 {
        match soc.run_core(core, SLICE_STEPS) {
            RunExit::Halted(0) => {
                // Trailing noise: the OS keeps running after the victim.
                noise.inject(soc, core, noise_per_slice)?;
                return Ok(());
            }
            RunExit::MaxSteps => {
                noise.inject(soc, core, noise_per_slice)?;
            }
            other => {
                return Err(SocError::BootRejected { reason: format!("victim faulted: {other:?}") })
            }
        }
    }
    Err(SocError::BootRejected { reason: "victim did not terminate".into() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltboot_soc::devices;

    #[test]
    fn baremetal_fills_icache_of_all_cores() {
        let mut soc = devices::raspberry_pi_4(11);
        soc.power_on_all();
        baremetal_nop_fill(&mut soc).unwrap();
        for core in 0..4 {
            let image = soc.core(core).unwrap().l1i.way_image(0).unwrap();
            let nops = crate::analysis::count_pattern(&image, &0xD503201Fu32.to_le_bytes());
            assert!(nops > 3000, "core {core}: {nops} NOPs in way 0");
        }
    }

    #[test]
    fn pattern_app_lands_in_dcache() {
        let mut soc = devices::raspberry_pi_4(12);
        soc.power_on_all();
        let mut noise = OsNoise::new(1);
        os_pattern_app(&mut soc, 0, 0xAA, 8 * 1024, &mut noise).unwrap();
        let total: usize = (0..2)
            .map(|w| {
                let img = soc.core(0).unwrap().l1d.way_image(w).unwrap();
                img.to_bytes().iter().filter(|&&b| b == 0xAA).count()
            })
            .sum();
        assert!(total >= 7000, "0xAA bytes cached: {total}");
    }

    #[test]
    fn microbenchmark_array_elements_cached() {
        let mut soc = devices::raspberry_pi_4(13);
        soc.power_on_all();
        let mut noise = OsNoise::new(2);
        microbenchmark_array(&mut soc, 0, 512, &mut noise).unwrap();
        let w0 = soc.core(0).unwrap().l1d.way_image(0).unwrap();
        let w1 = soc.core(0).unwrap().l1d.way_image(1).unwrap();
        let (_, _, union) = crate::analysis::table4_counts(&w0, &w1, ARRAY_SEED, 512);
        assert!(union >= 500, "4KB array should be (nearly) fully cached: {union}");
    }

    #[test]
    fn register_fill_sets_patterns() {
        let mut soc = devices::raspberry_pi_4(14);
        soc.power_on_all();
        register_fill(&mut soc, 2).unwrap();
        assert_eq!(soc.core(2).unwrap().cpu.v(0), [u64::MAX; 2]);
    }

    #[test]
    fn bitmap_has_structure() {
        let bmp = test_bitmap();
        let frac = bmp.ones_fraction();
        assert!(frac > 0.2 && frac < 0.8, "ones fraction {frac}");
        assert_eq!(bmp.len(), 512 * 512);
    }

    #[test]
    fn iram_bitmap_fills_imx_iram() {
        let mut soc = devices::imx53_qsb(15);
        soc.power_on_all();
        let reference = iram_bitmap(&mut soc).unwrap();
        assert_eq!(reference.len(), 128 * 1024 * 8);
        let image = soc.iram().unwrap().image().unwrap();
        assert_eq!(image, reference);
    }

    #[test]
    fn asm_text_victim_runs_and_caches_its_stores() {
        let mut soc = devices::raspberry_pi_4(17);
        soc.power_on_all();
        run_asm_victim(
            &mut soc,
            0,
            r#"
                // Store a marker pattern through the d-cache.
                movz x0, #0x7E
                movz x1, #0x0000
                movk x1, #0x0030, lsl #16   // x1 = 0x30_0000
                movz x2, #512
            fill:
                strb x0, [x1]
                add  x1, x1, #1
                sub  x2, x2, #1
                cbnz x2, fill
                hlt  #0
            "#,
        )
        .unwrap();
        let count: usize = (0..2)
            .map(|w| {
                soc.core(0)
                    .unwrap()
                    .l1d
                    .way_image(w)
                    .unwrap()
                    .to_bytes()
                    .iter()
                    .filter(|&&b| b == 0x7E)
                    .count()
            })
            .sum();
        assert!(count >= 512, "marker bytes cached: {count}");
    }

    #[test]
    fn asm_victim_reports_source_errors() {
        let mut soc = devices::raspberry_pi_4(18);
        soc.power_on_all();
        let err = run_asm_victim(&mut soc, 0, "nop\nbogus x1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn iram_bitmap_fails_on_pi() {
        let mut soc = devices::raspberry_pi_4(16);
        soc.power_on_all();
        assert!(matches!(iram_bitmap(&mut soc), Err(SocError::NoIram)));
    }
}
