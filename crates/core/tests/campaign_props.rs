//! Property-based determinism checks for the parallel campaign
//! scheduler: random campaign configurations must produce byte-identical
//! reports at every thread count, and checkpoints must compose across
//! thread counts at any kill point.

use proptest::prelude::*;
use voltboot::attack::VoltBootAttack;
use voltboot::campaign::{Campaign, RetryPolicy};
use voltboot::fault::{FaultPlan, FaultRates};
use voltboot::telemetry::export;
use voltboot_armlite::program::builders;
use voltboot_soc::{devices, Soc};

fn prepared_pi4(seed: u64) -> Soc {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    soc.enable_caches(0);
    soc.run_program(0, &builders::nop_sled(128), 0x10000, 100_000);
    soc
}

fn make(fault_seed: u64, faulty: bool, passes: u32, reps: u64) -> Campaign {
    let rates = if faulty { FaultRates::uniform(0.25) } else { FaultRates::default() };
    Campaign::new(
        VoltBootAttack::new("TP15").passes(passes),
        FaultPlan::new(fault_seed, rates),
        reps,
    )
    .retry(RetryPolicy { max_attempts: 2, initial_backoff_ns: 1_000_000 })
}

proptest! {
    // Campaign reps simulate whole power cycles, so a handful of cases
    // already covers seconds of simulated attack time; the fixed-seed
    // suite in parallel_campaign.rs backs these up on every run.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `run_parallel(t)` renders byte-identical reports to `run` for
    /// t ∈ {1, 2, 4} over random configs: reps ≤ 16, faults on or off,
    /// passes ∈ {1, 3, 5}.
    #[test]
    fn run_parallel_bytes_equal_sequential(
        seed in any::<u64>(),
        reps in prop_oneof![4 => 1u64..=6, 1 => 7u64..=16],
        faulty in any::<bool>(),
        passes in prop_oneof![Just(1u32), Just(3u32), Just(5u32)],
    ) {
        let campaign = make(seed, faulty, passes, reps);
        let victim = move |rep: u64| prepared_pi4(seed ^ rep);
        let want = campaign.run(victim).to_json();
        for threads in [1usize, 2, 4] {
            let got = campaign.run_parallel(threads, victim).to_json();
            prop_assert_eq!(&got, &want, "thread count {} must not change a byte", threads);
        }
    }

    /// The trace tree and histograms merge deterministically through
    /// fork/absorb: at every thread count the span forest is
    /// well-formed (parents precede children, events sequence-ordered)
    /// and the histograms and all three export views match the
    /// sequential run exactly.
    #[test]
    fn trace_tree_and_histograms_merge_deterministically(
        seed in any::<u64>(),
        reps in 2u64..=6,
        passes in prop_oneof![Just(1u32), Just(3u32)],
    ) {
        let campaign = make(seed, true, passes, reps);
        let victim = move |rep: u64| prepared_pi4(seed ^ rep);
        let seq = campaign.run(victim).recorder;

        let spans = seq.spans();
        prop_assert!(!spans.is_empty(), "instrumented campaign must trace spans");
        for span in &spans {
            prop_assert!(span.end_ns >= span.start_ns);
            if let Some(parent) = span.parent {
                prop_assert!(parent < span.id, "parent ids precede child ids");
                prop_assert!(spans.iter().any(|s| s.id == parent), "parent link resolves");
            }
        }
        for (i, event) in seq.events().iter().enumerate() {
            prop_assert_eq!(event.seq as usize, i, "events are sequence-ordered");
        }

        let want_trace = export::chrome_trace(&seq).render_pretty();
        let want_folded = export::folded(&seq);
        let want_waves = export::waveforms_csv(&seq);
        for threads in [2usize, 4] {
            let par = campaign.run_parallel(threads, victim).recorder;
            prop_assert_eq!(
                export::chrome_trace(&par).render_pretty(), want_trace.clone(),
                "chrome trace at {} threads", threads
            );
            prop_assert_eq!(
                export::folded(&par), want_folded.clone(),
                "folded stacks at {} threads", threads
            );
            prop_assert_eq!(
                export::waveforms_csv(&par), want_waves.clone(),
                "waveforms at {} threads", threads
            );
            let (a, b) = (seq.histograms(), par.histograms());
            prop_assert_eq!(
                a.keys().collect::<Vec<_>>(), b.keys().collect::<Vec<_>>(),
                "histogram channels at {} threads", threads
            );
            for (name, h) in &a {
                let merged = &b[name];
                prop_assert_eq!(
                    (h.count(), h.sum(), h.min(), h.max(), h.p50(), h.p90(), h.p99()),
                    (merged.count(), merged.sum(), merged.min(), merged.max(),
                     merged.p50(), merged.p90(), merged.p99()),
                    "histogram {} at {} threads", name, threads
                );
            }
        }
    }

    /// A campaign killed at rep k under one thread count resumes under
    /// another to the uninterrupted run's exact bytes — both directions
    /// (checkpoint at 4 threads, resume at 1, and vice versa).
    #[test]
    fn kill_at_rep_k_resumes_across_thread_counts(
        seed in any::<u64>(),
        reps in 2u64..=6,
        k in 1u64..=5,
        faulty in any::<bool>(),
    ) {
        let k = k.min(reps - 1);
        let campaign = make(seed, faulty, 3, reps);
        let victim = move |rep: u64| prepared_pi4(seed ^ rep);
        let want = campaign.run(victim).to_json();
        let path = std::env::temp_dir().join(format!(
            "voltboot_props_cross_{}_{seed:016x}.checkpoint",
            std::process::id()
        ));

        campaign.run_partial_parallel(4, k, &path, victim).unwrap();
        let resumed_seq = campaign.resume_parallel(1, &path, victim).unwrap().to_json();
        prop_assert_eq!(&resumed_seq, &want, "4-thread checkpoint, 1-thread resume");

        campaign.run_partial_parallel(1, k, &path, victim).unwrap();
        let resumed_par = campaign.resume_parallel(4, &path, victim).unwrap().to_json();
        prop_assert_eq!(&resumed_par, &want, "1-thread checkpoint, 4-thread resume");
        std::fs::remove_file(&path).ok();
    }
}
