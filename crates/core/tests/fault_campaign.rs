//! Fault-injection and campaign integration tests: the attack flow under
//! glitches, retries, and telemetry — and bit-identity without them.

use voltboot::attack::{AttackContext, VoltBootAttack};
use voltboot::campaign::{Campaign, CampaignError, RepStatus, RetryPolicy};
use voltboot::fault::{FaultPlan, FaultRates, StepFaults};
use voltboot::telemetry::Recorder;
use voltboot_armlite::program::builders;
use voltboot_soc::{devices, Soc};

fn prepared_pi4(seed: u64) -> Soc {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    soc.enable_caches(0);
    soc.run_program(0, &builders::nop_sled(128), 0x10000, 100_000);
    soc
}

#[test]
fn zero_fault_context_is_bit_identical_to_plain_execute() {
    let mut a = prepared_pi4(0xA11ACE);
    let mut b = prepared_pi4(0xA11ACE);
    let attack = VoltBootAttack::new("TP15");

    let plain = attack.execute(&mut a).unwrap();
    let ctx = AttackContext::recording();
    let traced = attack.execute_in(&mut b, &ctx).unwrap();

    assert_eq!(plain, traced, "telemetry must not perturb the attack outcome");
    // The recorder saw the whole flow even though the outcome is identical.
    assert_eq!(ctx.recorder.counter("attack.executions"), 1);
    assert_eq!(ctx.recorder.counter("attack.rail_held"), 1);
    assert!(ctx.recorder.counter("sram.power_cycles") > 0);
    assert!(ctx.recorder.now_ns() > 0, "virtual clock must advance");
}

#[test]
fn brownout_fault_corrupts_a_held_extraction() {
    let mut clean = prepared_pi4(0xBB);
    let mut faulted = prepared_pi4(0xBB);
    let attack = VoltBootAttack::new("TP15");

    let good = attack.execute(&mut clean).unwrap();
    let ctx = AttackContext {
        recorder: Recorder::new(),
        faults: StepFaults { brownout_min_voltage: Some(0.05), ..StepFaults::none() },
    };
    let bad = attack.execute_in(&mut faulted, &ctx).unwrap();

    assert!(bad.rail_held, "the probe still holds the rail around the brown-out");
    // Losing retention reverts every cell to its power-up state, so only
    // metastable cells drift from the previously-retained sample — but the
    // victim's NOP sled must be gone from the faulted image entirely.
    let nops = |outcome: &voltboot::attack::AttackOutcome| {
        outcome
            .images
            .iter()
            .flat_map(|img| img.bits.to_bytes())
            .collect::<Vec<u8>>()
            .chunks_exact(4)
            .filter(|w| u32::from_le_bytes([w[0], w[1], w[2], w[3]]) == 0xD503201F)
            .count()
    };
    assert!(nops(&good) >= 128, "clean extraction must contain the NOP sled");
    assert!(nops(&bad) < 8, "a 50 mV brown-out must wipe the victim's code");
    let g = good.image("core0.l1i.way0").unwrap();
    let b = bad.image("core0.l1i.way0").unwrap();
    let hd = g.bits.fractional_hamming(&b.bits);
    assert!(hd > 0.05, "metastable cells must re-sample after the brown-out, hd={hd}");
    assert!(ctx.recorder.counter("soc.fault.brownout_rails") > 0);
}

#[test]
fn readout_bit_errors_flip_a_known_fraction() {
    let mut clean = prepared_pi4(0xCC);
    let mut noisy = prepared_pi4(0xCC);
    let attack = VoltBootAttack::new("TP15");

    let good = attack.execute(&mut clean).unwrap();
    let ctx = AttackContext {
        recorder: Recorder::new(),
        faults: StepFaults {
            readout_bit_error_fraction: 0.01,
            readout_noise_seed: 99,
            ..StepFaults::none()
        },
    };
    let bad = attack.execute_in(&mut noisy, &ctx).unwrap();

    let mut total_bits = 0usize;
    let mut flipped = 0usize;
    for (g, b) in good.images.iter().zip(&bad.images) {
        assert_eq!(g.source, b.source);
        total_bits += g.bits.len();
        flipped += (g.bits.fractional_hamming(&b.bits) * g.bits.len() as f64).round() as usize;
    }
    let frac = flipped as f64 / total_bits as f64;
    assert!((frac - 0.01).abs() < 0.002, "readout error fraction {frac}");
    assert_eq!(ctx.recorder.counter("attack.fault.readout_bits_flipped"), flipped as u64);
}

#[test]
fn retry_exhaustion_records_partial_outcome_without_panicking() {
    // Extraction dropout at rate 1.0: every attempt fails at the extract
    // step. The campaign must keep going and report partial outcomes.
    let rates = FaultRates { extraction_dropout: 1.0, ..FaultRates::default() };
    let campaign = Campaign::new(VoltBootAttack::new("TP15"), FaultPlan::new(5, rates), 3)
        .retry(RetryPolicy { max_attempts: 2, initial_backoff_ns: 1_000_000 });

    let result = campaign.run(|rep| prepared_pi4(0x600D ^ rep));

    assert_eq!(result.records.len(), 3);
    for r in &result.records {
        assert_eq!(r.status, RepStatus::Failed);
        assert_eq!(r.attempts, 2);
        assert_eq!(r.images, 0);
        assert!(r.steps_completed >= 4, "the flow ran up to the extract step");
        assert!(r.error.as_deref().unwrap().contains("dropout"));
        assert!(r.faults_fired.iter().any(|f| f == "extraction_dropout"));
    }
    assert_eq!(result.recorder.counter("campaign.failures"), 3);
    assert_eq!(result.recorder.counter("campaign.retries"), 3);
    assert_eq!(result.recorder.counter("campaign.attempts"), 6);
}

#[test]
fn quiescent_campaign_is_all_successes() {
    let campaign = Campaign::new(VoltBootAttack::new("TP15"), FaultPlan::quiescent(1), 2);
    let result = campaign.run(|rep| prepared_pi4(0xF00D ^ rep));
    assert_eq!(result.count(RepStatus::Success), 2);
    assert_eq!(result.recorder.counter("campaign.retries"), 0);
    let json = result.to_json();
    assert!(json.contains("\"successes\": 2"));
    assert!(json.contains("\"failures\": 0"));
}

#[test]
fn same_seed_campaigns_render_byte_identical_reports() {
    let run = || {
        let rates = FaultRates::uniform(0.25);
        let campaign = Campaign::new(VoltBootAttack::new("TP15"), FaultPlan::new(42, rates), 4)
            .retry(RetryPolicy { max_attempts: 2, initial_backoff_ns: 1_000_000 });
        campaign.run(|rep| prepared_pi4(0xD1E ^ rep)).to_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seeds must replay to byte-identical reports");

    let rates = FaultRates::uniform(0.25);
    let campaign = Campaign::new(VoltBootAttack::new("TP15"), FaultPlan::new(43, rates), 4)
        .retry(RetryPolicy { max_attempts: 2, initial_backoff_ns: 1_000_000 });
    let c = campaign.run(|rep| prepared_pi4(0xD1E ^ rep)).to_json();
    assert_ne!(a, c, "a different fault seed must change the report");
}

#[test]
fn three_pass_voting_strictly_reduces_corrupted_words() {
    // Full-device comparison of the same noisy readout resolved with and
    // without voting: count 32-bit words that differ from a quiescent
    // extraction of the same die.
    let run = |passes: u32| {
        let mut clean = prepared_pi4(0x7E57);
        let mut noisy = prepared_pi4(0x7E57);
        let attack = VoltBootAttack::new("TP15").passes(passes);
        let good = attack.execute(&mut clean).unwrap();
        let ctx = AttackContext {
            recorder: Recorder::new(),
            faults: StepFaults {
                readout_bit_error_fraction: 0.002,
                readout_noise_seed: 0x0BAD_5EED,
                ..StepFaults::none()
            },
        };
        let bad = attack.execute_in(&mut noisy, &ctx).unwrap();
        let mut words = 0usize;
        for (g, b) in good.images.iter().zip(&bad.images) {
            assert_eq!(g.source, b.source);
            let (gb, bb) = (g.bits.to_bytes(), b.bits.to_bytes());
            words += gb.chunks(4).zip(bb.chunks(4)).filter(|(x, y)| x != y).count();
        }
        (words, bad)
    };

    let (err1, single) = run(1);
    let (err3, voted) = run(3);
    assert!(err1 > 0, "0.2% readout noise must corrupt some words single-pass");
    assert!(err3 < err1, "3-pass voting must strictly reduce corrupted words: {err3} vs {err1}");

    // The voted outcome carries a verifiable confidence map; the legacy
    // single-pass outcome carries none.
    assert!(single.confidence.is_empty());
    voted.verify_integrity().expect("voted images must pass their CRC seals");
    let conf = voted.confidence_total();
    assert_eq!(conf.votes, 3);
    assert!(conf.repaired > 0, "independent per-pass noise must let the vote repair bits");
}

#[test]
fn killed_campaign_resumes_to_byte_identical_report() {
    let make = |fault_seed: u64| {
        Campaign::new(
            VoltBootAttack::new("TP15").passes(3),
            FaultPlan::new(fault_seed, FaultRates::uniform(0.25)),
            5,
        )
        .retry(RetryPolicy { max_attempts: 2, initial_backoff_ns: 1_000_000 })
    };
    let victim = |rep: u64| prepared_pi4(0x5E5 ^ rep);
    let uninterrupted = make(7).run(victim).to_json();

    // "Kill" the campaign after rep 2, then resume from the checkpoint.
    let path = std::env::temp_dir()
        .join(format!("voltboot_test_resume_{}.checkpoint", std::process::id()));
    make(7).run_partial(2, &path, victim).unwrap();
    let resumed = make(7).resume(&path, victim).unwrap().to_json();
    assert_eq!(resumed, uninterrupted, "resumed report must be byte-identical");

    // A campaign built around a different fault plan must refuse the
    // checkpoint rather than splice incompatible histories.
    let err = make(8).resume(&path, victim).unwrap_err();
    assert!(matches!(err, CampaignError::Mismatch { .. }), "got {err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn deadline_converts_retry_storms_into_timed_out_records() {
    // Every attempt drops out, and the backoff alone blows the per-rep
    // deadline: the campaign must give up on the rep as timed_out instead
    // of burning all five attempts.
    let rates = FaultRates { extraction_dropout: 1.0, ..FaultRates::default() };
    let campaign = Campaign::new(VoltBootAttack::new("TP15"), FaultPlan::new(5, rates), 2)
        .retry(RetryPolicy { max_attempts: 5, initial_backoff_ns: 200_000_000 })
        .deadline_ns(300_000_000);

    let result = campaign.run(|rep| prepared_pi4(0x600D ^ rep));

    assert_eq!(result.count(RepStatus::TimedOut), 2);
    assert!(
        result.records.iter().all(|r| r.attempts < 5),
        "the deadline must cut the retry loop short"
    );
    assert_eq!(result.recorder.counter("campaign.timed_out"), 2);
    assert!(result.to_json().contains("\"timed_out\": 2"));
}
