//! Parallel campaign scheduler integration tests: the report must be
//! byte-identical across thread counts, and checkpoints must compose —
//! a checkpoint written under one thread count resumes under any other
//! with no drift in the final report.
//!
//! Fixed-seed counterparts of the randomized suite in
//! `campaign_props.rs`; these run everywhere.

use voltboot::attack::VoltBootAttack;
use voltboot::campaign::{Campaign, CampaignError, RetryPolicy};
use voltboot::fault::{FaultPlan, FaultRates};
use voltboot_armlite::program::builders;
use voltboot_soc::{devices, Soc};

fn prepared_pi4(seed: u64) -> Soc {
    let mut soc = devices::raspberry_pi_4(seed);
    soc.power_on_all();
    soc.enable_caches(0);
    soc.run_program(0, &builders::nop_sled(128), 0x10000, 100_000);
    soc
}

fn make(fault_seed: u64, reps: u64) -> Campaign {
    Campaign::new(
        VoltBootAttack::new("TP15").passes(3),
        FaultPlan::new(fault_seed, FaultRates::uniform(0.25)),
        reps,
    )
    .retry(RetryPolicy { max_attempts: 2, initial_backoff_ns: 1_000_000 })
}

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("voltboot_test_par_{tag}_{}.checkpoint", std::process::id()))
}

#[test]
fn parallel_reports_are_byte_identical_to_sequential() {
    let campaign = make(21, 4);
    let victim = |rep: u64| prepared_pi4(0xACE ^ rep);
    let want = campaign.run(victim).to_json();
    for threads in [1usize, 2, 4] {
        let got = campaign.run_parallel(threads, victim).to_json();
        assert_eq!(got, want, "{threads}-thread report must be byte-identical to sequential");
    }
}

#[test]
fn parallel_checkpoints_are_byte_identical_to_sequential() {
    let campaign = make(9, 4);
    let victim = |rep: u64| prepared_pi4(0xC0DE ^ rep);
    let p_seq = temp("seq");
    let p_par = temp("par");

    let seq = campaign.run_checkpointed(&p_seq, victim).unwrap().to_json();
    let cp_seq = std::fs::read_to_string(&p_seq).unwrap();
    let par = campaign.run_checkpointed_parallel(4, &p_par, victim).unwrap().to_json();
    let cp_par = std::fs::read_to_string(&p_par).unwrap();

    assert_eq!(par, seq, "checkpointed parallel report must match sequential");
    assert_eq!(cp_par, cp_seq, "final checkpoint files (CRC seal included) must be byte-identical");
    std::fs::remove_file(&p_seq).ok();
    std::fs::remove_file(&p_par).ok();
}

#[test]
fn checkpoints_resume_across_thread_counts() {
    let campaign = make(7, 4);
    let victim = |rep: u64| prepared_pi4(0x5E5 ^ rep);
    let want = campaign.run(victim).to_json();
    let path = temp("cross");

    // Killed at rep 2 by a 4-thread run, resumed sequentially.
    campaign.run_partial_parallel(4, 2, &path, victim).unwrap();
    let a = campaign.resume(&path, victim).unwrap().to_json();
    assert_eq!(a, want, "4-thread checkpoint must resume sequentially with no drift");

    // Killed at rep 2 by a sequential run, resumed with 4 threads.
    campaign.run_partial(2, &path, victim).unwrap();
    let b = campaign.resume_parallel(4, &path, victim).unwrap().to_json();
    assert_eq!(b, want, "sequential checkpoint must resume under 4 threads with no drift");

    // The parallel path applies the same checkpoint validation.
    let err = make(8, 4).resume_parallel(2, &path, victim).unwrap_err();
    assert!(matches!(err, CampaignError::Mismatch { .. }), "got {err:?}");
    std::fs::remove_file(&path).ok();
}
