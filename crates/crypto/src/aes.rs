//! From-scratch AES-128/192/256 (FIPS-197).
//!
//! No lookup tables are hard-coded: the S-box is derived at first use
//! from its mathematical definition (multiplicative inverse in GF(2⁸)
//! followed by the affine transform), which doubles as a self-check of
//! the field arithmetic. The implementation favours clarity over speed —
//! it exists to give the attack a real key schedule to steal, and a real
//! decryption to prove the stolen key works.
//!
//! ```rust
//! use voltboot_crypto::aes::{Aes, AesKey};
//!
//! let key = AesKey::Aes128([0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
//!                           0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c]);
//! let aes = Aes::new(&key);
//! let pt = *b"theblockis16byte";
//! let ct = aes.encrypt_block(&pt);
//! assert_eq!(aes.decrypt_block(&ct), pt);
//! ```

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// An AES key of any standard length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AesKey {
    /// 128-bit key (10 rounds).
    Aes128([u8; 16]),
    /// 192-bit key (12 rounds).
    Aes192([u8; 24]),
    /// 256-bit key (14 rounds).
    Aes256([u8; 32]),
}

impl AesKey {
    /// The raw key bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            AesKey::Aes128(k) => k,
            AesKey::Aes192(k) => k,
            AesKey::Aes256(k) => k,
        }
    }

    /// Number of rounds for this key size.
    pub fn rounds(&self) -> usize {
        match self {
            AesKey::Aes128(_) => 10,
            AesKey::Aes192(_) => 12,
            AesKey::Aes256(_) => 14,
        }
    }

    /// Key length in 32-bit words (`Nk`).
    pub fn nk(&self) -> usize {
        self.bytes().len() / 4
    }
}

// ----------------------------------------------------------------------
// GF(2^8) arithmetic and derived tables
// ----------------------------------------------------------------------

/// Multiplies two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1.
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸); `inv(0) = 0` by AES convention.
pub fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^(2^8 - 2) = a^254 by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn affine(x: u8) -> u8 {
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        #[allow(clippy::needless_range_loop)]
        for i in 0..256 {
            let s = affine(gf_inv(i as u8));
            sbox[i] = s;
            inv_sbox[s as usize] = i as u8;
        }
        Tables { sbox, inv_sbox }
    })
}

/// The AES S-box value for `x` (derived, not hard-coded).
pub fn sbox(x: u8) -> u8 {
    tables().sbox[x as usize]
}

/// The inverse S-box value for `x`.
pub fn inv_sbox(x: u8) -> u8 {
    tables().inv_sbox[x as usize]
}

// ----------------------------------------------------------------------
// Key schedule
// ----------------------------------------------------------------------

/// An expanded AES key schedule: `4 * (rounds + 1)` 32-bit words.
///
/// This is exactly the artifact on-chip crypto hides in registers or
/// locked cache, and exactly what the attack recovers. Its internal
/// redundancy (each word derives from earlier words) is what makes
/// schedule-shaped byte runs findable in memory images.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeySchedule {
    words: Vec<u32>,
    rounds: usize,
    nk: usize,
}

impl KeySchedule {
    /// Expands `key` per FIPS-197.
    pub fn expand(key: &AesKey) -> Self {
        let nk = key.nk();
        let rounds = key.rounds();
        let total = 4 * (rounds + 1);
        let mut w = Vec::with_capacity(total);
        for chunk in key.bytes().chunks_exact(4) {
            w.push(u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        let mut rcon: u8 = 1;
        for i in nk..total {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((rcon as u32) << 24);
                rcon = gf_mul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            w.push(w[i - nk] ^ temp);
        }
        KeySchedule { words: w, rounds, nk }
    }

    /// Number of rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The schedule's 32-bit words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The whole schedule as big-endian bytes (`16 * (rounds+1)`).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_be_bytes()).collect()
    }

    /// Rebuilds a schedule from bytes previously produced by
    /// [`KeySchedule::to_bytes`], if they form a *consistent* schedule.
    ///
    /// Returns `None` when the bytes do not satisfy the expansion
    /// recurrence — the check an attacker's key-search uses to recognize
    /// a schedule in a memory image.
    pub fn from_bytes(bytes: &[u8], nk: usize) -> Option<KeySchedule> {
        let rounds = match nk {
            4 => 10,
            6 => 12,
            8 => 14,
            _ => return None,
        };
        let total = 4 * (rounds + 1);
        if bytes.len() != total * 4 {
            return None;
        }
        let words: Vec<u32> =
            bytes.chunks_exact(4).map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]])).collect();
        let candidate = KeySchedule { words, rounds, nk };
        candidate.is_consistent().then_some(candidate)
    }

    /// Whether the schedule satisfies the FIPS-197 recurrence.
    pub fn is_consistent(&self) -> bool {
        let mut rcon: u8 = 1;
        for i in self.nk..self.words.len() {
            let mut temp = self.words[i - 1];
            if i % self.nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((rcon as u32) << 24);
                rcon = gf_mul(rcon, 2);
            } else if self.nk > 6 && i % self.nk == 4 {
                temp = sub_word(temp);
            }
            if self.words[i] != self.words[i - self.nk] ^ temp {
                return false;
            }
        }
        true
    }

    /// Recovers the original cipher key (the first `Nk` words).
    pub fn original_key(&self) -> AesKey {
        let bytes: Vec<u8> = self.words[..self.nk].iter().flat_map(|w| w.to_be_bytes()).collect();
        match self.nk {
            4 => AesKey::Aes128(bytes.try_into().expect("16 bytes")),
            6 => AesKey::Aes192(bytes.try_into().expect("24 bytes")),
            _ => AesKey::Aes256(bytes.try_into().expect("32 bytes")),
        }
    }

    fn round_key(&self, round: usize) -> [u8; 16] {
        let mut rk = [0u8; 16];
        for (c, w) in self.words[4 * round..4 * round + 4].iter().enumerate() {
            rk[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
        rk
    }
}

fn sub_word(w: u32) -> u32 {
    u32::from_be_bytes(w.to_be_bytes().map(sbox))
}

// ----------------------------------------------------------------------
// The block cipher
// ----------------------------------------------------------------------

/// An AES block cipher instance holding an expanded schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aes {
    schedule: KeySchedule,
}

impl Aes {
    /// Expands `key` and returns a cipher.
    pub fn new(key: &AesKey) -> Self {
        Aes { schedule: KeySchedule::expand(key) }
    }

    /// Builds a cipher directly from a (recovered) schedule.
    pub fn from_schedule(schedule: KeySchedule) -> Self {
        Aes { schedule }
    }

    /// The expanded schedule.
    pub fn schedule(&self) -> &KeySchedule {
        &self.schedule
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut s = to_state(block);
        add_round_key(&mut s, &self.schedule.round_key(0));
        for round in 1..self.schedule.rounds() {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.schedule.round_key(round));
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.schedule.round_key(self.schedule.rounds()));
        from_state(&s)
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut s = to_state(block);
        add_round_key(&mut s, &self.schedule.round_key(self.schedule.rounds()));
        for round in (1..self.schedule.rounds()).rev() {
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
            add_round_key(&mut s, &self.schedule.round_key(round));
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
        add_round_key(&mut s, &self.schedule.round_key(0));
        from_state(&s)
    }

    /// Encrypts a buffer in CTR mode with a 16-byte nonce/IV. CTR makes
    /// encryption and decryption the same operation.
    pub fn ctr_process(&self, iv: &[u8; 16], data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        let mut counter = u128::from_be_bytes(*iv);
        for chunk in data.chunks(16) {
            let keystream = self.encrypt_block(&counter.to_be_bytes());
            out.extend(chunk.iter().zip(keystream.iter()).map(|(d, k)| d ^ k));
            counter = counter.wrapping_add(1);
        }
        out
    }
}

// State is column-major: s[r][c] = byte r + 4c of the block.
type State = [[u8; 4]; 4];

fn to_state(block: &[u8; 16]) -> State {
    let mut s = [[0u8; 4]; 4];
    for (i, &b) in block.iter().enumerate() {
        s[i % 4][i / 4] = b;
    }
    s
}

fn from_state(s: &State) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (i, b) in out.iter_mut().enumerate() {
        *b = s[i % 4][i / 4];
    }
    out
}

fn add_round_key(s: &mut State, rk: &[u8; 16]) {
    for c in 0..4 {
        for r in 0..4 {
            s[r][c] ^= rk[4 * c + r];
        }
    }
}

fn sub_bytes(s: &mut State) {
    for row in s.iter_mut() {
        for b in row.iter_mut() {
            *b = sbox(*b);
        }
    }
}

fn inv_sub_bytes(s: &mut State) {
    for row in s.iter_mut() {
        for b in row.iter_mut() {
            *b = inv_sbox(*b);
        }
    }
}

fn shift_rows(s: &mut State) {
    for (r, row) in s.iter_mut().enumerate().skip(1) {
        row.rotate_left(r);
    }
}

fn inv_shift_rows(s: &mut State) {
    for (r, row) in s.iter_mut().enumerate().skip(1) {
        row.rotate_right(r);
    }
}

#[allow(clippy::needless_range_loop)]
fn mix_columns(s: &mut State) {
    for c in 0..4 {
        let col = [s[0][c], s[1][c], s[2][c], s[3][c]];
        s[0][c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        s[1][c] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        s[2][c] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        s[3][c] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

#[allow(clippy::needless_range_loop)]
fn inv_mix_columns(s: &mut State) {
    for c in 0..4 {
        let col = [s[0][c], s[1][c], s[2][c], s[3][c]];
        s[0][c] = gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        s[1][c] = gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        s[2][c] = gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        s[3][c] = gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_spot_values() {
        // Published FIPS-197 S-box corners.
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x01), 0x7c);
        assert_eq!(sbox(0x53), 0xed);
        assert_eq!(sbox(0xff), 0x16);
        assert_eq!(inv_sbox(0x63), 0x00);
    }

    #[test]
    fn sbox_is_a_bijection() {
        let mut seen = [false; 256];
        for i in 0..=255u8 {
            let s = sbox(i);
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
            assert_eq!(inv_sbox(s), i);
        }
    }

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x13), 0xfe); // FIPS-197 worked example
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }

    #[test]
    fn gf_inv_is_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse of {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1.
        let key = AesKey::Aes128([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]);
        let pt = [
            0x00u8, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected = [
            0x69u8, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn fips197_aes192_vector() {
        // FIPS-197 Appendix C.2.
        let key = AesKey::Aes192([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17,
        ]);
        let pt = [
            0x00u8, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected = [
            0xddu8, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d,
            0x71, 0x91,
        ];
        let aes = Aes::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3.
        let key = AesKey::Aes256([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b,
            0x1c, 0x1d, 0x1e, 0x1f,
        ]);
        let pt = [
            0x00u8, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected = [
            0x8eu8, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let aes = Aes::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn key_schedule_first_words_match_fips_example() {
        // FIPS-197 Appendix A.1 key expansion example.
        let key = AesKey::Aes128([
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ]);
        let ks = KeySchedule::expand(&key);
        assert_eq!(ks.words()[4], 0xa0fafe17);
        assert_eq!(ks.words()[5], 0x88542cb1);
        assert_eq!(ks.words()[43], 0xb6630ca6);
    }

    #[test]
    fn schedule_roundtrip_and_consistency() {
        let key = AesKey::Aes128(*b"0123456789abcdef");
        let ks = KeySchedule::expand(&key);
        assert!(ks.is_consistent());
        let back = KeySchedule::from_bytes(&ks.to_bytes(), 4).expect("valid schedule");
        assert_eq!(back, ks);
        assert_eq!(back.original_key(), key);
    }

    #[test]
    fn corrupted_schedule_is_inconsistent() {
        let ks = KeySchedule::expand(&AesKey::Aes128([7; 16]));
        let mut bytes = ks.to_bytes();
        bytes[20] ^= 1;
        assert!(KeySchedule::from_bytes(&bytes, 4).is_none());
    }

    #[test]
    fn ctr_mode_roundtrips() {
        let aes = Aes::new(&AesKey::Aes256([9; 32]));
        let iv = [0x42; 16];
        let msg = b"counter mode handles arbitrary-length messages".to_vec();
        let ct = aes.ctr_process(&iv, &msg);
        assert_ne!(ct, msg);
        assert_eq!(aes.ctr_process(&iv, &ct), msg);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_many_keys() {
        for i in 0..32u8 {
            let key = AesKey::Aes128([i; 16]);
            let aes = Aes::new(&key);
            let pt = [i.wrapping_mul(3); 16];
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
        }
    }
}
