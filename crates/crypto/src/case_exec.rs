//! CaSE-style cache-locked execution on the simulated SoC.
//!
//! Cache-assisted Secure Execution loads encrypted code into a locked
//! cache way, decrypts it in place, and runs it entirely from the cache:
//! the plain-text code and key schedule exist only in L1 SRAM, and the
//! lockdown keeps the kernel and other processes from ever evicting the
//! secret-holding lines to DRAM.
//!
//! The paper's §7.1.2 closing observation is the point of this module:
//! "in the case of on-chip crypto, which uses cache locking (e.g., CaSE),
//! Volt Boot retrieves the entire binary of plain-text software since
//! neither the kernel nor other processes can evict secret-holding cache
//! lines."

use crate::aes::{Aes, AesKey, KeySchedule};
use voltboot_soc::cache::SecurityState;
use voltboot_soc::{Soc, SocError};

/// A CaSE-style enclave: a locked way of a core's L1 d-cache holding a
/// plain-text key schedule (and optionally payload code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseEnclave {
    /// Which core's L1D hosts the enclave.
    pub core: usize,
    /// The locked way.
    pub way: usize,
    /// Base address of the enclave's (cache-resident) memory window.
    pub base: u64,
    /// Key length in 32-bit words.
    pub nk: usize,
    /// Length of the schedule in bytes.
    schedule_len: usize,
}

impl CaseEnclave {
    /// Establishes the enclave: writes the expanded schedule into cache
    /// lines at `base` through the normal access path (allocating in the
    /// cache), finds and locks the ways those lines landed in.
    ///
    /// The lines are written in the *secure* world, so their NS tag bits
    /// mark them secure.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`] or SRAM failures.
    pub fn install(
        soc: &mut Soc,
        core: usize,
        base: u64,
        key: &AesKey,
    ) -> Result<CaseEnclave, SocError> {
        let schedule = KeySchedule::expand(key);
        let bytes = schedule.to_bytes();
        soc.enable_caches(core);

        // Write the schedule through the d-cache in the secure world.
        {
            let c = soc.core_mut(core)?;
            c.security = SecurityState::Secure;
        }
        let program = schedule_writer_program(base, &bytes);
        let exit = soc.run_program(core, &program, 0x70_0000, 10_000_000);
        if !matches!(exit, voltboot_armlite::RunExit::Halted(0)) {
            return Err(SocError::BootRejected {
                reason: format!("enclave loader failed: {exit:?}"),
            });
        }

        // Find which way holds the first schedule line, then lock it.
        let (first_byte, way) = {
            let c = soc.core(core)?;
            let geometry = c.l1d.geometry();
            let (_, set, _) = geometry.split(base);
            let way = (0..geometry.ways)
                .find(|&w| {
                    c.l1d
                        .raw_way_bytes(w, set * geometry.line_bytes, 1)
                        .map(|b| b[0] == bytes[0])
                        .unwrap_or(false)
                })
                .ok_or(SocError::BootRejected { reason: "schedule line not cached".into() })?;
            (bytes[0], way)
        };
        debug_assert_eq!(first_byte, bytes[0]);
        soc.core_mut(core)?.l1d.set_way_locked(way, true);
        Ok(CaseEnclave { core, way, base, nk: key.nk(), schedule_len: bytes.len() })
    }

    /// Reads the schedule through the (locked) cache and rebuilds the
    /// cipher — the legitimate in-enclave operation.
    ///
    /// # Errors
    ///
    /// Fails if the schedule lines were corrupted or evicted.
    pub fn read_schedule(&self, soc: &mut Soc) -> Result<KeySchedule, SocError> {
        // Read straight from the locked way's data RAM: the enclave code
        // runs from cache and never misses.
        let c = soc.core(self.core)?;
        let geometry = c.l1d.geometry();
        let (_, first_set, _) = geometry.split(self.base);
        let mut bytes = Vec::with_capacity(self.schedule_len);
        let mut remaining = self.schedule_len;
        let mut set = first_set;
        while remaining > 0 {
            let chunk = geometry.line_bytes.min(remaining);
            bytes.extend(c.l1d.raw_way_bytes(self.way, set * geometry.line_bytes, chunk)?);
            remaining -= chunk;
            set += 1;
        }
        KeySchedule::from_bytes(&bytes, self.nk)
            .ok_or(SocError::BootRejected { reason: "enclave schedule corrupted".into() })
    }

    /// Encrypts a block with the enclave-resident schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`CaseEnclave::read_schedule`] failures.
    pub fn encrypt_block(&self, soc: &mut Soc, block: &[u8; 16]) -> Result<[u8; 16], SocError> {
        Ok(Aes::from_schedule(self.read_schedule(soc)?).encrypt_block(block))
    }
}

/// Builds an armlite program that stores `bytes` to `base` byte-by-byte.
fn schedule_writer_program(base: u64, bytes: &[u8]) -> voltboot_armlite::Program {
    use voltboot_armlite::insn::{Instr, Reg};
    let mut instrs = vec![
        Instr::Movz { rd: Reg::x(1), imm16: (base & 0xFFFF) as u16, hw: 0 },
        Instr::Movk { rd: Reg::x(1), imm16: ((base >> 16) & 0xFFFF) as u16, hw: 1 },
    ];
    for (i, &b) in bytes.iter().enumerate() {
        // Stay within the strb unsigned-offset range by bumping the base.
        if i > 0 && i % 4096 == 0 {
            instrs.push(Instr::AddImm { rd: Reg::x(1), rn: Reg::x(1), imm12: 4095 });
            instrs.push(Instr::AddImm { rd: Reg::x(1), rn: Reg::x(1), imm12: 1 });
        }
        instrs.push(Instr::Movz { rd: Reg::x(0), imm16: b as u16, hw: 0 });
        instrs.push(Instr::Strb { rt: Reg::x(0), rn: Reg::x(1), offset: (i % 4096) as u16 });
    }
    instrs.push(Instr::Hlt { imm16: 0 });
    voltboot_armlite::Program::from_instrs(instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltboot_pdn::Probe;
    use voltboot_soc::{devices, PowerCycleSpec};

    fn soc() -> Soc {
        let mut s = devices::raspberry_pi_4(0xCA5E);
        s.power_on_all();
        s
    }

    #[test]
    fn enclave_encrypts_correctly() {
        let mut s = soc();
        let key = AesKey::Aes128(*b"case locked key!");
        let enclave = CaseEnclave::install(&mut s, 0, 0x9000, &key).unwrap();
        let pt = *b"plaintext block!";
        let ct = enclave.encrypt_block(&mut s, &pt).unwrap();
        assert_eq!(ct, Aes::new(&key).encrypt_block(&pt));
    }

    #[test]
    fn locked_way_resists_eviction_pressure() {
        let mut s = soc();
        let key = AesKey::Aes128([0x5C; 16]);
        let enclave = CaseEnclave::install(&mut s, 0, 0x9000, &key).unwrap();
        // Hammer the same sets with conflicting lines from the OS side.
        use voltboot_armlite::program::builders;
        // 32 KB of traffic over the whole cache.
        s.run_program(0, &builders::fill_bytes(0x10_0000, 0x11, 32 * 1024), 0x70_0000, 30_000_000);
        let schedule = enclave.read_schedule(&mut s).unwrap();
        assert_eq!(schedule.original_key(), key);
    }

    #[test]
    fn enclave_survives_held_cycle_and_dies_on_plain_reboot() {
        let mut s = soc();
        let key = AesKey::Aes128([0xE1; 16]);
        let enclave = CaseEnclave::install(&mut s, 0, 0x9000, &key).unwrap();

        s.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        s.power_cycle(PowerCycleSpec::quick()).unwrap();
        assert_eq!(enclave.read_schedule(&mut s).unwrap().original_key(), key);

        // Second cycle without the probe: gone. (Probe was consumed by
        // the first cycle? No — it stays attached; detach it.)
        s.network_mut().detach_probe("TP15").unwrap();
        s.power_cycle(PowerCycleSpec::quick()).unwrap();
        assert!(enclave.read_schedule(&mut s).is_err());
    }
}
