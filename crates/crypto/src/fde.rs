//! A toy full-disk-encryption victim.
//!
//! The end-to-end story the paper opens with: non-volatile storage is
//! encrypted (BitLocker/VeraCrypt-style), so a lost or stolen device only
//! leaks data if the attacker can reach the *volatile* copy of the key.
//! On-chip schemes hide that copy in SRAM; Volt Boot retrieves it.
//!
//! [`EncryptedDisk`] is a minimal sector-based AES-CTR container with a
//! password-derived key, good enough to demonstrate: unlock → key
//! schedule on-chip → attack → decrypt the disk offline with the stolen
//! schedule.

use crate::aes::{Aes, AesKey};
use std::error::Error;
use std::fmt;

/// Error for disk operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdeError {
    /// A sector index was past the end of the disk.
    SectorOutOfRange {
        /// The offending sector index.
        sector: u64,
    },
    /// The supplied password failed verification.
    WrongPassword,
}

impl fmt::Display for FdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdeError::SectorOutOfRange { sector } => write!(f, "sector {sector} out of range"),
            FdeError::WrongPassword => write!(f, "password verification failed"),
        }
    }
}

impl Error for FdeError {}

/// Sector size in bytes.
pub const SECTOR_BYTES: usize = 512;

/// A password-locked, sector-encrypted disk image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedDisk {
    sectors: Vec<[u8; SECTOR_BYTES]>,
    /// Verifier: encryption of a fixed block under the disk key.
    verifier: [u8; 16],
    salt: u64,
}

/// Derives the disk key from a password (a deliberately simple KDF: the
/// security of the KDF is out of scope; the attack steals the *derived*
/// key from SRAM after legitimate unlock).
pub fn derive_key(password: &str, salt: u64) -> AesKey {
    let mut state = [0u8; 16];
    let mut acc = salt;
    for (i, b) in password.bytes().cycle().take(4096).enumerate() {
        acc = acc.rotate_left(7).wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64 + i as u64);
        state[i % 16] ^= (acc >> 32) as u8;
    }
    AesKey::Aes128(state)
}

const VERIFIER_BLOCK: [u8; 16] = *b"voltboot-fde-v1\0";

impl EncryptedDisk {
    /// Creates a disk of `sector_count` zeroed sectors locked to
    /// `password`.
    pub fn create(password: &str, salt: u64, sector_count: usize) -> Self {
        let key = derive_key(password, salt);
        let verifier = Aes::new(&key).encrypt_block(&VERIFIER_BLOCK);
        EncryptedDisk { sectors: vec![[0; SECTOR_BYTES]; sector_count], verifier, salt }
    }

    /// Number of sectors.
    pub fn sector_count(&self) -> usize {
        self.sectors.len()
    }

    /// The KDF salt (stored in the clear, as real containers do).
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Unlocks with a password, returning the cipher on success.
    ///
    /// # Errors
    ///
    /// [`FdeError::WrongPassword`].
    pub fn unlock(&self, password: &str) -> Result<Aes, FdeError> {
        let key = derive_key(password, self.salt);
        let aes = Aes::new(&key);
        if aes.encrypt_block(&VERIFIER_BLOCK) != self.verifier {
            return Err(FdeError::WrongPassword);
        }
        Ok(aes)
    }

    /// Verifies that an arbitrary cipher (e.g. rebuilt from a stolen
    /// schedule) is the disk's cipher.
    pub fn verify_cipher(&self, aes: &Aes) -> bool {
        aes.encrypt_block(&VERIFIER_BLOCK) == self.verifier
    }

    /// Writes plaintext to a sector using `aes`.
    ///
    /// # Errors
    ///
    /// [`FdeError::SectorOutOfRange`].
    ///
    /// # Panics
    ///
    /// Panics if `plaintext` is not exactly one sector.
    pub fn write_sector(
        &mut self,
        aes: &Aes,
        sector: u64,
        plaintext: &[u8],
    ) -> Result<(), FdeError> {
        assert_eq!(plaintext.len(), SECTOR_BYTES);
        let slot =
            self.sectors.get_mut(sector as usize).ok_or(FdeError::SectorOutOfRange { sector })?;
        let ct = aes.ctr_process(&Self::sector_iv(sector), plaintext);
        slot.copy_from_slice(&ct);
        Ok(())
    }

    /// Reads and decrypts a sector using `aes`.
    ///
    /// # Errors
    ///
    /// [`FdeError::SectorOutOfRange`].
    pub fn read_sector(&self, aes: &Aes, sector: u64) -> Result<Vec<u8>, FdeError> {
        let slot =
            self.sectors.get(sector as usize).ok_or(FdeError::SectorOutOfRange { sector })?;
        Ok(aes.ctr_process(&Self::sector_iv(sector), slot))
    }

    /// The raw ciphertext of a sector (what a stolen disk yields without
    /// the key).
    ///
    /// # Errors
    ///
    /// [`FdeError::SectorOutOfRange`].
    pub fn raw_sector(&self, sector: u64) -> Result<&[u8; SECTOR_BYTES], FdeError> {
        self.sectors.get(sector as usize).ok_or(FdeError::SectorOutOfRange { sector })
    }

    fn sector_iv(sector: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&sector.to_be_bytes());
        iv[8..].copy_from_slice(b"fde-ctr\0");
        iv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlock_and_roundtrip() {
        let mut disk = EncryptedDisk::create("hunter2", 99, 8);
        let aes = disk.unlock("hunter2").unwrap();
        let mut sector = [0u8; SECTOR_BYTES];
        sector[..20].copy_from_slice(b"top secret contents!");
        disk.write_sector(&aes, 3, &sector).unwrap();
        assert_eq!(disk.read_sector(&aes, 3).unwrap(), sector.to_vec());
        assert_ne!(&disk.raw_sector(3).unwrap()[..20], b"top secret contents!");
    }

    #[test]
    fn wrong_password_rejected() {
        let disk = EncryptedDisk::create("correct", 1, 1);
        assert_eq!(disk.unlock("incorrect").unwrap_err(), FdeError::WrongPassword);
    }

    #[test]
    fn different_salts_different_keys() {
        assert_ne!(derive_key("pw", 1).bytes(), derive_key("pw", 2).bytes());
        assert_ne!(derive_key("pw", 1).bytes(), derive_key("pw2", 1).bytes());
    }

    #[test]
    fn verify_cipher_accepts_only_the_disk_key() {
        let disk = EncryptedDisk::create("pw", 7, 1);
        assert!(disk.verify_cipher(&disk.unlock("pw").unwrap()));
        assert!(!disk.verify_cipher(&Aes::new(&AesKey::Aes128([0; 16]))));
    }

    #[test]
    fn sector_bounds_checked() {
        let disk = EncryptedDisk::create("pw", 7, 2);
        let aes = disk.unlock("pw").unwrap();
        assert!(matches!(disk.read_sector(&aes, 2), Err(FdeError::SectorOutOfRange { .. })));
    }

    #[test]
    fn ciphertexts_differ_across_sectors() {
        let mut disk = EncryptedDisk::create("pw", 7, 2);
        let aes = disk.unlock("pw").unwrap();
        let sector = [0xAB; SECTOR_BYTES];
        disk.write_sector(&aes, 0, &sector).unwrap();
        disk.write_sector(&aes, 1, &sector).unwrap();
        assert_ne!(disk.raw_sector(0).unwrap(), disk.raw_sector(1).unwrap());
    }
}
