//! On-chip cryptography victims for the Volt Boot reproduction.
//!
//! The paper's motivating targets are "fully on-chip" crypto schemes that
//! keep keys out of DRAM to defeat cold-boot attacks:
//!
//! * **TRESOR-style** register crypto (x86 debug registers in the
//!   original; NEON `v0..v31` on ARM): the key schedule never leaves the
//!   CPU register file ([`tresor`]).
//! * **CaSE-style** cache-locked crypto: code and key schedule live in a
//!   locked cache way as plain text, invisible to DRAM probes
//!   ([`case_exec`]).
//!
//! Both defeat cold boot; both store plain text in on-chip SRAM — exactly
//! what Volt Boot retains across a held power cycle. The [`aes`] module
//! is a from-scratch FIPS-197 implementation (no external crypto crates),
//! and [`fde`] builds a toy full-disk-encryption victim around it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod case_exec;
pub mod fde;
pub mod tresor;

pub use aes::{Aes, AesKey, KeySchedule};
pub use case_exec::CaseEnclave;
pub use fde::{EncryptedDisk, FdeError};
pub use tresor::TresorContext;
