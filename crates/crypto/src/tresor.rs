//! TRESOR-style register crypto on the simulated SoC.
//!
//! TRESOR (and PRIME, Security-through-Amnesia) keeps the AES key and its
//! schedule in CPU registers so that no key material ever touches RAM.
//! On ARM the natural home is the NEON file: 32 × 128-bit registers hold
//! an AES-128 schedule (11 round keys = 176 bytes = 11 registers) with
//! room to spare, exactly the layout the paper's §7.2 experiment fills
//! and extracts.
//!
//! The scheme defeats cold boot — registers have no externally accessible
//! bus — but the register file is SRAM in the core power domain, so a
//! held rail retains it across a power cycle.

use crate::aes::{Aes, AesKey, KeySchedule};
use voltboot_soc::{Soc, SocError};

/// A TRESOR session: the schedule lives in a core's NEON registers, and
/// nothing key-derived is stored anywhere else.
///
/// ```rust
/// use voltboot_crypto::aes::AesKey;
/// use voltboot_crypto::tresor::TresorContext;
/// use voltboot_soc::devices;
///
/// let mut soc = devices::raspberry_pi_4(7);
/// soc.power_on_all();
/// let key = AesKey::Aes128(*b"disk-master-key!");
/// let ctx = TresorContext::install(&mut soc, 0, &key)?;
/// let ct = ctx.encrypt_block(&soc, b"sixteen byte blk")?;
/// assert_eq!(ctx.decrypt_block(&soc, &ct)?, *b"sixteen byte blk");
/// # Ok::<(), voltboot_soc::SocError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TresorContext {
    /// Which core holds the schedule.
    pub core: usize,
    /// First vector register used.
    pub first_reg: u8,
    /// Number of vector registers used.
    pub reg_count: u8,
    /// Key length in 32-bit words.
    pub nk: usize,
}

impl TresorContext {
    /// Loads `key`'s expanded schedule into the NEON registers of `core`,
    /// starting at `v0`. Returns the context describing the layout.
    ///
    /// The schedule is packed 16 bytes per register, round key `i` in
    /// `v(i)` — each 128-bit register holds exactly one round key.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`] or SRAM failures if the core domain is
    /// unpowered.
    pub fn install(soc: &mut Soc, core: usize, key: &AesKey) -> Result<TresorContext, SocError> {
        let schedule = KeySchedule::expand(key);
        let bytes = schedule.to_bytes();
        let regs = bytes.len() / 16;
        assert!(regs <= 32, "schedule does not fit the register file");
        let c = soc.core_mut(core)?;
        for (i, chunk) in bytes.chunks_exact(16).enumerate() {
            let low = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
            let high = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
            c.cpu.set_v(i as u8, [low, high]);
        }
        // The register file is physical SRAM: sync the architectural
        // state into it, as the Soc does at power boundaries.
        let file = *c.cpu.vector_file();
        c.vregs.store(&file)?;
        Ok(TresorContext { core, first_reg: 0, reg_count: regs as u8, nk: key.nk() })
    }

    /// Reads the schedule back out of the registers (what the legitimate
    /// on-chip cipher does internally for each block).
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`].
    pub fn read_schedule(&self, soc: &Soc) -> Result<KeySchedule, SocError> {
        let c = soc.core(self.core)?;
        let mut bytes = Vec::with_capacity(self.reg_count as usize * 16);
        for i in 0..self.reg_count {
            let [low, high] = c.cpu.v(self.first_reg + i);
            bytes.extend_from_slice(&low.to_le_bytes());
            bytes.extend_from_slice(&high.to_le_bytes());
        }
        KeySchedule::from_bytes(&bytes, self.nk)
            .ok_or(SocError::BootRejected { reason: "register schedule corrupted".into() })
    }

    /// Encrypts one block fully on-chip: schedule from registers, state
    /// in (simulated) registers, nothing written to memory.
    ///
    /// # Errors
    ///
    /// Propagates [`TresorContext::read_schedule`] failures.
    pub fn encrypt_block(&self, soc: &Soc, block: &[u8; 16]) -> Result<[u8; 16], SocError> {
        Ok(Aes::from_schedule(self.read_schedule(soc)?).encrypt_block(block))
    }

    /// Decrypts one block fully on-chip.
    ///
    /// # Errors
    ///
    /// Propagates [`TresorContext::read_schedule`] failures.
    pub fn decrypt_block(&self, soc: &Soc, block: &[u8; 16]) -> Result<[u8; 16], SocError> {
        Ok(Aes::from_schedule(self.read_schedule(soc)?).decrypt_block(block))
    }

    /// Zeroizes the registers (the defensive power-down path — which an
    /// abrupt disconnect never lets run).
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`] or SRAM failures.
    pub fn zeroize(&self, soc: &mut Soc) -> Result<(), SocError> {
        let c = soc.core_mut(self.core)?;
        for i in 0..self.reg_count {
            c.cpu.set_v(self.first_reg + i, [0, 0]);
        }
        let file = *c.cpu.vector_file();
        c.vregs.store(&file)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltboot_pdn::Probe;
    use voltboot_soc::{devices, PowerCycleSpec};

    fn soc() -> Soc {
        let mut s = devices::raspberry_pi_4(0xC0FFEE);
        s.power_on_all();
        s
    }

    #[test]
    fn install_and_use() {
        let mut s = soc();
        let key = AesKey::Aes128(*b"super secret key");
        let ctx = TresorContext::install(&mut s, 0, &key).unwrap();
        assert_eq!(ctx.reg_count, 11);
        let pt = *b"sixteen byte msg";
        let ct = ctx.encrypt_block(&s, &pt).unwrap();
        assert_eq!(ctx.decrypt_block(&s, &ct).unwrap(), pt);
        assert_eq!(Aes::new(&key).encrypt_block(&pt), ct);
    }

    #[test]
    fn schedule_survives_held_power_cycle() {
        let mut s = soc();
        let key = AesKey::Aes128([0xA5; 16]);
        let ctx = TresorContext::install(&mut s, 0, &key).unwrap();
        s.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        s.power_cycle(PowerCycleSpec::quick()).unwrap();
        let recovered = ctx.read_schedule(&s).unwrap();
        assert_eq!(recovered.original_key(), key);
    }

    #[test]
    fn schedule_lost_on_plain_reboot() {
        let mut s = soc();
        let ctx = TresorContext::install(&mut s, 0, &AesKey::Aes128([0xA5; 16])).unwrap();
        s.power_cycle(PowerCycleSpec::quick()).unwrap();
        assert!(ctx.read_schedule(&s).is_err(), "schedule must not survive an unheld cycle");
    }

    #[test]
    fn zeroize_erases_schedule() {
        let mut s = soc();
        let ctx = TresorContext::install(&mut s, 0, &AesKey::Aes128([1; 16])).unwrap();
        ctx.zeroize(&mut s).unwrap();
        assert!(ctx.read_schedule(&s).is_err());
        assert_eq!(s.core(0).unwrap().cpu.v(0), [0, 0]);
    }

    #[test]
    fn aes256_fits_the_file() {
        let mut s = soc();
        let ctx = TresorContext::install(&mut s, 0, &AesKey::Aes256([3; 32])).unwrap();
        assert_eq!(ctx.reg_count, 15);
        let pt = [0u8; 16];
        let ct = ctx.encrypt_block(&s, &pt).unwrap();
        assert_eq!(Aes::new(&AesKey::Aes256([3; 32])).encrypt_block(&pt), ct);
    }
}
