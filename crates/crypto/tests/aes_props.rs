//! Property tests on the from-scratch AES and GF(2⁸) arithmetic.

use proptest::prelude::*;
use voltboot_crypto::aes::{gf_inv, gf_mul, Aes, AesKey, KeySchedule};

proptest! {
    /// GF(2⁸) multiplication is commutative and associative with 1 as
    /// the identity and distributes over XOR (field axioms on samples).
    #[test]
    fn gf_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        prop_assert_eq!(gf_mul(a, b), gf_mul(b, a));
        prop_assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
        prop_assert_eq!(gf_mul(a, 1), a);
        prop_assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
    }

    /// Inversion is an involution on nonzero elements.
    #[test]
    fn gf_inverse_involution(a in 1u8..=255) {
        prop_assert_eq!(gf_inv(gf_inv(a)), a);
        prop_assert_eq!(gf_mul(a, gf_inv(a)), 1);
    }

    /// All three key sizes round-trip arbitrary blocks.
    #[test]
    fn all_key_sizes_roundtrip(k in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        let keys = [
            AesKey::Aes128(k[..16].try_into().unwrap()),
            AesKey::Aes192(k[..24].try_into().unwrap()),
            AesKey::Aes256(k),
        ];
        for key in keys {
            let aes = Aes::new(&key);
            prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&block)), block);
        }
    }

    /// Different keys virtually never produce the same ciphertext, and
    /// encryption is not the identity.
    #[test]
    fn keys_separate_ciphertexts(k1 in any::<[u8; 16]>(), k2 in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        prop_assume!(k1 != k2);
        let c1 = Aes::new(&AesKey::Aes128(k1)).encrypt_block(&block);
        let c2 = Aes::new(&AesKey::Aes128(k2)).encrypt_block(&block);
        prop_assert_ne!(c1, c2);
        prop_assert_ne!(c1, block);
    }

    /// Schedule serialization round-trips and single-bit corruption is
    /// always detected by the consistency check.
    #[test]
    fn schedule_integrity(k in any::<[u8; 16]>(), bit in 16usize * 8..176 * 8) {
        let ks = KeySchedule::expand(&AesKey::Aes128(k));
        let bytes = ks.to_bytes();
        prop_assert_eq!(KeySchedule::from_bytes(&bytes, 4).unwrap(), ks);
        let mut corrupt = bytes;
        corrupt[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(KeySchedule::from_bytes(&corrupt, 4).is_none(),
            "corruption at bit {} undetected", bit);
    }

    /// CTR mode round-trips arbitrary-length messages.
    #[test]
    fn ctr_roundtrip(key in any::<[u8; 16]>(), iv in any::<[u8; 16]>(), msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let aes = Aes::new(&AesKey::Aes128(key));
        let ct = aes.ctr_process(&iv, &msg);
        prop_assert_eq!(ct.len(), msg.len());
        prop_assert_eq!(aes.ctr_process(&iv, &ct), msg);
    }
}
