//! Power domains and the loads inside them.

use serde::{Deserialize, Serialize};

/// The three broad domain areas the paper divides an SoC's supply into (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainKind {
    /// Processing elements plus the L1 caches and their control logic.
    Core,
    /// Memories and their peripherals (iRAM, L2/L3, memory controllers).
    Memory,
    /// I/O controllers and external peripherals.
    Io,
}

impl DomainKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            DomainKind::Core => "core",
            DomainKind::Memory => "memory",
            DomainKind::Io => "io",
        }
    }
}

/// One on-die load inside a domain.
///
/// Steady current is what the load draws in normal operation; the surge
/// figures describe the transient it pulls from whatever source remains
/// when the main supply is cut abruptly (the power-hungry compute cores
/// refill their decoupling and keep switching for a few microseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Load {
    /// Name, e.g. `"arm-cluster"` or `"iram"`.
    pub name: String,
    /// Steady-state current draw in amperes.
    pub steady_current: f64,
    /// Peak current pulled during an abrupt main-supply disconnect, in
    /// amperes.
    pub disconnect_surge_current: f64,
    /// Duration of the surge, in seconds.
    pub surge_duration: f64,
}

impl Load {
    /// A compute-cluster-like load: hundreds of mA steady, amps of surge.
    pub fn compute_cluster(name: impl Into<String>, steady_current: f64, surge: f64) -> Self {
        Load {
            name: name.into(),
            steady_current,
            disconnect_surge_current: surge,
            surge_duration: 20e-6,
        }
    }

    /// A pure-SRAM load: single-digit mA, negligible surge.
    pub fn sram(name: impl Into<String>, steady_current: f64) -> Self {
        Load {
            name: name.into(),
            steady_current,
            disconnect_surge_current: steady_current * 2.0,
            surge_duration: 2e-6,
        }
    }
}

/// A power-gated group of loads fed from one rail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerDomain {
    /// Domain name, e.g. `"core"` or `"l1-memory"`.
    pub name: String,
    /// Broad classification.
    pub kind: DomainKind,
    /// The rail (by name) that feeds this domain.
    pub rail: String,
    /// Loads inside the domain.
    pub loads: Vec<Load>,
    /// Whether the domain's power gate is currently closed (powered).
    pub gated_on: bool,
}

impl PowerDomain {
    /// Creates a powered-on domain.
    pub fn new(name: impl Into<String>, kind: DomainKind, rail: impl Into<String>) -> Self {
        PowerDomain {
            name: name.into(),
            kind,
            rail: rail.into(),
            loads: Vec::new(),
            gated_on: true,
        }
    }

    /// Adds a load (builder style).
    pub fn with_load(mut self, load: Load) -> Self {
        self.loads.push(load);
        self
    }

    /// Total steady current of the domain's loads, in amperes.
    pub fn steady_current(&self) -> f64 {
        self.loads.iter().map(|l| l.steady_current).sum()
    }

    /// Peak disconnect-surge current of the domain's loads, in amperes.
    pub fn surge_current(&self) -> f64 {
        self.loads.iter().map(|l| l.disconnect_surge_current).sum()
    }

    /// Longest surge duration among the loads, in seconds.
    pub fn surge_duration(&self) -> f64 {
        self.loads.iter().map(|l| l.surge_duration).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_aggregates_loads() {
        let d = PowerDomain::new("core", DomainKind::Core, "VDD_CORE")
            .with_load(Load::compute_cluster("arm", 0.5, 2.5))
            .with_load(Load::sram("l1", 0.008));
        assert!((d.steady_current() - 0.508).abs() < 1e-12);
        assert!((d.surge_current() - 2.516).abs() < 1e-12);
        assert_eq!(d.surge_duration(), 20e-6);
        assert!(d.gated_on);
    }

    #[test]
    fn sram_load_is_small() {
        let l = Load::sram("iram", 0.008);
        assert!(l.disconnect_surge_current < 0.1);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(DomainKind::Core.label(), "core");
        assert_eq!(DomainKind::Memory.label(), "memory");
        assert_eq!(DomainKind::Io.label(), "io");
    }
}
