//! Error type for PDN operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible [`PowerNetwork`](crate::PowerNetwork) operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PdnError {
    /// The named rail does not exist in this network.
    UnknownRail {
        /// The rail name that failed to resolve.
        name: String,
    },
    /// The named probe point (test pad) does not exist on this board.
    UnknownProbePoint {
        /// The pad name that failed to resolve.
        name: String,
    },
    /// The named power domain does not exist in this network.
    UnknownDomain {
        /// The domain name that failed to resolve.
        name: String,
    },
    /// A probe is already attached to that probe point.
    ProbeAlreadyAttached {
        /// The pad that already has a probe.
        pad: String,
    },
    /// The main input was toggled to a state it is already in.
    InvalidMainTransition {
        /// Human-readable description of the attempted transition.
        attempted: &'static str,
    },
    /// The probe setpoint differs from the rail's live voltage by enough
    /// to cause back-feed or brown-out at attach time (an attacker always
    /// measures the pad first — paper §6.1 step 2).
    ProbeVoltageMismatch {
        /// Probe setpoint in volts.
        probe_volts: f64,
        /// Live rail voltage in volts.
        rail_volts: f64,
    },
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::UnknownRail { name } => write!(f, "unknown rail {name:?}"),
            PdnError::UnknownProbePoint { name } => write!(f, "unknown probe point {name:?}"),
            PdnError::UnknownDomain { name } => write!(f, "unknown power domain {name:?}"),
            PdnError::ProbeAlreadyAttached { pad } => {
                write!(f, "probe already attached at {pad:?}")
            }
            PdnError::InvalidMainTransition { attempted } => {
                write!(f, "invalid main-power transition: {attempted}")
            }
            PdnError::ProbeVoltageMismatch { probe_volts, rail_volts } => write!(
                f,
                "probe setpoint {probe_volts} V does not match live rail voltage {rail_volts} V"
            ),
        }
    }
}

impl Error for PdnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let e = PdnError::UnknownRail { name: "VDD_X".into() };
        assert!(e.to_string().contains("VDD_X"));
        let e = PdnError::ProbeVoltageMismatch { probe_volts: 1.2, rail_volts: 0.8 };
        assert!(e.to_string().contains("1.2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PdnError>();
    }
}
