//! Power-delivery-network (PDN) model for the Volt Boot reproduction.
//!
//! Volt Boot works because modern SoCs split their supply into several
//! externally-pinned power domains (core, memory, I/O), each fed by its
//! own regulator inside a PMIC and decoupled by board-level passives. This
//! crate models exactly the slice of that electrical stack the attack
//! touches:
//!
//! * [`Rail`] — one regulator output with nominal voltage and parasitics;
//! * [`PowerDomain`] — a gated group of on-die loads fed by one rail;
//! * [`Pmic`] — the regulator package plus its power-up sequencing;
//! * [`Probe`] / [`ProbePoint`] — a bench supply attached to a PCB test
//!   pad or passive-component lead;
//! * [`PowerNetwork`] — the whole board: attach a probe, cut main power,
//!   and learn per-rail what happened during the disconnect transient.
//!
//! The one electrical failure mode the paper calls out — the compute
//! cores yanking a current surge through the held rail the instant main
//! power disappears, drooping it below SRAM retention voltage — is
//! modelled in [`transient`].
//!
//! # Example
//!
//! ```rust
//! use voltboot_pdn::{PowerNetwork, Probe};
//!
//! // A Raspberry-Pi-4-like board: VDD_CORE at 0.8 V feeds the ARM
//! // cluster *and* the L1 SRAMs, exposed at test pad TP15.
//! let mut net = PowerNetwork::raspberry_pi_4_like();
//! net.attach_probe("TP15", Probe::bench_supply(0.8, 3.0))?;
//! let outcome = net.disconnect_main()?;
//! let rail = outcome.rail("VDD_CORE").unwrap();
//! assert!(rail.is_held());
//! // The 3 A bench supply rides through the core surge: no droop to
//! // speak of, so the SRAM stays above retention voltage.
//! assert!(rail.transient_min_voltage().unwrap() > 0.6);
//! # Ok::<(), voltboot_pdn::PdnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod error;
pub mod network;
pub mod pmic;
pub mod probe;
pub mod rail;
pub mod transient;

pub use domain::{DomainKind, Load, PowerDomain};
pub use error::PdnError;
pub use network::{DisconnectOutcome, PowerNetwork, RailOutcome, ReconnectOrder};
pub use pmic::Pmic;
pub use probe::{Probe, ProbePoint};
pub use rail::{Rail, RegulatorKind};
pub use transient::{DisconnectTransient, SurgeProfile};
