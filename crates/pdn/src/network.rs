//! The full board-level power network.

use crate::domain::{DomainKind, Load, PowerDomain};
use crate::error::PdnError;
use crate::pmic::Pmic;
use crate::probe::{Probe, ProbePoint};
use crate::rail::{Rail, RegulatorKind};
use crate::transient::{DisconnectTransient, SurgeProfile};
use serde::{Deserialize, Serialize};
use voltboot_telemetry::Recorder;

#[cfg(test)]
use voltboot_telemetry::AttrValue;

/// Modelled wall time one PMIC sequencing step takes at reconnect, used
/// to advance the telemetry recorder's virtual clock.
const RAIL_SEQUENCE_STEP_NS: u64 = 1_200_000;

/// Modelled collapse time of an unheld rail at disconnect: the bulk
/// decoupling drains in about a microsecond once the regulator input is
/// gone (paper Fig. 4 shows the unheld rails hitting zero well inside
/// the first scope division).
const UNHELD_COLLAPSE_NS: u64 = 1_000;

/// The order rails come back in when main power returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReconnectOrder {
    /// The PMIC's programmed bring-up sequence (normal operation).
    #[default]
    PmicSequence,
    /// The sequence reversed — the reconnect-ordering fault mode, where
    /// a glitched PMIC (or a hasty manual re-plug) brings dependent
    /// rails up before their parents.
    Reversed,
}

/// What happened to one rail when main power was cut.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RailOutcome {
    /// Rail name.
    pub rail: String,
    /// Present iff a probe held the rail; describes the transient.
    pub held: Option<DisconnectTransient>,
}

impl RailOutcome {
    /// Whether an external probe kept this rail energized.
    pub fn is_held(&self) -> bool {
        self.held.is_some()
    }

    /// Minimum instantaneous voltage during the disconnect, if held.
    pub fn transient_min_voltage(&self) -> Option<f64> {
        self.held.map(|t| t.min_voltage)
    }

    /// Steady held voltage after the surge, if held.
    pub fn steady_voltage(&self) -> Option<f64> {
        self.held.map(|t| t.steady_voltage)
    }
}

/// The per-rail outcomes of one main-supply disconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisconnectOutcome {
    rails: Vec<RailOutcome>,
}

impl DisconnectOutcome {
    /// Looks up one rail's outcome by name.
    pub fn rail(&self, name: &str) -> Option<&RailOutcome> {
        self.rails.iter().find(|r| r.rail == name)
    }

    /// Iterates over all rail outcomes.
    pub fn iter(&self) -> impl Iterator<Item = &RailOutcome> {
        self.rails.iter()
    }
}

/// The whole board: PMIC, domains, probe points, attached probes, and the
/// main-input switch.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerNetwork {
    pmic: Pmic,
    domains: Vec<PowerDomain>,
    probe_points: Vec<ProbePoint>,
    /// Attached probes as `(pad, probe)` pairs.
    attached: Vec<(String, Probe)>,
    main_connected: bool,
}

impl PowerNetwork {
    /// Creates a network with main power initially connected.
    pub fn new(pmic: Pmic) -> Self {
        PowerNetwork {
            pmic,
            domains: Vec::new(),
            probe_points: Vec::new(),
            attached: Vec::new(),
            main_connected: true,
        }
    }

    /// Adds a power domain (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the domain references a rail the PMIC does not have —
    /// that is a board-description bug, not a runtime condition.
    pub fn with_domain(mut self, domain: PowerDomain) -> Self {
        assert!(
            self.pmic.rail(&domain.rail).is_some(),
            "domain {:?} references unknown rail {:?}",
            domain.name,
            domain.rail
        );
        self.domains.push(domain);
        self
    }

    /// Adds a probe point (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the pad references a rail the PMIC does not have.
    pub fn with_probe_point(mut self, point: ProbePoint) -> Self {
        assert!(
            self.pmic.rail(&point.rail).is_some(),
            "probe point {:?} references unknown rail {:?}",
            point.pad,
            point.rail
        );
        self.probe_points.push(point);
        self
    }

    /// The PMIC.
    pub fn pmic(&self) -> &Pmic {
        &self.pmic
    }

    /// All probe points on the board.
    pub fn probe_points(&self) -> &[ProbePoint] {
        &self.probe_points
    }

    /// All power domains.
    pub fn domains(&self) -> &[PowerDomain] {
        &self.domains
    }

    /// Looks up a domain by name.
    pub fn domain(&self, name: &str) -> Option<&PowerDomain> {
        self.domains.iter().find(|d| d.name == name)
    }

    /// Whether the board's main input is connected.
    pub fn main_connected(&self) -> bool {
        self.main_connected
    }

    /// Live voltage at a pad right now (what an attacker's multimeter
    /// reads before choosing the probe setpoint — attack step 2).
    ///
    /// # Errors
    ///
    /// * [`PdnError::UnknownProbePoint`] if the pad does not exist.
    /// * [`PdnError::UnknownRail`] if the pad's rail is gone from the
    ///   PMIC (a mid-campaign reconfiguration can invalidate pads that
    ///   were valid when the board description was built).
    pub fn measure_pad(&self, pad: &str) -> Result<f64, PdnError> {
        let point = self.find_pad(pad)?;
        let rail = self
            .pmic
            .rail(&point.rail)
            .ok_or_else(|| PdnError::UnknownRail { name: point.rail.clone() })?;
        if self.main_connected {
            Ok(rail.nominal_voltage)
        } else {
            Ok(self
                .attached
                .iter()
                .find_map(|(p, probe)| {
                    let at = self.find_pad(p).ok()?;
                    (at.rail == point.rail).then_some(probe.voltage)
                })
                .unwrap_or(0.0))
        }
    }

    /// Attaches `probe` at `pad`. The setpoint must match the live rail
    /// voltage within 50 mV, as an attacker would ensure.
    ///
    /// # Errors
    ///
    /// * [`PdnError::UnknownProbePoint`] if the pad does not exist.
    /// * [`PdnError::ProbeAlreadyAttached`] if the pad is occupied.
    /// * [`PdnError::ProbeVoltageMismatch`] if the setpoint is off.
    pub fn attach_probe(&mut self, pad: &str, probe: Probe) -> Result<(), PdnError> {
        let live = self.measure_pad(pad)?;
        if self.attached.iter().any(|(p, _)| p == pad) {
            return Err(PdnError::ProbeAlreadyAttached { pad: pad.to_string() });
        }
        if (probe.voltage - live).abs() > 0.05 {
            return Err(PdnError::ProbeVoltageMismatch {
                probe_volts: probe.voltage,
                rail_volts: live,
            });
        }
        self.attached.push((pad.to_string(), probe));
        Ok(())
    }

    /// Detaches whatever probe sits at `pad`.
    ///
    /// # Errors
    ///
    /// [`PdnError::UnknownProbePoint`] if no probe is attached there.
    pub fn detach_probe(&mut self, pad: &str) -> Result<Probe, PdnError> {
        let idx = self
            .attached
            .iter()
            .position(|(p, _)| p == pad)
            .ok_or_else(|| PdnError::UnknownProbePoint { name: pad.to_string() })?;
        Ok(self.attached.remove(idx).1)
    }

    /// The probe attached at `pad`, if any.
    pub fn probe_at(&self, pad: &str) -> Option<&Probe> {
        self.attached.iter().find(|(p, _)| p == pad).map(|(_, probe)| probe)
    }

    /// Abruptly cuts the board's main input and resolves, rail by rail,
    /// whether an attached probe held it and how deep the surge droop went.
    ///
    /// # Errors
    ///
    /// * [`PdnError::InvalidMainTransition`] if main power is already off.
    /// * [`PdnError::UnknownProbePoint`] if an attached probe's pad no
    ///   longer resolves (the pad list was edited after attach).
    pub fn disconnect_main(&mut self) -> Result<DisconnectOutcome, PdnError> {
        self.disconnect_main_traced(&Recorder::disabled())
    }

    /// [`PowerNetwork::disconnect_main`], recording per-rail telemetry:
    /// `pdn.rails_held` / `pdn.rails_dropped` counters, a
    /// `pdn.disconnect` span, the virtual time of the longest surge, and
    /// per-rail waveform samples (`pdn.<rail>.v` / `pdn.<rail>.i`)
    /// tracing the droop-and-recover shape of held rails and the
    /// collapse of unheld ones — the paper's Fig. 4–6 scope view as
    /// data.
    ///
    /// # Errors
    ///
    /// Same as [`PowerNetwork::disconnect_main`].
    pub fn disconnect_main_traced(
        &mut self,
        rec: &Recorder,
    ) -> Result<DisconnectOutcome, PdnError> {
        if !self.main_connected {
            return Err(PdnError::InvalidMainTransition {
                attempted: "disconnect while disconnected",
            });
        }
        let span = rec.span("pdn.disconnect");
        let t0 = rec.now_ns();

        // Resolve every rail before committing the state change so a
        // lookup failure leaves the network consistent.
        let mut rails = Vec::with_capacity(self.pmic.rails.len());
        let mut held_count = 0u64;
        let mut max_surge_ns = 0u64;
        for rail in &self.pmic.rails {
            let mut probe = None;
            for (pad, p) in &self.attached {
                let point = self.find_pad(pad)?;
                if point.rail == rail.name {
                    probe = Some(*p);
                    break;
                }
            }
            let held = probe.map(|probe| {
                let surge = self.rail_surge(&rail.name);
                let surge_ns = (surge.surge_duration * 1e9) as u64;
                max_surge_ns = max_surge_ns.max(surge_ns);
                let transient = DisconnectTransient::compute(&probe, rail, &surge);
                Self::sample_held_rail(
                    rec,
                    &rail.name,
                    rail.nominal_voltage,
                    &surge,
                    &transient,
                    t0,
                    surge_ns,
                );
                transient
            });
            if held.is_some() {
                held_count += 1;
            } else if rec.is_enabled() {
                // An unheld rail simply collapses once the PMIC input is
                // gone: nominal at the cut, zero a collapse later.
                let v_chan = format!("pdn.{}.v", rail.name);
                rec.sample_at(&v_chan, t0, rail.nominal_voltage);
                rec.sample_at(&v_chan, t0 + UNHELD_COLLAPSE_NS, 0.0);
            }
            rails.push(RailOutcome { rail: rail.name.clone(), held });
        }
        self.main_connected = false;

        rec.incr("pdn.disconnects", 1);
        rec.incr("pdn.rails_held", held_count);
        rec.incr("pdn.rails_dropped", rails.len() as u64 - held_count);
        rec.advance(max_surge_ns);
        span.attr("rails_held", held_count);
        span.attr("max_surge_ns", max_surge_ns);
        span.end();
        Ok(DisconnectOutcome { rails })
    }

    /// Samples the droop-and-recover waveform of a held rail across its
    /// surge window: nominal at the cut, minimum at the surge edge
    /// (~10 % in), an exponential-ish recovery at the quarter points,
    /// and the settled probe voltage at the end. The current channel
    /// records the load stepping from steady to the probe's delivered
    /// peak and back.
    fn sample_held_rail(
        rec: &Recorder,
        rail: &str,
        nominal: f64,
        surge: &SurgeProfile,
        transient: &DisconnectTransient,
        t0: u64,
        surge_ns: u64,
    ) {
        if !rec.is_enabled() {
            return;
        }
        let v_chan = format!("pdn.{rail}.v");
        let i_chan = format!("pdn.{rail}.i");
        let edge = t0 + surge_ns / 10;
        rec.sample_at(&v_chan, t0, nominal);
        rec.sample_at(&v_chan, edge, transient.min_voltage);
        let swing = transient.steady_voltage - transient.min_voltage;
        for (num, weight) in [(1u64, 0.5), (2, 0.25), (3, 0.125)] {
            let at = t0 + surge_ns * num / 4;
            if at > edge {
                rec.sample_at(&v_chan, at, transient.steady_voltage - swing * weight);
            }
        }
        rec.sample_at(&v_chan, t0 + surge_ns, transient.steady_voltage);
        rec.sample_at(&i_chan, t0, surge.steady_current);
        rec.sample_at(&i_chan, edge, transient.peak_current);
        rec.sample_at(&i_chan, t0 + surge_ns, surge.steady_current.min(transient.peak_current));
    }

    /// Reconnects main power; rails come back in PMIC sequence order.
    /// Returns the bring-up order.
    ///
    /// # Errors
    ///
    /// [`PdnError::InvalidMainTransition`] if main power is already on.
    pub fn reconnect_main(&mut self) -> Result<Vec<String>, PdnError> {
        self.reconnect_main_with(ReconnectOrder::PmicSequence, &Recorder::disabled())
    }

    /// [`PowerNetwork::reconnect_main`] with an explicit bring-up order
    /// (the reconnect-ordering fault mode) and telemetry: a
    /// `pdn.reconnect` span advanced by one sequencing step per rail.
    ///
    /// # Errors
    ///
    /// Same as [`PowerNetwork::reconnect_main`].
    pub fn reconnect_main_with(
        &mut self,
        order: ReconnectOrder,
        rec: &Recorder,
    ) -> Result<Vec<String>, PdnError> {
        if self.main_connected {
            return Err(PdnError::InvalidMainTransition { attempted: "reconnect while connected" });
        }
        let span = rec.span("pdn.reconnect");
        let t0 = rec.now_ns();
        self.main_connected = true;
        let mut sequence: Vec<String> =
            self.pmic.sequence().into_iter().map(String::from).collect();
        if order == ReconnectOrder::Reversed {
            sequence.reverse();
            rec.incr("pdn.reconnects_misordered", 1);
        }
        if rec.is_enabled() {
            // The bring-up staircase: each rail sits at zero until its
            // sequencing slot, then steps to nominal.
            for (k, name) in sequence.iter().enumerate() {
                let Some(rail) = self.pmic.rail(name) else { continue };
                let chan = format!("pdn.{name}.v");
                let slot = t0 + RAIL_SEQUENCE_STEP_NS * k as u64;
                rec.sample_at(&chan, slot, 0.0);
                rec.sample_at(&chan, slot + RAIL_SEQUENCE_STEP_NS, rail.nominal_voltage);
            }
        }
        rec.incr("pdn.reconnects", 1);
        rec.advance(RAIL_SEQUENCE_STEP_NS * sequence.len() as u64);
        span.attr(
            "order",
            match order {
                ReconnectOrder::PmicSequence => "pmic-sequence",
                ReconnectOrder::Reversed => "reversed",
            },
        );
        span.attr("rails", sequence.len());
        span.end();
        Ok(sequence)
    }

    /// Opens or closes a domain's power gate at runtime (the PMU's
    /// fine-grained control, and the hardware hook behind the "toggle SRAM
    /// power at reset" countermeasure).
    ///
    /// # Errors
    ///
    /// [`PdnError::UnknownDomain`] if the domain does not exist.
    pub fn gate_domain(&mut self, name: &str, on: bool) -> Result<(), PdnError> {
        let domain = self
            .domains
            .iter_mut()
            .find(|d| d.name == name)
            .ok_or_else(|| PdnError::UnknownDomain { name: name.to_string() })?;
        domain.gated_on = on;
        Ok(())
    }

    /// Aggregate surge profile of every gated-on domain on `rail`.
    fn rail_surge(&self, rail: &str) -> SurgeProfile {
        let mut steady = 0.0;
        let mut surge = 0.0;
        let mut duration: f64 = 0.0;
        for d in self.domains.iter().filter(|d| d.rail == rail && d.gated_on) {
            steady += d.steady_current();
            surge += d.surge_current();
            duration = duration.max(d.surge_duration());
        }
        if surge == 0.0 {
            SurgeProfile::quiescent(steady.max(1e-3))
        } else {
            SurgeProfile { steady_current: steady, surge_current: surge, surge_duration: duration }
        }
    }

    fn find_pad(&self, pad: &str) -> Result<&ProbePoint, PdnError> {
        self.probe_points
            .iter()
            .find(|p| p.pad == pad)
            .ok_or_else(|| PdnError::UnknownProbePoint { name: pad.to_string() })
    }

    /// A Raspberry-Pi-4-like reference board used in docs and tests: the
    /// BCM2711's VDD_CORE (0.8 V, exposed at TP15) feeds the ARM cluster
    /// and L1 SRAMs; separate memory and I/O rails complete the picture.
    pub fn raspberry_pi_4_like() -> Self {
        let pmic = Pmic::new("MxL7704")
            .with_rail(Rail::new("VDD_IO", 3.3, RegulatorKind::Ldo))
            .with_rail(Rail::new("VDD_MEM", 1.1, RegulatorKind::Buck))
            .with_rail(Rail::new("VDD_CORE", 0.8, RegulatorKind::Buck));
        PowerNetwork::new(pmic)
            .with_domain(
                PowerDomain::new("core", DomainKind::Core, "VDD_CORE")
                    .with_load(Load::compute_cluster("arm-cluster", 0.5, 2.5))
                    .with_load(Load::sram("l1-srams", 0.008)),
            )
            .with_domain(
                PowerDomain::new("memory", DomainKind::Memory, "VDD_MEM")
                    .with_load(Load::sram("l2", 0.02)),
            )
            .with_domain(PowerDomain::new("io", DomainKind::Io, "VDD_IO"))
            .with_probe_point(ProbePoint::new("TP15", "VDD_CORE", "test pad near the PMIC"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_then_attach_then_disconnect() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        let live = net.measure_pad("TP15").unwrap();
        assert_eq!(live, 0.8);
        net.attach_probe("TP15", Probe::bench_supply(live, 3.0)).unwrap();
        let outcome = net.disconnect_main().unwrap();
        assert!(outcome.rail("VDD_CORE").unwrap().is_held());
        assert!(!outcome.rail("VDD_MEM").unwrap().is_held());
        assert!(!outcome.rail("VDD_IO").unwrap().is_held());
    }

    #[test]
    fn probe_setpoint_must_match_rail() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        let err = net.attach_probe("TP15", Probe::bench_supply(1.2, 3.0)).unwrap_err();
        assert!(matches!(err, PdnError::ProbeVoltageMismatch { .. }));
    }

    #[test]
    fn double_attach_rejected() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        let err = net.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap_err();
        assert!(matches!(err, PdnError::ProbeAlreadyAttached { .. }));
    }

    #[test]
    fn unknown_pad_rejected() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        assert!(matches!(
            net.attach_probe("TP99", Probe::bench_supply(0.8, 3.0)),
            Err(PdnError::UnknownProbePoint { .. })
        ));
    }

    #[test]
    fn weak_probe_droops_core_rail() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.attach_probe("TP15", Probe::weak_source(0.8, 0.3)).unwrap();
        let outcome = net.disconnect_main().unwrap();
        let rail = outcome.rail("VDD_CORE").unwrap();
        assert!(rail.is_held());
        assert!(rail.transient_min_voltage().unwrap() < 0.3);
    }

    #[test]
    fn reconnect_follows_pmic_sequence() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.disconnect_main().unwrap();
        let order = net.reconnect_main().unwrap();
        assert_eq!(order, vec!["VDD_IO", "VDD_MEM", "VDD_CORE"]);
    }

    #[test]
    fn main_transitions_guarded() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        assert!(net.reconnect_main().is_err());
        net.disconnect_main().unwrap();
        assert!(net.disconnect_main().is_err());
    }

    #[test]
    fn gating_off_core_removes_surge() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.attach_probe("TP15", Probe::weak_source(0.8, 0.3)).unwrap();
        net.gate_domain("core", false).unwrap();
        let outcome = net.disconnect_main().unwrap();
        // With the cluster gated off, even the weak source holds the rail.
        let rail = outcome.rail("VDD_CORE").unwrap();
        assert!(rail.transient_min_voltage().unwrap() > 0.7);
    }

    #[test]
    fn unknown_domain_gate_is_error() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        assert!(matches!(net.gate_domain("gpu", false), Err(PdnError::UnknownDomain { .. })));
    }

    #[test]
    fn measure_pad_while_off_reads_probe_or_zero() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.disconnect_main().unwrap();
        assert_eq!(net.measure_pad("TP15").unwrap(), 0.0);
        net.reconnect_main().unwrap();
        net.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        net.disconnect_main().unwrap();
        assert_eq!(net.measure_pad("TP15").unwrap(), 0.8);
    }

    #[test]
    fn misordered_reconnect_reverses_sequence() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.disconnect_main().unwrap();
        let order =
            net.reconnect_main_with(ReconnectOrder::Reversed, &Recorder::disabled()).unwrap();
        assert_eq!(order, vec!["VDD_CORE", "VDD_MEM", "VDD_IO"]);
    }

    #[test]
    fn disconnect_records_telemetry() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        let rec = Recorder::new();
        net.disconnect_main_traced(&rec).unwrap();
        assert_eq!(rec.counter("pdn.rails_held"), 1);
        assert_eq!(rec.counter("pdn.rails_dropped"), 2);
        assert!(rec.now_ns() > 0, "surge must advance the virtual clock");
        assert_eq!(rec.timings()["pdn.disconnect"].count, 1);
        net.reconnect_main_with(ReconnectOrder::PmicSequence, &rec).unwrap();
        assert_eq!(rec.counter("pdn.reconnects"), 1);
    }

    #[test]
    fn disconnect_traces_rail_waveforms() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        let rec = Recorder::new();
        net.disconnect_main_traced(&rec).unwrap();
        net.reconnect_main_with(ReconnectOrder::PmicSequence, &rec).unwrap();

        let waves = rec.waveforms();
        // Held rail: voltage and current channels trace the surge.
        let core_v = &waves["pdn.VDD_CORE.v"];
        assert!(core_v.len() >= 4, "droop + recovery points: {core_v:?}");
        assert_eq!(core_v[0].value, 0.8, "nominal at the cut");
        let min = core_v.iter().map(|s| s.value).fold(f64::INFINITY, f64::min);
        assert!(min < 0.8, "the surge must droop below nominal");
        assert!(waves["pdn.VDD_CORE.i"].iter().any(|s| s.value > 0.5), "surge current peak");
        // Unheld rail: collapse to zero, then the reconnect staircase
        // brings it back to nominal.
        let mem_v = &waves["pdn.VDD_MEM.v"];
        assert_eq!(mem_v[0].value, 1.1);
        assert_eq!(mem_v[1].value, 0.0);
        assert_eq!(mem_v.last().unwrap().value, 1.1, "reconnect restores nominal");
        // Timestamps never run backwards within a channel.
        for w in waves.values() {
            assert!(w.windows(2).all(|p| p[0].at_ns <= p[1].at_ns), "{w:?}");
        }

        // Span attributes describe the disconnect and the bring-up.
        let spans = rec.spans();
        let disconnect = spans.iter().find(|s| s.name == "pdn.disconnect").unwrap();
        assert!(disconnect.attrs.iter().any(|(k, v)| k == "rails_held" && *v == AttrValue::U64(1)));
        let reconnect = spans.iter().find(|s| s.name == "pdn.reconnect").unwrap();
        assert!(reconnect
            .attrs
            .iter()
            .any(|(k, v)| k == "order" && *v == AttrValue::Str("pmic-sequence".into())));
    }

    #[test]
    fn detach_after_disconnect_keeps_network_usable() {
        // The mid-campaign fault sequence: probe contact is lost between
        // the disconnect and the reconnect. Nothing here may panic.
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        net.disconnect_main().unwrap();
        net.detach_probe("TP15").unwrap();
        assert_eq!(net.measure_pad("TP15").unwrap(), 0.0);
        net.reconnect_main().unwrap();
        assert_eq!(net.measure_pad("TP15").unwrap(), 0.8);
    }

    #[test]
    fn detach_returns_probe() {
        let mut net = PowerNetwork::raspberry_pi_4_like();
        net.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        let p = net.detach_probe("TP15").unwrap();
        assert_eq!(p.current_limit, 3.0);
        assert!(net.probe_at("TP15").is_none());
    }
}
