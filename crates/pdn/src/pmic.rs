//! The PMIC: the regulator package and its bring-up sequencing.

use crate::rail::Rail;
use serde::{Deserialize, Serialize};

/// A power-management IC: a named package of regulator rails brought up in
/// a fixed sequence when the board's main input appears.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pmic {
    /// Part name, e.g. `"MxL7704"` (Pi 4), `"PAM2306"` (Pi 3 area),
    /// `"LTC3589"` (i.MX53 QSB).
    pub model: String,
    /// Output rails, in bring-up order.
    pub rails: Vec<Rail>,
}

impl Pmic {
    /// Creates a PMIC with no rails.
    pub fn new(model: impl Into<String>) -> Self {
        Pmic { model: model.into(), rails: Vec::new() }
    }

    /// Adds a rail (builder style); rails power up in insertion order.
    pub fn with_rail(mut self, rail: Rail) -> Self {
        self.rails.push(rail);
        self
    }

    /// Looks up a rail by name.
    pub fn rail(&self, name: &str) -> Option<&Rail> {
        self.rails.iter().find(|r| r.name == name)
    }

    /// The bring-up order as rail names.
    pub fn sequence(&self) -> Vec<&str> {
        self.rails.iter().map(|r| r.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rail::RegulatorKind;

    #[test]
    fn rails_power_up_in_insertion_order() {
        let pmic = Pmic::new("MxL7704")
            .with_rail(Rail::new("VDD_IO", 3.3, RegulatorKind::Ldo))
            .with_rail(Rail::new("VDD_MEM", 1.1, RegulatorKind::Buck))
            .with_rail(Rail::new("VDD_CORE", 0.8, RegulatorKind::Buck));
        assert_eq!(pmic.sequence(), vec!["VDD_IO", "VDD_MEM", "VDD_CORE"]);
        assert_eq!(pmic.rail("VDD_CORE").unwrap().nominal_voltage, 0.8);
        assert!(pmic.rail("VDD_X").is_none());
    }
}
