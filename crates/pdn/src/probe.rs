//! External voltage probes and the board points they attach to.

use serde::{Deserialize, Serialize};

/// An external voltage source an attacker attaches to the board.
///
/// The paper uses a bench power supply with more than 3 A of drive
/// capability; the current limit is the parameter that decides whether the
/// held rail rides through the disconnect surge (paper §6: "a power supply
/// capable of supplying sufficient current is essential when the target
/// memory domain also supplies power to the CPU core(s)").
///
/// ```rust
/// use voltboot_pdn::Probe;
///
/// let bench = Probe::bench_supply(0.8, 3.0);
/// let weak = Probe::weak_source(0.8, 0.2);
/// assert!(bench.current_limit > weak.current_limit);
/// assert!(bench.series_resistance < weak.series_resistance);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Probe {
    /// Output setpoint in volts.
    pub voltage: f64,
    /// Maximum current the source can deliver before it folds back, in
    /// amperes.
    pub current_limit: f64,
    /// Output/lead series resistance in ohms.
    pub series_resistance: f64,
}

impl Probe {
    /// A bench supply: low output impedance, explicit current limit.
    pub fn bench_supply(voltage: f64, current_limit: f64) -> Self {
        Probe { voltage, current_limit, series_resistance: 0.02 }
    }

    /// A weak source such as a coin cell or an underpowered USB supply —
    /// useful for demonstrating the droop failure mode.
    pub fn weak_source(voltage: f64, current_limit: f64) -> Self {
        Probe { voltage, current_limit, series_resistance: 0.5 }
    }
}

/// A physical attachment point on the PCB: a test pad or the lead of a
/// passive component that connects to a supply rail (paper Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbePoint {
    /// Pad designator, e.g. `"TP15"`, `"PP58"`, `"SH13"`.
    pub pad: String,
    /// The rail this pad exposes.
    pub rail: String,
    /// Notes, e.g. where on the board the pad sits.
    pub notes: String,
}

impl ProbePoint {
    /// Creates a probe point.
    pub fn new(pad: impl Into<String>, rail: impl Into<String>, notes: impl Into<String>) -> Self {
        ProbePoint { pad: pad.into(), rail: rail.into(), notes: notes.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_supply_has_low_impedance() {
        let p = Probe::bench_supply(0.8, 3.0);
        assert!(p.series_resistance < 0.1);
        assert_eq!(p.current_limit, 3.0);
    }

    #[test]
    fn weak_source_has_high_impedance() {
        let weak = Probe::weak_source(0.8, 0.2);
        let bench = Probe::bench_supply(0.8, 3.0);
        assert!(weak.series_resistance > bench.series_resistance);
        assert!(weak.current_limit < bench.current_limit);
    }

    #[test]
    fn probe_point_fields() {
        let pp = ProbePoint::new("TP15", "VDD_CORE", "near the PMIC");
        assert_eq!(pp.pad, "TP15");
        assert_eq!(pp.rail, "VDD_CORE");
    }
}
