//! Regulator rails.

use serde::{Deserialize, Serialize};

/// The kind of regulator feeding a rail (paper Figure 4).
///
/// LDOs feed domains with limited load fluctuation; buck (switching)
/// converters feed the high-fluctuation, DVFS-capable domains where heat
/// loss matters. For the attack the distinction matters only through the
/// passives each kind requires — both expose a board-level node an
/// attacker can probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegulatorKind {
    /// Low-dropout linear regulator with a decoupling capacitor.
    Ldo,
    /// Switching (buck) converter with an LC output filter.
    Buck,
}

impl RegulatorKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RegulatorKind::Ldo => "LDO",
            RegulatorKind::Buck => "BUCK",
        }
    }
}

/// One regulator output: a board-level supply net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rail {
    /// Net name, e.g. `"VDD_CORE"` or `"VDDAL1"`.
    pub name: String,
    /// Nominal output voltage in volts.
    pub nominal_voltage: f64,
    /// Regulator topology.
    pub regulator: RegulatorKind,
    /// Series parasitic resistance seen from an external probe to the
    /// on-die loads, in ohms (board trace + package + bond).
    pub parasitic_resistance: f64,
    /// Series parasitic inductance on the same path, in henries.
    pub parasitic_inductance: f64,
}

impl Rail {
    /// Creates a rail with typical board parasitics (15 mΩ, 2 nH).
    pub fn new(name: impl Into<String>, nominal_voltage: f64, regulator: RegulatorKind) -> Self {
        Rail {
            name: name.into(),
            nominal_voltage,
            regulator,
            parasitic_resistance: 0.015,
            parasitic_inductance: 2.0e-9,
        }
    }

    /// Overrides the parasitics (builder style).
    pub fn with_parasitics(mut self, resistance: f64, inductance: f64) -> Self {
        self.parasitic_resistance = resistance;
        self.parasitic_inductance = inductance;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rail_defaults_have_small_parasitics() {
        let r = Rail::new("VDD_CORE", 0.8, RegulatorKind::Buck);
        assert!(r.parasitic_resistance < 0.1);
        assert!(r.parasitic_inductance < 1e-6);
        assert_eq!(r.regulator.label(), "BUCK");
    }

    #[test]
    fn builder_overrides() {
        let r = Rail::new("X", 1.0, RegulatorKind::Ldo).with_parasitics(0.05, 5e-9);
        assert_eq!(r.parasitic_resistance, 0.05);
        assert_eq!(r.parasitic_inductance, 5e-9);
    }
}
