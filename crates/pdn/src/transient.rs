//! The disconnect transient: what happens on a held rail the instant the
//! main supply disappears.
//!
//! While main power is up, an attached probe at the rail's live voltage
//! sources only a trickle. The moment the PMIC input is cut, every load on
//! the rail starts drawing from the probe instead, and the power-hungry
//! compute logic pulls a brief surge (the paper measures 400–600 mA steady
//! on a Raspberry Pi 4's VDD_CORE with momentary spikes at disconnect,
//! settling to 8 mA once the cores stop). The probe's job is to keep the
//! rail above every SRAM cell's data-retention voltage through that surge.
//!
//! The model computes the minimum instantaneous rail voltage as
//!
//! ```text
//! v_min = v_set - I_eff * (R_probe + R_parasitic) - L_parasitic * dI/dt
//! ```
//!
//! where `I_eff` is the surge current clamped at the probe's limit; if the
//! demand exceeds the limit the source folds back and the deficit collapses
//! the rail proportionally (a current-limited bench supply drops its
//! output until the load releases).

use crate::probe::Probe;
use crate::rail::Rail;
use serde::{Deserialize, Serialize};

/// Aggregate surge demand a rail sees at main-supply disconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurgeProfile {
    /// Steady current of all loads on the rail, in amperes.
    pub steady_current: f64,
    /// Peak surge current at disconnect, in amperes.
    pub surge_current: f64,
    /// Surge duration in seconds.
    pub surge_duration: f64,
}

impl SurgeProfile {
    /// A surge-free profile (an SRAM-only rail).
    pub fn quiescent(steady_current: f64) -> Self {
        SurgeProfile { steady_current, surge_current: steady_current, surge_duration: 1e-6 }
    }

    /// Current rise rate at the disconnect edge, in A/s.
    pub fn current_slew(&self) -> f64 {
        if self.surge_duration <= 0.0 {
            return 0.0;
        }
        // The surge ramps in roughly a tenth of its duration.
        (self.surge_current - self.steady_current).max(0.0) / (self.surge_duration * 0.1)
    }
}

/// The resolved electrical outcome of a disconnect on one held rail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisconnectTransient {
    /// Steady voltage after the surge settles, in volts.
    pub steady_voltage: f64,
    /// Minimum instantaneous voltage during the surge, in volts.
    pub min_voltage: f64,
    /// Peak current actually delivered by the probe, in amperes.
    pub peak_current: f64,
    /// Whether the probe hit its current limit during the surge.
    pub current_limited: bool,
}

impl DisconnectTransient {
    /// Computes the transient for `probe` holding `rail` against `surge`.
    pub fn compute(probe: &Probe, rail: &Rail, surge: &SurgeProfile) -> Self {
        let r_total = probe.series_resistance + rail.parasitic_resistance;
        let demand = surge.surge_current;
        let delivered = demand.min(probe.current_limit);
        let current_limited = demand > probe.current_limit;

        // Resistive droop from the delivered current.
        let ir_drop = delivered * r_total;
        // Inductive kick from the surge edge.
        let l_drop = rail.parasitic_inductance * surge.current_slew();
        // Fold-back collapse when the source current-limits: the rail
        // sags until the load demand matches what the source can supply.
        let foldback = if current_limited {
            probe.voltage * (1.0 - probe.current_limit / demand)
        } else {
            0.0
        };

        let min_voltage = (probe.voltage - ir_drop - l_drop - foldback).max(0.0);
        // The steady state after the surge is subject to the same
        // current-limit physics: a source whose limit sits below the
        // *steady* demand stays folded back forever, it does not recover
        // to a healthy output once the surge passes.
        let steady_delivered = surge.steady_current.min(probe.current_limit);
        let steady_foldback = if surge.steady_current > probe.current_limit {
            probe.voltage * (1.0 - probe.current_limit / surge.steady_current)
        } else {
            0.0
        };
        let steady_voltage =
            (probe.voltage - steady_delivered * r_total - steady_foldback).max(0.0);
        DisconnectTransient {
            steady_voltage,
            min_voltage,
            peak_current: delivered,
            current_limited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rail::RegulatorKind;

    fn core_rail() -> Rail {
        Rail::new("VDD_CORE", 0.8, RegulatorKind::Buck)
    }

    fn core_surge() -> SurgeProfile {
        // Paper: Pi 4 draws 400-600 mA through TP15, spiking at disconnect.
        SurgeProfile { steady_current: 0.5, surge_current: 2.5, surge_duration: 20e-6 }
    }

    #[test]
    fn bench_supply_rides_through_core_surge() {
        let t = DisconnectTransient::compute(
            &Probe::bench_supply(0.8, 3.0),
            &core_rail(),
            &core_surge(),
        );
        assert!(!t.current_limited);
        assert!(t.min_voltage > 0.6, "min voltage {}", t.min_voltage);
        assert!(t.steady_voltage > 0.75, "steady {}", t.steady_voltage);
    }

    #[test]
    fn weak_source_collapses_under_core_surge() {
        let t = DisconnectTransient::compute(
            &Probe::weak_source(0.8, 0.3),
            &core_rail(),
            &core_surge(),
        );
        assert!(t.current_limited);
        assert!(t.min_voltage < 0.3, "min voltage {}", t.min_voltage);
    }

    #[test]
    fn sram_only_rail_needs_almost_nothing() {
        // i.MX535's VDDAL1 feeds the iRAM but not the Cortex-A8 core, so
        // even a weak source holds it.
        let rail = Rail::new("VDDAL1", 1.3, RegulatorKind::Ldo);
        let surge = SurgeProfile::quiescent(0.008);
        let t = DisconnectTransient::compute(&Probe::weak_source(1.3, 0.1), &rail, &surge);
        assert!(!t.current_limited);
        assert!(t.min_voltage > 1.25, "min voltage {}", t.min_voltage);
    }

    #[test]
    fn droop_is_monotone_in_surge_current() {
        let probe = Probe::bench_supply(0.8, 3.0);
        let rail = core_rail();
        let mut last = f64::INFINITY;
        for surge_a in [0.5, 1.0, 2.0, 2.9, 4.0, 8.0] {
            let t = DisconnectTransient::compute(
                &probe,
                &rail,
                &SurgeProfile {
                    steady_current: 0.4,
                    surge_current: surge_a,
                    surge_duration: 20e-6,
                },
            );
            assert!(t.min_voltage <= last + 1e-12, "droop not monotone at {surge_a} A");
            last = t.min_voltage;
        }
    }

    #[test]
    fn steady_overload_folds_back_instead_of_recovering() {
        // Regression: a source whose current limit sits below the rail's
        // *steady* demand used to report a healthy post-surge voltage
        // (only the IR term was applied), masking a permanent overload.
        let rail = core_rail();
        let probe = Probe::weak_source(0.8, 0.3);
        let surge = SurgeProfile { steady_current: 1.2, surge_current: 2.5, surge_duration: 20e-6 };
        let t = DisconnectTransient::compute(&probe, &rail, &surge);
        // Foldback term alone: 0.8 * (1 - 0.3/1.2) = 0.6 V of collapse.
        assert!(
            t.steady_voltage < 0.2,
            "steady overload must collapse the held voltage, got {}",
            t.steady_voltage
        );
        // A source with ample limit at the same steady load stays healthy.
        let strong = DisconnectTransient::compute(&Probe::bench_supply(0.8, 3.0), &rail, &surge);
        assert!(strong.steady_voltage > 0.7, "got {}", strong.steady_voltage);
    }

    #[test]
    fn steady_voltage_unchanged_when_within_limit() {
        // The fix must not perturb the healthy path: steady demand below
        // the limit sees only the IR term, exactly as before.
        let t = DisconnectTransient::compute(
            &Probe::bench_supply(0.8, 3.0),
            &core_rail(),
            &core_surge(),
        );
        let r_total = 0.02 + core_rail().parasitic_resistance;
        let expected = 0.8 - 0.5 * r_total;
        assert!((t.steady_voltage - expected).abs() < 1e-12, "got {}", t.steady_voltage);
    }

    #[test]
    fn peak_current_clamped_at_limit() {
        let t = DisconnectTransient::compute(
            &Probe::bench_supply(0.8, 1.0),
            &core_rail(),
            &core_surge(),
        );
        assert_eq!(t.peak_current, 1.0);
        assert!(t.current_limited);
    }
}
