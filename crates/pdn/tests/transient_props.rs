//! Property tests on the PDN transient model.

use proptest::prelude::*;
use voltboot_pdn::{DisconnectTransient, Probe, Rail, RegulatorKind, SurgeProfile};

proptest! {
    /// Voltages out of the transient solver are physical: bounded by the
    /// setpoint, never negative, and the steady level is at least the
    /// surge minimum.
    #[test]
    fn transient_voltages_are_physical(
        setpoint_mv in 100u32..5000,
        limit_ma in 10u32..10_000,
        surge_ma in 1u32..20_000,
        steady_ma in 1u32..2_000,
    ) {
        let probe = Probe::bench_supply(setpoint_mv as f64 / 1000.0, limit_ma as f64 / 1000.0);
        let rail = Rail::new("r", setpoint_mv as f64 / 1000.0, RegulatorKind::Buck);
        let surge = SurgeProfile {
            steady_current: steady_ma as f64 / 1000.0,
            surge_current: (surge_ma as f64 / 1000.0).max(steady_ma as f64 / 1000.0),
            surge_duration: 20e-6,
        };
        let t = DisconnectTransient::compute(&probe, &rail, &surge);
        prop_assert!(t.min_voltage >= 0.0);
        prop_assert!(t.min_voltage <= probe.voltage + 1e-12);
        prop_assert!(t.steady_voltage >= t.min_voltage - 1e-9,
            "steady {} < min {}", t.steady_voltage, t.min_voltage);
        prop_assert!(t.peak_current <= probe.current_limit + 1e-12);
    }

    /// A current-unconstrained probe with negligible impedance holds the
    /// rail near its setpoint through any surge.
    #[test]
    fn ideal_probe_always_holds(surge_a in 0.0f64..50.0) {
        let probe = Probe { voltage: 1.0, current_limit: 1e6, series_resistance: 1e-6 };
        let rail = Rail::new("r", 1.0, RegulatorKind::Buck).with_parasitics(1e-6, 1e-12);
        let t = DisconnectTransient::compute(
            &probe,
            &rail,
            &SurgeProfile { steady_current: 0.1, surge_current: surge_a.max(0.1), surge_duration: 20e-6 },
        );
        prop_assert!(t.min_voltage > 0.99, "min {}", t.min_voltage);
        prop_assert!(!t.current_limited);
    }

    /// Raising the current limit never lowers the minimum voltage.
    #[test]
    fn min_voltage_monotone_in_limit(surge_da in 1u32..100) {
        let rail = Rail::new("r", 0.8, RegulatorKind::Buck);
        let surge = SurgeProfile {
            steady_current: 0.2,
            surge_current: surge_da as f64 / 10.0,
            surge_duration: 20e-6,
        };
        let mut last = -1.0f64;
        for limit_da in [1u32, 5, 10, 20, 40, 80] {
            let probe = Probe::bench_supply(0.8, limit_da as f64 / 10.0);
            let t = DisconnectTransient::compute(&probe, &rail, &surge);
            prop_assert!(t.min_voltage >= last - 1e-12);
            last = t.min_voltage;
        }
    }
}
