//! Boot ROMs, boot media, and boot-time SRAM clobbering.
//!
//! How much retained SRAM survives to the attacker depends entirely on
//! what the boot path touches before releasing control (paper §6.2):
//!
//! * **BCM2711 / BCM2837**: the VideoCore GPU boots first from its own
//!   firmware, clobbering the shared L2 cache, but never touches the
//!   software-enabled ARM L1 caches — the attacker gets 100 % of L1.
//! * **i.MX535**: the on-chip boot ROM uses part of the iRAM as a
//!   scratchpad before the DRAM controller comes up, wiping the byte
//!   ranges in its clobber map (≈5 % of the 128 KB), clustered at the
//!   start and end of the region — the Figure 10 error clusters.
//!
//! The module also models the boot *policy* countermeasures of §8:
//! authenticated (signed-image) boot and hardware memory BIST at reset.

use serde::{Deserialize, Serialize};

/// Where the SoC fetches its next-stage image from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BootSource {
    /// Internal boot ROM only (the i.MX535 path: the device comes up like
    /// a microcontroller with no external image needed).
    InternalRom,
    /// An external image supplied on removable/USB media. `signed` says
    /// whether the image carries a valid OEM signature.
    ExternalMedia {
        /// The image's machine code, loaded at the entry address.
        image: Vec<u8>,
        /// Physical load/entry address.
        entry: u64,
        /// Whether the image is signed with the OEM key.
        signed: bool,
    },
}

/// Boot-policy switches (§8 countermeasures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BootPolicy {
    /// Refuse unsigned external images (fused secure boot).
    pub mandated_authenticated_boot: bool,
    /// Run a hardware MBIST pass that zeroes every SRAM at reset.
    pub mbist_reset: bool,
    /// Pull `nL2RST` at reset, resetting the L2 arrays (armv8-A suggests
    /// this exists for L2 but not L1).
    pub l2_reset_pin: bool,
    /// Enforce TrustZone NS checks on debug reads of cache lines.
    pub trustzone_enforced: bool,
}

/// A byte range of an SRAM region the boot flow overwrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClobberRegion {
    /// First byte offset (inclusive), relative to the region base.
    pub start: usize,
    /// Last byte offset (exclusive).
    pub end: usize,
}

impl ClobberRegion {
    /// Creates a clobber region.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "empty clobber region");
        ClobberRegion { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the region is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Device-specific boot behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootRom {
    /// Whether the VideoCore-style firmware clobbers the L2 at boot.
    pub clobbers_l2: bool,
    /// iRAM byte ranges the ROM uses as scratchpad (i.MX535: the
    /// 0x83C–0x18CC window plus a small stack at the top).
    pub iram_clobbers: Vec<ClobberRegion>,
    /// Whether the device can boot with no external media at all.
    pub boots_from_internal_rom: bool,
    /// Seed for the deterministic "firmware junk" that fills clobbered
    /// ranges.
    pub junk_seed: u64,
}

impl BootRom {
    /// Deterministic firmware-junk byte for offset `i` (what the ROM's
    /// scratch data happens to look like).
    pub fn junk_byte(&self, i: usize) -> u8 {
        let mut z = self.junk_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 32;
        z as u8
    }
}

/// What a boot attempt produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BootOutcome {
    /// Address the (first) core starts executing at.
    pub entry: u64,
    /// Whether the L2 was clobbered by firmware.
    pub l2_clobbered: bool,
    /// Total iRAM bytes clobbered by the ROM.
    pub iram_bytes_clobbered: usize,
    /// Whether an MBIST pass wiped all SRAMs.
    pub mbist_ran: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clobber_region_len() {
        let r = ClobberRegion::new(0x83C, 0x18CC);
        assert_eq!(r.len(), 0x1090);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty clobber region")]
    fn empty_region_rejected() {
        ClobberRegion::new(8, 8);
    }

    #[test]
    fn junk_is_deterministic_and_varied() {
        let rom = BootRom {
            clobbers_l2: false,
            iram_clobbers: vec![],
            boots_from_internal_rom: true,
            junk_seed: 42,
        };
        assert_eq!(rom.junk_byte(0), rom.junk_byte(0));
        let distinct: std::collections::HashSet<u8> = (0..256).map(|i| rom.junk_byte(i)).collect();
        assert!(distinct.len() > 100, "junk should look random");
    }

    #[test]
    fn default_policy_is_permissive() {
        let p = BootPolicy::default();
        assert!(!p.mandated_authenticated_boot);
        assert!(!p.mbist_reset);
        assert!(!p.l2_reset_pin);
        assert!(!p.trustzone_enforced);
    }
}
