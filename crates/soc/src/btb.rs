//! SRAM-backed branch target buffers.
//!
//! The last of the paper's three named `RAMINDEX`-exposed RAM families
//! ("caches, TLBs, and BTBs"). A BTB entry pairs a branch's address with
//! its most recent target, so a retained BTB leaks the victim's
//! *control-flow history* — which loops ran, which functions called
//! which — even after the code itself is evicted.
//!
//! Model: a direct-mapped target buffer indexed by branch PC. Entry
//! format (64 bits): bit 63 = valid, bits 38..62 = branch-PC tag
//! (word-granular), bits 0..38 = target word address.

use crate::error::SocError;
use serde::{Deserialize, Serialize};
use voltboot_sram::{ArrayConfig, OffEvent, PackedBits, ResolutionMode, SramArray, Temperature};
use voltboot_telemetry::Recorder;

/// Number of entries in the modelled BTB.
pub const BTB_ENTRIES: usize = 64;

const TARGET_BITS: u64 = 38;
const TAG_MASK: u64 = (1 << 24) - 1;

/// A direct-mapped branch target buffer with an SRAM entry store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Btb {
    sram: SramArray,
}

impl Btb {
    /// Creates the BTB for one core.
    pub fn new(core: usize, rail_voltage: f64, shared_domain_drain: f64, seed: u64) -> Self {
        let cfg = ArrayConfig::with_bytes(format!("core{core}.btb"), BTB_ENTRIES * 8)
            .nominal_voltage(rail_voltage)
            .shared_domain_drain(shared_domain_drain);
        Btb { sram: SramArray::new(cfg, seed) }
    }

    fn slot_of(pc: u64) -> usize {
        ((pc >> 2) as usize) % BTB_ENTRIES
    }

    /// Records a taken branch `pc -> target`.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when the domain is unpowered.
    pub fn record(&mut self, pc: u64, target: u64) -> Result<(), SocError> {
        let slot = Self::slot_of(pc);
        let tag = (pc >> 2) >> 6; // bits above the index
        let word = (1u64 << 63)
            | ((tag & TAG_MASK) << TARGET_BITS)
            | ((target >> 2) & ((1 << TARGET_BITS) - 1));
        // A loop re-taking the same branch hits the same entry: skip the
        // redundant write (and its SRAM traffic).
        if self.entry_word(slot)? == word {
            return Ok(());
        }
        self.sram.try_write_bytes(slot * 8, &word.to_le_bytes())?;
        Ok(())
    }

    /// The `(branch_pc, target)` recorded in entry `i`, if valid.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered,
    /// [`SocError::RamIndexOutOfRange`] past the last entry.
    pub fn entry(&self, i: usize) -> Result<Option<(u64, u64)>, SocError> {
        let word = self.entry_word(i)?;
        if word & (1 << 63) == 0 {
            return Ok(None);
        }
        let tag = (word >> TARGET_BITS) & TAG_MASK;
        let pc = ((tag << 6) | i as u64) << 2;
        let target = (word & ((1 << TARGET_BITS) - 1)) << 2;
        Ok(Some((pc, target)))
    }

    /// The raw 64-bit entry word (the RAMINDEX view).
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered,
    /// [`SocError::RamIndexOutOfRange`] past the last entry.
    pub fn entry_word(&self, i: usize) -> Result<u64, SocError> {
        if i >= BTB_ENTRIES {
            return Err(SocError::RamIndexOutOfRange { way: 0, index: i as u64 });
        }
        let bytes = self.sram.try_read_bytes(i * 8, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// All valid `(branch, target)` pairs.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn recorded_branches(&self) -> Result<Vec<(u64, u64)>, SocError> {
        (0..BTB_ENTRIES).filter_map(|i| self.entry(i).transpose()).collect()
    }

    /// Raw bit image of the entry store.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn image(&self) -> Result<PackedBits, SocError> {
        Ok(self.sram.snapshot()?)
    }

    /// Powers the entry SRAM on.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on(&mut self) -> Result<voltboot_sram::RetentionReport, SocError> {
        self.power_on_traced(&Recorder::disabled())
    }

    /// [`Btb::power_on`] that additionally records SRAM resolution
    /// counters into `rec`.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on_traced(
        &mut self,
        rec: &Recorder,
    ) -> Result<voltboot_sram::RetentionReport, SocError> {
        Ok(self.sram.power_on_traced(ResolutionMode::Batched, rec)?)
    }

    /// Cuts power.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_off(&mut self, event: OffEvent) -> Result<(), SocError> {
        Ok(self.sram.power_off(event)?)
    }

    /// Advances unpowered time.
    pub fn elapse(&mut self, dt: std::time::Duration, temperature: Temperature) {
        self.sram.elapse(dt, temperature);
    }

    /// Invalidates every entry.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn invalidate_all(&mut self) -> Result<(), SocError> {
        for i in 0..BTB_ENTRIES {
            let word = self.entry_word(i)? & !(1 << 63);
            self.sram.try_write_bytes(i * 8, &word.to_le_bytes())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn powered_btb() -> Btb {
        let mut b = Btb::new(0, 0.8, 4.0, 88);
        b.power_on().unwrap();
        b.invalidate_all().unwrap();
        b
    }

    #[test]
    fn record_and_decode_roundtrip() {
        let mut b = powered_btb();
        b.record(0x8_0010, 0x8_0100).unwrap();
        b.record(0x9_0040, 0x8_0000).unwrap();
        let branches = b.recorded_branches().unwrap();
        assert!(branches.contains(&(0x8_0010, 0x8_0100)), "{branches:x?}");
        assert!(branches.contains(&(0x9_0040, 0x8_0000)), "{branches:x?}");
    }

    #[test]
    fn direct_mapping_replaces_conflicting_entries() {
        let mut b = powered_btb();
        // Two branch PCs that map to the same slot (same low bits).
        let pc1 = 0x1_0000u64;
        let pc2 = pc1 + (BTB_ENTRIES as u64 * 4);
        b.record(pc1, 0x100).unwrap();
        b.record(pc2, 0x200).unwrap();
        let branches = b.recorded_branches().unwrap();
        assert!(!branches.iter().any(|&(pc, _)| pc == pc1));
        assert!(branches.contains(&(pc2, 0x200)));
    }

    #[test]
    fn held_cycle_preserves_control_flow_history() {
        let mut b = powered_btb();
        b.record(0xBEEF00, 0xCAFE00).unwrap();
        b.power_off(OffEvent::held(0.8)).unwrap();
        b.elapse(Duration::from_secs(5), Temperature::ROOM);
        b.power_on().unwrap();
        assert!(b.recorded_branches().unwrap().contains(&(0xBEEF00, 0xCAFE00)));
    }

    #[test]
    fn unheld_cycle_destroys_history() {
        let mut b = powered_btb();
        b.record(0xBEEF00, 0xCAFE00).unwrap();
        b.power_off(OffEvent::unpowered()).unwrap();
        b.elapse(Duration::from_millis(500), Temperature::ROOM);
        b.power_on().unwrap();
        assert!(!b.recorded_branches().unwrap().contains(&(0xBEEF00, 0xCAFE00)));
    }
}
