//! Set-associative caches with SRAM-backed tag and data arrays.
//!
//! Both the tag RAM and the data RAM of every cache are
//! [`SramArray`]s, so cache contents — including valid bits, dirty bits,
//! and TrustZone NS bits, which live in the tag array — behave like
//! physical SRAM across power events. That is the property Volt Boot
//! exploits and the property that makes an unheld power cycle scramble
//! the cache into its power-up state (paper Figure 3).
//!
//! Architectural behaviours the paper relies on are modelled faithfully:
//!
//! * **Invalidate ≠ erase** (§5.2.4): `IC IALLU` and `DC CIVAC` clear tag
//!   *valid* bits only; the data RAM keeps its contents and stays readable
//!   through `RAMINDEX`.
//! * **`DC ZVA` is the only data-RAM reset** for d-caches, and no
//!   equivalent exists for i-caches.
//! * **Cache lockdown**: ways can be locked (CaSE-style) so neither the
//!   kernel nor other processes can evict secret-holding lines.

use crate::error::SocError;
use serde::{Deserialize, Serialize};
use voltboot_sram::{ArrayConfig, OffEvent, PackedBits, ResolutionMode, SramArray, Temperature};
use voltboot_telemetry::Recorder;

/// Whether a cache serves instruction fetches or data accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheKind {
    /// Instruction cache (read-only from the core's point of view).
    Instruction,
    /// Data cache (write-back, write-allocate).
    Data,
    /// Unified cache (L2).
    Unified,
}

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Number of ways.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size = ways * sets * line` divides evenly and all
    /// parameters are powers of two.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(size_bytes.is_power_of_two() || size_bytes.is_multiple_of(ways * line_bytes));
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        let g = CacheGeometry { size_bytes, ways, line_bytes };
        assert!(g.sets() > 0 && g.sets().is_power_of_two(), "sets must be a power of two");
        g
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// Decomposes an address into `(tag, set, offset)`.
    ///
    /// All masking happens in `u64` before narrowing: `addr as usize`
    /// would silently drop the high half of a 64-bit physical address on
    /// a 32-bit host and alias distant lines onto the same set.
    pub fn split(&self, addr: u64) -> (u64, usize, usize) {
        let offset = (addr & (self.line_bytes as u64 - 1)) as usize;
        let set = ((addr / self.line_bytes as u64) & (self.sets() as u64 - 1)) as usize;
        let tag = addr / (self.line_bytes as u64 * self.sets() as u64);
        (tag, set, offset)
    }

    /// Rebuilds a line's base address from its tag and set.
    pub fn line_addr(&self, tag: u64, set: usize) -> u64 {
        (tag * self.sets() as u64 + set as u64) * self.line_bytes as u64
    }
}

/// Security state of an access (TrustZone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecurityState {
    /// Secure world.
    Secure,
    /// Non-secure world.
    NonSecure,
}

/// The next level of the memory hierarchy, seen line-at-a-time.
pub trait Backing {
    /// Reads one full line at `line_addr` into `buf`.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`] (or lower-level failures) when the address
    /// does not decode.
    fn read_line(&mut self, line_addr: u64, buf: &mut [u8]) -> Result<(), SocError>;

    /// Writes one full line at `line_addr` from `buf`.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`] (or lower-level failures) when the address
    /// does not decode.
    fn write_line(&mut self, line_addr: u64, buf: &[u8]) -> Result<(), SocError>;
}

/// Decoded tag-RAM entry for one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TagEntry {
    valid: bool,
    dirty: bool,
    /// TrustZone NS bit: `true` = line was filled by a non-secure access.
    ns: bool,
    tag: u64,
}

impl TagEntry {
    const INVALID: TagEntry = TagEntry { valid: false, dirty: false, ns: true, tag: 0 };

    fn pack(self) -> u64 {
        let mut w = self.tag & 0x1FFF_FFFF_FFFF_FFFF;
        if self.valid {
            w |= 1 << 63;
        }
        if self.dirty {
            w |= 1 << 62;
        }
        if self.ns {
            w |= 1 << 61;
        }
        w
    }

    fn unpack(w: u64) -> TagEntry {
        TagEntry {
            valid: w & (1 << 63) != 0,
            dirty: w & (1 << 62) != 0,
            ns: w & (1 << 61) != 0,
            tag: w & 0x1FFF_FFFF_FFFF_FFFF,
        }
    }
}

/// A set-associative, write-back, write-allocate cache whose tag and data
/// stores are physical [`SramArray`]s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    name: String,
    kind: CacheKind,
    geometry: CacheGeometry,
    /// Data RAM: `lines * line_bytes` bytes of SRAM.
    data: SramArray,
    /// Tag RAM: 64 bits of SRAM per line.
    tags: SramArray,
    /// Software enable bit (SCTLR.C / SCTLR.I analogue). Cleared by a
    /// power-on reset; garbage tags make an un-invalidated enable unsafe.
    enabled: bool,
    /// Per-way lockdown bits (CaSE-style).
    locked_ways: Vec<bool>,
    /// Round-robin victim pointers, one per set. Micro-architectural
    /// state, reset on power-up (not SRAM-relevant).
    victim_ptr: Vec<u8>,
}

impl Cache {
    /// Creates a new, unpowered cache. `rail_voltage` is the nominal
    /// supply of the power domain the cache's SRAM sits in;
    /// `shared_domain_drain` models compute logic on the same domain
    /// accelerating decay during unheld power-offs.
    pub fn new(
        name: impl Into<String>,
        kind: CacheKind,
        geometry: CacheGeometry,
        rail_voltage: f64,
        shared_domain_drain: f64,
        seed: u64,
    ) -> Self {
        let name = name.into();
        let data_cfg = ArrayConfig::with_bytes(format!("{name}.data"), geometry.size_bytes)
            .nominal_voltage(rail_voltage)
            .shared_domain_drain(shared_domain_drain);
        let tag_cfg = ArrayConfig::with_bytes(format!("{name}.tag"), geometry.lines() * 8)
            .nominal_voltage(rail_voltage)
            .shared_domain_drain(shared_domain_drain);
        Cache {
            kind,
            data: SramArray::new(data_cfg, seed ^ 0xDA7A),
            tags: SramArray::new(tag_cfg, seed ^ 0x7A65),
            enabled: false,
            locked_ways: vec![false; geometry.ways],
            victim_ptr: vec![0; geometry.sets()],
            geometry,
            name,
        }
    }

    /// The cache's name, e.g. `"core0.l1d"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cache's kind.
    pub fn kind(&self) -> CacheKind {
        self.kind
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Whether software has enabled the cache.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache (the SCTLR bit). Enabling does *not*
    /// initialize the tag RAM; see [`Cache::invalidate_all`].
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Locks or unlocks a way against eviction.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of range.
    pub fn set_way_locked(&mut self, way: usize, locked: bool) {
        self.locked_ways[way] = locked;
    }

    /// Whether a way is locked.
    pub fn is_way_locked(&self, way: usize) -> bool {
        self.locked_ways[way]
    }

    // ------------------------------------------------------------------
    // Power plumbing
    // ------------------------------------------------------------------

    /// Powers both SRAM arrays on. Returns the data-RAM retention report.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on(&mut self) -> Result<voltboot_sram::RetentionReport, SocError> {
        self.power_on_traced(&Recorder::disabled())
    }

    /// [`Cache::power_on`] that additionally records SRAM resolution
    /// counters into `rec` (counters only — safe from parallel power-on
    /// jobs).
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on_traced(
        &mut self,
        rec: &Recorder,
    ) -> Result<voltboot_sram::RetentionReport, SocError> {
        let report = self.data.power_on_traced(ResolutionMode::Batched, rec)?;
        self.tags.power_on_traced(ResolutionMode::Batched, rec)?;
        // Micro-architectural reset: the enable bit clears, victim
        // pointers reset. Tag/data SRAM keeps whatever physics decided.
        self.enabled = false;
        self.victim_ptr.iter_mut().for_each(|p| *p = 0);
        self.locked_ways.iter_mut().for_each(|l| *l = false);
        Ok(report)
    }

    /// Cuts power to both arrays.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_off(&mut self, event: OffEvent) -> Result<(), SocError> {
        self.data.power_off(event)?;
        self.tags.power_off(event)?;
        Ok(())
    }

    /// Advances unpowered time at `temperature`.
    pub fn elapse(&mut self, dt: std::time::Duration, temperature: Temperature) {
        self.data.elapse(dt, temperature);
        self.tags.elapse(dt, temperature);
    }

    /// Whether the cache is powered.
    pub fn is_powered(&self) -> bool {
        self.data.is_powered()
    }

    // ------------------------------------------------------------------
    // Maintenance operations
    // ------------------------------------------------------------------

    /// Invalidates every line by clearing tag valid bits. **Data RAM is
    /// untouched** — this is the §5.2.4 observation that cleaning and
    /// invalidating "does not erase the contents".
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] if unpowered.
    pub fn invalidate_all(&mut self) -> Result<(), SocError> {
        for line in 0..self.geometry.lines() {
            let mut e = self.read_tag(line)?;
            e.valid = false;
            e.dirty = false;
            self.write_tag(line, e)?;
        }
        Ok(())
    }

    /// Invalidates (without writeback) every line whose address falls in
    /// `[start, start + len)` — the loader-side coherence operation for
    /// freshly written code. Data RAM keeps its bits.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] if unpowered.
    pub fn invalidate_va_range(&mut self, start: u64, len: u64) -> Result<(), SocError> {
        let line = self.geometry.line_bytes as u64;
        let mut addr = start & !(line - 1);
        while addr < start + len {
            let (tag, set, _) = self.geometry.split(addr);
            for way in 0..self.geometry.ways {
                let idx = self.line_index(set, way);
                let e = self.read_tag(idx)?;
                if e.valid && e.tag == tag {
                    let mut cleared = e;
                    cleared.valid = false;
                    cleared.dirty = false;
                    self.write_tag(idx, cleared)?;
                }
            }
            addr += line;
        }
        Ok(())
    }

    /// Cleans (writes back) and invalidates the line containing `addr`,
    /// if present. Data RAM keeps its bits.
    ///
    /// # Errors
    ///
    /// Propagates SRAM and backing failures.
    pub fn clean_invalidate_va(
        &mut self,
        addr: u64,
        lower: &mut dyn Backing,
    ) -> Result<(), SocError> {
        if let Some((way, _)) = self.lookup(addr)? {
            let (_, set, _) = self.geometry.split(addr);
            self.writeback_if_dirty(set, way, lower)?;
            let line = self.line_index(set, way);
            let mut e = self.read_tag(line)?;
            e.valid = false;
            e.dirty = false;
            self.write_tag(line, e)?;
        }
        Ok(())
    }

    /// Cleans (writes back) the line containing `addr`, if dirty.
    ///
    /// # Errors
    ///
    /// Propagates SRAM and backing failures.
    pub fn clean_va(&mut self, addr: u64, lower: &mut dyn Backing) -> Result<(), SocError> {
        if let Some((way, _)) = self.lookup(addr)? {
            let (_, set, _) = self.geometry.split(addr);
            self.writeback_if_dirty(set, way, lower)?;
        }
        Ok(())
    }

    /// `DC ZVA`: allocates the line containing `addr` and zeroes its data
    /// — the only architectural way to reset d-cache data RAM (§5.2.4).
    ///
    /// # Errors
    ///
    /// Propagates SRAM and backing failures.
    pub fn zero_va(
        &mut self,
        addr: u64,
        security: SecurityState,
        lower: &mut dyn Backing,
    ) -> Result<(), SocError> {
        let (tag, set, _) = self.geometry.split(addr);
        let way = match self.lookup(addr)? {
            Some((way, _)) => way,
            None => self.allocate_way(set, lower)?,
        };
        let line = self.line_index(set, way);
        self.write_tag(
            line,
            TagEntry { valid: true, dirty: true, ns: security == SecurityState::NonSecure, tag },
        )?;
        let zeros = vec![0u8; self.geometry.line_bytes];
        self.data.try_write_bytes(line * self.geometry.line_bytes, &zeros)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Access path
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes at `addr` through the cache. The access
    /// must not cross a line boundary.
    ///
    /// # Errors
    ///
    /// Propagates SRAM and backing failures.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a line boundary (the CPU never issues
    /// such accesses).
    pub fn read(
        &mut self,
        addr: u64,
        buf: &mut [u8],
        security: SecurityState,
        lower: &mut dyn Backing,
    ) -> Result<(), SocError> {
        self.check_span(addr, buf.len());
        if !self.enabled {
            return self.read_around(addr, buf, lower);
        }
        let (_, set, offset) = self.geometry.split(addr);
        let way = match self.lookup(addr)? {
            Some((way, _)) => way,
            None => self.fill(addr, security, lower)?,
        };
        let line = self.line_index(set, way);
        let bytes =
            self.data.try_read_bytes(line * self.geometry.line_bytes + offset, buf.len())?;
        buf.copy_from_slice(&bytes);
        Ok(())
    }

    /// Writes `data` at `addr` through the cache (write-back,
    /// write-allocate). The access must not cross a line boundary.
    ///
    /// # Errors
    ///
    /// Propagates SRAM and backing failures.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a line boundary.
    pub fn write(
        &mut self,
        addr: u64,
        data: &[u8],
        security: SecurityState,
        lower: &mut dyn Backing,
    ) -> Result<(), SocError> {
        self.check_span(addr, data.len());
        if !self.enabled {
            return self.write_around(addr, data, lower);
        }
        let (_, set, offset) = self.geometry.split(addr);
        let way = match self.lookup(addr)? {
            Some((way, _)) => way,
            None => self.fill(addr, security, lower)?,
        };
        let line = self.line_index(set, way);
        self.data.try_write_bytes(line * self.geometry.line_bytes + offset, data)?;
        let mut e = self.read_tag(line)?;
        e.dirty = true;
        self.write_tag(line, e)?;
        Ok(())
    }

    /// Evicts (with writeback) every line belonging to lines chosen by an
    /// external actor — used by the OS-noise model to emulate background
    /// processes touching a set. Evicts the victim way of `set` unless it
    /// is locked; returns the way evicted, if any.
    ///
    /// # Errors
    ///
    /// Propagates SRAM and backing failures.
    pub fn evict_one(
        &mut self,
        set: usize,
        fill_addr: u64,
        security: SecurityState,
        lower: &mut dyn Backing,
    ) -> Result<Option<usize>, SocError> {
        if !self.enabled {
            return Ok(None);
        }
        if self.locked_ways.iter().all(|&l| l) {
            return Ok(None);
        }
        let way = self.pick_victim(set);
        self.writeback_if_dirty(set, way, lower)?;
        // Fill the way with the noise line.
        let (tag, fill_set, _) = self.geometry.split(fill_addr);
        debug_assert_eq!(fill_set, set, "noise fill address must map to the set");
        let line = self.line_index(set, way);
        let mut buf = vec![0u8; self.geometry.line_bytes];
        lower.read_line(self.geometry.line_addr(tag, set), &mut buf)?;
        self.data.try_write_bytes(line * self.geometry.line_bytes, &buf)?;
        self.write_tag(
            line,
            TagEntry { valid: true, dirty: false, ns: security == SecurityState::NonSecure, tag },
        )?;
        Ok(Some(way))
    }

    // ------------------------------------------------------------------
    // Raw debug access (the RAMINDEX / forensic path)
    // ------------------------------------------------------------------

    /// Raw read of the data RAM: `len` bytes at byte `offset` of `way`.
    /// Ignores validity — this is the debug path, not the access path.
    ///
    /// # Errors
    ///
    /// [`SocError::RamIndexOutOfRange`] or SRAM failures.
    pub fn raw_way_bytes(
        &self,
        way: usize,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SocError> {
        let way_bytes = self.geometry.sets() * self.geometry.line_bytes;
        let end = offset.checked_add(len);
        if way >= self.geometry.ways || end.is_none_or(|e| e > way_bytes) {
            return Err(SocError::RamIndexOutOfRange { way: way as u64, index: offset as u64 });
        }
        // Data RAM layout: line-major (set*ways + way); a way image walks
        // every set picking this way's line.
        let line_bytes = self.geometry.line_bytes;
        let mut out = Vec::with_capacity(len);
        let mut remaining = len;
        let mut cursor = offset;
        while remaining > 0 {
            let set = cursor / line_bytes;
            let within = cursor % line_bytes;
            let chunk = (line_bytes - within).min(remaining);
            let line = self.line_index(set, way);
            out.extend(self.data.try_read_bytes(line * line_bytes + within, chunk)?);
            cursor += chunk;
            remaining -= chunk;
        }
        Ok(out)
    }

    /// The full image of one way as a bit vector (the paper's Figures 3,
    /// 7, 8 render exactly this).
    ///
    /// # Errors
    ///
    /// [`SocError::RamIndexOutOfRange`] or SRAM failures.
    pub fn way_image(&self, way: usize) -> Result<PackedBits, SocError> {
        let bytes = self.raw_way_bytes(way, 0, self.geometry.sets() * self.geometry.line_bytes)?;
        Ok(PackedBits::from_bytes(&bytes))
    }

    /// Raw read of one packed tag entry (the L1D-tag / L1I-tag RAMs).
    ///
    /// # Errors
    ///
    /// [`SocError::RamIndexOutOfRange`] or SRAM failures.
    pub fn raw_tag_word(&self, way: usize, set: usize) -> Result<u64, SocError> {
        if way >= self.geometry.ways || set >= self.geometry.sets() {
            return Err(SocError::RamIndexOutOfRange { way: way as u64, index: set as u64 });
        }
        let line = self.line_index(set, way);
        let bytes = self.tags.try_read_bytes(line * 8, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Raw write of one packed tag entry (debug/firmware path; see
    /// [`Cache::raw_tag_word`] for the layout).
    ///
    /// # Errors
    ///
    /// [`SocError::RamIndexOutOfRange`] or SRAM failures.
    pub fn write_tag_raw(&mut self, set: usize, way: usize, word: u64) -> Result<(), SocError> {
        if way >= self.geometry.ways || set >= self.geometry.sets() {
            return Err(SocError::RamIndexOutOfRange { way: way as u64, index: set as u64 });
        }
        let line = self.line_index(set, way);
        self.tags.try_write_bytes(line * 8, &word.to_le_bytes())?;
        Ok(())
    }

    /// The TrustZone NS bit of a line, for enforcement checks.
    ///
    /// # Errors
    ///
    /// [`SocError::RamIndexOutOfRange`] or SRAM failures.
    pub fn line_is_secure(&self, way: usize, set: usize) -> Result<bool, SocError> {
        let e = TagEntry::unpack(self.raw_tag_word(way, set)?);
        Ok(e.valid && !e.ns)
    }

    /// Direct load of a full line image into the data and tag RAMs —
    /// used by boot firmware models (e.g. the VideoCore clobbering L2).
    ///
    /// # Errors
    ///
    /// SRAM failures.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly one line or indices are out of
    /// range.
    pub fn load_line_raw(
        &mut self,
        set: usize,
        way: usize,
        tag: u64,
        valid: bool,
        bytes: &[u8],
    ) -> Result<(), SocError> {
        assert_eq!(bytes.len(), self.geometry.line_bytes);
        let line = self.line_index(set, way);
        self.data.try_write_bytes(line * self.geometry.line_bytes, bytes)?;
        self.write_tag(line, TagEntry { valid, dirty: false, ns: true, tag })?;
        Ok(())
    }

    /// Fills the entire data RAM with a byte and invalidates all tags —
    /// the MBIST-style hardware reset countermeasure (§8).
    ///
    /// # Errors
    ///
    /// SRAM failures.
    pub fn hardware_reset(&mut self) -> Result<(), SocError> {
        self.data.fill(0)?;
        for line in 0..self.geometry.lines() {
            self.write_tag(line, TagEntry::INVALID)?;
        }
        Ok(())
    }

    /// Overwrites the whole data RAM with generated bytes (boot firmware
    /// scribbling over a shared cache, e.g. the VideoCore clobbering L2).
    ///
    /// # Errors
    ///
    /// SRAM failures.
    pub fn fill_data_with(&mut self, f: impl Fn(usize) -> u8) -> Result<(), SocError> {
        let total = self.geometry.size_bytes;
        let chunk = 4096.min(total);
        let mut offset = 0usize;
        while offset < total {
            let n = chunk.min(total - offset);
            let bytes: Vec<u8> = (offset..offset + n).map(&f).collect();
            self.data.try_write_bytes(offset, &bytes)?;
            offset += n;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn line_index(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    fn read_tag(&self, line: usize) -> Result<TagEntry, SocError> {
        let bytes = self.tags.try_read_bytes(line * 8, 8)?;
        Ok(TagEntry::unpack(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))))
    }

    fn write_tag(&mut self, line: usize, e: TagEntry) -> Result<(), SocError> {
        self.tags.try_write_bytes(line * 8, &e.pack().to_le_bytes())?;
        Ok(())
    }

    /// Finds `(way, tag_entry)` of a hit.
    fn lookup(&self, addr: u64) -> Result<Option<(usize, TagEntry)>, SocError> {
        let (tag, set, _) = self.geometry.split(addr);
        for way in 0..self.geometry.ways {
            let e = self.read_tag(self.line_index(set, way))?;
            if e.valid && e.tag == tag {
                return Ok(Some((way, e)));
            }
        }
        Ok(None)
    }

    /// Picks a victim way in `set`: first invalid unlocked way, else the
    /// round-robin pointer skipping locked ways.
    fn pick_victim(&mut self, set: usize) -> usize {
        for way in 0..self.geometry.ways {
            if self.locked_ways[way] {
                continue;
            }
            if let Ok(e) = self.read_tag(self.line_index(set, way)) {
                if !e.valid {
                    return way;
                }
            }
        }
        let ways = self.geometry.ways;
        let mut ptr = self.victim_ptr[set] as usize;
        for _ in 0..ways {
            ptr = (ptr + 1) % ways;
            if !self.locked_ways[ptr] {
                break;
            }
        }
        self.victim_ptr[set] = ptr as u8;
        ptr
    }

    fn writeback_if_dirty(
        &mut self,
        set: usize,
        way: usize,
        lower: &mut dyn Backing,
    ) -> Result<(), SocError> {
        let line = self.line_index(set, way);
        let e = self.read_tag(line)?;
        if e.valid && e.dirty {
            let bytes = self
                .data
                .try_read_bytes(line * self.geometry.line_bytes, self.geometry.line_bytes)?;
            lower.write_line(self.geometry.line_addr(e.tag, set), &bytes)?;
            let mut cleaned = e;
            cleaned.dirty = false;
            self.write_tag(line, cleaned)?;
        }
        Ok(())
    }

    /// Allocates a way for `addr`'s set, evicting as needed; does not
    /// fill it. Returns the way.
    fn allocate_way(&mut self, set: usize, lower: &mut dyn Backing) -> Result<usize, SocError> {
        let way = self.pick_victim(set);
        self.writeback_if_dirty(set, way, lower)?;
        Ok(way)
    }

    /// Handles a miss: allocates a way, fills it from the lower level,
    /// returns the way.
    fn fill(
        &mut self,
        addr: u64,
        security: SecurityState,
        lower: &mut dyn Backing,
    ) -> Result<usize, SocError> {
        let (tag, set, _) = self.geometry.split(addr);
        let way = self.allocate_way(set, lower)?;
        let line = self.line_index(set, way);
        let mut buf = vec![0u8; self.geometry.line_bytes];
        lower.read_line(self.geometry.line_addr(tag, set), &mut buf)?;
        self.data.try_write_bytes(line * self.geometry.line_bytes, &buf)?;
        self.write_tag(
            line,
            TagEntry { valid: true, dirty: false, ns: security == SecurityState::NonSecure, tag },
        )?;
        Ok(way)
    }

    fn read_around(
        &self,
        addr: u64,
        buf: &mut [u8],
        lower: &mut dyn Backing,
    ) -> Result<(), SocError> {
        let line_bytes = self.geometry.line_bytes as u64;
        let base = addr & !(line_bytes - 1);
        let mut line = vec![0u8; self.geometry.line_bytes];
        lower.read_line(base, &mut line)?;
        let off = (addr - base) as usize;
        buf.copy_from_slice(&line[off..off + buf.len()]);
        Ok(())
    }

    fn write_around(
        &self,
        addr: u64,
        data: &[u8],
        lower: &mut dyn Backing,
    ) -> Result<(), SocError> {
        let line_bytes = self.geometry.line_bytes as u64;
        let base = addr & !(line_bytes - 1);
        let mut line = vec![0u8; self.geometry.line_bytes];
        lower.read_line(base, &mut line)?;
        let off = (addr - base) as usize;
        line[off..off + data.len()].copy_from_slice(data);
        lower.write_line(base, &line)?;
        Ok(())
    }

    fn check_span(&self, addr: u64, len: usize) {
        let line = self.geometry.line_bytes as u64;
        assert_eq!(
            addr / line,
            (addr + len as u64 - 1) / line,
            "access at {addr:#x} len {len} crosses a cache line"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A simple backing store recording traffic.
    #[derive(Default)]
    struct TestBacking {
        mem: HashMap<u64, Vec<u8>>,
        line_bytes: usize,
        reads: usize,
        writes: usize,
    }

    impl TestBacking {
        fn new(line_bytes: usize) -> Self {
            TestBacking { line_bytes, ..Default::default() }
        }

        fn peek(&self, line_addr: u64) -> Vec<u8> {
            self.mem.get(&line_addr).cloned().unwrap_or_else(|| vec![0; self.line_bytes])
        }
    }

    impl Backing for TestBacking {
        fn read_line(&mut self, line_addr: u64, buf: &mut [u8]) -> Result<(), SocError> {
            self.reads += 1;
            buf.copy_from_slice(&self.peek(line_addr));
            Ok(())
        }

        fn write_line(&mut self, line_addr: u64, buf: &[u8]) -> Result<(), SocError> {
            self.writes += 1;
            self.mem.insert(line_addr, buf.to_vec());
            Ok(())
        }
    }

    fn powered_cache() -> Cache {
        // 4 KB, 2-way, 64 B lines -> 32 sets.
        let mut c =
            Cache::new("t.l1d", CacheKind::Data, CacheGeometry::new(4096, 2, 64), 0.8, 1.0, 99);
        c.power_on().unwrap();
        c.invalidate_all().unwrap();
        c.set_enabled(true);
        c
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(32 * 1024, 2, 64);
        assert_eq!(g.sets(), 256);
        assert_eq!(g.lines(), 512);
        let (tag, set, off) = g.split(0x12345);
        assert_eq!(off, 0x12345 % 64);
        assert_eq!(set, (0x12345 / 64) % 256);
        assert_eq!(g.line_addr(tag, set), 0x12345 & !63);
    }

    #[test]
    fn read_miss_fills_then_hits() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        lower.write_line(0x1000, &[7u8; 64]).unwrap();
        lower.reads = 0;
        lower.writes = 0;

        let mut buf = [0u8; 8];
        c.read(0x1000, &mut buf, SecurityState::NonSecure, &mut lower).unwrap();
        assert_eq!(buf, [7u8; 8]);
        assert_eq!(lower.reads, 1);
        c.read(0x1008, &mut buf, SecurityState::NonSecure, &mut lower).unwrap();
        assert_eq!(lower.reads, 1, "second access must hit");
    }

    #[test]
    fn write_back_on_eviction() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        // 32 sets * 64 B = 2 KB stride per way: two addresses 2 KB apart
        // map to the same set.
        c.write(0x0000, &[0xAA; 8], SecurityState::NonSecure, &mut lower).unwrap();
        c.write(0x0800, &[0xBB; 8], SecurityState::NonSecure, &mut lower).unwrap();
        // Third distinct tag in set 0 evicts one of them.
        c.write(0x1000, &[0xCC; 8], SecurityState::NonSecure, &mut lower).unwrap();
        assert!(lower.writes >= 1, "dirty line must be written back");
        // The union of cache + backing store must still hold all values.
        let mut seen = Vec::new();
        for addr in [0x0000u64, 0x0800, 0x1000] {
            let mut buf = [0u8; 8];
            c.read(addr, &mut buf, SecurityState::NonSecure, &mut lower).unwrap();
            seen.push(buf[0]);
        }
        assert_eq!(seen, vec![0xAA, 0xBB, 0xCC]);
    }

    #[test]
    fn disabled_cache_bypasses() {
        let mut c = powered_cache();
        c.set_enabled(false);
        let mut lower = TestBacking::new(64);
        c.write(0x40, &[9u8; 8], SecurityState::NonSecure, &mut lower).unwrap();
        assert_eq!(lower.peek(0x40)[0..8], [9u8; 8]);
        let mut buf = [0u8; 8];
        c.read(0x40, &mut buf, SecurityState::NonSecure, &mut lower).unwrap();
        assert_eq!(buf, [9u8; 8]);
    }

    #[test]
    fn invalidate_keeps_data_ram() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        c.write(0x00, &[0x5A; 64], SecurityState::NonSecure, &mut lower).unwrap();
        let before = c.way_image(0).unwrap();
        c.invalidate_all().unwrap();
        let after = c.way_image(0).unwrap();
        assert_eq!(before, after, "invalidation must not touch the data RAM");
        // But the access path misses now.
        let mut buf = [0u8; 8];
        c.read(0x00, &mut buf, SecurityState::NonSecure, &mut lower).unwrap();
        assert_eq!(buf, [0u8; 8], "post-invalidate read refills from lower");
    }

    #[test]
    fn zva_zeroes_line_data() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        c.write(0x80, &[0xFF; 64], SecurityState::NonSecure, &mut lower).unwrap();
        c.zero_va(0x80, SecurityState::NonSecure, &mut lower).unwrap();
        let mut buf = [0u8; 8];
        c.read(0x80, &mut buf, SecurityState::NonSecure, &mut lower).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn locked_way_is_never_evicted() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        // Put a secret in set 0; find which way it landed in.
        c.write(0x0000, &[0x77; 8], SecurityState::Secure, &mut lower).unwrap();
        let way = (0..2).find(|&w| c.raw_way_bytes(w, 0, 1).unwrap()[0] == 0x77).unwrap();
        c.set_way_locked(way, true);
        // Hammer set 0 with conflicting lines.
        for i in 1..20u64 {
            c.write(i * 0x800, &[i as u8; 8], SecurityState::NonSecure, &mut lower).unwrap();
        }
        assert_eq!(c.raw_way_bytes(way, 0, 1).unwrap()[0], 0x77, "locked way clobbered");
    }

    #[test]
    fn all_ways_locked_blocks_noise_eviction() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        c.set_way_locked(0, true);
        c.set_way_locked(1, true);
        assert_eq!(c.evict_one(0, 0x0000, SecurityState::NonSecure, &mut lower).unwrap(), None);
    }

    #[test]
    fn power_cycle_without_hold_scrambles_cache() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        c.write(0x00, &[0xAA; 64], SecurityState::NonSecure, &mut lower).unwrap();
        c.power_off(OffEvent::unpowered()).unwrap();
        c.elapse(std::time::Duration::from_millis(500), Temperature::ROOM);
        let report = c.power_on().unwrap();
        assert_eq!(report.retained, 0);
        // The stored pattern is gone: no way still holds the 0xAA line.
        for way in 0..2 {
            let bytes = c.raw_way_bytes(way, 0, 64).unwrap();
            let aa = bytes.iter().filter(|&&b| b == 0xAA).count();
            assert!(aa < 16, "way {way} still holds {aa} pattern bytes");
        }
        assert!(!c.is_enabled(), "enable bit must clear on power-up");
    }

    #[test]
    fn power_cycle_with_hold_retains_cache() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        c.write(0x00, &[0xAA; 64], SecurityState::NonSecure, &mut lower).unwrap();
        let before = c.way_image(0).unwrap();
        c.power_off(OffEvent::held(0.8)).unwrap();
        c.elapse(std::time::Duration::from_secs(60), Temperature::ROOM);
        let report = c.power_on().unwrap();
        assert_eq!(report.lost, 0);
        assert_eq!(c.way_image(0).unwrap(), before);
    }

    #[test]
    fn raw_tag_reads_reflect_fills() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        c.write(0x1040, &[1u8; 8], SecurityState::Secure, &mut lower).unwrap();
        let (tag, set, _) = c.geometry().split(0x1040);
        let hit_way = (0..2)
            .find(|&w| {
                let e = TagEntry::unpack(c.raw_tag_word(w, set).unwrap());
                e.valid && e.tag == tag
            })
            .expect("line must be cached");
        assert!(c.line_is_secure(hit_way, set).unwrap());
    }

    #[test]
    fn hardware_reset_clears_everything() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        c.write(0x00, &[0xEE; 64], SecurityState::NonSecure, &mut lower).unwrap();
        c.hardware_reset().unwrap();
        assert_eq!(c.way_image(0).unwrap().count_ones(), 0);
        assert_eq!(c.way_image(1).unwrap().count_ones(), 0);
    }

    #[test]
    fn tag_entry_pack_roundtrip() {
        for e in [
            TagEntry { valid: true, dirty: false, ns: true, tag: 0x1234 },
            TagEntry { valid: false, dirty: true, ns: false, tag: 0x1FFF_FFFF_FFFF_FFFF },
            TagEntry::INVALID,
        ] {
            assert_eq!(TagEntry::unpack(e.pack()), e);
        }
    }

    #[test]
    #[should_panic(expected = "crosses a cache line")]
    fn line_crossing_access_panics() {
        let mut c = powered_cache();
        let mut lower = TestBacking::new(64);
        let mut buf = [0u8; 8];
        c.read(60, &mut buf, SecurityState::NonSecure, &mut lower).unwrap();
    }

    #[test]
    fn raw_reads_validate_range() {
        let c = powered_cache();
        assert!(matches!(c.raw_way_bytes(2, 0, 1), Err(SocError::RamIndexOutOfRange { .. })));
        assert!(matches!(c.raw_way_bytes(0, 2048, 1), Err(SocError::RamIndexOutOfRange { .. })));
        assert!(matches!(c.raw_tag_word(0, 32), Err(SocError::RamIndexOutOfRange { .. })));
    }

    #[test]
    fn out_of_range_errors_report_coordinates_verbatim() {
        let c = powered_cache();
        // Coordinates past u8/u32 must survive into the error untruncated.
        let big_way = (u8::MAX as usize) + 7;
        let big_set = (u32::MAX as usize) + 42;
        assert_eq!(
            c.raw_way_bytes(big_way, big_set, 1),
            Err(SocError::RamIndexOutOfRange { way: big_way as u64, index: big_set as u64 })
        );
        assert_eq!(
            c.raw_tag_word(big_way, big_set),
            Err(SocError::RamIndexOutOfRange { way: big_way as u64, index: big_set as u64 })
        );
        // `offset + len` overflowing usize must error, not wrap past the
        // bounds check and panic deep in the SRAM layer.
        assert_eq!(
            c.raw_way_bytes(0, usize::MAX, 2),
            Err(SocError::RamIndexOutOfRange { way: 0, index: usize::MAX as u64 })
        );
    }
}
