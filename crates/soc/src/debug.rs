//! Debug interfaces: the CP15 `RAMINDEX` path and JTAG.
//!
//! The paper's extraction step (§6.1, step 3) reads caches out through the
//! processor's internal-RAM debug interface — on Cortex-A72, the
//! `RAMINDEX` system operation, which exposes 15 different internal RAMs
//! (cache data/tag arrays, TLBs, BTBs) from EL3 — and reads the i.MX535's
//! iRAM directly over JTAG, because that device boots from internal ROM
//! with the debug port alive.

use crate::cache::Cache;
use crate::error::SocError;
use serde::{Deserialize, Serialize};

/// The internal RAMs this model exposes through `RAMINDEX`.
///
/// Ids follow the Cortex-A72 TRM groupings (L1-I around `0x00`, L1-D
/// around `0x08`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RamId {
    /// L1 instruction-cache tag RAM.
    L1ITag,
    /// L1 instruction-cache data RAM.
    L1IData,
    /// L1 data-cache tag RAM.
    L1DTag,
    /// L1 data-cache data RAM.
    L1DData,
    /// Main TLB entry RAM.
    Tlb,
    /// Branch target buffer entry RAM.
    Btb,
}

impl RamId {
    /// The raw id used in the packed `RAMINDEX` request.
    pub fn code(self) -> u8 {
        match self {
            RamId::L1ITag => 0x00,
            RamId::L1IData => 0x01,
            RamId::L1DTag => 0x08,
            RamId::L1DData => 0x09,
            RamId::Tlb => 0x18,
            RamId::Btb => 0x19,
        }
    }

    /// Decodes a raw id.
    ///
    /// # Errors
    ///
    /// [`SocError::UnknownRamId`] for ids this model does not implement.
    pub fn from_code(code: u8) -> Result<Self, SocError> {
        Ok(match code {
            0x00 => RamId::L1ITag,
            0x01 => RamId::L1IData,
            0x08 => RamId::L1DTag,
            0x09 => RamId::L1DData,
            0x18 => RamId::Tlb,
            0x19 => RamId::Btb,
            other => return Err(SocError::UnknownRamId { ramid: other }),
        })
    }
}

/// Number of bytes one `RAMINDEX` data-register read returns (four 64-bit
/// data output registers).
pub const RAMINDEX_BEAT_BYTES: usize = 32;

/// Executes one `RAMINDEX` data-RAM read against a cache.
///
/// For data RAMs, `index` selects a 32-byte beat within the way
/// (`set * line_bytes / 32 + beat`). For tag RAMs, `index` is the set
/// number and the packed tag word is returned in the first data register.
///
/// When `trustzone_enforced` is set and the requesting world is
/// non-secure, beats overlapping a line whose NS bit marks it secure are
/// refused — the §8 TrustZone countermeasure.
///
/// # Errors
///
/// [`SocError::RamIndexOutOfRange`] for bad way/index,
/// [`SocError::TrustZoneViolation`] on an NS violation, or SRAM failures.
pub fn ramindex_read(
    cache: &Cache,
    is_data_ram: bool,
    way: u8,
    index: u32,
    trustzone_enforced: bool,
    requester_secure: bool,
) -> Result<[u64; 4], SocError> {
    let geometry = cache.geometry();
    if is_data_ram {
        let beats_per_line = geometry.line_bytes / RAMINDEX_BEAT_BYTES;
        let total_beats = geometry.sets() * beats_per_line;
        if (way as usize) >= geometry.ways || (index as usize) >= total_beats {
            return Err(SocError::RamIndexOutOfRange { way: way.into(), index: index.into() });
        }
        let set = index as usize / beats_per_line;
        if trustzone_enforced && !requester_secure && cache.line_is_secure(way as usize, set)? {
            return Err(SocError::TrustZoneViolation);
        }
        let offset = index as usize * RAMINDEX_BEAT_BYTES;
        let bytes = cache.raw_way_bytes(way as usize, offset, RAMINDEX_BEAT_BYTES)?;
        let mut out = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            out[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        Ok(out)
    } else {
        let set = index as usize;
        if trustzone_enforced && !requester_secure {
            // Tag reads reveal secure line metadata; refuse wholesale.
            if cache.line_is_secure(way as usize, set)? {
                return Err(SocError::TrustZoneViolation);
            }
        }
        let word = cache.raw_tag_word(way as usize, set)?;
        Ok([word, 0, 0, 0])
    }
}

/// Reads one whole way of a data RAM beat-by-beat through
/// [`ramindex_read`], returning the way's bytes in beat order — the
/// readout unit the attack's voted multi-pass extraction re-reads
/// selectively. Byte-for-byte identical to issuing every beat
/// individually (it *is* every beat, issued in order).
///
/// # Errors
///
/// Same classes as [`ramindex_read`]; the first failing beat aborts the
/// read.
pub fn ramindex_read_way(
    cache: &Cache,
    way: u8,
    trustzone_enforced: bool,
    requester_secure: bool,
) -> Result<Vec<u8>, SocError> {
    let mut bytes = Vec::new();
    ramindex_read_way_into(cache, way, trustzone_enforced, requester_secure, &mut bytes)?;
    Ok(bytes)
}

/// [`ramindex_read_way`] appending into a caller-supplied buffer
/// instead of allocating one — the voted multi-pass extraction re-reads
/// the same ways thousands of times per campaign and recycles its dump
/// buffers through an arena, so the read itself must not allocate.
/// `out` is *not* cleared; the way's bytes are appended.
///
/// # Errors
///
/// Same classes as [`ramindex_read_way`]; on error `out` holds the
/// beats read before the failure.
pub fn ramindex_read_way_into(
    cache: &Cache,
    way: u8,
    trustzone_enforced: bool,
    requester_secure: bool,
    out: &mut Vec<u8>,
) -> Result<(), SocError> {
    let geometry = cache.geometry();
    let beats = geometry.sets() * geometry.line_bytes / RAMINDEX_BEAT_BYTES;
    out.reserve(geometry.sets() * geometry.line_bytes);
    for beat in 0..beats {
        let words =
            ramindex_read(cache, true, way, beat as u32, trustzone_enforced, requester_secure)?;
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    Ok(())
}

/// A JTAG debug port with direct physical-memory access.
///
/// Whether the port exists (and survives fusing) is a device property;
/// the i.MX535 exposes it, the Raspberry Pis do not by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Jtag {
    /// Whether the port is present and enabled.
    pub enabled: bool,
}

impl Jtag {
    /// Checks availability.
    ///
    /// # Errors
    ///
    /// [`SocError::NoJtag`] when the port is absent or fused off.
    pub fn require(&self) -> Result<(), SocError> {
        if self.enabled {
            Ok(())
        } else {
            Err(SocError::NoJtag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheGeometry, CacheKind, SecurityState};

    fn cache_with_line() -> Cache {
        let mut c = Cache::new("t", CacheKind::Data, CacheGeometry::new(4096, 2, 64), 0.8, 1.0, 1);
        c.power_on().unwrap();
        c.invalidate_all().unwrap();
        c
    }

    #[test]
    fn ramid_codes_roundtrip() {
        for id in [RamId::L1ITag, RamId::L1IData, RamId::L1DTag, RamId::L1DData] {
            assert_eq!(RamId::from_code(id.code()).unwrap(), id);
        }
        assert!(matches!(RamId::from_code(0x42), Err(SocError::UnknownRamId { ramid: 0x42 })));
    }

    #[test]
    fn data_ram_beats_walk_the_way() {
        let mut c = cache_with_line();
        // Load a recognizable line directly into set 0, way 1.
        let line: Vec<u8> = (0u8..64).collect();
        c.load_line_raw(0, 1, 0x3, true, &line).unwrap();
        let beat0 = ramindex_read(&c, true, 1, 0, false, false).unwrap();
        assert_eq!(beat0[0], u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]));
        let beat1 = ramindex_read(&c, true, 1, 1, false, false).unwrap();
        assert_eq!(beat1[0], u64::from_le_bytes([32, 33, 34, 35, 36, 37, 38, 39]));
    }

    #[test]
    fn way_read_equals_the_beat_loop() {
        let mut c = cache_with_line();
        let line: Vec<u8> = (0u8..64).collect();
        c.load_line_raw(5, 0, 0x9, true, &line).unwrap();
        let way = ramindex_read_way(&c, 0, false, false).unwrap();
        let geometry = c.geometry();
        assert_eq!(way.len(), geometry.sets() * geometry.line_bytes);
        let mut manual = Vec::new();
        for beat in 0..way.len() / RAMINDEX_BEAT_BYTES {
            for w in ramindex_read(&c, true, 0, beat as u32, false, false).unwrap() {
                manual.extend_from_slice(&w.to_le_bytes());
            }
        }
        assert_eq!(way, manual, "whole-way read must match per-beat reads exactly");
        assert_eq!(&way[5 * 64..5 * 64 + 64], &line[..], "the loaded line is where set 5 lives");
    }

    #[test]
    fn way_read_rejects_bad_way() {
        let c = cache_with_line();
        assert!(matches!(
            ramindex_read_way(&c, 9, false, false),
            Err(SocError::RamIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn tag_ram_read_returns_packed_word() {
        let mut c = cache_with_line();
        c.load_line_raw(3, 0, 0x77, true, &[0u8; 64]).unwrap();
        let out = ramindex_read(&c, false, 0, 3, false, false).unwrap();
        assert_ne!(out[0], 0);
        assert_eq!(out[0] & 0x1FFF_FFFF_FFFF_FFFF, 0x77);
    }

    #[test]
    fn out_of_range_rejected() {
        let c = cache_with_line();
        assert!(matches!(
            ramindex_read(&c, true, 5, 0, false, false),
            Err(SocError::RamIndexOutOfRange { .. })
        ));
        assert!(matches!(
            ramindex_read(&c, true, 0, 10_000, false, false),
            Err(SocError::RamIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn trustzone_blocks_nonsecure_reads_of_secure_lines() {
        let mut c = cache_with_line();
        c.set_enabled(true);
        // Fill a secure line through the access path.
        struct Zeros;
        impl crate::cache::Backing for Zeros {
            fn read_line(&mut self, _: u64, buf: &mut [u8]) -> Result<(), SocError> {
                buf.fill(0x11);
                Ok(())
            }
            fn write_line(&mut self, _: u64, _: &[u8]) -> Result<(), SocError> {
                Ok(())
            }
        }
        let mut buf = [0u8; 8];
        c.read(0x0, &mut buf, SecurityState::Secure, &mut Zeros).unwrap();
        let (_, set, _) = c.geometry().split(0x0);
        let way = (0..2).find(|&w| c.line_is_secure(w, set).unwrap()).expect("secure line");
        // Non-secure requester with enforcement: denied.
        assert!(matches!(
            ramindex_read(&c, true, way as u8, 0, true, false),
            Err(SocError::TrustZoneViolation)
        ));
        // Secure requester: allowed.
        assert!(ramindex_read(&c, true, way as u8, 0, true, true).is_ok());
        // Enforcement off (the paper's default devices): allowed.
        assert!(ramindex_read(&c, true, way as u8, 0, false, false).is_ok());
    }

    #[test]
    fn jtag_gate() {
        assert!(Jtag { enabled: true }.require().is_ok());
        assert_eq!(Jtag { enabled: false }.require(), Err(SocError::NoJtag));
    }
}
