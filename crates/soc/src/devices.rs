//! The device catalog: the paper's three evaluation platforms (Table 2)
//! with their probe points (Table 3).
//!
//! | Board          | SoC     | CPU           | Target memories       | Pad  | Rail (nominal)     |
//! |----------------|---------|---------------|-----------------------|------|--------------------|
//! | Raspberry Pi 4 | BCM2711 | 4× Cortex-A72 | L1D, L1I, registers   | TP15 | VDD_CORE (0.8 V)   |
//! | Raspberry Pi 3 | BCM2837 | 4× Cortex-A53 | L1D, L1I, registers   | PP58 | VDD_CORE (1.2 V)   |
//! | i.MX53 QSB     | i.MX535 | 1× Cortex-A8  | iRAM (128 KB)         | SH13 | VDDAL1 (1.3 V)     |

use crate::boot::{BootPolicy, BootRom, ClobberRegion};
use crate::cache::CacheGeometry;
use crate::debug::Jtag;
use crate::soc::{Soc, SocConfig};
use voltboot_pdn::{
    DomainKind, Load, Pmic, PowerDomain, PowerNetwork, ProbePoint, Rail, RegulatorKind,
};

/// Default DRAM size for all catalog boards (kept modest; experiments
/// address well under this).
pub const DRAM_BYTES: usize = 8 * 1024 * 1024;

/// A Raspberry Pi 4 Model B: BCM2711 with four Cortex-A72 cores.
///
/// VDD_CORE (0.8 V, exposed at test pad TP15) feeds the ARM cluster *and*
/// its L1 SRAMs — holding it requires riding through the core current
/// surge, hence the paper's >3 A bench supply. The VideoCore boots first
/// and clobbers the shared L2.
pub fn raspberry_pi_4(seed: u64) -> Soc {
    let pmic = Pmic::new("MxL7704")
        .with_rail(Rail::new("VDD_IO", 3.3, RegulatorKind::Ldo))
        .with_rail(Rail::new("VDD_MEM", 1.1, RegulatorKind::Buck))
        .with_rail(Rail::new("VDD_CORE", 0.8, RegulatorKind::Buck));
    let network = PowerNetwork::new(pmic)
        .with_domain(
            PowerDomain::new("core", DomainKind::Core, "VDD_CORE")
                .with_load(Load::compute_cluster("cortex-a72-cluster", 0.5, 2.5))
                .with_load(Load::sram("l1-srams", 0.008)),
        )
        .with_domain(
            PowerDomain::new("memory", DomainKind::Memory, "VDD_MEM")
                .with_load(Load::sram("l2-sram", 0.02)),
        )
        .with_domain(PowerDomain::new("io", DomainKind::Io, "VDD_IO"))
        .with_probe_point(ProbePoint::new("TP15", "VDD_CORE", "test pad near the PMIC"));

    Soc::from_config(SocConfig {
        soc_name: "BCM2711".into(),
        board_name: "Raspberry Pi 4".into(),
        cpu_name: "Cortex-A72".into(),
        cores: 4,
        // A72: 48 KB 3-way L1I, 32 KB 2-way L1D, 64 B lines.
        l1i: CacheGeometry::new(48 * 1024, 3, 64),
        l1d: CacheGeometry::new(32 * 1024, 2, 64),
        l2: CacheGeometry::new(1024 * 1024, 16, 64),
        dram_bytes: DRAM_BYTES,
        iram: None,
        core_rail: "VDD_CORE".into(),
        l2_rail: "VDD_MEM".into(),
        network,
        boot_rom: BootRom {
            clobbers_l2: true,
            iram_clobbers: vec![],
            boots_from_internal_rom: false,
            junk_seed: seed ^ 0xB007,
        },
        policy: BootPolicy::default(),
        jtag: Jtag { enabled: false },
        seed,
    })
}

/// A Raspberry Pi 3 Model B: BCM2837 with four Cortex-A53 cores.
///
/// Same topology as the Pi 4 at a 1.2 V core rail, exposed at pad PP58.
pub fn raspberry_pi_3(seed: u64) -> Soc {
    let pmic = Pmic::new("PAM2306-class")
        .with_rail(Rail::new("VDD_IO", 3.3, RegulatorKind::Ldo))
        .with_rail(Rail::new("VDD_MEM", 1.2, RegulatorKind::Buck))
        .with_rail(Rail::new("VDD_CORE", 1.2, RegulatorKind::Buck));
    let network = PowerNetwork::new(pmic)
        .with_domain(
            PowerDomain::new("core", DomainKind::Core, "VDD_CORE")
                .with_load(Load::compute_cluster("cortex-a53-cluster", 0.35, 1.8))
                .with_load(Load::sram("l1-srams", 0.006)),
        )
        .with_domain(
            PowerDomain::new("memory", DomainKind::Memory, "VDD_MEM")
                .with_load(Load::sram("l2-sram", 0.015)),
        )
        .with_domain(PowerDomain::new("io", DomainKind::Io, "VDD_IO"))
        .with_probe_point(ProbePoint::new("PP58", "VDD_CORE", "pad on the underside"));

    Soc::from_config(SocConfig {
        soc_name: "BCM2837".into(),
        board_name: "Raspberry Pi 3".into(),
        cpu_name: "Cortex-A53".into(),
        cores: 4,
        // A53: 32 KB 2-way L1I, 32 KB 4-way L1D.
        l1i: CacheGeometry::new(32 * 1024, 2, 64),
        l1d: CacheGeometry::new(32 * 1024, 4, 64),
        l2: CacheGeometry::new(512 * 1024, 16, 64),
        dram_bytes: DRAM_BYTES,
        iram: None,
        core_rail: "VDD_CORE".into(),
        l2_rail: "VDD_MEM".into(),
        network,
        boot_rom: BootRom {
            clobbers_l2: true,
            iram_clobbers: vec![],
            boots_from_internal_rom: false,
            junk_seed: seed ^ 0xB3,
        },
        policy: BootPolicy::default(),
        jtag: Jtag { enabled: false },
        seed,
    })
}

/// The start of the i.MX535 boot-ROM scratchpad window in iRAM (paper
/// §7.3: errors cluster from `0xF800083C`).
pub const IMX_IRAM_CLOBBER_START: usize = 0x83C;
/// The end of the scratchpad window (`0xF80018CC`).
pub const IMX_IRAM_CLOBBER_END: usize = 0x18CC;
/// The boot ROM also uses a small stack at the top of iRAM.
pub const IMX_IRAM_TAIL_CLOBBER: usize = 0x800;

/// An i.MX53 Quick Start Board: i.MX535 with one Cortex-A8 core and
/// 128 KB of iRAM at `0xF8000000`.
///
/// The iRAM sits in the L1 memory domain behind the `VDDAL1` pin (pad
/// SH13) — a different domain than the core's `VCCGP`, so holding it
/// draws only milliamps. The device boots from internal ROM (clobbering
/// part of the iRAM as scratchpad) and exposes JTAG.
pub fn imx53_qsb(seed: u64) -> Soc {
    let pmic = Pmic::new("LTC3589")
        .with_rail(Rail::new("VDD_IO", 3.15, RegulatorKind::Ldo))
        .with_rail(Rail::new("VCCGP", 1.1, RegulatorKind::Buck))
        .with_rail(Rail::new("VDDAL1", 1.3, RegulatorKind::Ldo));
    let network =
        PowerNetwork::new(pmic)
            .with_domain(
                PowerDomain::new("core", DomainKind::Core, "VCCGP")
                    .with_load(Load::compute_cluster("cortex-a8", 0.3, 1.2)),
            )
            .with_domain(
                PowerDomain::new("l1-memory", DomainKind::Memory, "VDDAL1")
                    .with_load(Load::sram("iram", 0.008))
                    .with_load(Load::sram("l1l2-srams", 0.01)),
            )
            .with_domain(PowerDomain::new("io", DomainKind::Io, "VDD_IO"))
            .with_probe_point(ProbePoint::new("SH13", "VDDAL1", "capacitor lead near the PMIC"));

    Soc::from_config(SocConfig {
        soc_name: "i.MX535".into(),
        board_name: "i.MX53 QSB".into(),
        cpu_name: "Cortex-A8".into(),
        cores: 1,
        l1i: CacheGeometry::new(32 * 1024, 4, 64),
        l1d: CacheGeometry::new(32 * 1024, 4, 64),
        l2: CacheGeometry::new(256 * 1024, 8, 64),
        dram_bytes: DRAM_BYTES,
        iram: Some((0xF800_0000, 128 * 1024, "VDDAL1".into())),
        // Note: on this device the caches hang off the memory domain too
        // (VDDAL1 feeds the L1 memory arrays), but the attack targets the
        // iRAM; we keep the caches on the core rail as the conservative
        // choice for the cache experiments.
        core_rail: "VCCGP".into(),
        l2_rail: "VDDAL1".into(),
        network,
        boot_rom: BootRom {
            clobbers_l2: false,
            iram_clobbers: vec![
                ClobberRegion::new(IMX_IRAM_CLOBBER_START, IMX_IRAM_CLOBBER_END),
                ClobberRegion::new(128 * 1024 - IMX_IRAM_TAIL_CLOBBER, 128 * 1024),
            ],
            boots_from_internal_rom: true,
            junk_seed: seed ^ 0x1333,
        },
        policy: BootPolicy::default(),
        jtag: Jtag { enabled: true },
        seed,
    })
}

/// Table 2/3 rows for reporting: `(board, soc, cpu, pad, rail, volts,
/// target memories)`.
pub fn catalog_rows(
) -> Vec<(&'static str, &'static str, &'static str, &'static str, &'static str, f64, &'static str)>
{
    vec![
        (
            "Raspberry Pi 4",
            "BCM2711",
            "4x Cortex-A72",
            "TP15",
            "VDD_CORE",
            0.8,
            "L1D, L1I, registers",
        ),
        (
            "Raspberry Pi 3",
            "BCM2837",
            "4x Cortex-A53",
            "PP58",
            "VDD_CORE",
            1.2,
            "L1D, L1I, registers",
        ),
        ("i.MX53 QSB", "i.MX535", "1x Cortex-A8", "SH13", "VDDAL1", 1.3, "iRAM"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi4_shape_matches_table_2() {
        let soc = raspberry_pi_4(1);
        assert_eq!(soc.core_count(), 4);
        assert_eq!(soc.core(0).unwrap().l1d.geometry().size_bytes, 32 * 1024);
        assert_eq!(soc.core(0).unwrap().l1d.geometry().ways, 2);
        assert_eq!(soc.core(0).unwrap().l1d.geometry().sets(), 256);
        assert!(soc.network().probe_points().iter().any(|p| p.pad == "TP15"));
        assert_eq!(soc.network().pmic().rail("VDD_CORE").unwrap().nominal_voltage, 0.8);
    }

    #[test]
    fn pi3_shape_matches_table_2() {
        let soc = raspberry_pi_3(1);
        assert_eq!(soc.core_count(), 4);
        assert_eq!(soc.core(0).unwrap().l1d.geometry().ways, 4);
        assert!(soc.network().probe_points().iter().any(|p| p.pad == "PP58"));
        assert_eq!(soc.network().pmic().rail("VDD_CORE").unwrap().nominal_voltage, 1.2);
    }

    #[test]
    fn imx_shape_matches_table_2() {
        let soc = imx53_qsb(1);
        assert_eq!(soc.core_count(), 1);
        let iram = soc.iram().expect("imx has iram");
        assert_eq!(iram.base(), 0xF800_0000);
        assert_eq!(iram.len(), 128 * 1024);
        assert!(soc.network().probe_points().iter().any(|p| p.pad == "SH13"));
        assert_eq!(soc.network().pmic().rail("VDDAL1").unwrap().nominal_voltage, 1.3);
        assert!(soc.boot_rom().boots_from_internal_rom);
    }

    #[test]
    fn clobber_window_is_about_five_percent() {
        let total: usize = (IMX_IRAM_CLOBBER_END - IMX_IRAM_CLOBBER_START) + IMX_IRAM_TAIL_CLOBBER;
        let frac = total as f64 / (128.0 * 1024.0);
        assert!(frac > 0.03 && frac < 0.06, "clobber fraction {frac}");
    }

    #[test]
    fn different_seeds_are_different_dies() {
        let mut a = raspberry_pi_4(1);
        let mut b = raspberry_pi_4(2);
        a.power_on_all();
        b.power_on_all();
        let ia = a.core(0).unwrap().l1d.way_image(0).unwrap();
        let ib = b.core(0).unwrap().l1d.way_image(0).unwrap();
        assert_ne!(ia, ib, "power-up fingerprints must differ between dies");
    }

    #[test]
    fn catalog_rows_cover_three_platforms() {
        assert_eq!(catalog_rows().len(), 3);
    }
}
