//! Off-chip DRAM.
//!
//! DRAM is where the extraction software dumps what it pulls out of the
//! SRAMs ("a set of general load/store instructions moves the data from
//! the general-purpose CPU registers to DRAM for further processing" —
//! §6.1). The optional scrambler models the DDR3/DDR4 session-key
//! scrambling the paper's related work discusses: it protects the DRAM
//! *module* against cold boot, and does nothing for on-chip SRAM.

use crate::cache::Backing;
use crate::error::SocError;
use serde::{Deserialize, Serialize};

/// Byte-addressable DRAM with an optional bus scrambler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dram {
    bytes: Vec<u8>,
    /// Session key of the scrambler; regenerated on every power cycle.
    scramble_key: Option<u64>,
}

impl Dram {
    /// Creates `size` bytes of unscrambled DRAM.
    pub fn new(size: usize) -> Self {
        Dram { bytes: vec![0; size], scramble_key: None }
    }

    /// Enables the DDR4-style scrambler with a session key.
    pub fn enable_scrambler(&mut self, session_key: u64) {
        self.scramble_key = Some(session_key);
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the DRAM is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check_range(&self, addr: u64, len: usize) -> Result<usize, SocError> {
        let a = usize::try_from(addr).map_err(|_| SocError::Unmapped { addr })?;
        match a.checked_add(len) {
            Some(end) if end <= self.bytes.len() => Ok(a),
            _ => Err(SocError::Unmapped { addr }),
        }
    }

    /// Logical (descrambled) read, as the memory controller presents it.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`] past the end.
    pub fn read(&self, addr: u64, len: usize) -> Result<Vec<u8>, SocError> {
        let a = self.check_range(addr, len)?;
        Ok(match self.scramble_key {
            None => self.bytes[a..a + len].to_vec(),
            Some(key) => {
                (0..len).map(|i| self.bytes[a + i] ^ Self::pad(key, addr + i as u64)).collect()
            }
        })
    }

    /// Logical write through the controller.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`] past the end.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), SocError> {
        let a = self.check_range(addr, data.len())?;
        match self.scramble_key {
            None => self.bytes[a..a + data.len()].copy_from_slice(data),
            Some(key) => {
                for (i, &b) in data.iter().enumerate() {
                    self.bytes[a + i] = b ^ Self::pad(key, addr + i as u64);
                }
            }
        }
        Ok(())
    }

    /// What a *physical* probe on the DRAM chip sees (the cold-boot view):
    /// raw cells, scrambled if the controller scrambles.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`] past the end.
    pub fn raw_cells(&self, addr: u64, len: usize) -> Result<&[u8], SocError> {
        let a = self.check_range(addr, len)?;
        Ok(&self.bytes[a..a + len])
    }

    /// Rotates the scrambler session key (happens at every boot).
    pub fn rotate_scramble_key(&mut self, new_key: u64) {
        if self.scramble_key.is_some() {
            self.scramble_key = Some(new_key);
        }
    }

    /// Writes one raw cell byte, bypassing the scrambler — the physics
    /// path used by the remanence model.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write_raw(&mut self, addr: u64, byte: u8) {
        self.bytes[addr as usize] = byte;
    }

    fn pad(key: u64, addr: u64) -> u8 {
        // A cheap keyed mix; real scramblers use LFSRs seeded per burst.
        let x = key ^ addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((x >> 32) ^ (x >> 11) ^ x) as u8
    }
}

impl Backing for Dram {
    fn read_line(&mut self, line_addr: u64, buf: &mut [u8]) -> Result<(), SocError> {
        let data = self.read(line_addr, buf.len())?;
        buf.copy_from_slice(&data);
        Ok(())
    }

    fn write_line(&mut self, line_addr: u64, buf: &[u8]) -> Result<(), SocError> {
        self.write(line_addr, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_roundtrip() {
        let mut d = Dram::new(1024);
        d.write(100, &[1, 2, 3]).unwrap();
        assert_eq!(d.read(100, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(d.raw_cells(100, 3).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn scrambler_hides_raw_cells_but_roundtrips_logically() {
        let mut d = Dram::new(1024);
        d.enable_scrambler(0xFEED_FACE);
        d.write(0, b"secret key bytes").unwrap();
        assert_eq!(d.read(0, 16).unwrap(), b"secret key bytes".to_vec());
        assert_ne!(d.raw_cells(0, 16).unwrap(), b"secret key bytes" as &[u8]);
    }

    #[test]
    fn key_rotation_breaks_old_images() {
        let mut d = Dram::new(64);
        d.enable_scrambler(1);
        d.write(0, &[0xAA; 16]).unwrap();
        d.rotate_scramble_key(2);
        assert_ne!(d.read(0, 16).unwrap(), vec![0xAA; 16]);
    }

    #[test]
    fn rotation_is_noop_without_scrambler() {
        let mut d = Dram::new(64);
        d.write(0, &[0xAA; 16]).unwrap();
        d.rotate_scramble_key(2);
        assert_eq!(d.read(0, 16).unwrap(), vec![0xAA; 16]);
    }

    #[test]
    fn out_of_range_is_unmapped() {
        let mut d = Dram::new(16);
        assert!(matches!(d.read(8, 16), Err(SocError::Unmapped { .. })));
        assert!(matches!(d.write(17, &[0]), Err(SocError::Unmapped { .. })));
        assert!(matches!(d.raw_cells(16, 1), Err(SocError::Unmapped { .. })));
    }
}
