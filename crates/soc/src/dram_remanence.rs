//! DRAM remanence: the physics that makes *classic* cold boot work.
//!
//! The paper's background (§2–3) contrasts on-chip SRAM with the DRAM
//! that Halderman et al. attacked: DRAM stores bits as capacitor charge,
//! decays over seconds (not microseconds), decays *toward a known ground
//! state* (so errors are directional and correctable), and its decay
//! slows dramatically when cooled. This module models that physics so the
//! repository can demonstrate the original attack succeeding on DRAM
//! while failing on SRAM — the asymmetry that motivates fully on-chip
//! crypto, which Volt Boot then breaks.
//!
//! Model: each charged cell loses its charge after an exponential
//! lifetime with temperature-dependent median (Arrhenius). Cells are
//! split into *true* cells (discharge to 0) and *anti* cells (discharge
//! to 1) in row-pair blocks, as on real modules. A freshly refreshed
//! cell always survives at least one refresh interval.

use crate::dram::Dram;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use voltboot_sram::{LeakageModel, Temperature};

/// Calibration of the DRAM decay law.
///
/// Defaults follow the cold-boot literature: at operating temperature
/// (≈25–45 °C) a module keeps most bits for a second or two and loses
/// half within ~10 s; cooled to −50 °C, decay stretches to minutes with
/// <1 % loss over a 60 s transplant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramRemanenceModel {
    /// Median charged-cell lifetime at the reference temperature, in
    /// seconds.
    pub median_lifetime_s: f64,
    /// Reference temperature for the median lifetime.
    pub reference: Temperature,
    /// Activation energy of the leakage path, in eV.
    pub activation_energy_ev: f64,
    /// Size of the alternating true-cell / anti-cell blocks, in bytes.
    pub cell_block_bytes: usize,
}

impl DramRemanenceModel {
    /// Literature-calibrated defaults (see type docs).
    pub fn calibrated() -> Self {
        DramRemanenceModel {
            median_lifetime_s: 10.0,
            reference: Temperature::ROOM,
            activation_energy_ev: 0.55,
            cell_block_bytes: 4096,
        }
    }

    /// Median charged-cell lifetime at temperature `t`.
    pub fn median_lifetime(&self, t: Temperature) -> Duration {
        let model = LeakageModel {
            t_ref_seconds: self.median_lifetime_s,
            reference: self.reference,
            activation_energy_ev: self.activation_energy_ev,
        };
        model.median_retention(t)
    }

    /// Probability that one charged cell has decayed after `dt` at `t`.
    pub fn decay_probability(&self, dt: Duration, t: Temperature) -> f64 {
        // Exponential lifetimes with the median pinned: rate = ln2/median.
        let median = self.median_lifetime(t).as_secs_f64();
        1.0 - (-dt.as_secs_f64() * std::f64::consts::LN_2 / median).exp()
    }

    /// Whether byte `offset` lies in an anti-cell block (bits discharge
    /// toward 1 instead of 0).
    pub fn is_anti_block(&self, offset: usize) -> bool {
        (offset / self.cell_block_bytes) % 2 == 1
    }
}

impl Default for DramRemanenceModel {
    fn default() -> Self {
        DramRemanenceModel::calibrated()
    }
}

/// Applies an unpowered interval to a DRAM image in place, returning the
/// number of bits that decayed. Deterministic per `(seed, event)`.
pub fn apply_decay(
    dram: &mut Dram,
    model: &DramRemanenceModel,
    dt: Duration,
    temperature: Temperature,
    seed: u64,
    event: u64,
) -> usize {
    let p = model.decay_probability(dt, temperature);
    if p <= 0.0 {
        return 0;
    }
    let len = dram.len();
    let mut flipped = 0usize;
    for offset in 0..len {
        let anti = model.is_anti_block(offset);
        let byte = dram.raw_cells(offset as u64, 1).expect("in range")[0];
        let mut out = byte;
        for bit in 0..8u8 {
            let charged = if anti { byte & (1 << bit) == 0 } else { byte & (1 << bit) != 0 };
            if !charged {
                continue;
            }
            // Deterministic per-cell draw.
            let h = mix(
                seed ^ event.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                (offset * 8 + bit as usize) as u64,
            );
            let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < p {
                if anti {
                    out |= 1 << bit;
                } else {
                    out &= !(1 << bit);
                }
                flipped += 1;
            }
        }
        if out != byte {
            dram.write_raw(offset as u64, out);
        }
    }
    flipped
}

#[inline]
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetimes_scale_with_temperature() {
        let m = DramRemanenceModel::calibrated();
        let warm = m.median_lifetime(Temperature::ROOM);
        let cold = m.median_lifetime(Temperature::from_celsius(-50.0));
        assert!((warm.as_secs_f64() - 10.0).abs() < 1e-9);
        assert!(cold > Duration::from_secs(600), "cooled DRAM lasts minutes: {cold:?}");
    }

    #[test]
    fn decay_probability_limits() {
        let m = DramRemanenceModel::calibrated();
        assert!(m.decay_probability(Duration::ZERO, Temperature::ROOM) < 1e-12);
        let long = m.decay_probability(Duration::from_secs(3600), Temperature::ROOM);
        assert!(long > 0.999);
        // Half the cells at exactly one median lifetime.
        let half = m.decay_probability(Duration::from_secs(10), Temperature::ROOM);
        assert!((half - 0.5).abs() < 1e-9, "{half}");
    }

    #[test]
    fn true_cells_decay_to_zero_and_anti_cells_to_one() {
        let m = DramRemanenceModel::calibrated();
        let mut dram = Dram::new(2 * m.cell_block_bytes);
        // 0xFF in a true block: should decay toward 0x00.
        dram.write(0, &[0xFF; 64]).unwrap();
        // 0x00 in an anti block: should decay toward 0xFF.
        dram.write(m.cell_block_bytes as u64, &[0x00; 64]).unwrap();
        apply_decay(&mut dram, &m, Duration::from_secs(3600), Temperature::ROOM, 1, 0);
        assert_eq!(dram.raw_cells(0, 64).unwrap(), &[0u8; 64][..]);
        assert_eq!(dram.raw_cells(m.cell_block_bytes as u64, 64).unwrap(), &[0xFFu8; 64][..]);
    }

    #[test]
    fn cooling_preserves_a_transplant() {
        let m = DramRemanenceModel::calibrated();
        let mut dram = Dram::new(8192);
        dram.write(0, &[0xA5; 4096]).unwrap();
        let flipped = apply_decay(
            &mut dram,
            &m,
            Duration::from_secs(60),
            Temperature::from_celsius(-50.0),
            2,
            0,
        );
        let total_charged = 4096 * 4; // half the bits of 0xA5 per block... roughly
        assert!(
            (flipped as f64) < 0.02 * total_charged as f64,
            "cooled 60 s transplant must lose <2%: {flipped} flips"
        );
    }

    #[test]
    fn warm_transplant_is_destroyed() {
        let m = DramRemanenceModel::calibrated();
        let mut dram = Dram::new(4096);
        dram.write(0, &[0xFF; 4096]).unwrap();
        apply_decay(&mut dram, &m, Duration::from_secs(120), Temperature::from_celsius(45.0), 3, 0);
        let survivors =
            dram.raw_cells(0, 4096).unwrap().iter().map(|b| b.count_ones()).sum::<u32>();
        assert!(
            survivors < 400,
            "warm decay should erase nearly everything: {survivors} bits left"
        );
    }

    #[test]
    fn decay_is_deterministic_per_seed_and_event() {
        let m = DramRemanenceModel::calibrated();
        let run = |seed, event| {
            let mut d = Dram::new(1024);
            d.write(0, &[0x5A; 1024]).unwrap();
            apply_decay(&mut d, &m, Duration::from_secs(10), Temperature::ROOM, seed, event);
            d.raw_cells(0, 1024).unwrap().to_vec()
        };
        assert_eq!(run(7, 0), run(7, 0));
        assert_ne!(run(7, 0), run(7, 1));
        assert_ne!(run(7, 0), run(8, 0));
    }
}
