//! Error type for SoC operations.

use std::error::Error;
use std::fmt;
use voltboot_sram::SramError;

/// Error returned by fallible [`Soc`](crate::Soc) operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SocError {
    /// An underlying SRAM array rejected an operation.
    Sram(SramError),
    /// A power-network operation failed.
    Pdn(voltboot_pdn::PdnError),
    /// No core with that index exists.
    NoSuchCore {
        /// Requested core index.
        core: usize,
    },
    /// The device has no iRAM but an iRAM operation was requested.
    NoIram,
    /// The device has no JTAG port (or it is fused off).
    NoJtag,
    /// An access fell outside every mapped memory region.
    Unmapped {
        /// The faulting physical address.
        addr: u64,
    },
    /// The requested internal RAM id is not implemented by this device.
    UnknownRamId {
        /// The raw RAMINDEX id.
        ramid: u8,
    },
    /// A RAMINDEX way/index pair fell outside the target RAM.
    ///
    /// The fields are wide enough to report the requested coordinates
    /// verbatim: earlier revisions narrowed them to `u8`/`u32`, which
    /// silently truncated large out-of-range requests in the error itself.
    RamIndexOutOfRange {
        /// The requested way.
        way: u64,
        /// The requested index.
        index: u64,
    },
    /// TrustZone enforcement denied access to a secure line from a
    /// non-secure state.
    TrustZoneViolation,
    /// The boot ROM refused to boot the supplied image (authenticated
    /// boot enforced and the image signature did not verify).
    BootRejected {
        /// Why the ROM refused.
        reason: String,
    },
    /// The SoC (or a required domain) is not powered.
    NotPowered,
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Sram(e) => write!(f, "sram: {e}"),
            SocError::Pdn(e) => write!(f, "pdn: {e}"),
            SocError::NoSuchCore { core } => write!(f, "no core {core} on this device"),
            SocError::NoIram => write!(f, "device has no iram"),
            SocError::NoJtag => write!(f, "device has no jtag port"),
            SocError::Unmapped { addr } => write!(f, "unmapped physical address {addr:#x}"),
            SocError::UnknownRamId { ramid } => write!(f, "unknown ramindex id {ramid:#04x}"),
            SocError::RamIndexOutOfRange { way, index } => {
                write!(f, "ramindex way {way} index {index} out of range")
            }
            SocError::TrustZoneViolation => write!(f, "trustzone denied non-secure access"),
            SocError::BootRejected { reason } => write!(f, "boot rejected: {reason}"),
            SocError::NotPowered => write!(f, "target is not powered"),
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Sram(e) => Some(e),
            SocError::Pdn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SramError> for SocError {
    fn from(e: SramError) -> Self {
        SocError::Sram(e)
    }
}

impl From<voltboot_pdn::PdnError> for SocError {
    fn from(e: voltboot_pdn::PdnError) -> Self {
        SocError::Pdn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = SocError::Sram(SramError::NotPowered);
        assert!(e.to_string().contains("sram"));
        assert!(e.source().is_some());
        assert!(SocError::NoIram.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SocError>();
    }
}
