//! On-chip iRAM (OCRAM).
//!
//! iRAMs are on-chip SRAM scratchpads the SoC uses for boot firmware and
//! multimedia streaming (paper §7.3). The i.MX535's 128 KB iRAM lives in
//! the L1 memory power domain behind the `VDDAL1` pin — a *different*
//! domain than the Cortex-A8 core, which makes it the easiest Volt Boot
//! target: the hold current is milliamps and there is no core surge.

use crate::error::SocError;
use serde::{Deserialize, Serialize};
use voltboot_sram::{ArrayConfig, OffEvent, PackedBits, ResolutionMode, SramArray, Temperature};
use voltboot_telemetry::Recorder;

/// A memory-mapped on-chip SRAM region.
///
/// ```rust
/// use voltboot_soc::Iram;
///
/// let mut iram = Iram::new(0xF800_0000, 4096, 1.3, 42);
/// iram.power_on()?;
/// iram.write(0xF800_0100, b"frame data")?;
/// assert_eq!(iram.read(0xF800_0100, 10)?, b"frame data");
/// # Ok::<(), voltboot_soc::SocError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Iram {
    base: u64,
    sram: SramArray,
}

impl Iram {
    /// Creates an iRAM of `size` bytes mapped at `base`, powered by a
    /// rail at `rail_voltage`.
    pub fn new(base: u64, size: usize, rail_voltage: f64, seed: u64) -> Self {
        let cfg = ArrayConfig::with_bytes("iram", size).nominal_voltage(rail_voltage);
        Iram { base, sram: SramArray::new(cfg, seed) }
    }

    /// Base physical address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.sram.len_bytes()
    }

    /// Whether the iRAM is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len() as u64
    }

    /// Reads `len` bytes at physical address `addr`.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`] outside the region, [`SocError::Sram`] when
    /// unpowered.
    pub fn read(&self, addr: u64, len: usize) -> Result<Vec<u8>, SocError> {
        let off = self.offset(addr, len)?;
        Ok(self.sram.try_read_bytes(off, len)?)
    }

    /// Writes `data` at physical address `addr`.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`] outside the region, [`SocError::Sram`] when
    /// unpowered.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), SocError> {
        let off = self.offset(addr, data.len())?;
        Ok(self.sram.try_write_bytes(off, data)?)
    }

    /// Full contents as a bit image (the Figure 9/10 dump).
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn image(&self) -> Result<PackedBits, SocError> {
        Ok(self.sram.snapshot()?)
    }

    /// Powers the SRAM on.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on(&mut self) -> Result<voltboot_sram::RetentionReport, SocError> {
        self.power_on_traced(&Recorder::disabled())
    }

    /// [`Iram::power_on`] that additionally records SRAM resolution
    /// counters into `rec`.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on_traced(
        &mut self,
        rec: &Recorder,
    ) -> Result<voltboot_sram::RetentionReport, SocError> {
        Ok(self.sram.power_on_traced(ResolutionMode::Batched, rec)?)
    }

    /// Cuts power.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_off(&mut self, event: OffEvent) -> Result<(), SocError> {
        Ok(self.sram.power_off(event)?)
    }

    /// Advances unpowered time.
    pub fn elapse(&mut self, dt: std::time::Duration, temperature: Temperature) {
        self.sram.elapse(dt, temperature);
    }

    /// Whether the SRAM is powered.
    pub fn is_powered(&self) -> bool {
        self.sram.is_powered()
    }

    /// Zero-fills the whole region (MBIST-style reset countermeasure).
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn hardware_reset(&mut self) -> Result<(), SocError> {
        Ok(self.sram.fill(0)?)
    }

    fn offset(&self, addr: u64, len: usize) -> Result<usize, SocError> {
        if !self.contains(addr) || addr + len as u64 > self.base + self.len() as u64 {
            return Err(SocError::Unmapped { addr });
        }
        Ok((addr - self.base) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn powered_iram() -> Iram {
        let mut i = Iram::new(0xF800_0000, 128 * 1024, 1.3, 5);
        i.power_on().unwrap();
        i
    }

    #[test]
    fn mapped_read_write() {
        let mut i = powered_iram();
        i.write(0xF800_0010, &[1, 2, 3]).unwrap();
        assert_eq!(i.read(0xF800_0010, 3).unwrap(), vec![1, 2, 3]);
        assert!(i.contains(0xF800_0000));
        assert!(i.contains(0xF801_FFFF));
        assert!(!i.contains(0xF802_0000));
    }

    #[test]
    fn out_of_region_is_unmapped() {
        let mut i = powered_iram();
        assert!(matches!(i.read(0x0, 1), Err(SocError::Unmapped { .. })));
        assert!(matches!(i.write(0xF801_FFFF, &[0, 0]), Err(SocError::Unmapped { .. })));
    }

    #[test]
    fn held_rail_retains_across_cycle() {
        let mut i = powered_iram();
        i.write(0xF800_0000, b"bitmap data here").unwrap();
        i.power_off(OffEvent::held(1.3)).unwrap();
        i.elapse(Duration::from_secs(30), Temperature::ROOM);
        i.power_on().unwrap();
        assert_eq!(i.read(0xF800_0000, 16).unwrap(), b"bitmap data here".to_vec());
    }

    #[test]
    fn unheld_cycle_loses_data() {
        let mut i = powered_iram();
        i.write(0xF800_0000, &[0xAA; 64]).unwrap();
        i.power_off(OffEvent::unpowered()).unwrap();
        i.elapse(Duration::from_millis(500), Temperature::ROOM);
        let report = i.power_on().unwrap();
        assert_eq!(report.retained, 0);
    }

    #[test]
    fn hardware_reset_zeroes() {
        let mut i = powered_iram();
        i.write(0xF800_0000, &[0xFF; 128]).unwrap();
        i.hardware_reset().unwrap();
        assert_eq!(i.image().unwrap().count_ones(), 0);
    }
}
