//! Simulated ARM SoCs for the Volt Boot reproduction.
//!
//! This crate assembles the paper's three evaluation platforms out of the
//! lower-level substrates:
//!
//! * SRAM-backed **L1/L2 caches** ([`cache`]) whose tag *and* data arrays
//!   are [`voltboot_sram::SramArray`]s, so cache contents participate in
//!   power events exactly like physical cells;
//! * SRAM-backed **iRAM** ([`iram`]) and **NEON register files**
//!   ([`regfile`]);
//! * **boot ROMs** ([`boot`]) with per-device clobber maps (the BCM
//!   VideoCore wipes L2, the i.MX535 ROM scribbles over part of iRAM);
//! * **debug interfaces** ([`debug`]): the CP15 `RAMINDEX` path into the
//!   caches and a JTAG port into physical memory;
//! * a **power model** tying every SRAM array to the power domain / rail
//!   that feeds it, driven by [`voltboot_pdn`].
//!
//! The central type is [`Soc`]: build one from the [`devices`] catalog
//! ([`devices::raspberry_pi_4`], [`devices::raspberry_pi_3`],
//! [`devices::imx53_qsb`]), run [`voltboot_armlite`] programs on its
//! cores, cut the power with or without a probe attached, and read out
//! whatever the SRAM kept.
//!
//! # Example
//!
//! ```rust
//! use voltboot_soc::devices;
//! use voltboot_armlite::program::builders::nop_sled;
//!
//! let mut soc = devices::raspberry_pi_4(0xD1E5EED);
//! soc.power_on_all();
//! soc.enable_caches(0);
//! let exit = soc.run_program(0, &nop_sled(64), 0x8_0000, 10_000);
//! assert!(matches!(exit, voltboot_armlite::RunExit::Halted(0)));
//! // The NOP sled now sits in core 0's i-cache data RAM.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot;
pub mod btb;
pub mod cache;
pub mod debug;
pub mod devices;
pub mod dram;
pub mod dram_remanence;
pub mod error;
pub mod iram;
pub mod regfile;
pub mod soc;
pub mod tlb;

pub use boot::{BootOutcome, BootPolicy, BootSource, ClobberRegion};
pub use cache::{Cache, CacheGeometry, CacheKind};
pub use debug::{Jtag, RamId};
pub use dram::Dram;
pub use error::SocError;
pub use iram::Iram;
pub use regfile::VectorRegFile;
pub use soc::{Core, CycleFaults, PowerCycleSpec, Soc, SocConfig, MISORDER_INRUSH_DIP_V};
