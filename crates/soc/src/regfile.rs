//! SRAM-backed NEON (SIMD/FP) register files.
//!
//! The paper's §7.2 shows that the 128-bit vector registers `v0..v31` —
//! attractive key-schedule storage for TRESOR-style on-chip crypto — sit
//! in the core power domain and fully retain their state under Volt Boot.
//! This module gives each core a physical register file: 32 × 128 bits of
//! SRAM that participates in power events. The `Soc` synchronizes the
//! interpreter's architectural registers with this storage at power
//! boundaries.

use crate::error::SocError;
use serde::{Deserialize, Serialize};
use voltboot_sram::{ArrayConfig, OffEvent, PackedBits, ResolutionMode, SramArray, Temperature};
use voltboot_telemetry::Recorder;

/// The physical storage of one core's `v0..v31` register file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorRegFile {
    sram: SramArray,
}

impl VectorRegFile {
    /// Creates the file for a core on a rail at `rail_voltage`.
    pub fn new(core: usize, rail_voltage: f64, shared_domain_drain: f64, seed: u64) -> Self {
        let cfg = ArrayConfig::with_bytes(format!("core{core}.vregs"), 32 * 16)
            .nominal_voltage(rail_voltage)
            .shared_domain_drain(shared_domain_drain);
        VectorRegFile { sram: SramArray::new(cfg, seed) }
    }

    /// Stores the architectural register values into the SRAM.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn store(&mut self, file: &[[u64; 2]; 32]) -> Result<(), SocError> {
        for (n, pair) in file.iter().enumerate() {
            let mut bytes = [0u8; 16];
            bytes[..8].copy_from_slice(&pair[0].to_le_bytes());
            bytes[8..].copy_from_slice(&pair[1].to_le_bytes());
            self.sram.try_write_bytes(n * 16, &bytes)?;
        }
        Ok(())
    }

    /// Loads the register values out of the SRAM.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn load(&self) -> Result<[[u64; 2]; 32], SocError> {
        let mut out = [[0u64; 2]; 32];
        for (n, pair) in out.iter_mut().enumerate() {
            let bytes = self.sram.try_read_bytes(n * 16, 16)?;
            pair[0] = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            pair[1] = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes"));
        }
        Ok(out)
    }

    /// Raw bit image of the whole file.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn image(&self) -> Result<PackedBits, SocError> {
        Ok(self.sram.snapshot()?)
    }

    /// Powers the SRAM on.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on(&mut self) -> Result<voltboot_sram::RetentionReport, SocError> {
        self.power_on_traced(&Recorder::disabled())
    }

    /// [`VectorRegFile::power_on`] that additionally records SRAM
    /// resolution counters into `rec`.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on_traced(
        &mut self,
        rec: &Recorder,
    ) -> Result<voltboot_sram::RetentionReport, SocError> {
        Ok(self.sram.power_on_traced(ResolutionMode::Batched, rec)?)
    }

    /// Cuts power.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_off(&mut self, event: OffEvent) -> Result<(), SocError> {
        Ok(self.sram.power_off(event)?)
    }

    /// Advances unpowered time.
    pub fn elapse(&mut self, dt: std::time::Duration, temperature: Temperature) {
        self.sram.elapse(dt, temperature);
    }

    /// Whether the SRAM is powered.
    pub fn is_powered(&self) -> bool {
        self.sram.is_powered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn file_with_patterns() -> (VectorRegFile, [[u64; 2]; 32]) {
        let mut f = VectorRegFile::new(0, 0.8, 4.0, 77);
        f.power_on().unwrap();
        let mut regs = [[0u64; 2]; 32];
        for (n, r) in regs.iter_mut().enumerate() {
            let v = if n % 2 == 0 { 0xFFFF_FFFF_FFFF_FFFF } else { 0xAAAA_AAAA_AAAA_AAAA };
            *r = [v, v ^ n as u64];
        }
        f.store(&regs).unwrap();
        (f, regs)
    }

    #[test]
    fn store_load_roundtrip() {
        let (f, regs) = file_with_patterns();
        assert_eq!(f.load().unwrap(), regs);
    }

    #[test]
    fn held_rail_keeps_registers() {
        let (mut f, regs) = file_with_patterns();
        f.power_off(OffEvent::held(0.8)).unwrap();
        f.elapse(Duration::from_secs(10), Temperature::ROOM);
        f.power_on().unwrap();
        assert_eq!(f.load().unwrap(), regs, "vector registers must survive a held cycle");
    }

    #[test]
    fn unheld_cycle_randomizes_registers() {
        let (mut f, regs) = file_with_patterns();
        f.power_off(OffEvent::unpowered()).unwrap();
        f.elapse(Duration::from_millis(200), Temperature::ROOM);
        f.power_on().unwrap();
        assert_ne!(f.load().unwrap(), regs);
    }
}
