//! The assembled SoC: cores, caches, memories, power network, boot flow.

use crate::boot::{BootOutcome, BootPolicy, BootRom, BootSource};
use crate::cache::{Backing, Cache, SecurityState};
use crate::debug::{ramindex_read, Jtag, RamId};
use crate::dram::Dram;
use crate::error::SocError;
use crate::iram::Iram;
use crate::regfile::VectorRegFile;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use voltboot_armlite::{Bus, BusFault, Cpu, Program, RamIndexRequest, RunExit};
use voltboot_pdn::{DisconnectOutcome, PowerNetwork, Probe, RailOutcome, ReconnectOrder};
use voltboot_sram::{par, OffEvent, RetentionReport, Temperature};
use voltboot_telemetry::Recorder;

/// One CPU core: an interpreter plus its private L1 caches and physical
/// NEON register file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Core {
    /// The architectural core.
    pub cpu: Cpu,
    /// Private L1 instruction cache.
    pub l1i: Cache,
    /// Private L1 data cache.
    pub l1d: Cache,
    /// Physical (SRAM) storage of `v0..v31`.
    pub vregs: VectorRegFile,
    /// The core's translation cache (also SRAM, also extractable).
    pub tlb: crate::tlb::Tlb,
    /// The core's branch target buffer (also SRAM, also extractable).
    pub btb: crate::btb::Btb,
    /// TrustZone world the core currently executes in.
    pub security: SecurityState,
}

/// Static description used to assemble a [`Soc`].
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// SoC part name, e.g. `"BCM2711"`.
    pub soc_name: String,
    /// Board name, e.g. `"Raspberry Pi 4"`.
    pub board_name: String,
    /// CPU microarchitecture name, e.g. `"Cortex-A72"`.
    pub cpu_name: String,
    /// Number of cores.
    pub cores: usize,
    /// L1 instruction-cache geometry.
    pub l1i: crate::cache::CacheGeometry,
    /// L1 data-cache geometry.
    pub l1d: crate::cache::CacheGeometry,
    /// Shared L2 geometry.
    pub l2: crate::cache::CacheGeometry,
    /// DRAM size in bytes.
    pub dram_bytes: usize,
    /// Optional iRAM: `(base, size, rail name)`.
    pub iram: Option<(u64, usize, String)>,
    /// Rail feeding the cores and their L1 SRAM.
    pub core_rail: String,
    /// Rail feeding the L2 SRAM.
    pub l2_rail: String,
    /// The board's power network.
    pub network: PowerNetwork,
    /// Boot ROM behaviour.
    pub boot_rom: BootRom,
    /// Boot/countermeasure policy.
    pub policy: BootPolicy,
    /// JTAG port.
    pub jtag: Jtag,
    /// Seed for all SRAM process variation ("which physical die").
    pub seed: u64,
}

/// Parameters of one abrupt power cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCycleSpec {
    /// How long the board stays without main power.
    pub off_duration: Duration,
    /// Ambient temperature during the cycle.
    pub temperature: Temperature,
}

impl PowerCycleSpec {
    /// A quick room-temperature cycle (a realistic manual re-plug takes
    /// hundreds of milliseconds; this is a generously fast one).
    pub fn quick() -> Self {
        PowerCycleSpec { off_duration: Duration::from_millis(500), temperature: Temperature::ROOM }
    }

    /// A cold-boot attempt: a few milliseconds at the given temperature.
    pub fn cold_boot(celsius: f64, off_ms: u64) -> Self {
        PowerCycleSpec {
            off_duration: Duration::from_millis(off_ms),
            temperature: Temperature::from_celsius(celsius),
        }
    }
}

/// Rail-level faults injected into one power cycle (the glitch surface a
/// real bench attack fights with: flaky contacts, marginal supplies, and
/// PMIC sequencing races). The default is no fault of any kind, and the
/// fault-free path through [`Soc::power_cycle_with`] is bit-identical to
/// [`Soc::power_cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CycleFaults {
    /// A momentary brown-out while main power is off: every *held* rail's
    /// transient minimum is pulled down to this voltage (if lower than
    /// what the disconnect surge alone produced). A brown-out below the
    /// cells' DRV costs retention exactly like an undersized probe.
    pub brownout_min_voltage: Option<f64>,
    /// The PMIC restores rails in the wrong order at reconnect. Held
    /// rails see a small extra inrush dip
    /// ([`MISORDER_INRUSH_DIP_V`]) from the misordered load switch-on.
    pub reconnect_misorder: bool,
}

/// Extra transient dip (volts) a held rail suffers when the PMIC
/// re-sequences rails in the wrong order at reconnect.
pub const MISORDER_INRUSH_DIP_V: f64 = 0.05;

impl CycleFaults {
    /// No faults: the nominal cycle.
    pub fn none() -> Self {
        CycleFaults::default()
    }

    /// Whether any fault is armed.
    pub fn any(&self) -> bool {
        *self != CycleFaults::default()
    }
}

/// Everything a power cycle reported: the electrical outcome per rail and
/// the retention report of every SRAM array.
#[derive(Debug, Clone)]
pub struct PowerCycleReport {
    /// Electrical outcome of the disconnect.
    pub outcome: DisconnectOutcome,
    /// Retention reports keyed by array name.
    pub retention: Vec<RetentionReport>,
}

impl PowerCycleReport {
    /// Looks up one array's retention by name substring.
    pub fn retention_of(&self, name_fragment: &str) -> Option<&RetentionReport> {
        self.retention.iter().find(|r| r.name.contains(name_fragment))
    }
}

/// A simulated system-on-chip on its board.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Soc {
    soc_name: String,
    board_name: String,
    cpu_name: String,
    cores: Vec<Core>,
    l2: Cache,
    dram: Dram,
    iram: Option<Iram>,
    network: PowerNetwork,
    boot_rom: BootRom,
    policy: BootPolicy,
    jtag: Jtag,
    core_rail: String,
    l2_rail: String,
    iram_rail: Option<String>,
    ever_powered: bool,
    dram_remanence: crate::dram_remanence::DramRemanenceModel,
    dram_seed: u64,
    dram_decay_events: u64,
}

impl Soc {
    /// Assembles a board from its description.
    ///
    /// # Panics
    ///
    /// Panics if the config references rails absent from the network
    /// (a catalog bug, not a runtime condition).
    pub fn from_config(config: SocConfig) -> Self {
        let core_rail_voltage = config
            .network
            .pmic()
            .rail(&config.core_rail)
            .unwrap_or_else(|| panic!("unknown core rail {}", config.core_rail))
            .nominal_voltage;
        let l2_rail_voltage = config
            .network
            .pmic()
            .rail(&config.l2_rail)
            .unwrap_or_else(|| panic!("unknown l2 rail {}", config.l2_rail))
            .nominal_voltage;

        // Cores and their L1s sit on the same domain as power-hungry
        // compute logic: an abrupt unheld disconnect drains them faster.
        const CORE_DOMAIN_DRAIN: f64 = 4.0;

        let cores = (0..config.cores)
            .map(|i| Core {
                cpu: Cpu::new(0),
                l1i: Cache::new(
                    format!("core{i}.l1i"),
                    crate::cache::CacheKind::Instruction,
                    config.l1i,
                    core_rail_voltage,
                    CORE_DOMAIN_DRAIN,
                    config.seed ^ (0x1111 * (i as u64 + 1)),
                ),
                l1d: Cache::new(
                    format!("core{i}.l1d"),
                    crate::cache::CacheKind::Data,
                    config.l1d,
                    core_rail_voltage,
                    CORE_DOMAIN_DRAIN,
                    config.seed ^ (0x2222 * (i as u64 + 1)),
                ),
                vregs: VectorRegFile::new(
                    i,
                    core_rail_voltage,
                    CORE_DOMAIN_DRAIN,
                    config.seed ^ (0x3333 * (i as u64 + 1)),
                ),
                tlb: crate::tlb::Tlb::new(
                    i,
                    core_rail_voltage,
                    CORE_DOMAIN_DRAIN,
                    config.seed ^ (0x6666 * (i as u64 + 1)),
                ),
                btb: crate::btb::Btb::new(
                    i,
                    core_rail_voltage,
                    CORE_DOMAIN_DRAIN,
                    config.seed ^ (0x7777 * (i as u64 + 1)),
                ),
                security: SecurityState::Secure,
            })
            .collect();

        let iram_rail = config.iram.as_ref().map(|(_, _, rail)| rail.clone());
        let iram = config.iram.as_ref().map(|(base, size, rail)| {
            let v = config
                .network
                .pmic()
                .rail(rail)
                .unwrap_or_else(|| panic!("unknown iram rail {rail}"))
                .nominal_voltage;
            Iram::new(*base, *size, v, config.seed ^ 0x4444)
        });

        Soc {
            soc_name: config.soc_name,
            board_name: config.board_name,
            cpu_name: config.cpu_name,
            cores,
            l2: Cache::new(
                "l2",
                crate::cache::CacheKind::Unified,
                config.l2,
                l2_rail_voltage,
                1.0,
                config.seed ^ 0x5555,
            ),
            dram: Dram::new(config.dram_bytes),
            iram,
            network: config.network,
            boot_rom: config.boot_rom,
            policy: config.policy,
            jtag: config.jtag,
            core_rail: config.core_rail,
            l2_rail: config.l2_rail,
            iram_rail,
            ever_powered: false,
            dram_remanence: crate::dram_remanence::DramRemanenceModel::calibrated(),
            dram_seed: config.seed ^ 0xD7A3,
            dram_decay_events: 0,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// SoC part name.
    pub fn soc_name(&self) -> &str {
        &self.soc_name
    }

    /// Board name.
    pub fn board_name(&self) -> &str {
        &self.board_name
    }

    /// CPU microarchitecture name.
    pub fn cpu_name(&self) -> &str {
        &self.cpu_name
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Immutable access to a core.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`].
    pub fn core(&self, i: usize) -> Result<&Core, SocError> {
        self.cores.get(i).ok_or(SocError::NoSuchCore { core: i })
    }

    /// Mutable access to a core.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`].
    pub fn core_mut(&mut self, i: usize) -> Result<&mut Core, SocError> {
        self.cores.get_mut(i).ok_or(SocError::NoSuchCore { core: i })
    }

    /// The shared L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The DRAM.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable DRAM access (e.g. for seeding victim data).
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// The iRAM, if the device has one.
    pub fn iram(&self) -> Option<&Iram> {
        self.iram.as_ref()
    }

    /// Mutable iRAM access.
    pub fn iram_mut(&mut self) -> Option<&mut Iram> {
        self.iram.as_mut()
    }

    /// The board's power network.
    pub fn network(&self) -> &PowerNetwork {
        &self.network
    }

    /// Mutable power-network access.
    pub fn network_mut(&mut self) -> &mut PowerNetwork {
        &mut self.network
    }

    /// The active boot/countermeasure policy.
    pub fn policy(&self) -> BootPolicy {
        self.policy
    }

    /// Replaces the policy (used by the countermeasure experiments).
    pub fn set_policy(&mut self, policy: BootPolicy) {
        self.policy = policy;
    }

    /// The boot ROM description.
    pub fn boot_rom(&self) -> &BootRom {
        &self.boot_rom
    }

    // ------------------------------------------------------------------
    // Power management
    // ------------------------------------------------------------------

    /// Initial board bring-up: powers every SRAM array (first power-on
    /// leaves them in their power-up states). Independent arrays power
    /// on in parallel; each array's contents are a pure function of its
    /// own seed, so the result is identical to the sequential order.
    pub fn power_on_all(&mut self) {
        let _ = Self::power_on_arrays(
            &mut self.cores,
            &mut self.l2,
            self.iram.as_mut(),
            &Recorder::disabled(),
        );
        self.sync_cpu_regs_from_sram();
        self.ever_powered = true;
    }

    /// Powers every SRAM array on across threads, returning the reports
    /// in the canonical order (per core: l1i, l1d, vregs, tlb, btb; then
    /// l2; then iram). The first error, if any, is returned after every
    /// array has completed its transition.
    fn power_on_arrays(
        cores: &mut [Core],
        l2: &mut Cache,
        iram: Option<&mut Iram>,
        rec: &Recorder,
    ) -> Result<Vec<RetentionReport>, SocError> {
        type Job<'a> = Box<dyn FnOnce() -> Result<RetentionReport, SocError> + Send + 'a>;
        // Jobs run on worker threads in nondeterministic order, so they
        // record only counters and histograms (commutative merges) —
        // never events, spans, or gauges.
        let mut jobs: Vec<Job<'_>> = Vec::new();
        for core in cores {
            let Core { l1i, l1d, vregs, tlb, btb, .. } = core;
            jobs.push(Box::new(|| l1i.power_on_traced(rec)));
            jobs.push(Box::new(|| l1d.power_on_traced(rec)));
            jobs.push(Box::new(|| vregs.power_on_traced(rec)));
            jobs.push(Box::new(|| tlb.power_on_traced(rec)));
            jobs.push(Box::new(|| btb.power_on_traced(rec)));
        }
        jobs.push(Box::new(|| l2.power_on_traced(rec)));
        if let Some(iram) = iram {
            jobs.push(Box::new(|| iram.power_on_traced(rec)));
        }
        par::join_all(jobs).into_iter().collect()
    }

    /// Attaches an external probe at a PCB pad.
    ///
    /// # Errors
    ///
    /// Propagates [`voltboot_pdn::PdnError`] wrapped in [`SocError::Pdn`].
    pub fn attach_probe(&mut self, pad: &str, probe: Probe) -> Result<(), SocError> {
        Ok(self.network.attach_probe(pad, probe)?)
    }

    /// Abruptly cuts main power, waits, and restores it.
    ///
    /// Every SRAM array resolves its contents against the electrical
    /// outcome of its own rail: held rails retain (subject to surge
    /// droop), unheld rails decay at `spec.temperature`. Cores reset; the
    /// interpreter's NEON registers are reloaded from the (physical)
    /// register-file SRAM, so they come back holding whatever the SRAM
    /// kept.
    ///
    /// ```rust
    /// use voltboot_pdn::Probe;
    /// use voltboot_soc::{devices, PowerCycleSpec};
    ///
    /// let mut soc = devices::raspberry_pi_4(1);
    /// soc.power_on_all();
    /// soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0))?;
    /// let report = soc.power_cycle(PowerCycleSpec::quick())?;
    /// assert!(report.outcome.rail("VDD_CORE").unwrap().is_held());
    /// assert_eq!(report.retention_of("core0.l1d.data").unwrap().lost, 0);
    /// # Ok::<(), voltboot_soc::SocError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SocError::NotPowered`] if the board was never brought up, or
    /// power-network errors.
    pub fn power_cycle(&mut self, spec: PowerCycleSpec) -> Result<PowerCycleReport, SocError> {
        self.power_cycle_with(spec, CycleFaults::none(), &Recorder::disabled())
    }

    /// [`Soc::power_cycle`] with injected rail faults and telemetry.
    ///
    /// With `faults == CycleFaults::none()` and a disabled recorder this
    /// is exactly `power_cycle`: the plain entry point delegates here, so
    /// the fault-free outcome is bit-identical by construction.
    ///
    /// # Errors
    ///
    /// [`SocError::NotPowered`] if the board was never brought up, or
    /// power-network errors.
    pub fn power_cycle_with(
        &mut self,
        spec: PowerCycleSpec,
        faults: CycleFaults,
        rec: &Recorder,
    ) -> Result<PowerCycleReport, SocError> {
        if !self.ever_powered {
            return Err(SocError::NotPowered);
        }
        let span = rec.span("soc.power_cycle");
        rec.incr("soc.power_cycles", 1);
        // Architectural registers live in SRAM across the cycle.
        self.sync_sram_regs_from_cpu();

        let outcome = self.network.disconnect_main_traced(rec)?;
        if let Some(v) = faults.brownout_min_voltage {
            rec.event("soc.fault.brownout", &format!("rails browned out to {v} V"));
        }
        let core_event = Self::faulted_rail_event(outcome.rail(&self.core_rail), faults, rec);
        let l2_event = Self::faulted_rail_event(outcome.rail(&self.l2_rail), faults, rec);
        let iram_event = self
            .iram_rail
            .as_deref()
            .map(|rail| Self::faulted_rail_event(outcome.rail(rail), faults, rec))
            .unwrap_or(OffEvent::Unpowered);

        for core in &mut self.cores {
            let _ = core.l1i.power_off(core_event);
            let _ = core.l1d.power_off(core_event);
            let _ = core.vregs.power_off(core_event);
            let _ = core.tlb.power_off(core_event);
            let _ = core.btb.power_off(core_event);
            core.l1i.elapse(spec.off_duration, spec.temperature);
            core.l1d.elapse(spec.off_duration, spec.temperature);
            core.vregs.elapse(spec.off_duration, spec.temperature);
            core.tlb.elapse(spec.off_duration, spec.temperature);
            core.btb.elapse(spec.off_duration, spec.temperature);
        }
        let _ = self.l2.power_off(l2_event);
        self.l2.elapse(spec.off_duration, spec.temperature);
        if let Some(iram) = &mut self.iram {
            let _ = iram.power_off(iram_event);
            iram.elapse(spec.off_duration, spec.temperature);
        }

        // Off-chip DRAM loses refresh whenever main power is cut (a held
        // SRAM rail does not refresh the DRAM): charged cells decay
        // toward their ground state at the ambient temperature.
        let event = self.dram_decay_events;
        self.dram_decay_events += 1;
        crate::dram_remanence::apply_decay(
            &mut self.dram,
            &self.dram_remanence,
            spec.off_duration,
            spec.temperature,
            self.dram_seed,
            event,
        );

        // The decay window on the scope: each SRAM rail sits at its held
        // voltage (or zero) for the whole off interval. Sampled at the
        // window's edges so the waveform export shows the flat-top (or
        // flat-zero) stretch between the disconnect surge and the
        // reconnect staircase.
        let off_ns = u64::try_from(spec.off_duration.as_nanos()).unwrap_or(u64::MAX);
        if rec.is_enabled() {
            let held_v = |event: OffEvent| match event {
                OffEvent::Held { voltage, .. } => voltage,
                OffEvent::Unpowered => 0.0,
            };
            let mut sampled: Vec<&str> = Vec::new();
            let mut rails: Vec<(&str, OffEvent)> =
                vec![(self.core_rail.as_str(), core_event), (self.l2_rail.as_str(), l2_event)];
            if let Some(rail) = self.iram_rail.as_deref() {
                rails.push((rail, iram_event));
            }
            for (rail, event) in rails {
                if sampled.contains(&rail) {
                    continue;
                }
                sampled.push(rail);
                let chan = format!("pdn.{rail}.v");
                let t0 = rec.now_ns();
                rec.sample_at(&chan, t0, held_v(event));
                rec.sample_at(&chan, t0.saturating_add(off_ns), held_v(event));
            }
        }

        // The off interval passes on the virtual clock.
        rec.advance(off_ns);

        let order = if faults.reconnect_misorder {
            rec.event("soc.fault.reconnect_misorder", "pmic restored rails in reverse order");
            ReconnectOrder::Reversed
        } else {
            ReconnectOrder::PmicSequence
        };
        self.network.reconnect_main_with(order, rec)?;

        let retention =
            Self::power_on_arrays(&mut self.cores, &mut self.l2, self.iram.as_mut(), rec)?;

        // Cores reset; NEON registers resolve from their SRAM.
        for core in &mut self.cores {
            core.cpu = Cpu::new(0);
            core.security = SecurityState::Secure;
        }
        self.sync_cpu_regs_from_sram();
        span.attr("off_ns", off_ns);
        span.attr("temp_c", spec.temperature.celsius());
        span.end();

        Ok(PowerCycleReport { outcome, retention })
    }

    fn rail_event(outcome: Option<&RailOutcome>) -> OffEvent {
        match outcome.and_then(|r| r.held) {
            Some(t) => OffEvent::held_with_droop(t.steady_voltage, t.min_voltage),
            None => OffEvent::Unpowered,
        }
    }

    /// [`Soc::rail_event`] with the cycle's injected faults folded into a
    /// held rail's transient minimum. A fault-free `faults` returns the
    /// plain event untouched.
    fn faulted_rail_event(
        outcome: Option<&RailOutcome>,
        faults: CycleFaults,
        rec: &Recorder,
    ) -> OffEvent {
        let event = Self::rail_event(outcome);
        let OffEvent::Held { voltage, transient_min_voltage } = event else {
            return event;
        };
        let mut tmin = transient_min_voltage;
        if let Some(v) = faults.brownout_min_voltage {
            if v < tmin {
                tmin = v;
                rec.incr("soc.fault.brownout_rails", 1);
            }
        }
        if faults.reconnect_misorder {
            tmin = (tmin - MISORDER_INRUSH_DIP_V).max(0.0);
            rec.incr("soc.fault.misorder_dips", 1);
        }
        OffEvent::held_with_droop(voltage, tmin)
    }

    fn sync_sram_regs_from_cpu(&mut self) {
        for core in &mut self.cores {
            let _ = core.vregs.store(core.cpu.vector_file());
        }
    }

    fn sync_cpu_regs_from_sram(&mut self) {
        for core in &mut self.cores {
            if let Ok(file) = core.vregs.load() {
                core.cpu.set_vector_file(file);
            }
        }
    }

    // ------------------------------------------------------------------
    // Boot
    // ------------------------------------------------------------------

    /// Runs the boot flow after power is restored.
    ///
    /// # Errors
    ///
    /// [`SocError::BootRejected`] when authenticated boot refuses the
    /// image or the source is unsupported, plus SRAM failures.
    pub fn boot(&mut self, source: BootSource) -> Result<BootOutcome, SocError> {
        self.boot_traced(source, &Recorder::disabled())
    }

    /// [`Soc::boot`] with telemetry: a `soc.boot` span carrying the
    /// outcome as attributes (`mbist_ran`, `l2_clobbered`,
    /// `iram_bytes_clobbered`), with zero-width `soc.boot.reset` /
    /// `soc.boot.clobber` / `soc.boot.load` stage spans marking the
    /// flow. The spans deliberately do not advance the virtual clock —
    /// the attack layer owns reboot wall time (its `attack.reboot`
    /// step advances the modelled boot duration), so advancing here
    /// would double-count it.
    ///
    /// # Errors
    ///
    /// Same as [`Soc::boot`].
    pub fn boot_traced(
        &mut self,
        source: BootSource,
        rec: &Recorder,
    ) -> Result<BootOutcome, SocError> {
        let span = rec.span("soc.boot");
        rec.incr("soc.boots", 1);
        let stage = |name: &str| rec.span(name).end();
        stage("soc.boot.reset");
        let mut mbist_ran = false;
        if self.policy.mbist_reset {
            for core in &mut self.cores {
                core.l1i.hardware_reset()?;
                core.l1d.hardware_reset()?;
            }
            self.l2.hardware_reset()?;
            if let Some(iram) = &mut self.iram {
                iram.hardware_reset()?;
            }
            mbist_ran = true;
        } else if self.policy.l2_reset_pin {
            self.l2.hardware_reset()?;
        }

        // Firmware clobbering.
        stage("soc.boot.clobber");
        let mut l2_clobbered = false;
        if self.boot_rom.clobbers_l2 {
            let rom = self.boot_rom.clone();
            self.l2.fill_data_with(|i| rom.junk_byte(i))?;
            l2_clobbered = true;
        }
        let mut iram_bytes_clobbered = 0usize;
        if let Some(iram) = &mut self.iram {
            let base = iram.base();
            for region in self.boot_rom.iram_clobbers.clone() {
                let junk: Vec<u8> =
                    (region.start..region.end).map(|i| self.boot_rom.junk_byte(i)).collect();
                iram.write(base + region.start as u64, &junk)?;
                iram_bytes_clobbered += region.len();
            }
        }

        // DRAM scrambler keys rotate at every boot.
        self.dram.rotate_scramble_key(self.boot_rom.junk_seed ^ 0x9d0f);

        stage("soc.boot.load");
        let entry = match source {
            BootSource::InternalRom => {
                if !self.boot_rom.boots_from_internal_rom {
                    return Err(SocError::BootRejected {
                        reason: "device requires external boot media".into(),
                    });
                }
                0
            }
            BootSource::ExternalMedia { image, entry, signed } => {
                if self.policy.mandated_authenticated_boot && !signed {
                    return Err(SocError::BootRejected {
                        reason: "unsigned image with authenticated boot fused on".into(),
                    });
                }
                self.dram.write(entry, &image)?;
                entry
            }
        };

        for core in &mut self.cores {
            core.cpu.set_pc(entry);
        }
        span.attr("mbist_ran", mbist_ran);
        span.attr("l2_clobbered", l2_clobbered);
        span.attr("iram_bytes_clobbered", iram_bytes_clobbered);
        span.end();
        Ok(BootOutcome { entry, l2_clobbered, iram_bytes_clobbered, mbist_ran })
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Enables (invalidate + enable) a core's L1 caches, as victim boot
    /// code does before running cached.
    pub fn enable_caches(&mut self, core: usize) {
        if let Some(c) = self.cores.get_mut(core) {
            let _ = c.l1i.invalidate_all();
            let _ = c.l1d.invalidate_all();
            c.l1i.set_enabled(true);
            c.l1d.set_enabled(true);
        }
    }

    /// Enables the shared L2.
    pub fn enable_l2(&mut self) {
        let _ = self.l2.invalidate_all();
        self.l2.set_enabled(true);
    }

    /// Loads `program` into DRAM at `load_addr` (as firmware would,
    /// bypassing caches), invalidates the core's i-cache tags for
    /// coherence (the loader's `IC IALLU`), points the core there, and
    /// runs it.
    ///
    /// On completion the core's NEON registers are synced back to their
    /// SRAM storage.
    pub fn run_program(
        &mut self,
        core: usize,
        program: &Program,
        load_addr: u64,
        max_steps: u64,
    ) -> RunExit {
        if self.dram.write(load_addr, &program.bytes()).is_err() {
            return RunExit::Fault(BusFault::Unmapped { addr: load_addr }, load_addr);
        }
        // Coherence: writing code behind enabled caches requires
        // invalidation to the point of unification, or the core fetches
        // stale instructions (from L1I or L2).
        let _ = self.cores[core].l1i.invalidate_all();
        let _ = self.l2.invalidate_va_range(load_addr, program.byte_len() as u64);
        self.cores[core].cpu.set_pc(load_addr);
        self.run_core(core, max_steps)
    }

    /// Resumes a core from its current PC for up to `max_steps`.
    pub fn run_core(&mut self, core: usize, max_steps: u64) -> RunExit {
        let trustzone = self.policy.trustzone_enforced;
        let c = &mut self.cores[core];
        let Core { cpu, l1i, l1d, tlb, btb, security, .. } = c;
        let mut bus = CoreBus {
            l1i,
            l1d,
            tlb,
            btb,
            l2: &mut self.l2,
            dram: &mut self.dram,
            iram: self.iram.as_mut(),
            security: *security,
            trustzone,
        };
        let exit = cpu.run(&mut bus, max_steps);
        let _ = c.vregs.store(c.cpu.vector_file());
        exit
    }

    /// Gates one core's power domain off and on again at *runtime* (the
    /// PMU's fine-grained control from §2.3: domains "allow full power
    /// down at runtime when not needed"). The gate is internal — no
    /// external pin is involved — so the core's SRAMs lose their state,
    /// which is why DVFS frameworks must save/restore architectural
    /// state around such transitions, and why an *internal* power toggle
    /// at reset is an effective countermeasure (§8).
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`] or SRAM failures.
    pub fn runtime_gate_core(&mut self, core: usize, gap: Duration) -> Result<(), SocError> {
        let c = self.cores.get_mut(core).ok_or(SocError::NoSuchCore { core })?;
        let _ = c.vregs.store(c.cpu.vector_file());
        c.l1i.power_off(OffEvent::Unpowered)?;
        c.l1d.power_off(OffEvent::Unpowered)?;
        c.vregs.power_off(OffEvent::Unpowered)?;
        c.tlb.power_off(OffEvent::Unpowered)?;
        c.btb.power_off(OffEvent::Unpowered)?;
        let t = Temperature::ROOM;
        c.l1i.elapse(gap, t);
        c.l1d.elapse(gap, t);
        c.vregs.elapse(gap, t);
        c.tlb.elapse(gap, t);
        c.btb.elapse(gap, t);
        c.l1i.power_on()?;
        c.l1d.power_on()?;
        c.vregs.power_on()?;
        c.tlb.power_on()?;
        c.btb.power_on()?;
        c.cpu = Cpu::new(0);
        if let Ok(file) = c.vregs.load() {
            c.cpu.set_vector_file(file);
        }
        Ok(())
    }

    /// Injects one background (OS-noise) line fill into `core`'s L1D:
    /// the line containing `addr` is brought in, evicting the set's
    /// victim way if needed. Returns the way filled, or `None` if the
    /// cache is disabled or fully locked.
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`] or memory-system failures.
    pub fn inject_noise_line(&mut self, core: usize, addr: u64) -> Result<Option<usize>, SocError> {
        let c = self.cores.get_mut(core).ok_or(SocError::NoSuchCore { core })?;
        let (_, set, _) = c.l1d.geometry().split(addr);
        let mut lower = L2Backing {
            l2: &mut self.l2,
            dram: &mut self.dram,
            security: SecurityState::NonSecure,
        };
        c.l1d.evict_one(
            set,
            addr & !(c.l1d.geometry().line_bytes as u64 - 1),
            SecurityState::NonSecure,
            &mut lower,
        )
    }

    // ------------------------------------------------------------------
    // Debug / extraction interfaces
    // ------------------------------------------------------------------

    /// Host-side `RAMINDEX` read (what the attacker's EL3 extraction
    /// image performs per beat).
    ///
    /// # Errors
    ///
    /// [`SocError::NoSuchCore`], range errors, or
    /// [`SocError::TrustZoneViolation`] under enforcement.
    pub fn ramindex(
        &self,
        core: usize,
        ram: RamId,
        way: u8,
        index: u32,
        requester_secure: bool,
    ) -> Result<[u64; 4], SocError> {
        let c = self.core(core)?;
        let (cache, is_data) = match ram {
            RamId::L1ITag => (&c.l1i, false),
            RamId::L1IData => (&c.l1i, true),
            RamId::L1DTag => (&c.l1d, false),
            RamId::L1DData => (&c.l1d, true),
            RamId::Tlb => {
                let word = c.tlb.entry_word(index as usize)?;
                return Ok([word, 0, 0, 0]);
            }
            RamId::Btb => {
                let word = c.btb.entry_word(index as usize)?;
                return Ok([word, 0, 0, 0]);
            }
        };
        ramindex_read(cache, is_data, way, index, self.policy.trustzone_enforced, requester_secure)
    }

    /// Reads one whole readout unit — a data-RAM way, or the full
    /// TLB/BTB entry RAM — through the `RAMINDEX` path, returning its
    /// bytes in index order. This is the granularity the voted
    /// multi-pass extraction re-reads selectively; issuing the
    /// individual [`Soc::ramindex`] beats yields identical bytes.
    ///
    /// # Errors
    ///
    /// Same classes as [`Soc::ramindex`]. Tag RAMs are not readable as
    /// a unit ([`SocError::UnknownRamId`]).
    pub fn ramindex_unit(
        &self,
        core: usize,
        ram: RamId,
        way: u8,
        requester_secure: bool,
    ) -> Result<Vec<u8>, SocError> {
        self.ramindex_unit_traced(core, ram, way, requester_secure, &Recorder::disabled())
    }

    /// [`Soc::ramindex_unit`] with telemetry: a `soc.ramindex.unit_reads`
    /// counter and a `soc.ramindex.unit_bytes` histogram of readout
    /// sizes. No virtual time passes here — the attack layer owns
    /// extraction timing (its `attack.extract` step advances the
    /// modelled dump duration per image).
    ///
    /// # Errors
    ///
    /// Same as [`Soc::ramindex_unit`].
    pub fn ramindex_unit_traced(
        &self,
        core: usize,
        ram: RamId,
        way: u8,
        requester_secure: bool,
        rec: &Recorder,
    ) -> Result<Vec<u8>, SocError> {
        let mut bytes = Vec::new();
        self.ramindex_unit_into(core, ram, way, requester_secure, rec, &mut bytes)?;
        Ok(bytes)
    }

    /// [`Soc::ramindex_unit_traced`] reading into a caller-supplied
    /// buffer (cleared first) instead of allocating one per read — the
    /// allocation-free entry point the voted multi-pass extraction
    /// drives with arena-recycled dump buffers. Bytes and telemetry are
    /// identical to [`Soc::ramindex_unit_traced`].
    ///
    /// # Errors
    ///
    /// Same as [`Soc::ramindex_unit`]; on error `out`'s contents are
    /// unspecified (a partial read).
    pub fn ramindex_unit_into(
        &self,
        core: usize,
        ram: RamId,
        way: u8,
        requester_secure: bool,
        rec: &Recorder,
        out: &mut Vec<u8>,
    ) -> Result<(), SocError> {
        out.clear();
        self.ramindex_unit_inner(core, ram, way, requester_secure, out)?;
        rec.incr("soc.ramindex.unit_reads", 1);
        rec.record("soc.ramindex.unit_bytes", out.len() as u64);
        Ok(())
    }

    fn ramindex_unit_inner(
        &self,
        core: usize,
        ram: RamId,
        way: u8,
        requester_secure: bool,
        out: &mut Vec<u8>,
    ) -> Result<(), SocError> {
        let c = self.core(core)?;
        let cache = match ram {
            RamId::L1IData => &c.l1i,
            RamId::L1DData => &c.l1d,
            RamId::Tlb => {
                out.reserve(crate::tlb::TLB_ENTRIES * 8);
                for entry in 0..crate::tlb::TLB_ENTRIES {
                    out.extend_from_slice(&c.tlb.entry_word(entry)?.to_le_bytes());
                }
                return Ok(());
            }
            RamId::Btb => {
                out.reserve(crate::btb::BTB_ENTRIES * 8);
                for entry in 0..crate::btb::BTB_ENTRIES {
                    out.extend_from_slice(&c.btb.entry_word(entry)?.to_le_bytes());
                }
                return Ok(());
            }
            RamId::L1ITag | RamId::L1DTag => {
                return Err(SocError::UnknownRamId { ramid: ram.code() })
            }
        };
        crate::debug::ramindex_read_way_into(
            cache,
            way,
            self.policy.trustzone_enforced,
            requester_secure,
            out,
        )
    }

    /// Reads physical memory over JTAG (iRAM or DRAM), bypassing the CPU.
    ///
    /// # Errors
    ///
    /// [`SocError::NoJtag`] when the port is absent,
    /// [`SocError::Unmapped`] for undecoded addresses.
    pub fn jtag_read(&self, addr: u64, len: usize) -> Result<Vec<u8>, SocError> {
        self.jtag.require()?;
        if let Some(iram) = &self.iram {
            if iram.contains(addr) {
                return iram.read(addr, len);
            }
        }
        self.dram.read(addr, len)
    }

    /// Writes physical memory over JTAG.
    ///
    /// # Errors
    ///
    /// [`SocError::NoJtag`] when the port is absent,
    /// [`SocError::Unmapped`] for undecoded addresses.
    pub fn jtag_write(&mut self, addr: u64, data: &[u8]) -> Result<(), SocError> {
        self.jtag.require()?;
        if let Some(iram) = &mut self.iram {
            if iram.contains(addr) {
                return iram.write(addr, data);
            }
        }
        self.dram.write(addr, data)
    }
}

/// The per-core view of the memory system, implementing the armlite
/// [`Bus`].
struct CoreBus<'a> {
    l1i: &'a mut Cache,
    l1d: &'a mut Cache,
    tlb: &'a mut crate::tlb::Tlb,
    btb: &'a mut crate::btb::Btb,
    l2: &'a mut Cache,
    dram: &'a mut Dram,
    iram: Option<&'a mut Iram>,
    security: SecurityState,
    trustzone: bool,
}

/// Adapter presenting `L2 → DRAM` as a [`Backing`] for the L1s.
struct L2Backing<'a> {
    l2: &'a mut Cache,
    dram: &'a mut Dram,
    security: SecurityState,
}

impl Backing for L2Backing<'_> {
    fn read_line(&mut self, line_addr: u64, buf: &mut [u8]) -> Result<(), SocError> {
        self.l2.read(line_addr, buf, self.security, self.dram)
    }

    fn write_line(&mut self, line_addr: u64, buf: &[u8]) -> Result<(), SocError> {
        self.l2.write(line_addr, buf, self.security, self.dram)
    }
}

fn to_bus_fault(addr: u64, e: SocError) -> BusFault {
    match e {
        SocError::TrustZoneViolation => BusFault::SecureViolation { addr },
        SocError::RamIndexOutOfRange { .. } | SocError::Unmapped { .. } => {
            BusFault::Unmapped { addr }
        }
        _ => BusFault::Unmapped { addr },
    }
}

impl CoreBus<'_> {
    fn in_iram(&self, addr: u64) -> bool {
        self.iram.as_ref().is_some_and(|i| i.contains(addr))
    }
}

impl Bus for CoreBus<'_> {
    fn read(&mut self, addr: u64, size: u8) -> Result<u64, BusFault> {
        if !addr.is_multiple_of(size as u64) {
            return Err(BusFault::Misaligned { addr, size });
        }
        let _ = self.tlb.touch(addr);
        let mut buf = [0u8; 8];
        if self.in_iram(addr) {
            // iRAM is device memory here: uncached direct access.
            let iram = self.iram.as_mut().expect("checked");
            let bytes = iram.read(addr, size as usize).map_err(|e| to_bus_fault(addr, e))?;
            buf[..size as usize].copy_from_slice(&bytes);
        } else {
            let mut lower = L2Backing { l2: self.l2, dram: self.dram, security: self.security };
            self.l1d
                .read(addr, &mut buf[..size as usize], self.security, &mut lower)
                .map_err(|e| to_bus_fault(addr, e))?;
        }
        Ok(u64::from_le_bytes(buf))
    }

    fn write(&mut self, addr: u64, size: u8, value: u64) -> Result<(), BusFault> {
        if !addr.is_multiple_of(size as u64) {
            return Err(BusFault::Misaligned { addr, size });
        }
        let _ = self.tlb.touch(addr);
        let bytes = value.to_le_bytes();
        if self.in_iram(addr) {
            let iram = self.iram.as_mut().expect("checked");
            iram.write(addr, &bytes[..size as usize]).map_err(|e| to_bus_fault(addr, e))
        } else {
            let mut lower = L2Backing { l2: self.l2, dram: self.dram, security: self.security };
            self.l1d
                .write(addr, &bytes[..size as usize], self.security, &mut lower)
                .map_err(|e| to_bus_fault(addr, e))
        }
    }

    fn fetch(&mut self, addr: u64) -> Result<u32, BusFault> {
        if !addr.is_multiple_of(4) {
            return Err(BusFault::Misaligned { addr, size: 4 });
        }
        let _ = self.tlb.touch(addr);
        let mut buf = [0u8; 4];
        if self.in_iram(addr) {
            let iram = self.iram.as_mut().expect("checked");
            let bytes = iram.read(addr, 4).map_err(|e| to_bus_fault(addr, e))?;
            buf.copy_from_slice(&bytes);
        } else {
            let mut lower = L2Backing { l2: self.l2, dram: self.dram, security: self.security };
            self.l1i
                .read(addr, &mut buf, self.security, &mut lower)
                .map_err(|e| to_bus_fault(addr, e))?;
        }
        Ok(u32::from_le_bytes(buf))
    }

    fn dc_zva(&mut self, addr: u64) -> Result<(), BusFault> {
        let mut lower = L2Backing { l2: self.l2, dram: self.dram, security: self.security };
        self.l1d.zero_va(addr, self.security, &mut lower).map_err(|e| to_bus_fault(addr, e))
    }

    fn dc_clean_invalidate(&mut self, addr: u64) -> Result<(), BusFault> {
        let mut lower = L2Backing { l2: self.l2, dram: self.dram, security: self.security };
        self.l1d.clean_invalidate_va(addr, &mut lower).map_err(|e| to_bus_fault(addr, e))
    }

    fn dc_clean(&mut self, addr: u64) -> Result<(), BusFault> {
        let mut lower = L2Backing { l2: self.l2, dram: self.dram, security: self.security };
        self.l1d.clean_va(addr, &mut lower).map_err(|e| to_bus_fault(addr, e))
    }

    fn ic_invalidate_all(&mut self) -> Result<(), BusFault> {
        self.l1i.invalidate_all().map_err(|e| to_bus_fault(0, e))
    }

    fn ramindex(
        &mut self,
        el: u8,
        req: RamIndexRequest,
        _barriers_ok: bool,
    ) -> Result<[u64; 4], BusFault> {
        if el < 3 {
            return Err(BusFault::PermissionDenied { required_el: 3 });
        }
        let ram = RamId::from_code(req.ramid).map_err(|e| to_bus_fault(0, e))?;
        let (cache, is_data) = match ram {
            RamId::L1ITag => (&*self.l1i, false),
            RamId::L1IData => (&*self.l1i, true),
            RamId::L1DTag => (&*self.l1d, false),
            RamId::L1DData => (&*self.l1d, true),
            RamId::Tlb => {
                let word =
                    self.tlb.entry_word(req.index as usize).map_err(|e| to_bus_fault(0, e))?;
                return Ok([word, 0, 0, 0]);
            }
            RamId::Btb => {
                let word =
                    self.btb.entry_word(req.index as usize).map_err(|e| to_bus_fault(0, e))?;
                return Ok([word, 0, 0, 0]);
            }
        };
        ramindex_read(
            cache,
            is_data,
            req.way,
            req.index,
            self.trustzone,
            self.security == SecurityState::Secure,
        )
        .map_err(|e| to_bus_fault(0, e))
    }

    fn zva_block_size(&self) -> u64 {
        self.l1d.geometry().line_bytes as u64
    }

    fn branch_hint(&mut self, pc: u64, target: u64) {
        let _ = self.btb.record(pc, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use voltboot_armlite::program::builders;

    fn pi4() -> Soc {
        let mut soc = devices::raspberry_pi_4(42);
        soc.power_on_all();
        soc
    }

    #[test]
    fn catalog_metadata() {
        let soc = pi4();
        assert_eq!(soc.soc_name(), "BCM2711");
        assert_eq!(soc.core_count(), 4);
        assert!(soc.iram().is_none());
        assert!(soc.core(4).is_err());
    }

    #[test]
    fn runs_a_program_through_the_caches() {
        let mut soc = pi4();
        soc.enable_caches(0);
        let exit = soc.run_program(0, &builders::nop_sled(128), 0x10000, 100_000);
        assert_eq!(exit, RunExit::Halted(0));
        // The sled must now be visible in the raw i-cache image.
        let image = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let nops = image
            .to_bytes()
            .chunks_exact(4)
            .filter(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) == 0xD503201F)
            .count();
        assert!(nops >= 64, "expected many NOP words in the i-cache, found {nops}");
    }

    #[test]
    fn data_writes_land_in_l1d() {
        let mut soc = pi4();
        soc.enable_caches(0);
        let exit =
            soc.run_program(0, &builders::fill_bytes(0x80000, 0xAA, 1024), 0x10000, 1_000_000);
        assert_eq!(exit, RunExit::Halted(0));
        let w0 = soc.core(0).unwrap().l1d.way_image(0).unwrap().to_bytes();
        let w1 = soc.core(0).unwrap().l1d.way_image(1).unwrap().to_bytes();
        let count = w0.iter().chain(w1.iter()).filter(|&&b| b == 0xAA).count();
        assert!(count >= 1024, "0xAA bytes in L1D: {count}");
    }

    #[test]
    fn held_power_cycle_retains_caches() {
        let mut soc = pi4();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(256), 0x10000, 100_000);
        let before = soc.core(0).unwrap().l1i.way_image(0).unwrap();

        soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        let report = soc.power_cycle(PowerCycleSpec::quick()).unwrap();
        assert!(report.outcome.rail("VDD_CORE").unwrap().is_held());
        let after = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        assert_eq!(before, after, "held cycle must retain the i-cache exactly");
        assert_eq!(report.retention_of("core0.l1i.data").unwrap().lost, 0);
    }

    #[test]
    fn brownout_below_drv_defeats_a_held_cycle() {
        let mut soc = pi4();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(256), 0x10000, 100_000);
        soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();

        // A brown-out to 50 mV is far below every cell's DRV: even though
        // the probe holds the rail before and after, the dip costs
        // (essentially) all retained state.
        let faults = CycleFaults { brownout_min_voltage: Some(0.05), ..CycleFaults::none() };
        let rec = Recorder::new();
        let report = soc.power_cycle_with(PowerCycleSpec::quick(), faults, &rec).unwrap();
        assert!(report.outcome.rail("VDD_CORE").unwrap().is_held());
        let l1i = report.retention_of("core0.l1i.data").unwrap();
        assert_eq!(l1i.retained, 0, "brown-out below DRV must lose the i-cache");
        assert!(rec.counter("soc.fault.brownout_rails") > 0);
        assert!(rec.counter("sram.cells_lost") > 0);
    }

    #[test]
    fn faultless_power_cycle_with_matches_power_cycle() {
        let mk = || {
            let mut soc = pi4();
            soc.enable_caches(0);
            soc.run_program(0, &builders::nop_sled(256), 0x10000, 100_000);
            soc.attach_probe("TP15", Probe::bench_supply(0.8, 0.9)).unwrap();
            soc
        };
        let mut a = mk();
        let mut b = mk();
        let ra = a.power_cycle(PowerCycleSpec::quick()).unwrap();
        let rb = b
            .power_cycle_with(PowerCycleSpec::quick(), CycleFaults::none(), &Recorder::new())
            .unwrap();
        assert_eq!(ra.retention, rb.retention);
        assert_eq!(
            a.core(0).unwrap().l1i.way_image(0).unwrap(),
            b.core(0).unwrap().l1i.way_image(0).unwrap()
        );
    }

    #[test]
    fn misordered_reconnect_dips_held_rails() {
        let mut soc = pi4();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(256), 0x10000, 100_000);
        soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        let faults = CycleFaults { reconnect_misorder: true, ..CycleFaults::none() };
        let rec = Recorder::new();
        soc.power_cycle_with(PowerCycleSpec::quick(), faults, &rec).unwrap();
        assert!(rec.counter("soc.fault.misorder_dips") > 0);
        assert!(rec.counter("pdn.reconnects_misordered") > 0);
        assert!(rec.events().iter().any(|e| e.name == "soc.fault.reconnect_misorder"));
    }

    #[test]
    fn unheld_power_cycle_scrambles_caches() {
        let mut soc = pi4();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(256), 0x10000, 100_000);
        let report = soc.power_cycle(PowerCycleSpec::quick()).unwrap();
        assert!(!report.outcome.rail("VDD_CORE").unwrap().is_held());
        assert_eq!(report.retention_of("core0.l1i.data").unwrap().retained, 0);
        // The NOP sled is gone from every way of the i-cache.
        for way in 0..3 {
            let image = soc.core(0).unwrap().l1i.way_image(way).unwrap();
            let nops = image
                .to_bytes()
                .chunks_exact(4)
                .filter(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) == 0xD503201F)
                .count();
            assert!(nops < 4, "way {way} still holds {nops} NOP words");
        }
    }

    #[test]
    fn neon_registers_survive_held_cycle() {
        let mut soc = pi4();
        soc.run_program(0, &builders::fill_vector_registers(), 0x10000, 10_000);
        soc.attach_probe("TP15", Probe::bench_supply(0.8, 3.0)).unwrap();
        soc.power_cycle(PowerCycleSpec::quick()).unwrap();
        let v = soc.core(0).unwrap().cpu.v(0);
        assert_eq!(v, [0xFFFF_FFFF_FFFF_FFFF; 2]);
        let v1 = soc.core(0).unwrap().cpu.v(1);
        assert_eq!(v1, [0xAAAA_AAAA_AAAA_AAAA; 2]);
    }

    #[test]
    fn neon_registers_lost_without_hold() {
        let mut soc = pi4();
        soc.run_program(0, &builders::fill_vector_registers(), 0x10000, 10_000);
        soc.power_cycle(PowerCycleSpec::quick()).unwrap();
        let file = soc.core(0).unwrap().cpu.vector_file();
        assert!(file
            .iter()
            .any(|&v| v != [0xFFFF_FFFF_FFFF_FFFF; 2] && v != [0xAAAA_AAAA_AAAA_AAAA; 2]));
    }

    #[test]
    fn boot_clobbers_l2_on_broadcom() {
        let mut soc = pi4();
        soc.enable_l2();
        // Put recognizable data in L2 by writing through it.
        soc.enable_caches(0);
        soc.run_program(0, &builders::fill_bytes(0x40000, 0x77, 4096), 0x10000, 10_000_000);
        let outcome = soc
            .boot(BootSource::ExternalMedia { image: vec![0; 4], entry: 0x1000, signed: false })
            .unwrap();
        assert!(outcome.l2_clobbered);
        let l2_bytes = soc.l2().raw_way_bytes(0, 0, 4096).unwrap();
        assert!(!l2_bytes.windows(16).any(|w| w.iter().all(|&b| b == 0x77)));
    }

    #[test]
    fn authenticated_boot_rejects_unsigned_images() {
        let mut soc = pi4();
        let mut policy = soc.policy();
        policy.mandated_authenticated_boot = true;
        soc.set_policy(policy);
        let err = soc
            .boot(BootSource::ExternalMedia { image: vec![0; 4], entry: 0x1000, signed: false })
            .unwrap_err();
        assert!(matches!(err, SocError::BootRejected { .. }));
        assert!(soc
            .boot(BootSource::ExternalMedia { image: vec![0; 4], entry: 0x1000, signed: true })
            .is_ok());
    }

    #[test]
    fn pi_has_no_jtag_but_imx_does() {
        let soc = pi4();
        assert!(matches!(soc.jtag_read(0, 4), Err(SocError::NoJtag)));
        let mut imx = devices::imx53_qsb(1);
        imx.power_on_all();
        assert!(imx.jtag_read(0xF800_0000, 4).is_ok());
    }

    #[test]
    fn imx_boot_clobbers_part_of_iram() {
        let mut imx = devices::imx53_qsb(1);
        imx.power_on_all();
        let base = imx.iram().unwrap().base();
        let size = imx.iram().unwrap().len();
        imx.jtag_write(base, &vec![0xCC; size]).unwrap();
        let outcome = imx.boot(BootSource::InternalRom).unwrap();
        assert!(outcome.iram_bytes_clobbered > 0);
        let frac = outcome.iram_bytes_clobbered as f64 / size as f64;
        assert!(frac > 0.02 && frac < 0.08, "clobbered fraction {frac}");
        // The clobber window is dirty, the rest is intact.
        let image = imx.jtag_read(base, size).unwrap();
        assert_eq!(image[0], 0xCC, "start of iram before 0x83c is intact");
        assert_ne!(image[0x1000], 0xCC, "scratchpad window is clobbered");
        assert_eq!(image[0x10000], 0xCC, "middle of iram is intact");
    }

    #[test]
    fn mbist_policy_wipes_everything_at_boot() {
        let mut soc = pi4();
        soc.enable_caches(0);
        soc.run_program(0, &builders::fill_bytes(0x40000, 0x99, 2048), 0x10000, 10_000_000);
        let mut policy = soc.policy();
        policy.mbist_reset = true;
        soc.set_policy(policy);
        let outcome = soc
            .boot(BootSource::ExternalMedia { image: vec![0; 4], entry: 0x1000, signed: true })
            .unwrap();
        assert!(outcome.mbist_ran);
        assert_eq!(soc.core(0).unwrap().l1d.way_image(0).unwrap().count_ones(), 0);
    }

    #[test]
    fn runtime_gating_wipes_the_core_srams() {
        let mut soc = pi4();
        soc.enable_caches(0);
        soc.run_program(0, &builders::nop_sled(512), 0x10000, 100_000);
        soc.run_program(0, &builders::fill_vector_registers(), 0x14000, 10_000);

        soc.runtime_gate_core(0, std::time::Duration::from_millis(10)).unwrap();

        // NOPs gone from the i-cache, registers gone from the file.
        let image = soc.core(0).unwrap().l1i.way_image(0).unwrap();
        let nops = image
            .to_bytes()
            .chunks_exact(4)
            .filter(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]) == 0xD503201F)
            .count();
        assert!(nops < 4, "i-cache must be wiped by the internal gate: {nops}");
        assert_ne!(soc.core(0).unwrap().cpu.v(0), [u64::MAX; 2]);
        // Other cores are untouched.
        assert!(soc.core(1).unwrap().l1d.is_powered());
    }

    #[test]
    fn ramindex_extracts_dcache_contents() {
        let mut soc = pi4();
        soc.enable_caches(0);
        soc.run_program(0, &builders::fill_bytes(0x0, 0xAB, 64), 0x10000, 1_000_000);
        // Find the 0xAB line somewhere in way 0 or 1 of set 0.
        let mut found = false;
        for way in 0..2u8 {
            let beat = soc.ramindex(0, RamId::L1DData, way, 0, true).unwrap();
            if beat[0] == 0xABAB_ABAB_ABAB_ABAB {
                found = true;
            }
        }
        assert!(found, "expected the 0xAB line in set 0");
    }

    #[test]
    fn internal_rom_boot_rejected_on_pi() {
        let mut soc = pi4();
        assert!(matches!(soc.boot(BootSource::InternalRom), Err(SocError::BootRejected { .. })));
    }

    #[test]
    fn power_cycle_without_bringup_is_error() {
        let mut soc = devices::raspberry_pi_4(3);
        assert!(matches!(soc.power_cycle(PowerCycleSpec::quick()), Err(SocError::NotPowered)));
    }
}
