//! SRAM-backed TLBs.
//!
//! The Cortex-A72's `RAMINDEX` interface exposes its TLB RAMs alongside
//! the cache arrays (the paper counts "15 different internal RAMs,
//! including caches, TLBs, and BTBs"). A TLB entry records which page a
//! core translated recently — so a retained TLB leaks the victim's
//! *address trace* even where the data itself was evicted.
//!
//! The model is a small fully-associative, round-robin-replacement
//! translation cache whose entry store is physical SRAM. Entry format
//! (64 bits): bit 63 = valid, bits 0..52 = virtual page number
//! (4 KiB pages).

use crate::error::SocError;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use voltboot_sram::{ArrayConfig, OffEvent, PackedBits, ResolutionMode, SramArray, Temperature};
use voltboot_telemetry::Recorder;

/// Number of entries in the modelled main TLB.
pub const TLB_ENTRIES: usize = 48;

/// Page size covered by one entry.
pub const PAGE_BYTES: u64 = 4096;

/// A fully-associative TLB with an SRAM entry store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tlb {
    sram: SramArray,
    /// Round-robin insertion cursor (micro-architectural, resets at
    /// power-on).
    cursor: usize,
    /// Shadow of the valid pages for O(1) hit checks (rebuilt from the
    /// SRAM at power-on).
    resident: HashSet<u64>,
}

impl Tlb {
    /// Creates the TLB for one core.
    pub fn new(core: usize, rail_voltage: f64, shared_domain_drain: f64, seed: u64) -> Self {
        let cfg = ArrayConfig::with_bytes(format!("core{core}.tlb"), TLB_ENTRIES * 8)
            .nominal_voltage(rail_voltage)
            .shared_domain_drain(shared_domain_drain);
        Tlb { sram: SramArray::new(cfg, seed), cursor: 0, resident: HashSet::new() }
    }

    /// Records a translation for the page containing `addr`, if absent.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when the domain is unpowered.
    pub fn touch(&mut self, addr: u64) -> Result<(), SocError> {
        let page = addr / PAGE_BYTES;
        if self.resident.contains(&page) {
            return Ok(());
        }
        // Evict whatever the cursor points at.
        if let Some(old) = self.entry(self.cursor)? {
            self.resident.remove(&old);
        }
        let word = (1u64 << 63) | (page & 0x000F_FFFF_FFFF_FFFF);
        self.sram.try_write_bytes(self.cursor * 8, &word.to_le_bytes())?;
        self.resident.insert(page);
        self.cursor = (self.cursor + 1) % TLB_ENTRIES;
        Ok(())
    }

    /// The valid page number in entry `i`, if the valid bit is set.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered,
    /// [`SocError::RamIndexOutOfRange`] past the last entry.
    pub fn entry(&self, i: usize) -> Result<Option<u64>, SocError> {
        let word = self.entry_word(i)?;
        Ok((word & (1 << 63) != 0).then_some(word & 0x000F_FFFF_FFFF_FFFF))
    }

    /// The raw 64-bit entry word (the RAMINDEX view; may be power-up
    /// garbage).
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered,
    /// [`SocError::RamIndexOutOfRange`] past the last entry.
    pub fn entry_word(&self, i: usize) -> Result<u64, SocError> {
        if i >= TLB_ENTRIES {
            return Err(SocError::RamIndexOutOfRange { way: 0, index: i as u64 });
        }
        let bytes = self.sram.try_read_bytes(i * 8, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// All currently valid pages, in entry order.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn resident_pages(&self) -> Result<Vec<u64>, SocError> {
        let mut out = Vec::new();
        for i in 0..TLB_ENTRIES {
            if let Some(page) = self.entry(i)? {
                out.push(page);
            }
        }
        Ok(out)
    }

    /// Raw bit image of the entry store.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn image(&self) -> Result<PackedBits, SocError> {
        Ok(self.sram.snapshot()?)
    }

    /// Powers the entry SRAM on and rebuilds the shadow set from
    /// whatever survived (possibly garbage entries after an unheld
    /// cycle — exactly like real hardware, which is why TLBs must be
    /// invalidated before enabling translation).
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on(&mut self) -> Result<voltboot_sram::RetentionReport, SocError> {
        self.power_on_traced(&Recorder::disabled())
    }

    /// [`Tlb::power_on`] that additionally records SRAM resolution
    /// counters into `rec`.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_on_traced(
        &mut self,
        rec: &Recorder,
    ) -> Result<voltboot_sram::RetentionReport, SocError> {
        let report = self.sram.power_on_traced(ResolutionMode::Batched, rec)?;
        self.cursor = 0;
        self.resident.clear();
        for i in 0..TLB_ENTRIES {
            if let Some(page) = self.entry(i)? {
                self.resident.insert(page);
            }
        }
        Ok(report)
    }

    /// Cuts power to the entry SRAM.
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] on an invalid transition.
    pub fn power_off(&mut self, event: OffEvent) -> Result<(), SocError> {
        Ok(self.sram.power_off(event)?)
    }

    /// Advances unpowered time.
    pub fn elapse(&mut self, dt: std::time::Duration, temperature: Temperature) {
        self.sram.elapse(dt, temperature);
    }

    /// Invalidates every entry (software TLBI ALL).
    ///
    /// # Errors
    ///
    /// [`SocError::Sram`] when unpowered.
    pub fn invalidate_all(&mut self) -> Result<(), SocError> {
        for i in 0..TLB_ENTRIES {
            let word = self.entry_word(i)? & !(1 << 63);
            self.sram.try_write_bytes(i * 8, &word.to_le_bytes())?;
        }
        self.resident.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn powered_tlb() -> Tlb {
        let mut t = Tlb::new(0, 0.8, 4.0, 321);
        t.power_on().unwrap();
        t.invalidate_all().unwrap();
        t
    }

    #[test]
    fn touch_records_distinct_pages_once() {
        let mut t = powered_tlb();
        t.touch(0x10_0000).unwrap();
        t.touch(0x10_0008).unwrap(); // same page
        t.touch(0x20_0000).unwrap();
        let pages = t.resident_pages().unwrap();
        assert_eq!(pages.len(), 2);
        assert!(pages.contains(&0x100));
        assert!(pages.contains(&0x200));
    }

    #[test]
    fn round_robin_eviction_caps_the_entry_count() {
        let mut t = powered_tlb();
        for i in 0..(TLB_ENTRIES as u64 + 10) {
            t.touch(i * PAGE_BYTES).unwrap();
        }
        let pages = t.resident_pages().unwrap();
        assert_eq!(pages.len(), TLB_ENTRIES);
        // The earliest pages were evicted.
        assert!(!pages.contains(&0));
        assert!(pages.contains(&(TLB_ENTRIES as u64 + 9)));
    }

    #[test]
    fn held_cycle_preserves_the_address_trace() {
        let mut t = powered_tlb();
        t.touch(0xDEAD_0000).unwrap();
        t.power_off(OffEvent::held(0.8)).unwrap();
        t.elapse(Duration::from_secs(5), Temperature::ROOM);
        t.power_on().unwrap();
        assert!(t.resident_pages().unwrap().contains(&0xDEAD0));
    }

    #[test]
    fn unheld_cycle_scrambles_entries() {
        let mut t = powered_tlb();
        t.touch(0xDEAD_0000).unwrap();
        t.power_off(OffEvent::unpowered()).unwrap();
        t.elapse(Duration::from_millis(500), Temperature::ROOM);
        t.power_on().unwrap();
        assert!(!t.resident_pages().unwrap().contains(&0xDEAD0));
    }

    #[test]
    fn out_of_range_entry_rejected() {
        let t = powered_tlb();
        assert!(matches!(t.entry(TLB_ENTRIES), Err(SocError::RamIndexOutOfRange { .. })));
    }
}
