//! Property tests on the cache's architectural invariants.

use proptest::prelude::*;
use voltboot_soc::cache::{Backing, Cache, CacheGeometry, CacheKind, SecurityState};
use voltboot_soc::SocError;

/// A checkable backing store.
#[derive(Default)]
struct Store {
    mem: std::collections::HashMap<u64, Vec<u8>>,
}

impl Backing for Store {
    fn read_line(&mut self, line_addr: u64, buf: &mut [u8]) -> Result<(), SocError> {
        match self.mem.get(&line_addr) {
            Some(line) => buf.copy_from_slice(line),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_line(&mut self, line_addr: u64, buf: &[u8]) -> Result<(), SocError> {
        self.mem.insert(line_addr, buf.to_vec());
        Ok(())
    }
}

fn powered_cache(seed: u64) -> Cache {
    let mut c =
        Cache::new("prop", CacheKind::Data, CacheGeometry::new(2048, 2, 64), 0.8, 1.0, seed);
    c.power_on().unwrap();
    c.invalidate_all().unwrap();
    c.set_enabled(true);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cache + backing system never loses a byte: any write sequence
    /// reads back correctly through the cache, for arbitrary
    /// conflict-heavy address patterns.
    #[test]
    fn cache_plus_store_is_coherent(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u64..64, any::<u8>()), 1..60),
    ) {
        let mut cache = powered_cache(seed);
        let mut store = Store::default();
        let mut model = std::collections::HashMap::new();
        // Slots map to 16 sets x 4 tags: plenty of conflict misses.
        let addr_of = |slot: u64| (slot % 16) * 64 + (slot / 16) * 1024;
        for &(slot, value) in &ops {
            let addr = addr_of(slot);
            cache.write(addr, &[value], SecurityState::NonSecure, &mut store).unwrap();
            model.insert(addr, value);
        }
        for (&addr, &value) in &model {
            let mut buf = [0u8; 1];
            cache.read(addr, &mut buf, SecurityState::NonSecure, &mut store).unwrap();
            prop_assert_eq!(buf[0], value, "addr {:#x}", addr);
        }
    }

    /// Invalidation never changes the data RAM, only the access path.
    #[test]
    fn invalidate_preserves_data_ram(seed in any::<u64>(), writes in 1u64..20) {
        let mut cache = powered_cache(seed);
        let mut store = Store::default();
        for i in 0..writes {
            cache
                .write(i * 64, &[i as u8; 8], SecurityState::NonSecure, &mut store)
                .unwrap();
        }
        let before: Vec<_> = (0..2).map(|w| cache.way_image(w).unwrap()).collect();
        cache.invalidate_all().unwrap();
        let after: Vec<_> = (0..2).map(|w| cache.way_image(w).unwrap()).collect();
        prop_assert_eq!(before, after);
    }

    /// Clean+invalidate writes dirty data back, so the backing store
    /// holds it afterwards.
    #[test]
    fn clean_invalidate_is_lossless(seed in any::<u64>(), value in any::<u8>()) {
        let mut cache = powered_cache(seed);
        let mut store = Store::default();
        cache.write(0x40, &[value; 8], SecurityState::NonSecure, &mut store).unwrap();
        cache.clean_invalidate_va(0x40, &mut store).unwrap();
        let line = store.mem.get(&0x40).expect("written back");
        prop_assert_eq!(&line[..8], &[value; 8]);
        // And a fresh read through the cache still sees it.
        let mut buf = [0u8; 8];
        cache.read(0x40, &mut buf, SecurityState::NonSecure, &mut store).unwrap();
        prop_assert_eq!(buf, [value; 8]);
    }
}
