//! The SRAM array: bit storage plus the power-state machine.

use crate::bits::PackedBits;
use crate::cell::{CellDistribution, CellParams};
use crate::engine;
use crate::error::SramError;
use crate::physics::{LeakageModel, Temperature};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;
use voltboot_telemetry::Recorder;

/// Static configuration of an SRAM array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Human-readable name, e.g. `"core0.l1d.data"`.
    pub name: String,
    /// Number of bits in the array.
    pub bits: usize,
    /// Nominal supply voltage of the array's power domain, in volts.
    pub nominal_voltage: f64,
    /// Process-variation distribution of the cells.
    pub distribution: CellDistribution,
    /// Leakage physics shared by all cells.
    pub leakage: LeakageModel,
    /// Extra decay acceleration applied while unpowered when power-hungry
    /// logic (CPU cores) shares the domain and drains residual charge
    /// during an abrupt disconnect (paper §3: "an abrupt power disconnect
    /// draws energy from all parts of the SoC to the power-hungry
    /// processing elements").
    pub shared_domain_drain: f64,
}

impl ArrayConfig {
    /// Convenience constructor for a byte-sized array at a 0.8 V rail.
    pub fn with_bytes(name: impl Into<String>, bytes: usize) -> Self {
        ArrayConfig {
            name: name.into(),
            bits: bytes * 8,
            nominal_voltage: 0.8,
            distribution: CellDistribution::calibrated(),
            leakage: LeakageModel::calibrated(),
            shared_domain_drain: 1.0,
        }
    }

    /// Convenience constructor for a bit-sized array at a 0.8 V rail.
    pub fn with_bits(name: impl Into<String>, bits: usize) -> Self {
        ArrayConfig {
            name: name.into(),
            bits,
            nominal_voltage: 0.8,
            distribution: CellDistribution::calibrated(),
            leakage: LeakageModel::calibrated(),
            shared_domain_drain: 1.0,
        }
    }

    /// Sets the nominal rail voltage (builder style).
    pub fn nominal_voltage(mut self, volts: f64) -> Self {
        self.nominal_voltage = volts;
        self
    }

    /// Sets the shared-domain drain accelerator (builder style).
    pub fn shared_domain_drain(mut self, factor: f64) -> Self {
        self.shared_domain_drain = factor;
        self
    }
}

/// What happens to the array's rail when the system's main power is cut.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffEvent {
    /// The rail is fully disconnected: cells decay with temperature.
    Unpowered,
    /// An external probe holds the rail.
    Held {
        /// Steady voltage the probe maintains, in volts.
        voltage: f64,
        /// Minimum instantaneous voltage during the disconnect transient
        /// (rail droop from the core current surge). Cells whose DRV lies
        /// above this lose their state even though the steady level is
        /// fine. Equal to `voltage` when the probe absorbs the surge.
        transient_min_voltage: f64,
    },
}

impl OffEvent {
    /// A plain, unheld power-off.
    pub fn unpowered() -> Self {
        OffEvent::Unpowered
    }

    /// A hold at `voltage` with no droop (an ideal bench supply).
    pub fn held(voltage: f64) -> Self {
        OffEvent::Held { voltage, transient_min_voltage: voltage }
    }

    /// A hold at `voltage` that sagged to `transient_min_voltage` during
    /// the disconnect surge.
    pub fn held_with_droop(voltage: f64, transient_min_voltage: f64) -> Self {
        OffEvent::Held { voltage, transient_min_voltage }
    }
}

/// The array's power state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerState {
    /// Normal operation at the nominal rail voltage.
    Powered,
    /// Main power is off; the fields describe the off interval so far.
    Off {
        /// How the rail is being treated while off.
        event: OffEvent,
        /// Accumulated dimensionless decay stress (only grows when truly
        /// unpowered; a held rail accumulates none).
        stress: f64,
    },
}

/// Which implementation resolves a power cycle.
///
/// Both produce byte-identical images and identical reports for every
/// `(seed, index, event)` — the batched path is a pure optimization (see
/// [`crate::engine`]). The scalar path survives as the executable
/// specification and as the fallback for queries the batched kernels
/// cannot represent (non-finite voltages, degenerate distributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolutionMode {
    /// Per-bit reference path: derive every cell's parameters and decide
    /// retention one bit at a time.
    Scalar,
    /// Bit-sliced path at full lane width: resolve four words (256
    /// cells) per kernel step against the memoized die planes, sharded
    /// across threads for large arrays.
    Batched,
    /// The bit-sliced path restricted to single-word (64-cell) kernels —
    /// the lane-width oracle [`Batched`](ResolutionMode::Batched) is
    /// tested against, exercising the same planes and fallbacks through
    /// the narrow code path.
    BatchedWord,
}

/// Summary of what a power cycle did to the array's contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetentionReport {
    /// Array name, shared with the array that produced the report (so a
    /// million-cycle campaign clones a pointer per cycle, not a string).
    pub name: Arc<str>,
    /// Total bits.
    pub bits: usize,
    /// Bits that kept their pre-cycle value.
    pub retained: usize,
    /// Bits that resolved to a power-up sample instead.
    pub lost: usize,
}

impl RetentionReport {
    /// Fraction of bits retained, in `[0, 1]`.
    pub fn retention_fraction(&self) -> f64 {
        if self.bits == 0 {
            1.0
        } else {
            self.retained as f64 / self.bits as f64
        }
    }
}

/// A rectangular array of 6T SRAM cells with a power-state machine.
///
/// See the [crate-level docs](crate) for the physics and an end-to-end
/// example. All state transitions are explicit:
///
/// * [`SramArray::power_on`] — powers the array; any cells that lost their
///   charge while off resolve to their power-up values.
/// * [`SramArray::power_off`] — cuts main power, either leaving the rail
///   floating ([`OffEvent::Unpowered`]) or held by an external probe
///   ([`OffEvent::Held`]).
/// * [`SramArray::elapse`] — advances time while off, accumulating decay
///   stress at the given ambient temperature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SramArray {
    config: ArrayConfig,
    seed: u64,
    state: PowerState,
    /// Logic state of every cell. Meaningful while powered; while off it
    /// is the *pre-cycle* data, resolved against decay at power-on.
    data: PackedBits,
    /// Monotone counter of power-on events (keys power-up sampling).
    powerup_events: u64,
    /// Whether the array has ever been powered (first power-on samples the
    /// pure power-up state with no retained data to fall back to).
    ever_powered: bool,
    /// Report from the most recent power-on, if it followed an off period.
    last_report: Option<RetentionReport>,
    /// Memoized die planes for the batched resolution engine. Derived
    /// data only — rebuilt on demand after deserialization or cloning.
    #[serde(skip)]
    planes: Option<Arc<engine::DiePlanes>>,
    /// Shared copy of `config.name` handed to every retention report.
    /// Derived data (the config's name is immutable after construction);
    /// lazily rebuilt after deserialization or cloning.
    #[serde(skip)]
    name_shared: Option<Arc<str>>,
}

impl SramArray {
    /// Creates a new, never-powered array. `seed` determines the silicon:
    /// equal seeds model the same physical die.
    pub fn new(config: ArrayConfig, seed: u64) -> Self {
        let bits = config.bits;
        SramArray {
            config,
            seed,
            state: PowerState::Off { event: OffEvent::Unpowered, stress: f64::INFINITY },
            data: PackedBits::zeros(bits),
            powerup_events: 0,
            ever_powered: false,
            last_report: None,
            planes: None,
            name_shared: None,
        }
    }

    /// The array's configuration.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// The array's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Number of bits.
    pub fn len_bits(&self) -> usize {
        self.config.bits
    }

    /// Number of whole bytes.
    pub fn len_bytes(&self) -> usize {
        self.config.bits / 8
    }

    /// Current power state.
    pub fn power_state(&self) -> PowerState {
        self.state
    }

    /// Whether the array is currently powered.
    pub fn is_powered(&self) -> bool {
        matches!(self.state, PowerState::Powered)
    }

    /// The retention report produced by the most recent power-on, if any.
    pub fn last_retention_report(&self) -> Option<&RetentionReport> {
        self.last_report.as_ref()
    }

    /// Derives the parameters of cell `index`.
    pub fn cell_params(&self, index: usize) -> CellParams {
        CellParams::derive(self.seed, index, &self.config.distribution)
    }

    /// Returns the die planes for this array, deriving (or fetching from
    /// the global per-die cache) on first use. The seed, size, and
    /// distribution are immutable after construction, so a memoized
    /// plane set never goes stale. Records where the planes came from
    /// (only counters — commutative, so parallel array power-ons stay
    /// deterministic).
    fn planes(&mut self, rec: &Recorder) -> Arc<engine::DiePlanes> {
        if let Some(p) = &self.planes {
            rec.incr("sram.planes.memoized", 1);
            return p.clone();
        }
        let (p, cached) =
            engine::planes_for(self.seed, self.config.bits, &self.config.distribution);
        rec.incr(if cached { "sram.planes.cache_hits" } else { "sram.planes.built" }, 1);
        self.planes = Some(p.clone());
        p
    }

    /// The array's name as a shared string, allocated once per array
    /// (the config's name is immutable after construction).
    fn shared_name(&mut self) -> Arc<str> {
        self.name_shared.get_or_insert_with(|| Arc::from(self.config.name.as_str())).clone()
    }

    /// Powers the array on, resolving each cell against the accumulated
    /// off-interval physics, and returns a report of what survived.
    ///
    /// Uses the word-batched resolution engine ([`ResolutionMode::Batched`]);
    /// see [`SramArray::power_on_with`] to select the scalar reference path.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidPowerTransition`] if already powered.
    pub fn power_on(&mut self) -> Result<RetentionReport, SramError> {
        self.power_on_with(ResolutionMode::Batched)
    }

    /// [`SramArray::power_on`] with an explicit resolution path. Both
    /// modes are bit-exact with each other for every `(seed, index,
    /// event)`; the scalar mode exists as the reference implementation
    /// and for benchmarking the batched engine against it.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidPowerTransition`] if already powered.
    pub fn power_on_with(&mut self, mode: ResolutionMode) -> Result<RetentionReport, SramError> {
        self.power_on_traced(mode, &Recorder::disabled())
    }

    /// [`SramArray::power_on_with`] that additionally records resolution
    /// counters (`sram.power_cycles`, `sram.cells_retained`,
    /// `sram.cells_lost`, `sram.planes.*`) and distribution histograms
    /// (`sram.lost_per_powerup`, `sram.decay_stress_milli`) into `rec`.
    ///
    /// Only counters and histograms are recorded — never events, spans,
    /// or gauges — because arrays power on from parallel worker threads
    /// and counter increments / histogram bucket additions are the
    /// commutative operations that keep telemetry deterministic
    /// regardless of scheduling.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidPowerTransition`] if already powered.
    pub fn power_on_traced(
        &mut self,
        mode: ResolutionMode,
        rec: &Recorder,
    ) -> Result<RetentionReport, SramError> {
        let PowerState::Off { event, stress } = self.state else {
            return Err(SramError::InvalidPowerTransition { attempted: "power on while powered" });
        };
        let event_id = self.powerup_events;
        self.powerup_events += 1;

        let mut retained = 0usize;
        let mut lost = 0usize;
        let first_power = !self.ever_powered;

        // Fast path 1: the whole array certainly retained. A rail held at
        // or above the maximum possible DRV with zero accumulated stress
        // keeps every cell, with no need to derive per-cell parameters.
        let certainly_retained = !first_power
            && match event {
                OffEvent::Held { voltage, transient_min_voltage } => {
                    stress == 0.0
                        && voltage >= self.config.distribution.drv_max
                        && transient_min_voltage >= self.config.distribution.drv_max
                }
                OffEvent::Unpowered => false,
            };
        // Fast path 2: the whole array certainly lost. The decay budget is
        // lognormal; a stress beyond any plausible tail quantile loses
        // every cell, so only the power-up state needs sampling.
        let max_plausible_budget = (self.config.distribution.decay_sigma * 9.0).exp();
        let certainly_lost =
            first_power || (matches!(event, OffEvent::Unpowered) && stress > max_plausible_budget);

        let batch = mode != ResolutionMode::Scalar
            && engine::can_batch(&self.config.distribution, event, stress);
        let wide = mode == ResolutionMode::Batched;

        if certainly_retained {
            retained = self.config.bits;
        } else if certainly_lost {
            lost = self.config.bits;
            let dist = self.config.distribution;
            if batch {
                let planes = self.planes(rec);
                engine::sample_all(&mut self.data, &planes, self.seed, &dist, event_id);
            } else {
                for i in 0..self.config.bits {
                    let v = CellParams::sample_powerup_only(self.seed, i, &dist, event_id);
                    self.data.set(i, v);
                }
            }
        } else if batch {
            let dist = self.config.distribution;
            let planes = self.planes(rec);
            retained = engine::resolve(
                &mut self.data,
                &planes,
                self.seed,
                &dist,
                event,
                stress,
                event_id,
                wide,
            );
            lost = self.config.bits - retained;
        } else {
            for i in 0..self.config.bits {
                let params = self.cell_params(i);
                let keeps = Self::cell_retains(&params, event, stress);
                if keeps {
                    retained += 1;
                } else {
                    lost += 1;
                    let v = params.sample_powerup(self.seed, i, event_id);
                    self.data.set(i, v);
                }
            }
        }
        self.ever_powered = true;
        self.state = PowerState::Powered;
        rec.incr("sram.power_cycles", 1);
        rec.incr("sram.cells_retained", retained as u64);
        rec.incr("sram.cells_lost", lost as u64);
        // Distribution views of the same physics (histogram merges are
        // commutative, so these stay worker-thread safe like counters):
        // how many cells each power-up lost, and how much decay stress
        // the off interval accumulated (in milli-units — the budget is
        // lognormal around 1, so milli resolution keeps the interesting
        // sub-1.0 range out of the histogram's singleton buckets).
        rec.record("sram.lost_per_powerup", lost as u64);
        rec.record("sram.decay_stress_milli", (stress * 1e3) as u64);
        let report =
            RetentionReport { name: self.shared_name(), bits: self.config.bits, retained, lost };
        self.last_report = Some(report.clone());
        Ok(report)
    }

    fn cell_retains(params: &CellParams, event: OffEvent, stress: f64) -> bool {
        match event {
            OffEvent::Held { voltage, transient_min_voltage } => {
                // A held rail retains iff both the steady level and the
                // transient minimum stay at or above the cell's DRV, and
                // any stress accumulated before/after the hold stays
                // within budget.
                params.retains_at(voltage)
                    && params.retains_at(transient_min_voltage)
                    && stress <= params.decay_budget
            }
            OffEvent::Unpowered => stress <= params.decay_budget,
        }
    }

    /// Cuts main power.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidPowerTransition`] if already off.
    pub fn power_off(&mut self, event: OffEvent) -> Result<(), SramError> {
        if !self.is_powered() {
            return Err(SramError::InvalidPowerTransition { attempted: "power off while off" });
        }
        self.state = PowerState::Off { event, stress: 0.0 };
        Ok(())
    }

    /// Advances time while the array is off.
    ///
    /// A held rail accumulates no decay stress (the probe keeps the cells
    /// above their retention voltage indefinitely — the paper observes the
    /// "retention state" persisting at 8 mA "indefinitely"). A floating
    /// rail accumulates Arrhenius-weighted stress, scaled by the
    /// shared-domain drain factor.
    ///
    /// Does nothing if the array is powered (time passes harmlessly).
    pub fn elapse(&mut self, dt: Duration, temperature: Temperature) {
        if let PowerState::Off { event, ref mut stress } = self.state {
            if matches!(event, OffEvent::Unpowered) {
                *stress +=
                    self.config.leakage.stress(dt, temperature) * self.config.shared_domain_drain;
            }
        }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`SramError::NotPowered`] if the array is off;
    /// [`SramError::OutOfBounds`] if `index` is past the end.
    pub fn read_bit(&self, index: usize) -> Result<bool, SramError> {
        self.check_access(index, 1)?;
        Ok(self.data.get(index))
    }

    /// Writes one bit.
    ///
    /// # Errors
    ///
    /// [`SramError::NotPowered`] if the array is off;
    /// [`SramError::OutOfBounds`] if `index` is past the end.
    pub fn write_bit(&mut self, index: usize, value: bool) -> Result<(), SramError> {
        self.check_access(index, 1)?;
        self.data.set(index, value);
        Ok(())
    }

    /// Reads `len` bytes starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the array is unpowered or the range is out of bounds; use
    /// [`SramArray::try_read_bytes`] for a fallible version.
    pub fn read_bytes(&self, offset: usize, len: usize) -> Vec<u8> {
        self.try_read_bytes(offset, len).expect("sram read")
    }

    /// Fallible version of [`SramArray::read_bytes`].
    ///
    /// # Errors
    ///
    /// [`SramError::NotPowered`] if the array is off;
    /// [`SramError::OutOfBounds`] if the range is past the end.
    pub fn try_read_bytes(&self, offset: usize, len: usize) -> Result<Vec<u8>, SramError> {
        let first_bit = self.check_byte_access(offset, len)?;
        Ok(self.data.bytes_at(first_bit, len))
    }

    /// Writes `bytes` starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the array is unpowered or the range is out of bounds; use
    /// [`SramArray::try_write_bytes`] for a fallible version.
    pub fn write_bytes(&mut self, offset: usize, bytes: &[u8]) {
        self.try_write_bytes(offset, bytes).expect("sram write");
    }

    /// Fallible version of [`SramArray::write_bytes`].
    ///
    /// # Errors
    ///
    /// [`SramError::NotPowered`] if the array is off;
    /// [`SramError::OutOfBounds`] if the range is past the end.
    pub fn try_write_bytes(&mut self, offset: usize, bytes: &[u8]) -> Result<(), SramError> {
        let first_bit = self.check_byte_access(offset, bytes.len())?;
        self.data.copy_bytes_in(first_bit, bytes);
        Ok(())
    }

    /// Snapshot of the full contents as a bit vector.
    ///
    /// # Errors
    ///
    /// [`SramError::NotPowered`] if the array is off.
    pub fn snapshot(&self) -> Result<PackedBits, SramError> {
        if !self.is_powered() {
            return Err(SramError::NotPowered);
        }
        Ok(self.data.clone())
    }

    /// Overwrites the full contents from a bit vector.
    ///
    /// # Errors
    ///
    /// [`SramError::NotPowered`] if the array is off.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the array size.
    pub fn restore(&mut self, bits: &PackedBits) -> Result<(), SramError> {
        if !self.is_powered() {
            return Err(SramError::NotPowered);
        }
        assert_eq!(bits.len(), self.config.bits, "restore size mismatch");
        self.data = bits.clone();
        Ok(())
    }

    /// Fills the whole array with a repeated byte.
    ///
    /// # Errors
    ///
    /// [`SramError::NotPowered`] if the array is off.
    pub fn fill(&mut self, byte: u8) -> Result<(), SramError> {
        if !self.is_powered() {
            return Err(SramError::NotPowered);
        }
        self.data.fill_byte(byte);
        Ok(())
    }

    /// Validates a byte-range access with overflow-safe arithmetic and
    /// returns the first bit index of the range.
    fn check_byte_access(&self, offset: usize, len: usize) -> Result<usize, SramError> {
        let oob = || SramError::OutOfBounds { index: offset, len: self.config.bits };
        let first_bit = offset.checked_mul(8).ok_or_else(oob)?;
        let nbits = len.checked_mul(8).ok_or_else(oob)?;
        self.check_access(first_bit, nbits)?;
        Ok(first_bit)
    }

    fn check_access(&self, first_bit: usize, nbits: usize) -> Result<(), SramError> {
        if !self.is_powered() {
            return Err(SramError::NotPowered);
        }
        let end = first_bit
            .checked_add(nbits)
            .ok_or(SramError::OutOfBounds { index: first_bit, len: self.config.bits })?;
        if end > self.config.bits {
            return Err(SramError::OutOfBounds { index: end - 1, len: self.config.bits });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(bytes: usize) -> SramArray {
        SramArray::new(ArrayConfig::with_bytes("t", bytes), 0xdead_beef)
    }

    #[test]
    fn first_power_on_is_all_lost() {
        let mut s = array(128);
        let report = s.power_on().unwrap();
        assert_eq!(report.retained, 0);
        assert_eq!(report.lost, 1024);
    }

    #[test]
    fn powerup_state_is_roughly_half_ones() {
        let mut s = array(4096);
        s.power_on().unwrap();
        let frac = s.snapshot().unwrap().ones_fraction();
        assert!((frac - 0.5).abs() < 0.03, "ones fraction {frac}");
    }

    #[test]
    fn held_rail_retains_everything() {
        let mut s = array(256);
        s.power_on().unwrap();
        s.write_bytes(0, &[0xAA; 256]);
        s.power_off(OffEvent::held(0.8)).unwrap();
        s.elapse(Duration::from_secs(86_400), Temperature::ROOM);
        let report = s.power_on().unwrap();
        assert_eq!(report.retained, 2048);
        assert_eq!(s.read_bytes(0, 256), vec![0xAA; 256]);
    }

    #[test]
    fn unpowered_room_temperature_loses_everything() {
        let mut s = array(1024);
        s.power_on().unwrap();
        s.write_bytes(0, &[0x55; 1024]);
        s.power_off(OffEvent::unpowered()).unwrap();
        s.elapse(Duration::from_millis(500), Temperature::ROOM);
        let report = s.power_on().unwrap();
        assert_eq!(report.retained, 0, "retained {}", report.retained);
        // ~50% error against the stored pattern.
        let image = s.snapshot().unwrap();
        let stored = PackedBits::from_bytes(&[0x55; 1024]);
        let err = image.fractional_hamming(&stored);
        assert!((err - 0.5).abs() < 0.05, "error {err}");
    }

    #[test]
    fn deep_cold_retains_about_eighty_percent_at_20ms() {
        let mut s = array(4096);
        s.power_on().unwrap();
        s.fill(0xFF).unwrap();
        s.power_off(OffEvent::unpowered()).unwrap();
        s.elapse(Duration::from_millis(20), Temperature::from_celsius(-110.0));
        let report = s.power_on().unwrap();
        let frac = report.retention_fraction();
        assert!((frac - 0.79).abs() < 0.05, "retention at -110C/20ms: {frac}");
    }

    #[test]
    fn minus_forty_is_total_loss_after_500ms() {
        let mut s = array(4096);
        s.power_on().unwrap();
        s.fill(0xFF).unwrap();
        s.power_off(OffEvent::unpowered()).unwrap();
        s.elapse(Duration::from_millis(500), Temperature::from_celsius(-40.0));
        let report = s.power_on().unwrap();
        assert!(report.retention_fraction() < 0.01, "{}", report.retention_fraction());
    }

    #[test]
    fn droop_below_drv_loses_some_cells() {
        let mut s = array(4096);
        s.power_on().unwrap();
        s.fill(0xA5).unwrap();
        // Held at 0.8 V but sagging to 0.30 V during the surge: roughly
        // half the cells (those with DRV above 0.30 V) lose state.
        s.power_off(OffEvent::held_with_droop(0.8, 0.30)).unwrap();
        s.elapse(Duration::from_millis(10), Temperature::ROOM);
        let report = s.power_on().unwrap();
        let frac = report.retention_fraction();
        assert!(frac > 0.3 && frac < 0.7, "retention with 0.30 V droop: {frac}");
    }

    #[test]
    fn stress_accumulates_across_multiple_elapse_calls() {
        let mut a = array(2048);
        a.power_on().unwrap();
        a.fill(0x0F).unwrap();
        a.power_off(OffEvent::unpowered()).unwrap();
        for _ in 0..10 {
            a.elapse(Duration::from_millis(2), Temperature::from_celsius(-110.0));
        }
        let frac_split = a.power_on().unwrap().retention_fraction();

        let mut b = array(2048);
        b.power_on().unwrap();
        b.fill(0x0F).unwrap();
        b.power_off(OffEvent::unpowered()).unwrap();
        b.elapse(Duration::from_millis(20), Temperature::from_celsius(-110.0));
        let frac_once = b.power_on().unwrap().retention_fraction();
        assert!((frac_split - frac_once).abs() < 1e-12);
    }

    #[test]
    fn shared_domain_drain_accelerates_loss() {
        let mk = |drain: f64| {
            let cfg = ArrayConfig::with_bytes("t", 2048).shared_domain_drain(drain);
            let mut s = SramArray::new(cfg, 7);
            s.power_on().unwrap();
            s.fill(0xFF).unwrap();
            s.power_off(OffEvent::unpowered()).unwrap();
            s.elapse(Duration::from_millis(10), Temperature::from_celsius(-110.0));
            s.power_on().unwrap().retention_fraction()
        };
        assert!(mk(1.0) > mk(10.0));
    }

    #[test]
    fn access_while_off_is_an_error() {
        let mut s = array(16);
        s.power_on().unwrap();
        s.power_off(OffEvent::unpowered()).unwrap();
        assert_eq!(s.try_read_bytes(0, 4), Err(SramError::NotPowered));
        assert_eq!(s.try_write_bytes(0, &[1]), Err(SramError::NotPowered));
        assert_eq!(s.read_bit(0), Err(SramError::NotPowered));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut s = array(16);
        s.power_on().unwrap();
        assert!(matches!(s.try_read_bytes(15, 2), Err(SramError::OutOfBounds { .. })));
        assert!(matches!(s.write_bit(16 * 8, true), Err(SramError::OutOfBounds { .. })));
    }

    #[test]
    fn double_power_transitions_are_errors() {
        let mut s = array(16);
        s.power_on().unwrap();
        assert!(matches!(s.power_on(), Err(SramError::InvalidPowerTransition { .. })));
        s.power_off(OffEvent::unpowered()).unwrap();
        assert!(matches!(
            s.power_off(OffEvent::unpowered()),
            Err(SramError::InvalidPowerTransition { .. })
        ));
    }

    #[test]
    fn same_seed_same_powerup_state() {
        let mut a = array(512);
        let mut b = array(512);
        a.power_on().unwrap();
        b.power_on().unwrap();
        assert_eq!(a.snapshot().unwrap(), b.snapshot().unwrap());
    }

    #[test]
    fn successive_powerups_differ_by_about_ten_percent() {
        let mut s = array(8192);
        s.power_on().unwrap();
        let first = s.snapshot().unwrap();
        s.power_off(OffEvent::unpowered()).unwrap();
        s.elapse(Duration::from_secs(10), Temperature::ROOM);
        s.power_on().unwrap();
        let second = s.snapshot().unwrap();
        let hd = first.fractional_hamming(&second);
        assert!((hd - 0.10).abs() < 0.02, "power-up noise {hd}");
    }

    #[test]
    fn huge_offsets_error_instead_of_overflowing() {
        let mut s = array(16);
        s.power_on().unwrap();
        let huge = usize::MAX / 4;
        assert!(matches!(s.try_read_bytes(huge, 1), Err(SramError::OutOfBounds { .. })));
        assert!(matches!(s.try_read_bytes(0, huge), Err(SramError::OutOfBounds { .. })));
        assert!(matches!(s.try_write_bytes(huge, &[0]), Err(SramError::OutOfBounds { .. })));
    }

    #[test]
    fn scalar_and_batched_paths_are_bit_exact() {
        let cases: [(OffEvent, Duration, f64); 4] = [
            (OffEvent::unpowered(), Duration::from_millis(20), -110.0),
            (OffEvent::held_with_droop(0.8, 0.30), Duration::from_millis(5), 25.0),
            (OffEvent::held(0.31), Duration::from_millis(1), 25.0),
            (OffEvent::unpowered(), Duration::from_millis(500), -40.0),
        ];
        for (event, dt, celsius) in cases {
            let mut a = array(4096);
            a.power_on_with(ResolutionMode::Scalar).unwrap();
            let mut b = a.clone();
            for s in [&mut a, &mut b] {
                s.fill(0xC3).unwrap();
                s.power_off(event).unwrap();
                s.elapse(dt, Temperature::from_celsius(celsius));
            }
            let ra = a.power_on_with(ResolutionMode::Scalar).unwrap();
            let rb = b.power_on_with(ResolutionMode::Batched).unwrap();
            assert_eq!(ra, rb, "{event:?}");
            assert_eq!(a.snapshot().unwrap(), b.snapshot().unwrap(), "{event:?}");
        }
    }

    #[test]
    fn first_powerup_scalar_and_batched_agree() {
        let mut a = array(2048);
        let mut b = array(2048);
        let ra = a.power_on_with(ResolutionMode::Scalar).unwrap();
        let rb = b.power_on_with(ResolutionMode::Batched).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.snapshot().unwrap(), b.snapshot().unwrap());
    }

    #[test]
    fn traced_power_on_records_counters() {
        let rec = Recorder::new();
        let mut s = array(256);
        s.power_on_traced(ResolutionMode::Batched, &rec).unwrap();
        assert_eq!(rec.counter("sram.power_cycles"), 1);
        assert_eq!(rec.counter("sram.cells_lost"), 2048);
        assert_eq!(rec.counter("sram.cells_retained"), 0);
        s.power_off(OffEvent::held(0.8)).unwrap();
        s.power_on_traced(ResolutionMode::Batched, &rec).unwrap();
        assert_eq!(rec.counter("sram.power_cycles"), 2);
        assert_eq!(rec.counter("sram.cells_retained"), 2048);
    }

    #[test]
    fn traced_power_on_records_loss_and_stress_histograms() {
        let rec = Recorder::new();
        let mut s = array(256);
        // First power-up: everything "lost" (nothing to retain yet).
        s.power_on_traced(ResolutionMode::Batched, &rec).unwrap();
        // Held cycle: nothing lost, zero stress.
        s.power_off(OffEvent::held(0.8)).unwrap();
        s.power_on_traced(ResolutionMode::Batched, &rec).unwrap();
        let lost = rec.histogram("sram.lost_per_powerup").unwrap();
        assert_eq!(lost.count(), 2);
        assert_eq!(lost.max(), 2048, "first power-up loses every cell");
        assert_eq!(lost.min(), 0, "a held cycle loses none");
        let stress = rec.histogram("sram.decay_stress_milli").unwrap();
        assert_eq!(stress.count(), 2);
    }

    #[test]
    fn bit_level_access_roundtrip() {
        let mut s = array(2);
        s.power_on().unwrap();
        s.fill(0x00).unwrap();
        s.write_bit(3, true).unwrap();
        s.write_bit(9, true).unwrap();
        assert!(s.read_bit(3).unwrap());
        assert!(s.read_bit(9).unwrap());
        assert_eq!(s.read_bytes(0, 2), vec![0b0000_1000, 0b0000_0010]);
    }
}
