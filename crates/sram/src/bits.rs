//! Packed bit storage and bit-level metrics.
//!
//! All SRAM contents in the simulator are ultimately [`PackedBits`]: a
//! dense `u64`-word bit vector with byte views and the Hamming-distance
//! helpers that the paper's analysis sections use (fractional Hamming
//! distance, windowed Hamming-distance series for Figure 10).

use serde::{Deserialize, Serialize};

/// A fixed-length, densely packed bit vector.
///
/// Bit `i` lives in word `i / 64` at position `i % 64`; byte views use
/// little-endian bit order within each byte (bit 0 of byte 0 is bit 0 of
/// the vector), which matches how the simulator lays SRAM data out.
///
/// ```rust
/// use voltboot_sram::PackedBits;
/// let mut b = PackedBits::zeros(16);
/// b.set(3, true);
/// assert!(b.get(3));
/// assert_eq!(b.count_ones(), 1);
/// assert_eq!(b.to_bytes(), vec![0b0000_1000, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedBits {
    len: usize,
    words: Vec<u64>,
}

impl PackedBits {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        PackedBits { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Creates an all-one bit vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut b = PackedBits { len, words: vec![u64::MAX; len.div_ceil(64)] };
        b.mask_tail();
        b
    }

    /// Builds a bit vector from bytes; the result has `bytes.len() * 8` bits.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self::from_bytes_reusing(bytes, Vec::new())
    }

    /// [`PackedBits::from_bytes`] into a recycled backing buffer (e.g.
    /// one returned by [`PackedBits::into_words`] or the
    /// [`crate::par`] rep arena): `words` is cleared and refilled, so a
    /// buffer with enough capacity makes the conversion allocation-free.
    /// Eight little-endian bytes pack into each word — identical layout
    /// to [`PackedBits::from_bytes`].
    pub fn from_bytes_reusing(bytes: &[u8], mut words: Vec<u64>) -> Self {
        words.clear();
        words.reserve(bytes.len().div_ceil(8));
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            words.push(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            words.push(u64::from_le_bytes(last));
        }
        PackedBits { len: bytes.len() * 8, words }
    }

    /// Consumes the vector, returning its backing word buffer for reuse
    /// (typically handed back to the [`crate::par`] rep arena). The
    /// contents are whatever the vector held; a later
    /// [`PackedBits::from_bytes_reusing`] clears them.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of bounds ({})", self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Returns the underlying words (the tail beyond `len` is zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the underlying words.
    ///
    /// Word `w` holds bits `w * 64 ..= w * 64 + 63`. Callers must keep the
    /// invariant that bits at or beyond [`PackedBits::len`] in the final
    /// word stay zero; the batched resolution kernels rely on it (so do
    /// [`PackedBits::count_ones`] and the Hamming helpers).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Number of `u64` words backing the vector.
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// A mask of the bits of word `w` that are within `len`: all ones for
    /// interior words, a partial mask for the final word of a vector whose
    /// length is not a multiple of 64.
    ///
    /// # Panics
    ///
    /// Panics if `w` is past the last word.
    pub fn valid_mask(&self, w: usize) -> u64 {
        assert!(w < self.words.len(), "word index {w} out of bounds");
        let tail = self.len % 64;
        if w + 1 == self.words.len() && tail != 0 {
            (1u64 << tail) - 1
        } else {
            u64::MAX
        }
    }

    /// Merges `value` into word `w` under `mask`: bits set in `mask` take
    /// the corresponding bit of `value`, other bits keep their old state.
    ///
    /// # Panics
    ///
    /// Panics if `w` is past the last word or the merge would set bits
    /// beyond `len`.
    #[inline]
    pub fn merge_word(&mut self, w: usize, value: u64, mask: u64) {
        let valid = self.valid_mask(w);
        assert!(mask & !valid == 0, "merge into word {w} writes past the end");
        self.words[w] = (self.words[w] & !mask) | (value & mask);
    }

    /// Fills every whole byte of the vector with `byte`, without an
    /// intermediate buffer. A trailing partial byte (when `len` is not a
    /// multiple of 8) keeps its old bits, matching a byte-granular write
    /// of `len / 8` bytes at offset 0.
    pub fn fill_byte(&mut self, byte: u8) {
        let pattern = (byte as u64).wrapping_mul(0x0101_0101_0101_0101);
        let nbytes = self.len / 8;
        let full_words = nbytes / 8;
        for w in &mut self.words[..full_words] {
            *w = pattern;
        }
        let tail_bytes = nbytes % 8;
        if tail_bytes > 0 {
            let mask = (1u64 << (tail_bytes * 8)) - 1;
            let w = &mut self.words[full_words];
            *w = (*w & !mask) | (pattern & mask);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits, in `[0, 1]`; `0` for an empty vector.
    pub fn ones_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Copies `bytes` into the vector starting at bit `bit_offset`
    /// (must be byte-aligned: a multiple of 8).
    ///
    /// # Panics
    ///
    /// Panics if `bit_offset` is not a multiple of 8 or the copy runs past
    /// the end of the vector.
    pub fn copy_bytes_in(&mut self, bit_offset: usize, bytes: &[u8]) {
        assert!(bit_offset.is_multiple_of(8), "bit offset must be byte aligned");
        assert!(
            bit_offset + bytes.len() * 8 <= self.len,
            "copy of {} bytes at bit {} exceeds {} bits",
            bytes.len(),
            bit_offset,
            self.len
        );
        for (k, &byte) in bytes.iter().enumerate() {
            let bit = bit_offset + k * 8;
            let word = bit / 64;
            let shift = bit % 64;
            self.words[word] = (self.words[word] & !(0xffu64 << shift)) | ((byte as u64) << shift);
        }
    }

    /// Reads `len` bytes starting at bit `bit_offset` (byte-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `bit_offset` is not a multiple of 8 or the read runs past
    /// the end of the vector.
    pub fn bytes_at(&self, bit_offset: usize, len: usize) -> Vec<u8> {
        assert!(bit_offset.is_multiple_of(8), "bit offset must be byte aligned");
        assert!(
            bit_offset + len * 8 <= self.len,
            "read of {len} bytes at bit {bit_offset} exceeds {} bits",
            self.len
        );
        (0..len)
            .map(|k| {
                let bit = bit_offset + k * 8;
                ((self.words[bit / 64] >> (bit % 64)) & 0xff) as u8
            })
            .collect()
    }

    /// The whole vector as bytes (`len` rounded up to a whole byte).
    pub fn to_bytes(&self) -> Vec<u8> {
        (0..self.len.div_ceil(8))
            .map(|k| {
                let bit = k * 8;
                ((self.words[bit / 64] >> (bit % 64)) & 0xff) as u8
            })
            .collect()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &PackedBits) -> usize {
        assert_eq!(self.len, other.len, "hamming distance needs equal lengths");
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Fractional Hamming distance to `other`, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn fractional_hamming(&self, other: &PackedBits) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.hamming(other) as f64 / self.len as f64
    }

    /// Hamming distance computed over consecutive windows of `window` bits
    /// (the last window may be shorter). This is the Figure 10 series.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or `window` is zero.
    pub fn windowed_hamming(&self, other: &PackedBits, window: usize) -> Vec<usize> {
        assert_eq!(self.len, other.len, "windowed hamming needs equal lengths");
        assert!(window > 0, "window must be positive");
        // Word-parallel: xor whole words and popcount the span of each
        // window inside them, instead of testing bits one at a time.
        // Tail bits beyond `len` are zero in both images by invariant,
        // so the xor never needs masking past the live length.
        let mut out = Vec::with_capacity(self.len.div_ceil(window));
        let mut acc = 0usize; // mismatches in the current window so far
        let mut in_win = 0usize; // bits of the current window consumed
        let mut seen = 0usize; // live bits consumed overall
        for (a, b) in self.words.iter().zip(&other.words) {
            let mut x = a ^ b;
            let mut avail = 64.min(self.len - seen);
            seen += avail;
            while avail > 0 {
                let take = (window - in_win).min(avail);
                if take >= 64 {
                    acc += x.count_ones() as usize;
                    x = 0;
                } else {
                    acc += (x & ((1u64 << take) - 1)).count_ones() as usize;
                    x >>= take;
                }
                avail -= take;
                in_win += take;
                if in_win == window {
                    out.push(acc);
                    acc = 0;
                    in_win = 0;
                }
            }
        }
        if in_win > 0 {
            out.push(acc);
        }
        out
    }

    /// Clears any set bits beyond `len` in the final word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = PackedBits::zeros(100);
        let o = PackedBits::ones(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(z.hamming(&o), 100);
        assert!((z.fractional_hamming(&o) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ones_masks_tail_bits() {
        let o = PackedBits::ones(65);
        assert_eq!(o.count_ones(), 65);
        assert_eq!(o.words()[1], 1);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut b = PackedBits::zeros(130);
        for i in (0..130).step_by(7) {
            b.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(b.get(i), i % 7 == 0, "bit {i}");
        }
    }

    #[test]
    fn byte_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        let b = PackedBits::from_bytes(&data);
        assert_eq!(b.len(), 2048);
        assert_eq!(b.to_bytes(), data);
        assert_eq!(b.bytes_at(8 * 10, 5), &data[10..15]);
    }

    #[test]
    fn from_bytes_reusing_matches_from_bytes_and_reuses_storage() {
        // Lengths straddling the 8-byte word granule, including empty.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255] {
            let data: Vec<u8> = (0..len).map(|i| crate::rng::mix64(i as u64) as u8).collect();
            let reference = {
                let mut b = PackedBits::zeros(len * 8);
                b.copy_bytes_in(0, &data);
                b
            };
            assert_eq!(PackedBits::from_bytes(&data), reference, "len {len}");
            let recycled = Vec::with_capacity(64);
            let ptr = recycled.as_ptr();
            let b = PackedBits::from_bytes_reusing(&data, recycled);
            assert_eq!(b, reference, "reusing path, len {len}");
            let words = b.into_words();
            if len > 0 && len <= 64 * 8 {
                assert_eq!(words.as_ptr(), ptr, "fitting buffer must be reused, len {len}");
            }
        }
    }

    #[test]
    fn copy_bytes_at_offset() {
        let mut b = PackedBits::zeros(64 * 8);
        b.copy_bytes_in(8 * 3, &[0xde, 0xad]);
        assert_eq!(b.bytes_at(8 * 3, 2), vec![0xde, 0xad]);
        assert_eq!(b.bytes_at(0, 3), vec![0, 0, 0]);
    }

    #[test]
    fn windowed_hamming_matches_total() {
        let a = PackedBits::from_bytes(&[0xff, 0x00, 0xaa, 0x0f]);
        let b = PackedBits::from_bytes(&[0x00, 0x00, 0x55, 0x0f]);
        let windows = a.windowed_hamming(&b, 8);
        assert_eq!(windows, vec![8, 0, 8, 0]);
        assert_eq!(windows.iter().sum::<usize>(), a.hamming(&b));
    }

    #[test]
    fn windowed_hamming_uneven_tail() {
        let a = PackedBits::ones(10);
        let b = PackedBits::zeros(10);
        assert_eq!(a.windowed_hamming(&b, 8), vec![8, 2]);
    }

    #[test]
    fn windowed_hamming_matches_per_bit_reference() {
        // The word-parallel path against a naive per-bit count, across
        // window sizes that straddle word boundaries every which way.
        let len = 517;
        let mut a = PackedBits::zeros(len);
        let mut b = PackedBits::zeros(len);
        for i in 0..len {
            a.set(i, crate::rng::mix64(i as u64) & 1 == 1);
            b.set(i, crate::rng::mix64(i as u64 ^ 0xb0b) & 2 == 2);
        }
        for window in [1usize, 3, 8, 63, 64, 65, 128, 200, 517, 1000] {
            let got = a.windowed_hamming(&b, window);
            let mut want = Vec::new();
            let mut acc = 0usize;
            for i in 0..len {
                if a.get(i) != b.get(i) {
                    acc += 1;
                }
                if (i + 1) % window == 0 {
                    want.push(acc);
                    acc = 0;
                }
            }
            if !len.is_multiple_of(window) {
                want.push(acc);
            }
            assert_eq!(got, want, "window {window}");
            assert_eq!(got.iter().sum::<usize>(), a.hamming(&b), "window {window} total");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        PackedBits::zeros(8).get(8);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_length_mismatch_panics() {
        PackedBits::zeros(8).hamming(&PackedBits::zeros(9));
    }
}
