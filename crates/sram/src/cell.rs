//! Per-cell stochastic parameters.
//!
//! Process variation gives every 6T cell its own electrical personality.
//! Three quantities matter for the attacks this repository reproduces:
//!
//! * the **power-up bias** — which value the cell resolves to when powered
//!   with no residual charge (the SRAM-PUF effect);
//! * the **data-retention voltage (DRV)** — the minimum supply at which
//!   the cross-coupled inverters keep their state;
//! * the **decay budget** — a lognormal multiplier on the population-median
//!   unpowered retention interval.
//!
//! Parameters are never stored; they are recomputed on demand from the
//! array seed and cell index (see [`crate::rng`]).

use crate::rng::{cell_word, event_word, std_normal, unit_f64, Stream};
use serde::{Deserialize, Serialize};

/// Classification of a cell's power-up behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerUpKind {
    /// The cell reliably powers up as `0`.
    Strong0,
    /// The cell reliably powers up as `1`.
    Strong1,
    /// The cell's power-up value is noisy; `bias` gives P(value = 1).
    Metastable,
}

/// Distribution constants for the default 28–40 nm-class calibration.
///
/// * 35 % of cells are strong-0, 35 % strong-1, 30 % metastable with a
///   uniform bias. Two power-ups of the same array then differ in an
///   expected `0.30 * E[2p(1-p)] = 0.30 / 3 = 10 %` of bits — the ≈0.10
///   fractional Hamming distance the paper reports between a cold-booted
///   cache image and the cache's startup state (Table 1), and the noise
///   level reported in the SRAM-PUF literature.
/// * DRV ~ N(0.30 V, 0.04 V) clamped to \[0.05 V, 0.55 V\]: far below the
///   0.8–1.3 V nominal rails of the evaluated SoCs (Table 3), which is why
///   holding the rail at nominal retains every cell.
/// * Decay budget ~ LogNormal(0, 0.5): combined with the Arrhenius median
///   this yields ≈80 % retention at −110 °C / 20 ms and ≈0 % at −40 °C.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellDistribution {
    /// Fraction of cells that are metastable at power-up.
    pub metastable_fraction: f64,
    /// Mean data-retention voltage in volts.
    pub drv_mean: f64,
    /// Standard deviation of the data-retention voltage in volts.
    pub drv_sigma: f64,
    /// Lower clamp for the data-retention voltage in volts.
    pub drv_min: f64,
    /// Upper clamp for the data-retention voltage in volts.
    pub drv_max: f64,
    /// `sigma` of the lognormal decay-budget multiplier.
    pub decay_sigma: f64,
}

impl CellDistribution {
    /// The default calibration described in the type-level docs.
    pub fn calibrated() -> Self {
        CellDistribution {
            metastable_fraction: 0.30,
            drv_mean: 0.30,
            drv_sigma: 0.04,
            drv_min: 0.05,
            drv_max: 0.55,
            decay_sigma: 0.5,
        }
    }

    /// Expected fractional Hamming distance between two independent
    /// power-ups of the same array.
    pub fn expected_powerup_noise(&self) -> f64 {
        // Metastable cells have bias p ~ U(0,1); two samples differ with
        // probability E[2p(1-p)] = 1/3. Strong cells never differ.
        self.metastable_fraction / 3.0
    }
}

impl Default for CellDistribution {
    fn default() -> Self {
        CellDistribution::calibrated()
    }
}

/// The derived, immutable parameters of a single cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Power-up behaviour class.
    pub powerup: PowerUpKind,
    /// Probability the cell powers up as `1`.
    pub powerup_bias: f64,
    /// Data-retention voltage in volts.
    pub drv: f64,
    /// Multiplier on the population-median unpowered retention interval.
    pub decay_budget: f64,
}

/// Derives only the power-up class and bias of one cell — the exact
/// computation [`CellParams::derive`] performs for that quantity, split
/// out so the batched resolution engine can re-derive a single stream
/// without paying for the other two.
pub(crate) fn derive_powerup(
    seed: u64,
    index: usize,
    dist: &CellDistribution,
) -> (PowerUpKind, f64) {
    let bias_word = cell_word(seed, index, Stream::PowerUpBias);
    let u = unit_f64(bias_word);
    let strong_fraction = 1.0 - dist.metastable_fraction;
    if u < strong_fraction / 2.0 {
        (PowerUpKind::Strong0, 0.0)
    } else if u < strong_fraction {
        (PowerUpKind::Strong1, 1.0)
    } else {
        // Re-mix for an independent uniform bias in (0, 1).
        let bias = unit_f64(crate::rng::mix64(bias_word ^ 0x5bf0_3635));
        (PowerUpKind::Metastable, bias)
    }
}

/// Derives only the data-retention voltage of one cell (see
/// [`derive_powerup`]).
pub(crate) fn derive_drv(seed: u64, index: usize, dist: &CellDistribution) -> f64 {
    let drv_word = cell_word(seed, index, Stream::Drv);
    let z = std_normal(drv_word, crate::rng::mix64(drv_word ^ 0xa5a5));
    (dist.drv_mean + dist.drv_sigma * z).clamp(dist.drv_min, dist.drv_max)
}

/// Derives only the decay budget of one cell (see [`derive_powerup`]).
pub(crate) fn derive_decay_budget(seed: u64, index: usize, dist: &CellDistribution) -> f64 {
    let decay_word = cell_word(seed, index, Stream::DecayBudget);
    let zn = std_normal(decay_word, crate::rng::mix64(decay_word ^ 0x3c3c));
    (dist.decay_sigma * zn).exp()
}

impl CellParams {
    /// Derives the parameters of cell `index` in the array with `seed`.
    pub fn derive(seed: u64, index: usize, dist: &CellDistribution) -> Self {
        let (powerup, powerup_bias) = derive_powerup(seed, index, dist);
        let drv = derive_drv(seed, index, dist);
        let decay_budget = derive_decay_budget(seed, index, dist);
        CellParams { powerup, powerup_bias, drv, decay_budget }
    }

    /// Samples the power-up value for a given power-on `event` counter.
    ///
    /// Strong cells always return their fixed value; metastable cells
    /// resolve randomly (deterministically per event) with their bias.
    pub fn sample_powerup(&self, seed: u64, index: usize, event: u64) -> bool {
        match self.powerup {
            PowerUpKind::Strong0 => false,
            PowerUpKind::Strong1 => true,
            PowerUpKind::Metastable => unit_f64(event_word(seed, index, event)) < self.powerup_bias,
        }
    }

    /// Whether the cell retains state when the rail is held at `voltage`.
    pub fn retains_at(&self, voltage: f64) -> bool {
        voltage >= self.drv
    }

    /// Samples the power-up value of cell `index` without deriving the
    /// full parameter set — the hot path when an entire array is known to
    /// have lost its state (a plain reboot of a megabyte-class cache).
    pub fn sample_powerup_only(
        seed: u64,
        index: usize,
        dist: &CellDistribution,
        event: u64,
    ) -> bool {
        let bias_word = cell_word(seed, index, Stream::PowerUpBias);
        let u = unit_f64(bias_word);
        let strong_fraction = 1.0 - dist.metastable_fraction;
        if u < strong_fraction / 2.0 {
            false
        } else if u < strong_fraction {
            true
        } else {
            let bias = unit_f64(crate::rng::mix64(bias_word ^ 0x5bf0_3635));
            unit_f64(event_word(seed, index, event)) < bias
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize) -> Vec<CellParams> {
        let dist = CellDistribution::calibrated();
        (0..n).map(|i| CellParams::derive(0xfeed, i, &dist)).collect()
    }

    #[test]
    fn derivation_is_deterministic() {
        let dist = CellDistribution::calibrated();
        let a = CellParams::derive(1, 7, &dist);
        let b = CellParams::derive(1, 7, &dist);
        assert_eq!(a, b);
        assert_ne!(a, CellParams::derive(2, 7, &dist));
    }

    #[test]
    fn class_fractions_match_distribution() {
        let cells = params(100_000);
        let meta = cells.iter().filter(|c| c.powerup == PowerUpKind::Metastable).count();
        let ones = cells.iter().filter(|c| c.powerup == PowerUpKind::Strong1).count();
        let zeros = cells.iter().filter(|c| c.powerup == PowerUpKind::Strong0).count();
        assert!((meta as f64 / 100_000.0 - 0.30).abs() < 0.01, "meta {meta}");
        assert!((ones as f64 / 100_000.0 - 0.35).abs() < 0.01, "ones {ones}");
        assert!((zeros as f64 / 100_000.0 - 0.35).abs() < 0.01, "zeros {zeros}");
    }

    #[test]
    fn powerup_ones_fraction_is_half() {
        let cells = params(100_000);
        let ones =
            cells.iter().enumerate().filter(|(i, c)| c.sample_powerup(0xfeed, *i, 0)).count();
        let frac = ones as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01, "ones fraction {frac}");
    }

    #[test]
    fn powerup_noise_is_about_ten_percent() {
        let cells = params(100_000);
        let differing = cells
            .iter()
            .enumerate()
            .filter(|(i, c)| c.sample_powerup(0xfeed, *i, 0) != c.sample_powerup(0xfeed, *i, 1))
            .count();
        let frac = differing as f64 / 100_000.0;
        let expected = CellDistribution::calibrated().expected_powerup_noise();
        assert!((frac - expected).abs() < 0.01, "noise {frac} vs expected {expected}");
    }

    #[test]
    fn drv_is_clamped_and_below_nominal_rails() {
        let dist = CellDistribution::calibrated();
        for c in params(50_000) {
            assert!(c.drv >= dist.drv_min && c.drv <= dist.drv_max, "drv {}", c.drv);
            // Every evaluated rail (0.8 V, 1.2 V, 1.3 V) retains every cell.
            assert!(c.retains_at(0.8));
        }
    }

    #[test]
    fn decay_budget_median_near_one() {
        let mut budgets: Vec<f64> = params(50_000).iter().map(|c| c.decay_budget).collect();
        budgets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = budgets[budgets.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn strong_cells_sample_consistently() {
        let dist = CellDistribution::calibrated();
        for i in 0..1000 {
            let c = CellParams::derive(9, i, &dist);
            if c.powerup != PowerUpKind::Metastable {
                assert_eq!(c.sample_powerup(9, i, 0), c.sample_powerup(9, i, 99));
            }
        }
    }
}
