//! Word-batched, plane-cached resolution engine for power cycles.
//!
//! [`SramArray::power_on`](crate::SramArray::power_on) has to decide, for
//! every cell, whether the off interval preserved its state, and sample a
//! power-up value for every cell that lost it. The scalar reference path
//! re-derives three RNG streams per cell per power cycle; every sweep in
//! the reproduction (temperature grids, countermeasure matrices, probe
//! ablations) runs hundreds of power cycles over the same die, so that
//! inner loop dominates end-to-end wall time.
//!
//! This module replaces it with three layers, each **bit-exact** with the
//! scalar path:
//!
//! 1. **Die planes** ([`DiePlanes`]) — per `(seed, distribution, size)`,
//!    a one-time derivation pass packs the power-up classes into
//!    strong-1/metastable bit masks and quantizes the per-cell DRV,
//!    decay budget, and metastable bias into dense bucket planes. Planes
//!    are memoized on the array and in a bounded global cache, so
//!    repeated cycles of the same die (the common case) derive nothing.
//! 2. **Word kernels** — resolution walks the array 64 cells at a time,
//!    comparing bucket planes against the bucketized query (hold voltage,
//!    accumulated stress) and writing the merged retain/power-up word
//!    straight into [`PackedBits`] words. Only cells whose bucket *equals*
//!    the query bucket fall back to the exact scalar derivation, which
//!    keeps the result identical to the reference path: the bucket maps
//!    are weakly monotone, so an unequal bucket already decides the
//!    comparison, and the rare equal bucket is re-decided exactly.
//! 3. **Sharding** — arrays at or above [`PAR_MIN_BITS`] split their word
//!    range across scoped threads. Every word is a pure function of
//!    `(seed, index, event)`, so the sharding is deterministic and the
//!    thread count ([`crate::par::thread_count`]) never changes results.

use crate::array::OffEvent;
use crate::bits::PackedBits;
use crate::cell::{derive_decay_budget, derive_drv, derive_powerup, CellDistribution, PowerUpKind};
use crate::par;
use crate::rng::{event_word, unit_f64};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Arrays with at least this many bits shard word-range resolution and
/// plane building across threads; smaller arrays stay single-threaded
/// (the per-thread startup cost would exceed the work).
pub const PAR_MIN_BITS: usize = 1 << 20;

/// Total cells the global plane cache may hold before evicting the
/// oldest die (≈9 bytes of plane data per cell).
const MAX_CACHED_CELLS: usize = 48 << 20;

// ---------------------------------------------------------------------
// Quantizers
// ---------------------------------------------------------------------
//
// Each quantizer is a weakly monotone map from the exact f64 quantity to
// a small integer bucket: `x <= y` implies `bucket(x) <= bucket(y)`.
// Strict bucket inequality therefore decides the underlying comparison;
// bucket equality is re-decided by deriving the exact value. This is
// what makes the cached planes bit-exact with the scalar path.

/// Buckets a probability in `[0, 1]` (power-up bias and its uniform
/// sample) onto a 2^16 grid.
#[inline]
fn prob_bucket(p: f64) -> u16 {
    ((p * 65536.0) as u64).min(65535) as u16
}

/// Buckets a positive decay budget (or stress) by the high 32 bits of
/// its IEEE-754 representation, which order-embeds the positive floats.
#[inline]
fn decay_bucket(x: f64) -> u32 {
    (x.to_bits() >> 32) as u32
}

/// Linear bucket grid over the clamped DRV range.
#[derive(Clone, Copy)]
struct DrvGrid {
    min: f64,
    scale: f64,
}

impl DrvGrid {
    fn new(dist: &CellDistribution) -> Self {
        DrvGrid { min: dist.drv_min, scale: 65535.0 / (dist.drv_max - dist.drv_min) }
    }

    #[inline]
    fn bucket(self, v: f64) -> u16 {
        let t = (v - self.min) * self.scale;
        if t <= 0.0 {
            0
        } else if t >= 65535.0 {
            65535
        } else {
            t as u16
        }
    }
}

// ---------------------------------------------------------------------
// Die planes
// ---------------------------------------------------------------------

/// Precomputed, quantized per-cell parameter planes for one die.
///
/// Mask vectors are packed like [`PackedBits`] words (bit `i % 64` of
/// word `i / 64`); bucket planes hold one entry per cell, padded to a
/// whole word so kernels can index without bounds checks.
pub(crate) struct DiePlanes {
    bits: usize,
    /// Cells that power up as a reliable 1.
    strong1: Vec<u64>,
    /// Cells whose power-up value is metastable (re-sampled per event).
    metastable: Vec<u64>,
    /// Quantized power-up bias of each cell.
    bias_q: Vec<u16>,
    /// Quantized data-retention voltage of each cell.
    drv_q: Vec<u16>,
    /// Quantized decay budget of each cell.
    decay_q: Vec<u32>,
}

impl std::fmt::Debug for DiePlanes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiePlanes").field("bits", &self.bits).finish()
    }
}

impl DiePlanes {
    /// Number of cells the planes describe.
    pub(crate) fn bits(&self) -> usize {
        self.bits
    }

    fn cells_capacity(&self) -> usize {
        self.bias_q.len()
    }

    /// Derives the planes for one die, sharding large arrays across
    /// threads.
    fn build(seed: u64, bits: usize, dist: &CellDistribution) -> Self {
        let words = bits.div_ceil(64);
        let cells = words * 64;
        let mut planes = DiePlanes {
            bits,
            strong1: vec![0; words],
            metastable: vec![0; words],
            bias_q: vec![0; cells],
            drv_q: vec![0; cells],
            decay_q: vec![0; cells],
        };
        let grid = DrvGrid::new(dist);
        let threads = par::effective_parallelism();
        if bits < PAR_MIN_BITS || threads <= 1 || words <= 1 {
            build_range(seed, bits, dist, grid, 0, planes.shard_mut(0, words));
            return planes;
        }
        let chunk = words.div_ceil(threads);
        let DiePlanes { strong1, metastable, bias_q, drv_q, decay_q, .. } = &mut planes;
        crossbeam::thread::scope(|s| {
            let mut rest = Shard {
                strong1: strong1.as_mut_slice(),
                metastable: metastable.as_mut_slice(),
                bias_q: bias_q.as_mut_slice(),
                drv_q: drv_q.as_mut_slice(),
                decay_q: decay_q.as_mut_slice(),
            };
            let mut base = 0usize;
            while base < words {
                let take = chunk.min(words - base);
                let (head, tail) = rest.split_at(take);
                rest = tail;
                let word_base = base;
                s.spawn(move |_| build_range(seed, bits, dist, grid, word_base, head));
                base += take;
            }
        })
        .expect("plane build worker panicked");
        planes
    }

    /// A mutable view of `len` words of every plane starting at `word`.
    fn shard_mut(&mut self, word: usize, len: usize) -> Shard<'_> {
        Shard {
            strong1: &mut self.strong1[word..word + len],
            metastable: &mut self.metastable[word..word + len],
            bias_q: &mut self.bias_q[word * 64..(word + len) * 64],
            drv_q: &mut self.drv_q[word * 64..(word + len) * 64],
            decay_q: &mut self.decay_q[word * 64..(word + len) * 64],
        }
    }
}

/// Mutable word-aligned slices of every plane, for parallel building.
struct Shard<'a> {
    strong1: &'a mut [u64],
    metastable: &'a mut [u64],
    bias_q: &'a mut [u16],
    drv_q: &'a mut [u16],
    decay_q: &'a mut [u32],
}

impl<'a> Shard<'a> {
    fn split_at(self, words: usize) -> (Shard<'a>, Shard<'a>) {
        let (s1a, s1b) = self.strong1.split_at_mut(words);
        let (ma, mb) = self.metastable.split_at_mut(words);
        let (ba, bb) = self.bias_q.split_at_mut(words * 64);
        let (da, db) = self.drv_q.split_at_mut(words * 64);
        let (ka, kb) = self.decay_q.split_at_mut(words * 64);
        (
            Shard { strong1: s1a, metastable: ma, bias_q: ba, drv_q: da, decay_q: ka },
            Shard { strong1: s1b, metastable: mb, bias_q: bb, drv_q: db, decay_q: kb },
        )
    }
}

/// Fills one word range of the planes by deriving every cell once.
fn build_range(
    seed: u64,
    bits: usize,
    dist: &CellDistribution,
    grid: DrvGrid,
    word_base: usize,
    shard: Shard<'_>,
) {
    for w in 0..shard.strong1.len() {
        let mut strong1 = 0u64;
        let mut metastable = 0u64;
        for b in 0..64 {
            let cell = (word_base + w) * 64 + b;
            if cell >= bits {
                break;
            }
            let local = w * 64 + b;
            let (kind, bias) = derive_powerup(seed, cell, dist);
            match kind {
                PowerUpKind::Strong0 => {}
                PowerUpKind::Strong1 => strong1 |= 1 << b,
                PowerUpKind::Metastable => metastable |= 1 << b,
            }
            shard.bias_q[local] = prob_bucket(bias);
            shard.drv_q[local] = grid.bucket(derive_drv(seed, cell, dist));
            shard.decay_q[local] = decay_bucket(derive_decay_budget(seed, cell, dist));
        }
        shard.strong1[w] = strong1;
        shard.metastable[w] = metastable;
    }
}

// ---------------------------------------------------------------------
// Global plane cache
// ---------------------------------------------------------------------

type PlaneKey = (u64, usize, [u64; 6]);

fn plane_key(seed: u64, bits: usize, dist: &CellDistribution) -> PlaneKey {
    (
        seed,
        bits,
        [
            dist.metastable_fraction.to_bits(),
            dist.drv_mean.to_bits(),
            dist.drv_sigma.to_bits(),
            dist.drv_min.to_bits(),
            dist.drv_max.to_bits(),
            dist.decay_sigma.to_bits(),
        ],
    )
}

static PLANE_CACHE: Mutex<VecDeque<(PlaneKey, Arc<DiePlanes>)>> = Mutex::new(VecDeque::new());

/// Returns the memoized planes for one die, building them on first use,
/// plus whether the planes were served from the cache (`true`) or had
/// to be derived (`false`) — the campaign telemetry layer reports this
/// as plane-cache hit/miss counters.
///
/// The cache is keyed by `(seed, size, distribution)` and bounded by
/// total cells; the oldest die is evicted first. Building happens
/// outside the lock so concurrent arrays (e.g. every cache of a SoC
/// powering on in parallel) never serialize on each other's builds.
pub(crate) fn planes_for(
    seed: u64,
    bits: usize,
    dist: &CellDistribution,
) -> (Arc<DiePlanes>, bool) {
    let key = plane_key(seed, bits, dist);
    if let Some(found) = PLANE_CACHE
        .lock()
        .expect("plane cache poisoned")
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, p)| p.clone())
    {
        return (found, true);
    }
    let built = Arc::new(DiePlanes::build(seed, bits, dist));
    let mut cache = PLANE_CACHE.lock().expect("plane cache poisoned");
    if let Some(found) = cache.iter().find(|(k, _)| *k == key).map(|(_, p)| p.clone()) {
        return (found, true);
    }
    cache.push_back((key, built.clone()));
    let mut total: usize = cache.iter().map(|(_, p)| p.cells_capacity()).sum();
    while total > MAX_CACHED_CELLS && cache.len() > 1 {
        if let Some((_, evicted)) = cache.pop_front() {
            total -= evicted.cells_capacity();
        }
    }
    (built, false)
}

/// Drops every memoized plane (used by benchmarks to measure the cold,
/// plane-building first cycle separately from warm cycles).
pub fn clear_plane_cache() {
    PLANE_CACHE.lock().expect("plane cache poisoned").clear();
}

// ---------------------------------------------------------------------
// Queries and kernels
// ---------------------------------------------------------------------

/// Whether the batched kernels can represent this query exactly. The
/// kernels assume a sane bucket grid and finite, non-NaN comparisons;
/// anything else (a degenerate custom distribution, a NaN hold voltage)
/// routes to the scalar path, which defines the semantics.
pub(crate) fn can_batch(dist: &CellDistribution, event: OffEvent, stress: f64) -> bool {
    let grid_ok = dist.drv_min.is_finite()
        && dist.drv_max.is_finite()
        && dist.drv_max > dist.drv_min
        && dist.drv_mean.is_finite()
        && dist.drv_sigma.is_finite()
        && dist.decay_sigma.is_finite()
        && dist.metastable_fraction.is_finite();
    let event_ok = match event {
        OffEvent::Unpowered => true,
        OffEvent::Held { voltage, transient_min_voltage } => {
            voltage.is_finite() && transient_min_voltage.is_finite()
        }
    };
    grid_ok && event_ok && !stress.is_nan()
}

/// One power-cycle resolution query, pre-bucketized.
struct Query<'a> {
    seed: u64,
    dist: &'a CellDistribution,
    event_id: u64,
    /// `stress <= 0`: every cell is within its decay budget.
    all_decay_ok: bool,
    stress: f64,
    stress_q: u32,
    /// `None` for an unpowered rail (no DRV check); otherwise the held
    /// threshold `min(steady, transient)` and its bucket.
    hold: Option<HoldQuery>,
}

#[derive(Clone, Copy)]
struct HoldQuery {
    vmin: f64,
    vmin_q: u16,
    /// `vmin >= drv_max`: every cell retains at this hold level.
    all_pass: bool,
    /// `vmin < drv_min`: no cell retains at this hold level.
    none_pass: bool,
}

impl<'a> Query<'a> {
    fn new(
        seed: u64,
        dist: &'a CellDistribution,
        event: OffEvent,
        stress: f64,
        event_id: u64,
    ) -> Self {
        let hold = match event {
            OffEvent::Unpowered => None,
            OffEvent::Held { voltage, transient_min_voltage } => {
                let vmin = voltage.min(transient_min_voltage);
                Some(HoldQuery {
                    vmin,
                    vmin_q: DrvGrid::new(dist).bucket(vmin),
                    all_pass: vmin >= dist.drv_max,
                    none_pass: vmin < dist.drv_min,
                })
            }
        };
        Query {
            seed,
            dist,
            event_id,
            all_decay_ok: stress <= 0.0,
            stress,
            stress_q: decay_bucket(stress),
            hold,
        }
    }
}

/// Resolves one word: decides retention for its 64 cells, samples
/// power-up values for the lost ones, and returns the merged word plus
/// the retained count.
#[inline]
fn resolve_word(
    old: u64,
    valid: u64,
    word: usize,
    planes: &DiePlanes,
    q: &Query<'_>,
) -> (u64, u32) {
    let base = word * 64;

    // Decay check: stress <= budget.
    let decay_ok = if q.all_decay_ok {
        valid
    } else {
        let dq = &planes.decay_q[base..base + 64];
        let mut gt = 0u64;
        let mut eq = 0u64;
        for (b, &c) in dq.iter().enumerate() {
            gt |= ((c > q.stress_q) as u64) << b;
            eq |= ((c == q.stress_q) as u64) << b;
        }
        let mut ok = gt;
        let mut boundary = eq & valid;
        while boundary != 0 {
            let b = boundary.trailing_zeros() as usize;
            let budget = derive_decay_budget(q.seed, base + b, q.dist);
            if q.stress <= budget {
                ok |= 1 << b;
            } else {
                ok &= !(1 << b);
            }
            boundary &= boundary - 1;
        }
        ok & valid
    };

    // DRV check: min(hold voltage, transient minimum) >= drv.
    let keep = match q.hold {
        None => decay_ok,
        Some(h) if h.all_pass => decay_ok,
        Some(h) if h.none_pass => 0,
        Some(h) => {
            let vq = &planes.drv_q[base..base + 64];
            let mut lt = 0u64;
            let mut eq = 0u64;
            for (b, &c) in vq.iter().enumerate() {
                lt |= ((c < h.vmin_q) as u64) << b;
                eq |= ((c == h.vmin_q) as u64) << b;
            }
            let mut drv_ok = lt;
            let mut boundary = eq & decay_ok;
            while boundary != 0 {
                let b = boundary.trailing_zeros() as usize;
                if h.vmin >= derive_drv(q.seed, base + b, q.dist) {
                    drv_ok |= 1 << b;
                }
                boundary &= boundary - 1;
            }
            drv_ok & decay_ok
        }
    };

    let lost = valid & !keep;
    if lost == 0 {
        return (old, keep.count_ones());
    }
    let value = powerup_word(lost, word, planes, q.seed, q.dist, q.event_id);
    ((old & !lost) | value, keep.count_ones())
}

/// Samples power-up values for the cells of `mask` within `word`:
/// strong-1 cells read 1, strong-0 cells read 0, metastable cells are
/// re-sampled per power-on event.
#[inline]
fn powerup_word(
    mask: u64,
    word: usize,
    planes: &DiePlanes,
    seed: u64,
    dist: &CellDistribution,
    event_id: u64,
) -> u64 {
    let mut value = planes.strong1[word] & mask;
    let mut meta = planes.metastable[word] & mask;
    while meta != 0 {
        let b = meta.trailing_zeros() as usize;
        let cell = word * 64 + b;
        let u = unit_f64(event_word(seed, cell, event_id));
        let uq = prob_bucket(u);
        let bq = planes.bias_q[cell];
        let one = if uq != bq { uq < bq } else { u < derive_powerup(seed, cell, dist).1 };
        if one {
            value |= 1 << b;
        }
        meta &= meta - 1;
    }
    value
}

/// Resolves a full power cycle against the planes, writing power-up
/// samples for lost cells directly into `data`'s words. Returns the
/// number of retained cells.
pub(crate) fn resolve(
    data: &mut PackedBits,
    planes: &DiePlanes,
    seed: u64,
    dist: &CellDistribution,
    event: OffEvent,
    stress: f64,
    event_id: u64,
) -> usize {
    let q = Query::new(seed, dist, event, stress, event_id);
    run_words(data, planes.bits(), |words, word_base| {
        let mut retained = 0usize;
        for (k, w) in words.iter_mut().enumerate() {
            let word = word_base + k;
            let valid = valid_mask(planes.bits(), word);
            let (new, kept) = resolve_word(*w, valid, word, planes, &q);
            *w = new;
            retained += kept as usize;
        }
        retained
    })
}

/// Samples a fresh power-up state for every cell (the first power-on and
/// the certainly-lost fast path). Bit-exact with per-cell
/// [`CellParams::sample_powerup_only`](crate::CellParams::sample_powerup_only).
pub(crate) fn sample_all(
    data: &mut PackedBits,
    planes: &DiePlanes,
    seed: u64,
    dist: &CellDistribution,
    event_id: u64,
) {
    run_words(data, planes.bits(), |words, word_base| {
        for (k, w) in words.iter_mut().enumerate() {
            let word = word_base + k;
            let valid = valid_mask(planes.bits(), word);
            *w = powerup_word(valid, word, planes, seed, dist, event_id);
        }
        0usize
    });
}

#[inline]
fn valid_mask(bits: usize, word: usize) -> u64 {
    let tail = bits % 64;
    if tail != 0 && word == bits / 64 {
        (1u64 << tail) - 1
    } else {
        u64::MAX
    }
}

/// The number of workers the batched engine actually uses to resolve an
/// array of `bits` cells from the calling thread: 1 below the
/// [`PAR_MIN_BITS`] sharding threshold or under an exhausted
/// [`par::with_budget`] budget, otherwise the shard count `run_words`
/// splits the word vector into (which can fall short of the pool size
/// for short arrays). Bench snapshots report this instead of the raw
/// pool size so the recorded thread count matches what ran.
pub fn resolution_workers(bits: usize) -> usize {
    let words = bits.div_ceil(64);
    let threads = par::effective_parallelism();
    if bits < PAR_MIN_BITS || threads <= 1 || words <= 1 {
        return 1;
    }
    words.div_ceil(words.div_ceil(threads))
}

/// Runs `kernel` over the array's words, sharding across scoped threads
/// when the array is large enough, and sums the per-shard results.
fn run_words<F>(data: &mut PackedBits, bits: usize, kernel: F) -> usize
where
    F: Fn(&mut [u64], usize) -> usize + Sync,
{
    let words = data.words_mut();
    let threads = par::effective_parallelism();
    if bits < PAR_MIN_BITS || threads <= 1 || words.len() <= 1 {
        return kernel(words, 0);
    }
    let chunk = words.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        let kernel = &kernel;
        words
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, ws)| s.spawn(move |_| kernel(ws, i * chunk)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("resolution worker panicked"))
            .sum()
    })
    .expect("resolution scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_bucket_orders_consistently() {
        for i in 0..10_000u64 {
            let u = crate::rng::unit_f64(crate::rng::mix64(i));
            let v = crate::rng::unit_f64(crate::rng::mix64(i ^ 0x1234));
            let (bu, bv) = (prob_bucket(u), prob_bucket(v));
            if bu < bv {
                assert!(u < v);
            } else if bu > bv {
                assert!(u > v);
            }
        }
        assert_eq!(prob_bucket(1.0), 65535);
        assert_eq!(prob_bucket(0.0), 0);
    }

    #[test]
    fn decay_bucket_orders_positive_floats() {
        let xs = [1e-300, 0.003, 0.5, 1.0, 1.0000001, 17.0, 1e12, f64::INFINITY];
        for w in xs.windows(2) {
            assert!(decay_bucket(w[0]) <= decay_bucket(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn drv_grid_is_weakly_monotone() {
        let dist = CellDistribution::calibrated();
        let g = DrvGrid::new(&dist);
        let mut prev = g.bucket(0.0);
        let mut v = 0.0;
        while v < 0.7 {
            let b = g.bucket(v);
            assert!(b >= prev);
            prev = b;
            v += 1.37e-4;
        }
    }

    #[test]
    fn plane_cache_memoizes_and_evicts() {
        clear_plane_cache();
        let dist = CellDistribution::calibrated();
        let (a, a_hit) = planes_for(1, 4096, &dist);
        let (b, b_hit) = planes_for(1, 4096, &dist);
        assert!(Arc::ptr_eq(&a, &b), "same die must be served from cache");
        assert!(!a_hit, "first fetch builds");
        assert!(b_hit, "second fetch hits");
        let (c, c_hit) = planes_for(2, 4096, &dist);
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!c_hit);
        clear_plane_cache();
    }
}
