//! Bit-sliced, plane-cached resolution engine for power cycles.
//!
//! [`SramArray::power_on`](crate::SramArray::power_on) has to decide, for
//! every cell, whether the off interval preserved its state, and sample a
//! power-up value for every cell that lost it. The scalar reference path
//! re-derives three RNG streams per cell per power cycle; every sweep in
//! the reproduction (temperature grids, countermeasure matrices, probe
//! ablations) runs hundreds of power cycles over the same die, so that
//! inner loop dominates end-to-end wall time.
//!
//! This module replaces it with three layers, each **bit-exact** with the
//! scalar path:
//!
//! 1. **Die planes** ([`DiePlanes`]) — per `(seed, distribution, size)`,
//!    a one-time derivation pass quantizes every cell's decay budget and
//!    DRV onto 14- and 12-bit grids and *transposes* the buckets into
//!    bit-sliced tiles: struct-of-arrays blocks of [`TILE_WORDS`] words
//!    × 28 rows (14 decay bit-planes, 12 DRV bit-planes, strong-1,
//!    metastable), each tile 14 KiB and L1-resident while its 4096
//!    cells resolve. The grid widths trade exact-fallback volume
//!    against memory traffic: each extra bit-plane row streams another
//!    ~0.13 bytes per cell per cycle, while each bit *removed* doubles
//!    the (cheap, exact) bucket-tie fallback rate — these widths keep
//!    ties in the low thousands per megabyte while the warm cycle stays
//!    bandwidth-lean.
//!    Planes are memoized on the array and in a bounded global cache, so
//!    repeated cycles of the same die (the common case) derive nothing.
//! 2. **Lane kernels** — resolution is pure mask algebra over the bucket
//!    planes: an MSB-first eq-prefix scan compares 64 cells per row
//!    operation (~2 ALU ops per row, 12 rows), and the const-generic
//!    [`resolve_chunk`] widens that to 256-bit effective lanes by
//!    processing four consecutive words per step. Only cells whose
//!    bucket *equals* the query bucket fall back to the exact scalar
//!    derivation, which keeps the result identical to the reference
//!    path: the bucket maps are weakly monotone, so an unequal bucket
//!    already decides the comparison, and the rare equal bucket is
//!    re-decided exactly.
//! 3. **Sharding** — arrays at or above [`PAR_MIN_BITS`] split their word
//!    range across scoped threads on tile-aligned boundaries. Every word
//!    is a pure function of `(seed, index, event)`, so the sharding is
//!    deterministic and the thread count ([`crate::par::thread_count`])
//!    never changes results.

use crate::array::OffEvent;
use crate::bits::PackedBits;
use crate::cell::{derive_decay_budget, derive_drv, derive_powerup, CellDistribution, PowerUpKind};
use crate::par;
use crate::rng::{event_word_at, unit_f64};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

/// Arrays with at least this many bits shard word-range resolution and
/// plane building across threads; smaller arrays stay single-threaded.
/// The bit-sliced kernels resolve a word in a few nanoseconds, so the
/// break-even point sits well above the old per-cell engine's — spawning
/// scoped threads for anything under half a megabyte costs more than it
/// saves.
pub const PAR_MIN_BITS: usize = 1 << 22;

/// Words per tile (4096 cells). One tile's 28 rows occupy 14 KiB — the
/// whole working set of a resolution step fits in L1.
pub(crate) const TILE_WORDS: usize = 64;

/// Cells per tile.
const TILE_CELLS: usize = TILE_WORDS * 64;

/// Bits in the decay-budget bucket grid (one bit-plane row each).
///
/// Wider than the DRV grid on purpose: a decay bucket tie re-derives
/// `exp(sigma * z)` — a Box–Muller normal plus an `exp`, ~100 ns — and
/// every unpowered cycle pays the tie volume, so two extra rows of
/// streamed plane traffic buy a 4× cut in that fallback.
const DECAY_BITS: usize = 14;

/// Bits in the DRV bucket grid (one bit-plane row each). DRV rows are
/// only scanned by held-rail queries and their tie fallback is a single
/// normal draw, so the narrower grid wins back plane memory.
const DRV_BITS: usize = 12;

/// Rows per tile: 14 decay bit-planes, 12 DRV bit-planes, strong-1,
/// metastable.
const TILE_ROWS: usize = DECAY_BITS + DRV_BITS + 2;

/// First decay bit-plane row (row `r` holds bit `DECAY_BITS - 1 - r` of
/// every cell's decay bucket — MSB first, matching the compare scan
/// order).
const DECAY_ROW0: usize = 0;

/// First DRV bit-plane row (same MSB-first layout).
const DRV_ROW0: usize = DECAY_BITS;

/// Row of the strong-1 power-up mask.
const STRONG1_ROW: usize = DECAY_BITS + DRV_BITS;

/// Row of the metastable power-up mask.
const META_ROW: usize = STRONG1_ROW + 1;

/// Total cells the global plane cache may hold before evicting the
/// oldest die (≈4.3 bytes of plane data per cell, plus one 32 KiB cut
/// table per die).
const MAX_CACHED_CELLS: usize = 48 << 20;

// ---------------------------------------------------------------------
// Quantizers
// ---------------------------------------------------------------------
//
// Each quantizer is a weakly monotone map from the exact f64 quantity to
// a small bucket: `x <= y` implies `bucket(x) <= bucket(y)`. Strict
// bucket inequality therefore decides the underlying comparison; bucket
// equality is re-decided by deriving the exact value. This is what makes
// the cached planes bit-exact with the scalar path.

/// Buckets a probability in `[0, 1]` (power-up bias and its uniform
/// sample) onto a 2^8 grid.
///
/// Multiplying a finite f64 by a power of two is exact, so this is the
/// true floor of `p * 256` — which makes the bucket of a uniform sample
/// `u = unit_f64(w)` recoverable straight from the random word's top
/// byte (`w >> 56`) with no float arithmetic at all; the hot power-up
/// sampler relies on that identity (tested below). Eight bits keeps the
/// per-cell bias plane at one byte — the plane is read at sparse,
/// data-dependent offsets, so its cache traffic is what the grid width
/// actually buys — while ties (≈1/256 of draws) re-derive exactly.
#[inline]
fn prob_bucket(p: f64) -> u8 {
    ((p * 256.0) as u64).min(255) as u8
}

/// Number of cut points in a [`DecayCuts`] table (one fewer than the
/// number of buckets, so every bucket index fits in [`DECAY_BITS`] bits).
const DECAY_CUTS: usize = (1 << DECAY_BITS) - 1;

/// Half-width of the standard-normal grid the cuts are placed on. The
/// decay budget is `exp(sigma * z)` with `z` standard normal, so cuts at
/// `exp(sigma * z_i)` for `z_i` linear over `[-8, 8]` spread the budget
/// distribution's entire plausible mass across the 2^12 buckets; the
/// astronomically rare `|z| > 8` tail lands in the end buckets and is
/// re-decided exactly like any other bucket tie.
const DECAY_Z_SPAN: f64 = 8.0;

/// Sorted cut table bucketing positive decay budgets (and the query's
/// accumulated stress) onto a 2^12 grid.
///
/// `bucket(x)` is the number of cuts `<= x` — a [`partition_point`] over
/// a sorted table, which is weakly monotone *by construction*, with no
/// assumption about floating-point rounding in the cut values
/// themselves: if `bucket(x) < bucket(y)` then the cut at index
/// `bucket(x)` satisfies `x < cut <= y`, so `x < y`. A degenerate
/// distribution (e.g. `decay_sigma == 0` collapsing every cut to 1.0)
/// only collapses buckets, which routes more cells through the exact
/// fallback — slower, never wrong.
///
/// [`partition_point`]: slice::partition_point
struct DecayCuts {
    cuts: Vec<f64>,
}

impl DecayCuts {
    fn new(decay_sigma: f64) -> Self {
        let mut cuts = Vec::with_capacity(DECAY_CUTS);
        let mut hi = f64::NEG_INFINITY;
        for i in 0..DECAY_CUTS {
            let z = -DECAY_Z_SPAN + 2.0 * DECAY_Z_SPAN * (i as f64) / ((DECAY_CUTS - 1) as f64);
            // The running max forces the table sorted even if `exp`
            // rounding were non-monotone somewhere.
            hi = hi.max((decay_sigma * z).exp());
            cuts.push(hi);
        }
        DecayCuts { cuts }
    }

    #[inline]
    fn bucket(&self, x: f64) -> u16 {
        self.cuts.partition_point(|c| *c <= x) as u16
    }
}

/// Linear bucket grid over the clamped DRV range.
#[derive(Clone, Copy)]
struct DrvGrid {
    min: f64,
    scale: f64,
}

impl DrvGrid {
    const MAX: f64 = ((1 << DRV_BITS) - 1) as f64;

    fn new(dist: &CellDistribution) -> Self {
        DrvGrid { min: dist.drv_min, scale: Self::MAX / (dist.drv_max - dist.drv_min) }
    }

    #[inline]
    fn bucket(self, v: f64) -> u16 {
        let t = (v - self.min) * self.scale;
        if t <= 0.0 {
            0
        } else if t >= Self::MAX {
            (1 << DRV_BITS) - 1
        } else {
            t as u16
        }
    }
}

// ---------------------------------------------------------------------
// Die planes
// ---------------------------------------------------------------------

/// Precomputed, bit-sliced per-cell parameter planes for one die.
///
/// The flat `tiles` vector holds `n_tiles × TILE_ROWS × TILE_WORDS`
/// words: tile `t`'s row `r` occupies
/// `tiles[(t * TILE_ROWS + r) * TILE_WORDS ..][.. TILE_WORDS]`, and bit
/// `b` of word `j` in a row describes cell `(t * TILE_WORDS + j) * 64 +
/// b`. Rows `0..12` are the decay-bucket bit-planes (MSB first), rows
/// `12..24` the DRV bit-planes, row 24 the strong-1 mask, row 25 the
/// metastable mask. The metastable power-up bias stays a flat per-cell
/// byte plane — it is only read for the small minority of lost
/// metastable cells, whose per-event RNG sampling is inherently
/// per-cell.
pub(crate) struct DiePlanes {
    bits: usize,
    /// Bit-sliced tile data (see the struct docs for the layout).
    tiles: Vec<u64>,
    /// Quantized power-up bias of each cell, padded to whole tiles.
    bias_q: Vec<u8>,
    /// The decay-budget cut table (also buckets the query's stress).
    decay_cuts: DecayCuts,
}

impl std::fmt::Debug for DiePlanes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiePlanes").field("bits", &self.bits).finish()
    }
}

impl DiePlanes {
    /// Number of cells the planes describe.
    pub(crate) fn bits(&self) -> usize {
        self.bits
    }

    /// All [`TILE_ROWS`] rows of tile `t`.
    #[inline]
    fn tile(&self, t: usize) -> &[u64] {
        &self.tiles[t * TILE_ROWS * TILE_WORDS..][..TILE_ROWS * TILE_WORDS]
    }

    /// Derives the planes for one die, sharding large arrays across
    /// threads on tile boundaries.
    fn build(seed: u64, bits: usize, dist: &CellDistribution) -> Self {
        let n_tiles = bits.div_ceil(64).div_ceil(TILE_WORDS);
        let decay_cuts = DecayCuts::new(dist.decay_sigma);
        let mut tiles = vec![0u64; n_tiles * TILE_ROWS * TILE_WORDS];
        let mut bias_q = vec![0u8; n_tiles * TILE_CELLS];
        let grid = DrvGrid::new(dist);
        let threads = par::effective_parallelism();
        if bits < PAR_MIN_BITS || threads <= 1 || n_tiles <= 1 {
            build_tiles(seed, bits, dist, grid, &decay_cuts, 0, &mut tiles, &mut bias_q);
        } else {
            let per_shard = n_tiles.div_ceil(threads);
            std::thread::scope(|s| {
                let tile_chunks = tiles.chunks_mut(per_shard * TILE_ROWS * TILE_WORDS);
                let bias_chunks = bias_q.chunks_mut(per_shard * TILE_CELLS);
                for (i, (tc, bc)) in tile_chunks.zip(bias_chunks).enumerate() {
                    let cuts = &decay_cuts;
                    s.spawn(move || {
                        build_tiles(seed, bits, dist, grid, cuts, i * per_shard, tc, bc)
                    });
                }
            });
        }
        DiePlanes { bits, tiles, bias_q, decay_cuts }
    }
}

/// Fills a run of tiles starting at `tile_base` by deriving every cell
/// once and transposing its bucket bits into the row bit-planes.
#[allow(clippy::too_many_arguments)]
fn build_tiles(
    seed: u64,
    bits: usize,
    dist: &CellDistribution,
    grid: DrvGrid,
    cuts: &DecayCuts,
    tile_base: usize,
    tiles: &mut [u64],
    bias_q: &mut [u8],
) {
    for (ti, tile) in tiles.chunks_mut(TILE_ROWS * TILE_WORDS).enumerate() {
        let word0 = (tile_base + ti) * TILE_WORDS;
        for j in 0..TILE_WORDS {
            let mut strong1 = 0u64;
            let mut metastable = 0u64;
            for b in 0..64 {
                let cell = (word0 + j) * 64 + b;
                if cell >= bits {
                    break;
                }
                let (kind, bias) = derive_powerup(seed, cell, dist);
                match kind {
                    PowerUpKind::Strong0 => {}
                    PowerUpKind::Strong1 => strong1 |= 1 << b,
                    PowerUpKind::Metastable => metastable |= 1 << b,
                }
                bias_q[ti * TILE_CELLS + j * 64 + b] = prob_bucket(bias);
                let vq = grid.bucket(derive_drv(seed, cell, dist));
                let dq = cuts.bucket(derive_decay_budget(seed, cell, dist));
                for r in 0..DECAY_BITS {
                    tile[(DECAY_ROW0 + r) * TILE_WORDS + j] |=
                        u64::from((dq >> (DECAY_BITS - 1 - r)) & 1) << b;
                }
                for r in 0..DRV_BITS {
                    tile[(DRV_ROW0 + r) * TILE_WORDS + j] |=
                        u64::from((vq >> (DRV_BITS - 1 - r)) & 1) << b;
                }
            }
            tile[STRONG1_ROW * TILE_WORDS + j] = strong1;
            tile[META_ROW * TILE_WORDS + j] = metastable;
        }
    }
}

// ---------------------------------------------------------------------
// Global plane cache
// ---------------------------------------------------------------------

type PlaneKey = (u64, usize, [u64; 6]);

/// A cache slot: inserted under the lock *before* building, so exactly
/// one thread ever derives a given die — concurrent requesters block on
/// the same [`OnceLock`] instead of racing duplicate builds.
type PlaneSlot = Arc<OnceLock<Arc<DiePlanes>>>;

fn plane_key(seed: u64, bits: usize, dist: &CellDistribution) -> PlaneKey {
    (
        seed,
        bits,
        [
            dist.metastable_fraction.to_bits(),
            dist.drv_mean.to_bits(),
            dist.drv_sigma.to_bits(),
            dist.drv_min.to_bits(),
            dist.drv_max.to_bits(),
            dist.decay_sigma.to_bits(),
        ],
    )
}

/// Plane cells a key will occupy once built, padded to whole tiles —
/// derivable from the key alone, so eviction accounting never has to
/// wait for (or lock around) a slot that is still building.
fn key_cells(key: &PlaneKey) -> usize {
    key.1.div_ceil(TILE_CELLS) * TILE_CELLS
}

static PLANE_CACHE: Mutex<VecDeque<(PlaneKey, PlaneSlot)>> = Mutex::new(VecDeque::new());

/// Returns the memoized planes for one die, building them on first use,
/// plus whether this call was served an existing build (`true`) or had
/// to derive the planes itself (`false`) — the campaign telemetry layer
/// reports this as plane-cache hit/miss counters.
///
/// The cache is keyed by `(seed, size, distribution)` and bounded by
/// total cells; the oldest die is evicted first. The slot for a key is
/// inserted under the lock but *built* outside it, so a long derivation
/// never serializes unrelated dies — and because the slot is a
/// [`OnceLock`], concurrent requests for the *same* die block on one
/// build instead of each deriving a private copy (and instead of the
/// insert-last-wins race the double-checked scheme used to have, where
/// an eviction between the two checks could drop a freshly built die).
pub(crate) fn planes_for(
    seed: u64,
    bits: usize,
    dist: &CellDistribution,
) -> (Arc<DiePlanes>, bool) {
    let key = plane_key(seed, bits, dist);
    let slot: PlaneSlot = {
        let mut cache = PLANE_CACHE.lock().expect("plane cache poisoned");
        if let Some((_, s)) = cache.iter().find(|(k, _)| *k == key) {
            s.clone()
        } else {
            let s: PlaneSlot = Arc::new(OnceLock::new());
            cache.push_back((key, s.clone()));
            let mut total: usize = cache.iter().map(|(k, _)| key_cells(k)).sum();
            while total > MAX_CACHED_CELLS && cache.len() > 1 {
                if let Some((evicted, _)) = cache.pop_front() {
                    total -= key_cells(&evicted);
                }
            }
            s
        }
    };
    let mut built_here = false;
    let planes = slot
        .get_or_init(|| {
            built_here = true;
            Arc::new(DiePlanes::build(seed, bits, dist))
        })
        .clone();
    (planes, !built_here)
}

/// Drops every memoized plane (used by benchmarks to measure the cold,
/// plane-building first cycle separately from warm cycles).
pub fn clear_plane_cache() {
    PLANE_CACHE.lock().expect("plane cache poisoned").clear();
}

// ---------------------------------------------------------------------
// Queries and kernels
// ---------------------------------------------------------------------

/// Whether the batched kernels can represent this query exactly. The
/// kernels assume a sane bucket grid and finite, non-NaN comparisons;
/// anything else (a degenerate custom distribution, a NaN hold voltage)
/// routes to the scalar path, which defines the semantics.
pub(crate) fn can_batch(dist: &CellDistribution, event: OffEvent, stress: f64) -> bool {
    let grid_ok = dist.drv_min.is_finite()
        && dist.drv_max.is_finite()
        && dist.drv_max > dist.drv_min
        && dist.drv_mean.is_finite()
        && dist.drv_sigma.is_finite()
        && dist.decay_sigma.is_finite()
        && dist.metastable_fraction.is_finite();
    let event_ok = match event {
        OffEvent::Unpowered => true,
        OffEvent::Held { voltage, transient_min_voltage } => {
            voltage.is_finite() && transient_min_voltage.is_finite()
        }
    };
    grid_ok && event_ok && !stress.is_nan()
}

/// One power-cycle resolution query, pre-bucketized against the die's
/// quantizer grids.
struct Query<'a> {
    seed: u64,
    dist: &'a CellDistribution,
    /// Hoisted cell-independent half of the per-event RNG word
    /// ([`crate::rng::event_base`]) — the power-up sampler finishes it
    /// with one `event_word_at` per lost metastable cell.
    ev_base: u64,
    /// `stress <= 0`: every cell is within its decay budget.
    all_decay_ok: bool,
    stress: f64,
    stress_q: u16,
    /// `None` for an unpowered rail (no DRV check); otherwise the held
    /// threshold `min(steady, transient)` and its bucket.
    hold: Option<HoldQuery>,
}

#[derive(Clone, Copy)]
struct HoldQuery {
    vmin: f64,
    vmin_q: u16,
    /// `vmin >= drv_max`: every cell retains at this hold level.
    all_pass: bool,
    /// `vmin < drv_min`: no cell retains at this hold level.
    none_pass: bool,
}

impl<'a> Query<'a> {
    fn new(
        seed: u64,
        dist: &'a CellDistribution,
        event: OffEvent,
        stress: f64,
        event_id: u64,
        planes: &DiePlanes,
    ) -> Self {
        let hold = match event {
            OffEvent::Unpowered => None,
            OffEvent::Held { voltage, transient_min_voltage } => {
                let vmin = voltage.min(transient_min_voltage);
                Some(HoldQuery {
                    vmin,
                    vmin_q: DrvGrid::new(dist).bucket(vmin),
                    all_pass: vmin >= dist.drv_max,
                    none_pass: vmin < dist.drv_min,
                })
            }
        };
        Query {
            seed,
            dist,
            ev_base: crate::rng::event_base(seed, event_id),
            all_decay_ok: stress <= 0.0,
            stress,
            stress_q: planes.decay_cuts.bucket(stress),
            hold,
        }
    }
}

/// Compares `BITS` bit-plane rows against the query bucket `t` for `N`
/// consecutive words starting at in-tile word `j`: returns
/// `(gt, eq)` masks where bit `b` of `gt[i]` means the cell's bucket is
/// strictly greater than `t` and `eq[i]` means exactly equal.
///
/// MSB-first eq-prefix scan: walking rows from the bucket MSB down, `eq`
/// tracks cells whose bucket agrees with `t` on every bit seen so far;
/// a 1 where `t` has 0 moves an eq-prefix cell into `gt`, a 0 where `t`
/// has 1 drops it (it is below `t`, decided). Two ALU ops per row per
/// lane — well under one op per cell for the full compare.
#[inline(always)]
fn cmp_grid<const N: usize, const BITS: usize>(
    rows: &[u64],
    j: usize,
    t: u16,
) -> ([u64; N], [u64; N]) {
    let mut gt = [0u64; N];
    let mut eq = [!0u64; N];
    for r in 0..BITS {
        let p: &[u64; N] =
            rows[r * TILE_WORDS + j..r * TILE_WORDS + j + N].try_into().expect("lane width");
        if (t >> (BITS - 1 - r)) & 1 == 1 {
            for i in 0..N {
                eq[i] &= p[i];
            }
        } else {
            for i in 0..N {
                gt[i] |= eq[i] & p[i];
                eq[i] &= !p[i];
            }
        }
    }
    (gt, eq)
}

/// Resolves `N` consecutive words: decides retention for their cells by
/// mask algebra over the tile's bit-planes, samples power-up values for
/// the lost ones, and returns the retained count. The caller guarantees
/// all `N` words lie within one tile (`word0 % TILE_WORDS + N <=
/// TILE_WORDS`).
///
/// `N = 4` is the wide path (a 256-bit effective lane per row
/// operation, unrolled over four `u64`s — portable, no intrinsics);
/// `N = 1` is the word oracle the wide path is tested against and the
/// remainder path at array edges.
#[inline]
fn resolve_chunk<const N: usize>(
    data: &mut [u64; N],
    word0: usize,
    planes: &DiePlanes,
    q: &Query<'_>,
) -> u32 {
    let tile = planes.tile(word0 / TILE_WORDS);
    let j = word0 % TILE_WORDS;
    let valid: [u64; N] = std::array::from_fn(|i| valid_mask(planes.bits, word0 + i));

    // Decay check: stress <= budget. Strict bucket inequality decides;
    // boundary cells (bucket == stress bucket) re-derive exactly. The
    // `eq` mask must shed padding cells (their all-zero planes collide
    // with bucket-0 queries) before the fallback loop.
    let mut keep = valid;
    if !q.all_decay_ok {
        let (gt, eq) = cmp_grid::<N, DECAY_BITS>(&tile[DECAY_ROW0 * TILE_WORDS..], j, q.stress_q);
        for i in 0..N {
            let mut ok = gt[i];
            let mut boundary = eq[i] & valid[i];
            while boundary != 0 {
                let b = boundary.trailing_zeros() as usize;
                let budget = derive_decay_budget(q.seed, (word0 + i) * 64 + b, q.dist);
                if q.stress <= budget {
                    ok |= 1 << b;
                } else {
                    ok &= !(1u64 << b);
                }
                boundary &= boundary - 1;
            }
            keep[i] = ok & valid[i];
        }
    }

    // DRV check: min(hold voltage, transient minimum) >= drv, i.e. the
    // cell's bucket below the query's retains, above loses, equal
    // re-derives. Only cells that passed the decay check fall back.
    match q.hold {
        None => {}
        Some(h) if h.all_pass => {}
        Some(h) if h.none_pass => keep = [0; N],
        Some(h) => {
            let (gt, eq) = cmp_grid::<N, DRV_BITS>(&tile[DRV_ROW0 * TILE_WORDS..], j, h.vmin_q);
            for i in 0..N {
                let mut drv_ok = valid[i] & !gt[i] & !eq[i];
                let mut boundary = eq[i] & keep[i];
                while boundary != 0 {
                    let b = boundary.trailing_zeros() as usize;
                    if h.vmin >= derive_drv(q.seed, (word0 + i) * 64 + b, q.dist) {
                        drv_ok |= 1 << b;
                    }
                    boundary &= boundary - 1;
                }
                keep[i] &= drv_ok;
            }
        }
    }

    let mut retained = 0u32;
    for i in 0..N {
        retained += keep[i].count_ones();
        let lost = valid[i] & !keep[i];
        if lost != 0 {
            let strong1 = tile[STRONG1_ROW * TILE_WORDS + j + i];
            let metastable = tile[META_ROW * TILE_WORDS + j + i];
            let value = powerup_word(
                lost,
                word0 + i,
                strong1,
                metastable,
                planes,
                q.seed,
                q.dist,
                q.ev_base,
            );
            data[i] = (data[i] & !lost) | value;
        }
    }
    retained
}

/// Samples power-up values for the cells of `mask` within `word`:
/// strong-1 cells read 1, strong-0 cells read 0, metastable cells are
/// re-sampled per power-on event. The per-event RNG draw is inherently
/// per-cell; everything around it is mask algebra.
///
/// The per-cell draw is integer-only on the common path: the uniform
/// sample's probability bucket is the random word's top byte (see
/// [`prob_bucket`] for why that identity is exact), so the f64
/// conversion and the exact bias derivation run only on the ~1/256
/// bucket ties. `ev_base` is the hoisted [`crate::rng::event_base`] of
/// the power-on event.
#[inline]
#[allow(clippy::too_many_arguments)]
fn powerup_word(
    mask: u64,
    word: usize,
    strong1: u64,
    metastable: u64,
    planes: &DiePlanes,
    seed: u64,
    dist: &CellDistribution,
    ev_base: u64,
) -> u64 {
    let mut value = strong1 & mask;
    let mut meta = metastable & mask;
    while meta != 0 {
        let b = meta.trailing_zeros() as usize;
        let cell = word * 64 + b;
        let w = event_word_at(ev_base, cell);
        let uq = (w >> 56) as u8;
        let bq = planes.bias_q[cell];
        // The sample outcome is a coin flip — set the bit branchlessly
        // so it never costs a misprediction. Only the tie test branches,
        // and it is taken ~1/256 of the time.
        let one = if uq != bq { uq < bq } else { unit_f64(w) < derive_powerup(seed, cell, dist).1 };
        value |= u64::from(one) << b;
        meta &= meta - 1;
    }
    value
}

/// Resolves a full power cycle against the planes, writing power-up
/// samples for lost cells directly into `data`'s words. Returns the
/// number of retained cells.
///
/// `wide` selects the 4-word (256-bit) lane kernel; `false` forces the
/// single-word oracle everywhere
/// ([`ResolutionMode::BatchedWord`](crate::ResolutionMode::BatchedWord)).
#[allow(clippy::too_many_arguments)]
pub(crate) fn resolve(
    data: &mut PackedBits,
    planes: &DiePlanes,
    seed: u64,
    dist: &CellDistribution,
    event: OffEvent,
    stress: f64,
    event_id: u64,
    wide: bool,
) -> usize {
    let q = Query::new(seed, dist, event, stress, event_id, planes);
    run_words(data, planes.bits(), |words, word_base| {
        let mut retained = 0usize;
        let mut k = 0usize;
        while k < words.len() {
            let word = word_base + k;
            let tile_left = TILE_WORDS - word % TILE_WORDS;
            if wide && words.len() - k >= 4 && tile_left >= 4 {
                let chunk: &mut [u64; 4] = (&mut words[k..k + 4]).try_into().expect("4-word chunk");
                retained += resolve_chunk::<4>(chunk, word, planes, &q) as usize;
                k += 4;
            } else {
                let chunk: &mut [u64; 1] = (&mut words[k..k + 1]).try_into().expect("1-word chunk");
                retained += resolve_chunk::<1>(chunk, word, planes, &q) as usize;
                k += 1;
            }
        }
        retained
    })
}

/// Samples a fresh power-up state for every cell (the first power-on and
/// the certainly-lost fast path). Bit-exact with per-cell
/// [`CellParams::sample_powerup_only`](crate::CellParams::sample_powerup_only).
pub(crate) fn sample_all(
    data: &mut PackedBits,
    planes: &DiePlanes,
    seed: u64,
    dist: &CellDistribution,
    event_id: u64,
) {
    let ev_base = crate::rng::event_base(seed, event_id);
    run_words(data, planes.bits(), |words, word_base| {
        for (k, w) in words.iter_mut().enumerate() {
            let word = word_base + k;
            let valid = valid_mask(planes.bits(), word);
            let tile = planes.tile(word / TILE_WORDS);
            let j = word % TILE_WORDS;
            let strong1 = tile[STRONG1_ROW * TILE_WORDS + j];
            let metastable = tile[META_ROW * TILE_WORDS + j];
            *w = powerup_word(valid, word, strong1, metastable, planes, seed, dist, ev_base);
        }
        0usize
    });
}

#[inline]
fn valid_mask(bits: usize, word: usize) -> u64 {
    let tail = bits % 64;
    if tail != 0 && word == bits / 64 {
        (1u64 << tail) - 1
    } else {
        u64::MAX
    }
}

/// The number of workers the batched engine actually uses to resolve an
/// array of `bits` cells from the calling thread: 1 below the
/// [`PAR_MIN_BITS`] sharding threshold or under an exhausted
/// [`par::with_budget`] budget, otherwise the tile-aligned shard count
/// `run_words` splits the word vector into (which can fall short of the
/// pool size for short arrays). Bench snapshots report this instead of
/// the raw pool size so the recorded thread count matches what ran.
pub fn resolution_workers(bits: usize) -> usize {
    let words = bits.div_ceil(64);
    let threads = par::effective_parallelism();
    if bits < PAR_MIN_BITS || threads <= 1 || words <= 1 {
        return 1;
    }
    let chunk = words.div_ceil(threads).next_multiple_of(TILE_WORDS);
    words.div_ceil(chunk)
}

/// Runs `kernel` over the array's words, sharding across scoped threads
/// on tile-aligned boundaries when the array is large enough, and sums
/// the per-shard results.
fn run_words<F>(data: &mut PackedBits, bits: usize, kernel: F) -> usize
where
    F: Fn(&mut [u64], usize) -> usize + Sync,
{
    let words = data.words_mut();
    let threads = par::effective_parallelism();
    if bits < PAR_MIN_BITS || threads <= 1 || words.len() <= 1 {
        return kernel(words, 0);
    }
    let chunk = words.len().div_ceil(threads).next_multiple_of(TILE_WORDS);
    std::thread::scope(|s| {
        let kernel = &kernel;
        words
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, ws)| s.spawn(move || kernel(ws, i * chunk)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("resolution worker panicked"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_bucket_orders_consistently() {
        for i in 0..10_000u64 {
            let u = crate::rng::unit_f64(crate::rng::mix64(i));
            let v = crate::rng::unit_f64(crate::rng::mix64(i ^ 0x1234));
            let (bu, bv) = (prob_bucket(u), prob_bucket(v));
            if bu < bv {
                assert!(u < v);
            } else if bu > bv {
                assert!(u > v);
            }
        }
        assert_eq!(prob_bucket(1.0), 255);
        assert_eq!(prob_bucket(0.0), 0);
    }

    #[test]
    fn uniform_bucket_is_the_words_top_byte() {
        // The hot sampler reads `w >> 56` where the quantizer contract
        // says `prob_bucket(unit_f64(w))`; the two must agree exactly
        // for every word (the f64 products involved are all exact
        // power-of-two scalings).
        for i in 0..200_000u64 {
            let w = crate::rng::mix64(i);
            assert_eq!((w >> 56) as u8, prob_bucket(crate::rng::unit_f64(w)));
        }
        for w in [0u64, 1, u64::MAX, u64::MAX << 11, 0xFF00_0000_0000_0000] {
            assert_eq!((w >> 56) as u8, prob_bucket(crate::rng::unit_f64(w)));
        }
    }

    #[test]
    fn decay_cuts_are_sorted_and_weakly_monotone() {
        let cuts = DecayCuts::new(CellDistribution::calibrated().decay_sigma);
        assert!(cuts.cuts.windows(2).all(|w| w[0] <= w[1]), "cut table must be sorted");
        // Weak monotonicity and strict-inequality exactness over a
        // pseudo-random sample of budget-like values.
        let mut prev_x = 0.0f64;
        let mut prev_b = cuts.bucket(prev_x);
        for i in 0..50_000u64 {
            let x =
                (0.5 * crate::rng::std_normal(crate::rng::mix64(i), crate::rng::mix64(!i))).exp();
            let b = cuts.bucket(x);
            if x >= prev_x {
                assert!(b >= prev_b || x == prev_x, "bucket must be weakly monotone");
            }
            if b > prev_b {
                assert!(x > prev_x, "strict bucket inequality must decide the comparison");
            } else if b < prev_b {
                assert!(x < prev_x);
            }
            prev_x = x;
            prev_b = b;
        }
    }

    #[test]
    fn decay_cuts_survive_degenerate_sigma() {
        // sigma == 0 collapses every cut to 1.0: bucketing stays sorted
        // and weakly monotone (everything ties, everything falls back).
        let cuts = DecayCuts::new(0.0);
        assert!(cuts.cuts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cuts.bucket(0.5), 0);
        assert_eq!(cuts.bucket(1.0), DECAY_CUTS as u16);
        assert_eq!(cuts.bucket(2.0), DECAY_CUTS as u16);
    }

    #[test]
    fn drv_grid_is_weakly_monotone() {
        let dist = CellDistribution::calibrated();
        let g = DrvGrid::new(&dist);
        let mut prev = g.bucket(0.0);
        let mut v = 0.0;
        while v < 0.7 {
            let b = g.bucket(v);
            assert!(b >= prev);
            prev = b;
            v += 1.37e-4;
        }
    }

    #[test]
    fn cmp_grid_matches_scalar_comparison() {
        // Build one tile's worth of synthetic bucket planes and check
        // the mask-algebra compare against a per-cell reference, at both
        // lane widths and both grid widths in use.
        fn check<const BITS: usize>() {
            let top = (1u16 << BITS) - 1;
            let mut rows = vec![0u64; BITS * TILE_WORDS];
            let mut bucket_of = vec![0u16; TILE_CELLS];
            for (cell, bucket) in bucket_of.iter_mut().enumerate() {
                // A mix of clustered and spread values, deterministic.
                let x = crate::rng::mix64(cell as u64 ^ 0xfeed);
                *bucket = if cell % 3 == 0 { 700 } else { (x as u16) & top };
                let (j, b) = (cell / 64, cell % 64);
                for r in 0..BITS {
                    rows[r * TILE_WORDS + j] |= u64::from((*bucket >> (BITS - 1 - r)) & 1) << b;
                }
            }
            for t in [0u16, 1, 699, 700, 701, top / 2, top - 1, top] {
                for j in [0usize, 4, 60] {
                    let (gt4, eq4) = cmp_grid::<4, BITS>(&rows, j, t);
                    for i in 0..4 {
                        let (gt1, eq1) = cmp_grid::<1, BITS>(&rows, j + i, t);
                        assert_eq!(gt1[0], gt4[i], "lane widths must agree (gt)");
                        assert_eq!(eq1[0], eq4[i], "lane widths must agree (eq)");
                        for b in 0..64 {
                            let c = bucket_of[(j + i) * 64 + b];
                            assert_eq!((gt4[i] >> b) & 1 == 1, c > t, "gt bit, bucket {c} vs {t}");
                            assert_eq!((eq4[i] >> b) & 1 == 1, c == t, "eq bit, bucket {c} vs {t}");
                        }
                    }
                }
            }
        }
        check::<DECAY_BITS>();
        check::<DRV_BITS>();
    }

    #[test]
    fn plane_cache_memoizes_and_evicts() {
        clear_plane_cache();
        let dist = CellDistribution::calibrated();
        let (a, a_hit) = planes_for(1, 4096, &dist);
        let (b, b_hit) = planes_for(1, 4096, &dist);
        assert!(Arc::ptr_eq(&a, &b), "same die must be served from cache");
        assert!(!a_hit, "first fetch builds");
        assert!(b_hit, "second fetch hits");
        let (c, c_hit) = planes_for(2, 4096, &dist);
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!c_hit);
        clear_plane_cache();
    }

    #[test]
    fn concurrent_planes_for_builds_exactly_once() {
        // The 4-thread hammer: every thread asks for the same die at
        // once; the slot design must hand every caller the same Arc and
        // record exactly one build (no duplicate derivation, no torn
        // insert-last-wins rebuild).
        let dist = CellDistribution::calibrated();
        let seed = 0xA11C_E55E;
        clear_plane_cache();
        let results: Vec<(Arc<DiePlanes>, bool)> = std::thread::scope(|s| {
            (0..4)
                .map(|_| s.spawn(|| planes_for(seed, 100_000, &dist)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("hammer thread panicked"))
                .collect()
        });
        let builds = results.iter().filter(|(_, cached)| !cached).count();
        assert_eq!(builds, 1, "exactly one thread derives the die");
        for (p, _) in &results[1..] {
            assert!(Arc::ptr_eq(&results[0].0, p), "all callers share one plane set");
        }
        clear_plane_cache();
    }

    #[test]
    fn planes_for_survives_concurrent_clears() {
        // Hammer the cache from 4 threads while racing clear_plane_cache:
        // every returned plane set must still describe the requested die.
        let dist = CellDistribution::calibrated();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let dist = &dist;
                s.spawn(move || {
                    for i in 0..20u64 {
                        let bits = 1024 + 64 * ((t + i) % 3) as usize;
                        let (p, _) = planes_for(0xC1EA_0000 + (t + i) % 2, bits, dist);
                        assert_eq!(p.bits(), bits, "planes must match the requested die");
                        if i % 5 == 0 {
                            clear_plane_cache();
                        }
                    }
                });
            }
        });
        clear_plane_cache();
    }

    #[test]
    fn resolution_workers_is_one_below_threshold() {
        // Tiny and mid-sized arrays never fan out, at any budget.
        for bits in [64usize, 4096, 1 << 20, 1 << 21, PAR_MIN_BITS - 1] {
            assert_eq!(resolution_workers(bits), 1, "{bits} bits must stay single-threaded");
        }
        par::with_budget(1, || {
            assert_eq!(resolution_workers(PAR_MIN_BITS * 4), 1, "budget 1 never fans out");
        });
    }
}
