//! Error type for SRAM array operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible [`SramArray`](crate::SramArray) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SramError {
    /// A read or write addressed a bit or byte beyond the end of the array.
    OutOfBounds {
        /// First bit index the operation touched that is out of range.
        index: usize,
        /// Total number of bits in the array.
        len: usize,
    },
    /// A data access was attempted while the array was not powered.
    ///
    /// Real SRAM returns garbage or hangs the bus when accessed unpowered;
    /// the model makes this an explicit error so experiments cannot
    /// silently read stale state.
    NotPowered,
    /// `power_on` was called while the array was already powered, or
    /// `power_off` while it was already off.
    InvalidPowerTransition {
        /// Human-readable description of the attempted transition.
        attempted: &'static str,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::OutOfBounds { index, len } => {
                write!(f, "bit index {index} out of bounds for array of {len} bits")
            }
            SramError::NotPowered => write!(f, "array accessed while unpowered"),
            SramError::InvalidPowerTransition { attempted } => {
                write!(f, "invalid power-state transition: {attempted}")
            }
        }
    }
}

impl Error for SramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let messages = [
            SramError::OutOfBounds { index: 9, len: 8 }.to_string(),
            SramError::NotPowered.to_string(),
            SramError::InvalidPowerTransition { attempted: "on while on" }.to_string(),
        ];
        for m in messages {
            assert!(!m.ends_with('.'), "{m:?} should not end with punctuation");
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SramError>();
    }
}
