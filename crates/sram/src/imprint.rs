//! Data-imprinting (circuit-aging) effects.
//!
//! The paper's related-work discussion (§9.2) covers a second family of
//! SRAM data-retention attacks: when a cell holds the same value for a
//! very long time, bias-temperature instability shifts its inverters so
//! that its *power-up* state drifts toward the held value. Those attacks
//! need years of aging and still recover data only partially — the paper
//! contrasts them with Volt Boot's instant, error-free retention.
//!
//! We model imprinting as an optional overlay so that the comparison can
//! be demonstrated (see the `aging_imprint` example): aging a cell while
//! it holds value `v` moves its effective power-up probability toward `v`
//! with a saturating exponential in aged time.

use crate::array::SramArray;
use crate::cell::PowerUpKind;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Aging law constants.
///
/// `shift(t) = max_shift * (1 - exp(-t / tau))` — the probability mass
/// moved from the cell's native power-up bias toward the imprinted value
/// after holding it for time `t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImprintModel {
    /// Upper bound of the bias shift (published results suggest even
    /// decade-long imprints give only modest recovery; default 0.35).
    pub max_shift: f64,
    /// Aging time constant (default 4 years).
    pub tau: Duration,
}

impl ImprintModel {
    /// Default calibration (see type docs).
    pub fn calibrated() -> Self {
        ImprintModel { max_shift: 0.35, tau: Duration::from_secs(4 * 365 * 24 * 3600) }
    }

    /// Bias shift toward the imprinted value after holding it for `aged`.
    pub fn shift(&self, aged: Duration) -> f64 {
        self.max_shift * (1.0 - (-aged.as_secs_f64() / self.tau.as_secs_f64()).exp())
    }
}

impl Default for ImprintModel {
    fn default() -> Self {
        ImprintModel::calibrated()
    }
}

/// An imprinting overlay for one array: records how long each currently
/// powered value has been held and predicts the aged power-up image.
///
/// ```rust
/// use std::time::Duration;
/// use voltboot_sram::imprint::{ImprintModel, ImprintedArray};
/// use voltboot_sram::{ArrayConfig, SramArray};
///
/// let mut sram = SramArray::new(ArrayConfig::with_bytes("k", 64), 5);
/// sram.power_on()?;
/// sram.write_bytes(0, &[0xC3; 64]);
/// let mut aged = ImprintedArray::begin(&sram, ImprintModel::calibrated());
/// let fresh_recovery = aged.expected_recovery(&sram);
/// aged.age(Duration::from_secs(10 * 365 * 24 * 3600));
/// assert!(aged.expected_recovery(&sram) > fresh_recovery);
/// # Ok::<(), voltboot_sram::SramError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImprintedArray {
    model: ImprintModel,
    /// Imprinted value per cell (the long-held data).
    imprinted: Vec<bool>,
    /// Total aging time.
    aged: Duration,
}

impl ImprintedArray {
    /// Starts aging `array`'s current contents.
    ///
    /// # Panics
    ///
    /// Panics if the array is unpowered.
    pub fn begin(array: &SramArray, model: ImprintModel) -> Self {
        let snapshot = array.snapshot().expect("imprint source must be powered");
        let imprinted = (0..snapshot.len()).map(|i| snapshot.get(i)).collect();
        ImprintedArray { model, imprinted, aged: Duration::ZERO }
    }

    /// Ages the imprint by `dt` (the array keeps holding the same data).
    pub fn age(&mut self, dt: Duration) {
        self.aged += dt;
    }

    /// Total time aged so far.
    pub fn aged(&self) -> Duration {
        self.aged
    }

    /// Probability that cell `i` of `array` powers up equal to the
    /// imprinted value, after aging.
    pub fn recovery_probability(&self, array: &SramArray, i: usize) -> f64 {
        let params = array.cell_params(i);
        let shift = self.model.shift(self.aged);
        let native_p1 = params.powerup_bias;
        let imprinted_one = self.imprinted[i];
        // Shift probability mass toward the imprinted value.
        let p1 = if imprinted_one {
            native_p1 + shift * (1.0 - native_p1)
        } else {
            native_p1 * (1.0 - shift)
        };
        if imprinted_one {
            p1
        } else {
            1.0 - p1
        }
    }

    /// Expected fraction of the imprinted data recoverable from a single
    /// post-aging power-up image of `array`.
    ///
    /// For a fresh device this is ≈0.5 (chance); even long imprints stay
    /// well below 1.0, unlike Volt Boot's 100 %.
    pub fn expected_recovery(&self, array: &SramArray) -> f64 {
        let n = array.len_bits();
        if n == 0 {
            return 1.0;
        }
        (0..n).map(|i| self.recovery_probability(array, i)).sum::<f64>() / n as f64
    }

    /// A convenience classifier: does cell `i` natively power up to the
    /// imprinted value regardless of aging (lucky strong cell)?
    pub fn natively_aligned(&self, array: &SramArray, i: usize) -> bool {
        match array.cell_params(i).powerup {
            PowerUpKind::Strong0 => !self.imprinted[i],
            PowerUpKind::Strong1 => self.imprinted[i],
            PowerUpKind::Metastable => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayConfig;

    fn aged_array(years: u64) -> (SramArray, ImprintedArray) {
        let mut s = SramArray::new(ArrayConfig::with_bytes("t", 512), 11);
        s.power_on().unwrap();
        s.write_bytes(0, &vec![0xC3; 512]);
        let mut imp = ImprintedArray::begin(&s, ImprintModel::calibrated());
        imp.age(Duration::from_secs(years * 365 * 24 * 3600));
        (s, imp)
    }

    #[test]
    fn fresh_device_recovers_at_chance() {
        let (s, imp) = aged_array(0);
        let r = imp.expected_recovery(&s);
        assert!((r - 0.5).abs() < 0.05, "fresh recovery {r}");
    }

    #[test]
    fn aging_improves_recovery_monotonically() {
        let (s1, i1) = aged_array(1);
        let (s10, i10) = aged_array(10);
        assert!(i10.expected_recovery(&s10) > i1.expected_recovery(&s1));
    }

    #[test]
    fn even_decade_aging_stays_well_below_perfect() {
        let (s, imp) = aged_array(10);
        let r = imp.expected_recovery(&s);
        assert!(r < 0.85, "decade-aged recovery {r} should stay below 0.85");
        assert!(r > 0.6, "decade-aged recovery {r} should beat chance");
    }

    #[test]
    fn shift_saturates_at_max() {
        let m = ImprintModel::calibrated();
        let long = m.shift(Duration::from_secs(1000 * 365 * 24 * 3600));
        assert!((long - m.max_shift).abs() < 1e-6);
    }

    #[test]
    fn recovery_probability_is_a_probability() {
        let (s, imp) = aged_array(5);
        for i in 0..s.len_bits() {
            let p = imp.recovery_probability(&s, i);
            assert!((0.0..=1.0).contains(&p), "p={p} at {i}");
        }
    }
}
