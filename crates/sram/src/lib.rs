//! Behavioural model of on-chip 6T SRAM for the Volt Boot reproduction.
//!
//! This crate models the *physics* that the Volt Boot attack (Mahmod &
//! Hicks, ASPLOS 2022) exploits and that the classic cold-boot attack
//! depends on:
//!
//! * **Data-retention voltage (DRV)** — every cell keeps its state as long
//!   as its supply stays at or above a per-cell minimum voltage that is far
//!   below the nominal rail voltage ([`CellParams::drv`]).
//! * **Intrinsic leakage decay** — with the supply removed, the cell's
//!   internal nodes discharge through parasitic paths with a strongly
//!   temperature-dependent time constant (Arrhenius law, [`physics`]).
//! * **Power-up state** — an unpowered-too-long cell resolves to a
//!   process-variation-determined power-up value (the SRAM-PUF effect);
//!   roughly half of all cells power up as `1` and two power-ups of the
//!   same array differ in ≈10 % of bits.
//!
//! The central type is [`SramArray`]: a rectangular array of cells with a
//! power-state machine (`Powered` → `Held`/`Off` → `Powered`). Data written
//! while powered survives a power cycle **iff** either
//!
//! 1. an external source held the rail at or above each cell's DRV for the
//!    whole off interval (the Volt Boot case — 100 % retention), or
//! 2. the off interval was shorter than the cell's leakage-decay budget at
//!    the ambient temperature (the cold-boot case — practically never for
//!    on-chip SRAM at achievable temperatures).
//!
//! # Example
//!
//! ```rust
//! use voltboot_sram::{ArrayConfig, SramArray, Temperature, OffEvent};
//! use std::time::Duration;
//!
//! let mut sram = SramArray::new(ArrayConfig::with_bytes("demo", 1024), 42);
//! sram.power_on();
//! sram.write_bytes(0, b"secret key material");
//!
//! // Volt Boot: the rail is externally held at 0.8 V across the cycle.
//! sram.power_off(OffEvent::held(0.8));
//! sram.elapse(Duration::from_secs(3600), Temperature::from_celsius(25.0));
//! sram.power_on();
//! assert_eq!(&sram.read_bytes(0, 19), b"secret key material");
//!
//! // Cold boot at -40C for half a second: everything is gone.
//! sram.power_off(OffEvent::unpowered());
//! sram.elapse(Duration::from_millis(500), Temperature::from_celsius(-40.0));
//! sram.power_on();
//! assert_ne!(&sram.read_bytes(0, 19), b"secret key material");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bits;
pub mod cell;
pub mod engine;
pub mod error;
pub mod imprint;
pub mod par;
pub mod physics;
pub mod puf;
pub mod rng;

pub use array::{ArrayConfig, OffEvent, PowerState, ResolutionMode, RetentionReport, SramArray};
pub use bits::PackedBits;
pub use cell::{CellParams, PowerUpKind};
pub use engine::clear_plane_cache;
pub use error::SramError;
pub use physics::{LeakageModel, Temperature};
