//! Minimal deterministic thread-pool helpers.
//!
//! The resolution engine and the SoC layer both fan independent work out
//! across threads. Everything here is built on `crossbeam` scoped
//! threads (an existing workspace dependency); no work-stealing runtime
//! is involved, so scheduling never influences results — callers only
//! hand over work whose output is a pure function of its inputs.

use std::sync::OnceLock;

/// Number of worker threads used for sharded resolution and fan-out.
///
/// Defaults to the machine's available parallelism; the
/// `VOLTBOOT_THREADS` environment variable overrides it (`1` disables
/// threading entirely). The value is read once per process.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        if let Ok(v) = std::env::var("VOLTBOOT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Runs every closure to completion and returns their results in input
/// order.
///
/// With one job, or when [`thread_count`] is 1, the jobs run inline on
/// the caller's thread. Otherwise each job gets its own scoped thread;
/// jobs are expected to be coarse (an SRAM array, a whole experiment
/// cell), so one thread per job is cheaper than queueing machinery. A
/// panicking job propagates its panic to the caller.
pub fn join_all<'env, T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>) -> Vec<T> {
    if jobs.len() <= 1 || thread_count() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    crossbeam::thread::scope(|s| {
        jobs.into_iter()
            .map(|job| s.spawn(|_| job()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("parallel job panicked"))
            .collect()
    })
    .expect("parallel scope failed")
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A: Send, B: Send>(
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    if thread_count() <= 1 {
        return (a(), b());
    }
    crossbeam::thread::scope(|s| {
        let hb = s.spawn(|_| b());
        let ra = a();
        (ra, hb.join().expect("parallel job panicked"))
    })
    .expect("parallel scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_all_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..17usize).map(|i| Box::new(move || i * i) as Box<_>).collect();
        let got = join_all(jobs);
        assert_eq!(got, (0..17usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
