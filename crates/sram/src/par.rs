//! Minimal deterministic thread-pool helpers.
//!
//! The resolution engine and the SoC layer both fan independent work out
//! across threads. Everything here is built on `std::thread::scope`; no
//! work-stealing runtime is involved, so scheduling never influences
//! results — callers only hand over work whose output is a pure function
//! of its inputs.

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

/// Number of worker threads used for sharded resolution and fan-out.
///
/// Defaults to the machine's available parallelism; the
/// `VOLTBOOT_THREADS` environment variable overrides it (`1` disables
/// threading entirely). The value is read once per process.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        if let Ok(v) = std::env::var("VOLTBOOT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

thread_local! {
    /// Per-thread parallelism budget; `None` means "the full pool".
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The parallelism available to work started *on this thread*: the
/// process-wide [`thread_count`], clamped by the innermost
/// [`with_budget`] scope (if any).
///
/// Layered parallelism uses this instead of `thread_count` directly so
/// the layers share one conceptual pool: when a campaign runs W
/// repetition workers, each worker's inner word-level fan-out sees a
/// budget of roughly `thread_count / W` and stops spawning once the
/// machine is saturated, instead of multiplying `W × thread_count`
/// threads.
pub fn effective_parallelism() -> usize {
    let cap = BUDGET.with(Cell::get).unwrap_or(usize::MAX);
    thread_count().min(cap).max(1)
}

/// Runs `f` with this thread's parallelism budget capped at `budget`
/// (floored at 1), restoring the previous budget afterwards — panic
/// included. Nested scopes take the minimum of their caps.
///
/// The budget is thread-local: it governs fan-out decisions made on the
/// calling thread ([`join_all`] / [`join`] running inline instead of
/// spawning), which is exactly where a rep-level scheduler dispatches
/// its inner work from.
pub fn with_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let prev = BUDGET.with(Cell::get);
    let cap = budget.max(1).min(prev.unwrap_or(usize::MAX));
    BUDGET.with(|b| b.set(Some(cap)));
    let _restore = Restore(prev);
    f()
}

/// Buffers a thread's [`RepArena`] freelist retains per element type.
/// Enough for the deepest consumer (a 15-pass voted readout holds one
/// word buffer per pass plus the byte scratch); anything beyond the cap
/// is simply dropped, so a burst can never pin unbounded memory.
const ARENA_MAX_BUFFERS: usize = 20;

/// Per-thread freelist of reusable scratch buffers — the rep arena.
///
/// Repetition workers (campaign reps, voted readout passes) need
/// short-lived `Vec<u64>` / `Vec<u8>` scratch on every iteration:
/// readout byte dumps, pass bit-buffers, vote planes. Allocating those
/// fresh per rep makes a million-rep campaign allocator-bound; the
/// arena instead keeps each worker thread's retired buffers on a small
/// freelist, so after the first few reps warm it up the steady state
/// performs **zero** allocations. The freelist is thread-local — it
/// composes with [`with_budget`]-scoped fan-out without any locking,
/// and a worker's buffers die with its thread.
#[derive(Default)]
struct RepArena {
    words: Vec<Vec<u64>>,
    bytes: Vec<Vec<u8>>,
}

thread_local! {
    static ARENA: RefCell<RepArena> = RefCell::new(RepArena::default());
}

/// Takes a cleared buffer from `pool` with at least `capacity` spare
/// room, preferring an existing buffer that already fits (so the warm
/// steady state never grows anything).
fn arena_take<T>(pool: &mut Vec<Vec<T>>, capacity: usize) -> Vec<T> {
    let mut v = match pool.iter().rposition(|v| v.capacity() >= capacity) {
        Some(i) => pool.swap_remove(i),
        None => pool.pop().unwrap_or_default(),
    };
    v.clear();
    v.reserve(capacity);
    v
}

fn arena_give<T>(pool: &mut Vec<Vec<T>>, mut v: Vec<T>) {
    if v.capacity() > 0 && pool.len() < ARENA_MAX_BUFFERS {
        v.clear();
        pool.push(v);
    }
}

/// Takes a word buffer (cleared, `capacity >= `the request) from the
/// calling thread's rep arena, allocating only if the freelist has
/// nothing big enough. Pair with [`give_words`] when the buffer
/// retires; an un-returned buffer is an ordinary `Vec` and simply
/// drops.
pub fn take_words(capacity: usize) -> Vec<u64> {
    ARENA.with(|a| arena_take(&mut a.borrow_mut().words, capacity))
}

/// Returns a retired word buffer to the calling thread's rep arena for
/// reuse by a later [`take_words`]. Contents are discarded; buffers
/// beyond the freelist cap are dropped.
pub fn give_words(v: Vec<u64>) {
    ARENA.with(|a| arena_give(&mut a.borrow_mut().words, v));
}

/// Byte-buffer variant of [`take_words`].
pub fn take_bytes(capacity: usize) -> Vec<u8> {
    ARENA.with(|a| arena_take(&mut a.borrow_mut().bytes, capacity))
}

/// Byte-buffer variant of [`give_words`].
pub fn give_bytes(v: Vec<u8>) {
    ARENA.with(|a| arena_give(&mut a.borrow_mut().bytes, v));
}

/// Runs every closure to completion and returns their results in input
/// order.
///
/// With one job, or when [`effective_parallelism`] is 1 (a single-thread
/// pool, or the caller's budget is exhausted), the jobs run inline on
/// the caller's thread. Otherwise each job gets its own scoped thread;
/// jobs are expected to be coarse (an SRAM array, a whole experiment
/// cell), so one thread per job is cheaper than queueing machinery. A
/// panicking job propagates its panic to the caller.
pub fn join_all<'env, T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>) -> Vec<T> {
    if jobs.len() <= 1 || effective_parallelism() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    std::thread::scope(|s| {
        jobs.into_iter()
            .map(|job| s.spawn(job))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("parallel job panicked"))
            .collect()
    })
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A: Send, B: Send>(
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    if effective_parallelism() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("parallel job panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_all_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..17usize).map(|i| Box::new(move || i * i) as Box<_>).collect();
        let got = join_all(jobs);
        assert_eq!(got, (0..17usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn budget_caps_effective_parallelism_and_restores() {
        let full = effective_parallelism();
        assert!(full >= 1);
        let inside = with_budget(1, || {
            // Nested scopes take the minimum, and a zero request floors
            // at 1 instead of deadlocking fan-out logic.
            assert_eq!(with_budget(0, effective_parallelism), 1);
            assert_eq!(with_budget(64, effective_parallelism), 1);
            effective_parallelism()
        });
        assert_eq!(inside, 1);
        assert_eq!(effective_parallelism(), full, "budget must restore on exit");
    }

    #[test]
    fn budget_is_restored_after_a_panic() {
        let full = effective_parallelism();
        let caught = std::panic::catch_unwind(|| {
            with_budget(1, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(effective_parallelism(), full);
    }

    #[test]
    fn arena_round_trip_reuses_the_allocation() {
        let mut v = take_words(1000);
        v.extend(0..100u64);
        let ptr = v.as_ptr();
        let cap = v.capacity();
        give_words(v);
        let v2 = take_words(500);
        assert_eq!(v2.as_ptr(), ptr, "a fitting freelist buffer must be reused");
        assert_eq!(v2.capacity(), cap, "reuse must not reallocate");
        assert!(v2.is_empty(), "taken buffers come back cleared");
        give_words(v2);

        let mut b = take_bytes(64);
        b.push(7);
        let bptr = b.as_ptr();
        give_bytes(b);
        let b2 = take_bytes(10);
        assert_eq!(b2.as_ptr(), bptr);
        assert!(b2.is_empty());
        give_bytes(b2);
    }

    #[test]
    fn arena_grows_when_nothing_fits_and_caps_its_freelist() {
        // A request bigger than anything retired gets a fresh (or grown)
        // buffer with the requested headroom.
        give_words(Vec::with_capacity(8));
        let big = take_words(1 << 16);
        assert!(big.capacity() >= 1 << 16);
        give_words(big);
        // The freelist never retains more than its cap; the overflow is
        // dropped, not leaked into an unbounded pool.
        for _ in 0..(2 * ARENA_MAX_BUFFERS) {
            give_bytes(Vec::with_capacity(16));
        }
        ARENA.with(|a| {
            assert!(a.borrow().bytes.len() <= ARENA_MAX_BUFFERS);
        });
    }

    #[test]
    fn budgeted_join_all_runs_inline_and_preserves_results() {
        let got = with_budget(1, || {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..9usize).map(|i| Box::new(move || i + 1) as Box<_>).collect();
            join_all(jobs)
        });
        assert_eq!(got, (1..=9usize).collect::<Vec<_>>());
    }
}
