//! Minimal deterministic thread-pool helpers.
//!
//! The resolution engine and the SoC layer both fan independent work out
//! across threads. Everything here is built on `crossbeam` scoped
//! threads (an existing workspace dependency); no work-stealing runtime
//! is involved, so scheduling never influences results — callers only
//! hand over work whose output is a pure function of its inputs.

use std::cell::Cell;
use std::sync::OnceLock;

/// Number of worker threads used for sharded resolution and fan-out.
///
/// Defaults to the machine's available parallelism; the
/// `VOLTBOOT_THREADS` environment variable overrides it (`1` disables
/// threading entirely). The value is read once per process.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        if let Ok(v) = std::env::var("VOLTBOOT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

thread_local! {
    /// Per-thread parallelism budget; `None` means "the full pool".
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The parallelism available to work started *on this thread*: the
/// process-wide [`thread_count`], clamped by the innermost
/// [`with_budget`] scope (if any).
///
/// Layered parallelism uses this instead of `thread_count` directly so
/// the layers share one conceptual pool: when a campaign runs W
/// repetition workers, each worker's inner word-level fan-out sees a
/// budget of roughly `thread_count / W` and stops spawning once the
/// machine is saturated, instead of multiplying `W × thread_count`
/// threads.
pub fn effective_parallelism() -> usize {
    let cap = BUDGET.with(Cell::get).unwrap_or(usize::MAX);
    thread_count().min(cap).max(1)
}

/// Runs `f` with this thread's parallelism budget capped at `budget`
/// (floored at 1), restoring the previous budget afterwards — panic
/// included. Nested scopes take the minimum of their caps.
///
/// The budget is thread-local: it governs fan-out decisions made on the
/// calling thread ([`join_all`] / [`join`] running inline instead of
/// spawning), which is exactly where a rep-level scheduler dispatches
/// its inner work from.
pub fn with_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let prev = BUDGET.with(Cell::get);
    let cap = budget.max(1).min(prev.unwrap_or(usize::MAX));
    BUDGET.with(|b| b.set(Some(cap)));
    let _restore = Restore(prev);
    f()
}

/// Runs every closure to completion and returns their results in input
/// order.
///
/// With one job, or when [`effective_parallelism`] is 1 (a single-thread
/// pool, or the caller's budget is exhausted), the jobs run inline on
/// the caller's thread. Otherwise each job gets its own scoped thread;
/// jobs are expected to be coarse (an SRAM array, a whole experiment
/// cell), so one thread per job is cheaper than queueing machinery. A
/// panicking job propagates its panic to the caller.
pub fn join_all<'env, T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send + 'env>>) -> Vec<T> {
    if jobs.len() <= 1 || effective_parallelism() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    crossbeam::thread::scope(|s| {
        jobs.into_iter()
            .map(|job| s.spawn(|_| job()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("parallel job panicked"))
            .collect()
    })
    .expect("parallel scope failed")
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A: Send, B: Send>(
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    if effective_parallelism() <= 1 {
        return (a(), b());
    }
    crossbeam::thread::scope(|s| {
        let hb = s.spawn(|_| b());
        let ra = a();
        (ra, hb.join().expect("parallel job panicked"))
    })
    .expect("parallel scope failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_all_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..17usize).map(|i| Box::new(move || i * i) as Box<_>).collect();
        let got = join_all(jobs);
        assert_eq!(got, (0..17usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn budget_caps_effective_parallelism_and_restores() {
        let full = effective_parallelism();
        assert!(full >= 1);
        let inside = with_budget(1, || {
            // Nested scopes take the minimum, and a zero request floors
            // at 1 instead of deadlocking fan-out logic.
            assert_eq!(with_budget(0, effective_parallelism), 1);
            assert_eq!(with_budget(64, effective_parallelism), 1);
            effective_parallelism()
        });
        assert_eq!(inside, 1);
        assert_eq!(effective_parallelism(), full, "budget must restore on exit");
    }

    #[test]
    fn budget_is_restored_after_a_panic() {
        let full = effective_parallelism();
        let caught = std::panic::catch_unwind(|| {
            with_budget(1, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(effective_parallelism(), full);
    }

    #[test]
    fn budgeted_join_all_runs_inline_and_preserves_results() {
        let got = with_budget(1, || {
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
                (0..9usize).map(|i| Box::new(move || i + 1) as Box<_>).collect();
            join_all(jobs)
        });
        assert_eq!(got, (1..=9usize).collect::<Vec<_>>());
    }
}
