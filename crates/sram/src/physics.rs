//! Temperature and leakage physics shared by every cell.
//!
//! The quantity the cold-boot literature cares about is how long an
//! unpowered SRAM cell keeps enough differential charge on its internal
//! nodes to resolve back to its old state when power returns. We model the
//! population median of that interval with an Arrhenius temperature law and
//! give each cell a lognormal multiplier around the median (process
//! variation), which reproduces the published remanence curves:
//!
//! * ≈80 % of cells retain after 20 ms without power at −110 °C
//!   (Anagnostopoulos et al., DSD'18 — cited as \[2\] in the paper);
//! * ≈0 % retain after even a few milliseconds at −40 °C (the paper's
//!   Table 1: cold-booting a Raspberry Pi 4 at the SoC's −40 °C hard limit
//!   yields a ≈50 % bit-error rate, i.e. no retention);
//! * microsecond-scale retention at room temperature.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Boltzmann constant in eV/K.
pub const BOLTZMANN_EV: f64 = 8.617_333_262e-5;

/// An absolute temperature, stored in kelvin.
///
/// ```rust
/// use voltboot_sram::Temperature;
/// let t = Temperature::from_celsius(-40.0);
/// assert!((t.kelvin() - 233.15).abs() < 1e-9);
/// assert!((t.celsius() + 40.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Temperature {
    kelvin: f64,
}

impl Temperature {
    /// Room temperature, 25 °C.
    pub const ROOM: Temperature = Temperature { kelvin: 298.15 };

    /// Creates a temperature from degrees Celsius.
    ///
    /// # Panics
    ///
    /// Panics if the result would be at or below absolute zero.
    pub fn from_celsius(celsius: f64) -> Self {
        let kelvin = celsius + 273.15;
        assert!(kelvin > 0.0, "temperature must be above absolute zero");
        Temperature { kelvin }
    }

    /// Creates a temperature from kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is not strictly positive.
    pub fn from_kelvin(kelvin: f64) -> Self {
        assert!(kelvin > 0.0, "temperature must be above absolute zero");
        Temperature { kelvin }
    }

    /// The temperature in kelvin.
    pub fn kelvin(self) -> f64 {
        self.kelvin
    }

    /// The temperature in degrees Celsius.
    pub fn celsius(self) -> f64 {
        self.kelvin - 273.15
    }
}

impl Default for Temperature {
    fn default() -> Self {
        Temperature::ROOM
    }
}

impl std::fmt::Display for Temperature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}\u{b0}C", self.celsius())
    }
}

/// Arrhenius model of the population-median charge-retention interval.
///
/// `median_retention(T) = t_ref * exp(Ea/k * (1/T - 1/T_ref))`
///
/// The default calibration pins the median retention at −110 °C to 30 ms
/// (so ≈80 % of cells survive a 20 ms power-off there, given the default
/// lognormal spread of [`crate::CellParams`]) with an activation energy of
/// 0.27 eV, which puts −40 °C retention well under a millisecond and room-
/// temperature retention in the microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    /// Median retention interval at the reference temperature, in seconds.
    pub t_ref_seconds: f64,
    /// Reference temperature.
    pub reference: Temperature,
    /// Activation energy of the dominant leakage path, in eV.
    pub activation_energy_ev: f64,
}

impl LeakageModel {
    /// The calibration used throughout the reproduction (see module docs).
    pub fn calibrated() -> Self {
        LeakageModel {
            t_ref_seconds: 0.030,
            reference: Temperature::from_celsius(-110.0),
            activation_energy_ev: 0.27,
        }
    }

    /// Population-median retention interval at temperature `t`.
    pub fn median_retention(&self, t: Temperature) -> Duration {
        let exponent = (self.activation_energy_ev / BOLTZMANN_EV)
            * (1.0 / t.kelvin() - 1.0 / self.reference.kelvin());
        Duration::from_secs_f64(self.t_ref_seconds * exponent.exp())
    }

    /// Dimensionless decay stress contributed by spending `dt` unpowered at
    /// temperature `t`.
    ///
    /// A cell whose accumulated stress exceeds its per-cell decay budget
    /// (median 1.0) has lost its state.
    pub fn stress(&self, dt: Duration, t: Temperature) -> f64 {
        dt.as_secs_f64() / self.median_retention(t).as_secs_f64()
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        LeakageModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_retention_at_reference_matches_calibration() {
        let m = LeakageModel::calibrated();
        let t = m.median_retention(Temperature::from_celsius(-110.0));
        assert!((t.as_secs_f64() - 0.030).abs() < 1e-12);
    }

    #[test]
    fn retention_is_monotone_in_temperature() {
        let m = LeakageModel::calibrated();
        let cold = m.median_retention(Temperature::from_celsius(-110.0));
        let cool = m.median_retention(Temperature::from_celsius(-40.0));
        let room = m.median_retention(Temperature::from_celsius(25.0));
        assert!(cold > cool, "{cold:?} vs {cool:?}");
        assert!(cool > room, "{cool:?} vs {room:?}");
    }

    #[test]
    fn minus_forty_retention_is_sub_millisecond() {
        let m = LeakageModel::calibrated();
        let t = m.median_retention(Temperature::from_celsius(-40.0));
        assert!(
            t < Duration::from_millis(1),
            "median retention at -40C should be < 1 ms, got {t:?}"
        );
    }

    #[test]
    fn room_temperature_retention_is_microseconds() {
        let m = LeakageModel::calibrated();
        let t = m.median_retention(Temperature::ROOM);
        assert!(t < Duration::from_micros(100), "got {t:?}");
        assert!(t > Duration::from_nanos(10), "got {t:?}");
    }

    #[test]
    fn stress_scales_linearly_with_time() {
        let m = LeakageModel::calibrated();
        let t = Temperature::from_celsius(-110.0);
        let s1 = m.stress(Duration::from_millis(30), t);
        let s2 = m.stress(Duration::from_millis(60), t);
        assert!((s1 - 1.0).abs() < 1e-9, "{s1}");
        assert!((s2 - 2.0).abs() < 1e-9, "{s2}");
    }

    #[test]
    fn temperature_display() {
        assert_eq!(Temperature::from_celsius(-40.0).to_string(), "-40.0\u{b0}C");
    }

    #[test]
    #[should_panic(expected = "absolute zero")]
    fn below_absolute_zero_panics() {
        let _ = Temperature::from_celsius(-300.0);
    }
}
