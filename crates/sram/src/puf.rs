//! SRAM power-up-state applications: PUF fingerprinting and TRNG.
//!
//! The paper's §5.2.4 lists a second reason (besides boot time) that
//! vendors leave SRAM uninitialized at reset: "SRAM's startup state has
//! numerous security applications, such as PUF and TRNG". This module
//! implements both on top of the cell model, which doubles as a check
//! that the model's power-up statistics are right:
//!
//! * **PUF** — the strong (stable) cells form a per-die fingerprint:
//!   same die → small Hamming distance across power-ups; different dies
//!   → ≈50 %. Enrollment records a reference response plus a stability
//!   mask; matching uses a threshold between the two distributions.
//! * **TRNG** — the metastable cells resolve randomly at each power-up;
//!   von Neumann debiasing of paired power-ups distils unbiased bits.

use crate::array::{ArrayConfig, OffEvent, SramArray};
use crate::bits::PackedBits;
use crate::physics::Temperature;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Samples `n` successive power-up images of `array` (fully discharging
/// it between samples).
///
/// # Panics
///
/// Panics if the array starts powered (hand it over unpowered/fresh).
pub fn powerup_samples(array: &mut SramArray, n: usize) -> Vec<PackedBits> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        array.power_on().expect("array must start unpowered");
        out.push(array.snapshot().expect("powered"));
        array.power_off(OffEvent::unpowered()).expect("powered");
        // Long enough at room temperature to fully discharge.
        array.elapse(Duration::from_secs(1), Temperature::ROOM);
    }
    out
}

/// An enrolled SRAM PUF: reference response plus stability mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnrolledPuf {
    /// Majority-vote reference response.
    pub reference: PackedBits,
    /// Bits that were stable across every enrollment sample.
    pub stable_mask: PackedBits,
    /// Match threshold on the masked fractional Hamming distance.
    pub threshold: f64,
}

impl EnrolledPuf {
    /// Enrolls a die from `samples` power-up images (≥ 3 recommended).
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set or mismatched lengths.
    pub fn enroll(samples: &[PackedBits]) -> Self {
        assert!(!samples.is_empty(), "enrollment needs samples");
        let len = samples[0].len();
        let mut reference = PackedBits::zeros(len);
        let mut stable_mask = PackedBits::zeros(len);
        for i in 0..len {
            let ones = samples.iter().filter(|s| s.get(i)).count();
            reference.set(i, ones * 2 > samples.len());
            stable_mask.set(i, ones == 0 || ones == samples.len());
        }
        EnrolledPuf { reference, stable_mask, threshold: 0.2 }
    }

    /// Masked fractional Hamming distance of a fresh `response` to the
    /// reference, over the stable bits only.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn distance(&self, response: &PackedBits) -> f64 {
        assert_eq!(response.len(), self.reference.len(), "response length mismatch");
        let mut mismatches = 0usize;
        let mut considered = 0usize;
        for i in 0..response.len() {
            if self.stable_mask.get(i) {
                considered += 1;
                if response.get(i) != self.reference.get(i) {
                    mismatches += 1;
                }
            }
        }
        if considered == 0 {
            return 1.0;
        }
        mismatches as f64 / considered as f64
    }

    /// Whether `response` matches this die.
    pub fn matches(&self, response: &PackedBits) -> bool {
        self.distance(response) < self.threshold
    }

    /// Fraction of bits enrolled as stable.
    pub fn stable_fraction(&self) -> f64 {
        self.stable_mask.count_ones() as f64 / self.stable_mask.len().max(1) as f64
    }
}

/// Extracts unbiased random bits from two power-up images by von Neumann
/// debiasing over the bits that differ... strictly, over all positions:
/// (0,1) → 0, (1,0) → 1, equal pairs discarded. Only metastable cells
/// contribute, so the output rate is roughly the metastable fraction / 3.
pub fn trng_extract(sample_a: &PackedBits, sample_b: &PackedBits) -> Vec<bool> {
    assert_eq!(sample_a.len(), sample_b.len(), "trng samples must match");
    let mut out = Vec::new();
    for i in 0..sample_a.len() {
        match (sample_a.get(i), sample_b.get(i)) {
            (false, true) => out.push(false),
            (true, false) => out.push(true),
            _ => {}
        }
    }
    out
}

/// Builds a fresh test array for PUF/TRNG experiments.
pub fn test_array(name: &str, bytes: usize, seed: u64) -> SramArray {
    SramArray::new(ArrayConfig::with_bytes(name, bytes), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_die_matches_and_other_dies_do_not() {
        let mut die_a = test_array("a", 1024, 1);
        let samples = powerup_samples(&mut die_a, 5);
        let puf = EnrolledPuf::enroll(&samples);

        // A fresh response from the same die.
        let fresh = powerup_samples(&mut die_a, 1).pop().unwrap();
        assert!(puf.matches(&fresh), "distance {}", puf.distance(&fresh));
        assert!(puf.distance(&fresh) < 0.05);

        // Responses from nine other dies.
        for seed in 2..11 {
            let mut other = test_array("b", 1024, seed);
            let response = powerup_samples(&mut other, 1).pop().unwrap();
            assert!(!puf.matches(&response), "die {seed}: {}", puf.distance(&response));
            assert!((puf.distance(&response) - 0.5).abs() < 0.08);
        }
    }

    #[test]
    fn stable_fraction_matches_the_cell_model() {
        let mut die = test_array("s", 4096, 42);
        let samples = powerup_samples(&mut die, 7);
        let puf = EnrolledPuf::enroll(&samples);
        // 70% strong cells, plus metastable cells that happened to agree
        // across 7 samples (biased ones do, ~E[p^7 + (1-p)^7] ~ 0.25 of 30%).
        let f = puf.stable_fraction();
        assert!(f > 0.70 && f < 0.85, "stable fraction {f}");
    }

    #[test]
    fn trng_bits_are_unbiased_and_plentiful() {
        let mut die = test_array("t", 8192, 7);
        let samples = powerup_samples(&mut die, 2);
        let bits = trng_extract(&samples[0], &samples[1]);
        // Rate ~ metastable_fraction / 3 = 10% of cells.
        let rate = bits.len() as f64 / (8192.0 * 8.0);
        assert!(rate > 0.05 && rate < 0.15, "output rate {rate}");
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((ones - 0.5).abs() < 0.03, "bias {ones}");
    }

    #[test]
    fn trng_streams_differ_between_draws() {
        let mut die = test_array("t2", 2048, 9);
        let s = powerup_samples(&mut die, 4);
        let draw1 = trng_extract(&s[0], &s[1]);
        let draw2 = trng_extract(&s[2], &s[3]);
        assert_ne!(draw1, draw2);
    }

    #[test]
    fn enrollment_requires_samples() {
        let result = std::panic::catch_unwind(|| EnrolledPuf::enroll(&[]));
        assert!(result.is_err());
    }

    #[test]
    fn boot_time_reset_would_destroy_the_puf() {
        // The countermeasure tension the paper notes: zeroizing SRAM at
        // boot erases the fingerprint.
        let mut die = test_array("z", 1024, 3);
        let samples = powerup_samples(&mut die, 3);
        let puf = EnrolledPuf::enroll(&samples);
        let zeroized = PackedBits::zeros(1024 * 8);
        assert!(!puf.matches(&zeroized));
    }
}
