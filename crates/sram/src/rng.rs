//! Deterministic, allocation-free randomness for per-cell parameters.
//!
//! An [`SramArray`](crate::SramArray) can hold millions of cells, so we do
//! not store the stochastic process-variation parameters of each cell.
//! Instead every parameter is a pure function of `(array_seed, cell_index,
//! stream)` evaluated on demand through a SplitMix64-style mixer. This
//! keeps the model deterministic (the same seed always produces the same
//! silicon), reproducible across runs, and memory-light.

/// Streams separate the independent random quantities derived per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stream {
    /// Power-up bias class and probability.
    PowerUpBias,
    /// Data-retention voltage.
    Drv,
    /// Leakage decay budget (lognormal multiplier).
    DecayBudget,
}

impl Stream {
    fn salt(self) -> u64 {
        match self {
            Stream::PowerUpBias => 0x9e37_79b9_7f4a_7c15,
            Stream::Drv => 0xbf58_476d_1ce4_e5b9,
            Stream::DecayBudget => 0x94d0_49bb_1331_11eb,
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the raw 64-bit random word for one cell and stream.
#[inline]
pub(crate) fn cell_word(seed: u64, cell: usize, stream: Stream) -> u64 {
    mix64(seed ^ stream.salt() ^ mix64(cell as u64))
}

/// Derives a per-event word (e.g. for one particular power-up event).
#[inline]
pub(crate) fn event_word(seed: u64, cell: usize, event: u64) -> u64 {
    event_word_at(event_base(seed, event), cell)
}

/// The cell-independent half of [`event_word`]. Hot loops that sample
/// many cells of one event hoist this out and call [`event_word_at`]
/// per cell, skipping a redundant `mix64(event)` per sample.
#[inline]
pub(crate) fn event_base(seed: u64, event: u64) -> u64 {
    seed ^ 0xd6e8_feb8_6659_fd93 ^ mix64(event)
}

/// Completes [`event_word`] from a hoisted [`event_base`].
#[inline]
pub(crate) fn event_word_at(base: u64, cell: usize) -> u64 {
    mix64(base ^ mix64(cell as u64))
}

/// Maps a 64-bit word to a uniform float in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps two 64-bit words to a standard normal sample (Box–Muller).
#[inline]
pub(crate) fn std_normal(w1: u64, w2: u64) -> f64 {
    let u1 = unit_f64(w1).max(f64::MIN_POSITIVE);
    let u2 = unit_f64(w2);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1), 1);
    }

    #[test]
    fn streams_are_independent() {
        let a = cell_word(7, 3, Stream::PowerUpBias);
        let b = cell_word(7, 3, Stream::Drv);
        let c = cell_word(7, 3, Stream::DecayBudget);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..10_000u64 {
            let u = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&u), "{u} out of range");
        }
    }

    #[test]
    fn unit_f64_mean_is_near_half() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| unit_f64(mix64(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn std_normal_moments() {
        let n = 100_000u64;
        let samples: Vec<f64> = (0..n).map(|i| std_normal(mix64(i), mix64(i ^ 0xabcdef))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn event_words_vary_per_event() {
        assert_ne!(event_word(1, 2, 0), event_word(1, 2, 1));
        assert_eq!(event_word(1, 2, 0), event_word(1, 2, 0));
    }

    #[test]
    fn hoisted_event_base_matches_event_word() {
        for seed in [0u64, 7, 0xdead_beef] {
            for event in [0u64, 1, 99] {
                let base = event_base(seed, event);
                for cell in [0usize, 1, 63, 4096, 1 << 20] {
                    assert_eq!(event_word_at(base, cell), event_word(seed, cell, event));
                }
            }
        }
    }
}
