//! Property tests on the SRAM cell model.

use proptest::prelude::*;
use std::time::Duration;
use voltboot_sram::cell::CellDistribution;
use voltboot_sram::{ArrayConfig, CellParams, OffEvent, SramArray, Temperature};

proptest! {
    /// Parameter derivation is a pure function of (seed, index).
    #[test]
    fn derivation_is_pure(seed in any::<u64>(), index in 0usize..1_000_000) {
        let dist = CellDistribution::calibrated();
        let a = CellParams::derive(seed, index, &dist);
        let b = CellParams::derive(seed, index, &dist);
        prop_assert_eq!(a, b);
        prop_assert!((0.0..=1.0).contains(&a.powerup_bias));
        prop_assert!(a.drv >= dist.drv_min && a.drv <= dist.drv_max);
        prop_assert!(a.decay_budget > 0.0);
    }

    /// Writing then reading while powered is the identity, whatever the
    /// power history before the write.
    #[test]
    fn powered_write_read_identity(
        seed in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..128),
        cycles in 0usize..3,
    ) {
        let mut s = SramArray::new(ArrayConfig::with_bytes("p", 256), seed);
        s.power_on().unwrap();
        for _ in 0..cycles {
            s.power_off(OffEvent::unpowered()).unwrap();
            s.elapse(Duration::from_secs(1), Temperature::ROOM);
            s.power_on().unwrap();
        }
        s.write_bytes(10, &data);
        prop_assert_eq!(s.read_bytes(10, data.len()), data);
    }

    /// The retention report always accounts for every bit.
    #[test]
    fn retention_report_is_complete(seed in any::<u64>(), ms in 0u64..100, celsius in -150.0f64..80.0) {
        let mut s = SramArray::new(ArrayConfig::with_bytes("p", 128), seed);
        s.power_on().unwrap();
        s.fill(0xA5).unwrap();
        s.power_off(OffEvent::unpowered()).unwrap();
        s.elapse(Duration::from_millis(ms), Temperature::from_celsius(celsius));
        let report = s.power_on().unwrap();
        prop_assert_eq!(report.retained + report.lost, 128 * 8);
        prop_assert!((0.0..=1.0).contains(&report.retention_fraction()));
    }

    /// Holding at or above the distribution's maximum DRV is always
    /// lossless; holding below the minimum always loses everything.
    #[test]
    fn drv_bounds_are_sharp(seed in any::<u64>()) {
        let dist = CellDistribution::calibrated();
        for (volts, expect_all) in [(dist.drv_max, true), (dist.drv_min - 0.01, false)] {
            let mut s = SramArray::new(ArrayConfig::with_bytes("p", 128), seed);
            s.power_on().unwrap();
            s.fill(0x3C).unwrap();
            s.power_off(OffEvent::held(volts)).unwrap();
            s.elapse(Duration::from_secs(1), Temperature::ROOM);
            let report = s.power_on().unwrap();
            if expect_all {
                prop_assert_eq!(report.lost, 0);
            } else {
                prop_assert_eq!(report.retained, 0);
            }
        }
    }

    /// Two arrays with the same seed behave identically through the same
    /// power script (the "same die" guarantee the experiments rely on).
    #[test]
    fn same_seed_same_physics(seed in any::<u64>(), ms in 1u64..50) {
        let run = |seed: u64| {
            let mut s = SramArray::new(ArrayConfig::with_bytes("p", 256), seed);
            s.power_on().unwrap();
            s.fill(0x99).unwrap();
            s.power_off(OffEvent::unpowered()).unwrap();
            s.elapse(Duration::from_millis(ms), Temperature::from_celsius(-110.0));
            s.power_on().unwrap();
            s.snapshot().unwrap()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
