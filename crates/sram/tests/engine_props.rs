//! Bit-exactness properties of the batched resolution engine.
//!
//! The engine's contract is that [`ResolutionMode::Batched`] — word
//! kernels, quantized die planes, the memoized plane cache, and the
//! sharded parallel path — produces byte-identical images and identical
//! retention reports to the scalar reference for every
//! `(seed, index, event)`. These tests drive both paths through random
//! seeds, hold voltages, droops, and stress levels and compare
//! everything observable.

use proptest::prelude::*;
use std::time::Duration;
use voltboot_sram::cell::{CellDistribution, CellParams};
use voltboot_sram::{ArrayConfig, OffEvent, ResolutionMode, SramArray, Temperature};

/// Random off-rail treatments, spanning unpowered, clean holds, droopy
/// holds, and holds above/below the whole DRV range.
fn off_events() -> impl Strategy<Value = OffEvent> {
    prop_oneof![
        Just(OffEvent::unpowered()),
        (0.0f64..1.0).prop_map(OffEvent::held),
        (0.0f64..1.0, 0.0f64..1.0).prop_map(|(v, frac)| OffEvent::held_with_droop(v, v * frac)),
    ]
}

/// Runs `cycles` identical power cycles on two clones of one die — one
/// resolved scalar, one batched — and asserts every image and report
/// matches. Covers warm-plane reuse because every cycle after the first
/// hits the memoized planes.
fn assert_paths_agree(
    seed: u64,
    bits: usize,
    fill: u8,
    event: OffEvent,
    dt: Duration,
    celsius: f64,
    cycles: usize,
) {
    let config = ArrayConfig::with_bits("prop", bits);
    let mut scalar = SramArray::new(config.clone(), seed);
    let mut batched = SramArray::new(config, seed);
    let r0s = scalar.power_on_with(ResolutionMode::Scalar).unwrap();
    let r0b = batched.power_on_with(ResolutionMode::Batched).unwrap();
    assert_eq!(r0s, r0b, "first power-up reports differ");
    assert_eq!(
        scalar.snapshot().unwrap(),
        batched.snapshot().unwrap(),
        "first power-up images differ"
    );
    for cycle in 0..cycles {
        for s in [&mut scalar, &mut batched] {
            s.fill(fill).unwrap();
            s.power_off(event).unwrap();
            s.elapse(dt, Temperature::from_celsius(celsius));
        }
        let rs = scalar.power_on_with(ResolutionMode::Scalar).unwrap();
        let rb = batched.power_on_with(ResolutionMode::Batched).unwrap();
        assert_eq!(rs, rb, "cycle {cycle} reports differ ({event:?}, {dt:?}, {celsius} C)");
        assert_eq!(
            scalar.snapshot().unwrap(),
            batched.snapshot().unwrap(),
            "cycle {cycle} images differ ({event:?}, {dt:?}, {celsius} C)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central equivalence: random dies, events, and stress levels,
    /// two cycles each (cold planes, then warm planes).
    #[test]
    fn batched_matches_scalar(
        seed in any::<u64>(),
        bits in 1usize..4096,
        fill in any::<u8>(),
        event in off_events(),
        dt_ms in 0u64..400,
        celsius in -120.0f64..30.0,
    ) {
        assert_paths_agree(seed, bits, fill, event, Duration::from_millis(dt_ms), celsius, 2);
    }

    /// The certainly-retained fast path: a clean hold at or above the
    /// DRV ceiling with zero accumulated stress.
    #[test]
    fn certainly_retained_fast_path_agrees(
        seed in any::<u64>(),
        bits in 1usize..2048,
        volts in 0.55f64..2.0,
    ) {
        assert_paths_agree(seed, bits, 0x5A, OffEvent::held(volts), Duration::ZERO, 25.0, 2);
    }

    /// The certainly-lost fast path: unpowered long past any plausible
    /// decay budget, where only power-up sampling runs.
    #[test]
    fn certainly_lost_fast_path_agrees(
        seed in any::<u64>(),
        bits in 1usize..2048,
    ) {
        assert_paths_agree(
            seed,
            bits,
            0xFF,
            OffEvent::unpowered(),
            Duration::from_secs(3600),
            25.0,
            2,
        );
    }

    /// `sample_powerup_only` (the all-lost shortcut) equals deriving the
    /// full parameter set and sampling — for every cell and event.
    #[test]
    fn sample_powerup_only_matches_full_derive(
        seed in any::<u64>(),
        index in 0usize..100_000,
        event in 0u64..64,
    ) {
        let dist = CellDistribution::calibrated();
        let full = CellParams::derive(seed, index, &dist);
        prop_assert_eq!(
            full.sample_powerup(seed, index, event),
            CellParams::sample_powerup_only(seed, index, &dist, event)
        );
    }
}

/// The sharded parallel path: an array at the threading threshold
/// (with a ragged tail word) must still match the scalar reference
/// exactly, regardless of how the word range is split across threads.
#[test]
fn parallel_sharded_resolution_is_bit_exact() {
    let bits = voltboot_sram::engine::PAR_MIN_BITS + 129;
    assert_paths_agree(
        0xC0FFEE,
        bits,
        0xA5,
        OffEvent::unpowered(),
        Duration::from_millis(20),
        -110.0,
        1,
    );
}

/// Droop through the middle of the DRV distribution — the hardest case
/// for the quantized DRV plane (maximum bucket-boundary traffic).
#[test]
fn mid_distribution_droop_is_bit_exact() {
    for vmin in [0.28, 0.2999999, 0.30, 0.3000001, 0.32] {
        assert_paths_agree(
            0xD1E,
            8192,
            0xC3,
            OffEvent::held_with_droop(0.8, vmin),
            Duration::from_millis(1),
            25.0,
            2,
        );
    }
}

/// Warm planes served from the global cache (a second array of the same
/// die) resolve identically to a cold scalar run.
#[test]
fn plane_cache_reuse_across_arrays_is_bit_exact() {
    let config = ArrayConfig::with_bytes("shared", 2048);
    let mut first = SramArray::new(config.clone(), 0xD1E2);
    first.power_on_with(ResolutionMode::Batched).unwrap();

    // `second` models the same physical die; its batched resolution hits
    // the planes `first` already built.
    let mut second = SramArray::new(config.clone(), 0xD1E2);
    let mut reference = SramArray::new(config, 0xD1E2);
    second.power_on_with(ResolutionMode::Batched).unwrap();
    reference.power_on_with(ResolutionMode::Scalar).unwrap();
    for s in [&mut second, &mut reference] {
        s.fill(0x3C).unwrap();
        s.power_off(OffEvent::unpowered()).unwrap();
        s.elapse(Duration::from_millis(20), Temperature::from_celsius(-110.0));
    }
    let rb = second.power_on_with(ResolutionMode::Batched).unwrap();
    let rs = reference.power_on_with(ResolutionMode::Scalar).unwrap();
    assert_eq!(rb, rs);
    assert_eq!(second.snapshot().unwrap(), reference.snapshot().unwrap());
}
