//! Lane-width equivalence of the bit-sliced resolution kernels.
//!
//! The engine resolves power cycles through three interchangeable
//! implementations: the per-bit scalar reference, the single-word
//! (64-lane) kernel, and the full-width 4×u64 (256-lane) kernel. Their
//! contract is bit-for-bit equality — same images, same retention
//! reports — for every `(seed, distribution, event, stress)`. These
//! tests pin that three-way equivalence across random dies *and* random
//! process distributions (engine_props.rs only varies the die seed), and
//! nail the ragged-tail cases where a lane straddles the array's end.

use proptest::prelude::*;
use std::time::Duration;
use voltboot_sram::cell::CellDistribution;
use voltboot_sram::{ArrayConfig, OffEvent, ResolutionMode, SramArray, Temperature};

const MODES: [ResolutionMode; 3] =
    [ResolutionMode::Scalar, ResolutionMode::BatchedWord, ResolutionMode::Batched];

/// Random but well-formed process distributions: every field finite,
/// `drv_min < drv_max`, fractions in range. Spans dies much weaker and
/// much stronger than the calibrated part, so the quantizer grids are
/// exercised at many different bucket widths.
fn distributions() -> impl Strategy<Value = CellDistribution> {
    (0.0f64..0.8, 0.1f64..0.5, 0.001f64..0.12, 0.0f64..0.12, 0.45f64..0.95, 0.05f64..1.2).prop_map(
        |(metastable, mean, sigma, min, max, decay)| CellDistribution {
            metastable_fraction: metastable,
            drv_mean: mean,
            drv_sigma: sigma,
            drv_min: min,
            drv_max: max,
            decay_sigma: decay,
        },
    )
}

/// Random off-rail treatments (same span as engine_props.rs).
fn off_events() -> impl Strategy<Value = OffEvent> {
    prop_oneof![
        Just(OffEvent::unpowered()),
        (0.0f64..1.0).prop_map(OffEvent::held),
        (0.0f64..1.0, 0.0f64..1.0).prop_map(|(v, frac)| OffEvent::held_with_droop(v, v * frac)),
    ]
}

/// Runs `cycles` identical power cycles on three clones of one die —
/// scalar, single-word, and 4-word lanes — and asserts every report and
/// image matches across all three. The first power-on exercises the
/// pure sampling path; each cycle exercises decay/DRV resolution.
fn assert_lane_widths_agree(
    seed: u64,
    config: &ArrayConfig,
    fill: u8,
    event: OffEvent,
    dt: Duration,
    celsius: f64,
    cycles: usize,
) {
    let mut arrays: Vec<SramArray> =
        MODES.iter().map(|_| SramArray::new(config.clone(), seed)).collect();
    let first: Vec<_> =
        arrays.iter_mut().zip(MODES).map(|(a, mode)| a.power_on_with(mode).unwrap()).collect();
    assert_eq!(first[0], first[1], "first power-up: scalar vs word lanes");
    assert_eq!(first[0], first[2], "first power-up: scalar vs 4-word lanes");
    let image = arrays[0].snapshot().unwrap();
    for a in &arrays[1..] {
        assert_eq!(image, a.snapshot().unwrap(), "first power-up images differ");
    }
    for cycle in 0..cycles {
        for a in &mut arrays {
            a.fill(fill).unwrap();
            a.power_off(event).unwrap();
            a.elapse(dt, Temperature::from_celsius(celsius));
        }
        let reports: Vec<_> =
            arrays.iter_mut().zip(MODES).map(|(a, mode)| a.power_on_with(mode).unwrap()).collect();
        assert_eq!(
            reports[0], reports[1],
            "cycle {cycle}: scalar vs word lanes ({event:?}, {dt:?}, {celsius} C)"
        );
        assert_eq!(
            reports[0], reports[2],
            "cycle {cycle}: scalar vs 4-word lanes ({event:?}, {dt:?}, {celsius} C)"
        );
        let image = arrays[0].snapshot().unwrap();
        for a in &arrays[1..] {
            assert_eq!(
                image,
                a.snapshot().unwrap(),
                "cycle {cycle} images differ ({event:?}, {dt:?}, {celsius} C)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The central three-way equivalence: random seeds, random process
    /// distributions, random events and stress levels, two cycles each
    /// (cold planes, then warm planes).
    #[test]
    fn lane_widths_agree_across_distributions(
        seed in any::<u64>(),
        bits in 1usize..4096,
        fill in any::<u8>(),
        dist in distributions(),
        event in off_events(),
        dt_ms in 0u64..400,
        celsius in -120.0f64..30.0,
    ) {
        let mut config = ArrayConfig::with_bits("simd-prop", bits);
        config.distribution = dist;
        assert_lane_widths_agree(
            seed,
            &config,
            fill,
            event,
            Duration::from_millis(dt_ms),
            celsius,
            2,
        );
    }

    /// Accumulated stress across several unpowered intervals at varying
    /// temperatures — the decay-cut comparison is driven through many
    /// different quantized stress values on the same warm planes.
    #[test]
    fn lane_widths_agree_under_accumulated_stress(
        seed in any::<u64>(),
        bits in 1usize..2048,
        dt1_ms in 1u64..200,
        dt2_ms in 1u64..200,
        c1 in -120.0f64..0.0,
        c2 in -120.0f64..0.0,
    ) {
        let config = ArrayConfig::with_bits("simd-stress", bits);
        let mut arrays: Vec<SramArray> =
            MODES.iter().map(|_| SramArray::new(config.clone(), seed)).collect();
        for (a, mode) in arrays.iter_mut().zip(MODES) {
            a.power_on_with(mode).unwrap();
            a.fill(0x6C).unwrap();
            a.power_off(OffEvent::unpowered()).unwrap();
            a.elapse(Duration::from_millis(dt1_ms), Temperature::from_celsius(c1));
            a.elapse(Duration::from_millis(dt2_ms), Temperature::from_celsius(c2));
        }
        let reports: Vec<_> = arrays
            .iter_mut()
            .zip(MODES)
            .map(|(a, mode)| a.power_on_with(mode).unwrap())
            .collect();
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
        let image = arrays[0].snapshot().unwrap();
        prop_assert_eq!(&image, &arrays[1].snapshot().unwrap());
        prop_assert_eq!(&image, &arrays[2].snapshot().unwrap());
    }
}

/// Ragged tails: lengths that end mid-word (65), one bit short of a
/// word boundary (255), and one bit past a full 4-word lane (257). The
/// wide kernel must mask the final partial lane identically to the
/// scalar path in both the power-up sampling pass (first power-on) and
/// the decay/DRV resolution pass (lossy cycle).
#[test]
fn tail_lanes_are_bit_exact() {
    for bits in [65usize, 255, 257] {
        for event in
            [OffEvent::unpowered(), OffEvent::held(0.25), OffEvent::held_with_droop(0.8, 0.3)]
        {
            let config = ArrayConfig::with_bits("tail", bits);
            assert_lane_widths_agree(
                0x7A11 ^ bits as u64,
                &config,
                0xA5,
                event,
                Duration::from_millis(25),
                -110.0,
                2,
            );
        }
    }
}

/// A tail word shared with a *weak* distribution, where nearly every
/// cell sits inside the DRV grid's interesting range — maximum traffic
/// through the bucket-equality fallback on the final partial lane.
#[test]
fn tail_lanes_survive_weak_distributions() {
    let mut config = ArrayConfig::with_bits("tail-weak", 257);
    config.distribution = CellDistribution {
        metastable_fraction: 0.6,
        drv_mean: 0.30,
        drv_sigma: 0.002, // razor-thin: every cell near one bucket edge
        drv_min: 0.28,
        drv_max: 0.32,
        decay_sigma: 0.05,
    };
    assert_lane_widths_agree(
        0xBAD_5EED,
        &config,
        0x3C,
        OffEvent::held_with_droop(0.8, 0.30),
        Duration::from_millis(10),
        -60.0,
        3,
    );
}

/// Lane equivalence must hold through the sharded parallel path too:
/// an array past the threading threshold with a ragged tail, resolved
/// at every lane width under a forced multi-thread budget.
#[test]
fn parallel_tail_lanes_are_bit_exact() {
    let bits = voltboot_sram::engine::PAR_MIN_BITS + 257;
    let config = ArrayConfig::with_bits("par-tail", bits);
    voltboot_sram::par::with_budget(4, || {
        assert_lane_widths_agree(
            0x9E37,
            &config,
            0xC3,
            OffEvent::unpowered(),
            Duration::from_millis(20),
            -110.0,
            1,
        );
    });
}
