//! Exporters for the recorder's trace tree and waveform channels.
//!
//! Three views of one deterministic store:
//!
//! * [`chrome_trace`] — the Chrome `trace_event` JSON format; open the
//!   file in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)
//!   to see the campaign's span hierarchy on the virtual timeline.
//! * [`folded`] — collapsed stacks (`root;child;leaf self_ns`), the
//!   input format of `inferno`/`flamegraph.pl`.
//! * [`waveforms_csv`] — the waveform channels as long-format CSV
//!   (`channel,at_ns,value`), plottable with anything.
//!
//! All three are pure functions of the recorder's exported state, so
//! they inherit the fork/absorb merge invariant: a parallel campaign's
//! exports are byte-identical to a sequential run's.

use crate::json::Value;
use crate::Recorder;
use std::collections::BTreeMap;

/// Microseconds-as-float for Chrome's `ts`/`dur` fields (it expects
/// microseconds; the virtual clock is nanoseconds).
fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

/// The crate-ish category of a dotted metric name: everything before
/// the first `.` (`"pdn.disconnect"` → `"pdn"`).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Renders the trace tree, event log, and counters as a Chrome
/// `trace_event` JSON document.
///
/// Spans become `"X"` (complete) events on pid 0 / tid 0 with their
/// attributes under `args`; Chrome nests them by time containment,
/// which matches the tree because children open and close inside their
/// parents on the virtual clock. Log events become `"i"` (instant)
/// events, and each counter contributes one `"C"` sample of its final
/// total. Retention-drop counts ride along under `otherData`.
pub fn chrome_trace(rec: &Recorder) -> Value {
    let mut events = Vec::new();
    for span in rec.spans() {
        let args = span.attrs.iter().map(|(k, v)| (k.clone(), v.to_value())).collect::<Vec<_>>();
        events.push(Value::object(vec![
            ("name", Value::from(span.name.as_str())),
            ("cat", Value::from(category(&span.name))),
            ("ph", Value::from("X")),
            ("ts", us(span.start_ns)),
            ("dur", us(span.end_ns.saturating_sub(span.start_ns))),
            ("pid", Value::from(0u64)),
            ("tid", Value::from(0u64)),
            ("args", Value::Object(args)),
        ]));
    }
    for e in rec.events() {
        events.push(Value::object(vec![
            ("name", Value::from(e.name.as_str())),
            ("cat", Value::from(category(&e.name))),
            ("ph", Value::from("i")),
            ("ts", us(e.at_ns)),
            ("pid", Value::from(0u64)),
            ("tid", Value::from(0u64)),
            ("s", Value::from("g")),
            ("args", Value::object(vec![("detail", Value::from(e.detail.as_str()))])),
        ]));
    }
    let clock = rec.now_ns();
    for (name, total) in rec.counters() {
        let sample = Value::object(vec![(name.as_str(), Value::from(total))]);
        events.push(Value::object(vec![
            ("name", Value::from(name.as_str())),
            ("cat", Value::from(category(&name))),
            ("ph", Value::from("C")),
            ("ts", us(clock)),
            ("pid", Value::from(0u64)),
            ("tid", Value::from(0u64)),
            ("args", sample),
        ]));
    }
    Value::object(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::from("ms")),
        (
            "otherData",
            Value::object(vec![
                ("clock_ns", Value::from(clock)),
                ("spans_dropped", Value::from(rec.spans_dropped())),
                ("waves_dropped", Value::from(rec.waves_dropped())),
            ]),
        ),
    ])
}

/// Renders the trace tree as collapsed stacks: one
/// `root;child;leaf self_ns` line per distinct stack, self time being a
/// span's duration minus its retained children's. Lines are
/// lexicographically sorted; feed to `inferno-flamegraph` or
/// `flamegraph.pl` to draw the profile.
pub fn folded(rec: &Recorder) -> String {
    let spans = rec.spans();
    let index_of: BTreeMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    // Children always carry larger ids than their parents (absorb
    // preserves open order), so one pass accumulates child time.
    let mut child_ns = vec![0u64; spans.len()];
    for span in &spans {
        if let Some(parent_idx) = span.parent.and_then(|p| index_of.get(&p)) {
            child_ns[*parent_idx] += span.end_ns.saturating_sub(span.start_ns);
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (i, span) in spans.iter().enumerate() {
        let mut path = vec![span.name.as_str()];
        let mut cursor = span.parent;
        while let Some(pid) = cursor {
            // A dropped ancestor truncates the walk; the stack is
            // rooted at the oldest retained span.
            let Some(&idx) = index_of.get(&pid) else { break };
            path.push(spans[idx].name.as_str());
            cursor = spans[idx].parent;
        }
        path.reverse();
        let own = span.end_ns.saturating_sub(span.start_ns).saturating_sub(child_ns[i]);
        *stacks.entry(path.join(";")).or_insert(0) += own;
    }
    let mut out = String::new();
    for (stack, ns) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Renders the waveform channels as long-format CSV with a
/// `channel,at_ns,value` header — the oscilloscope view of the PDN
/// model (rail voltage/current during disconnect surges, reconnect
/// staircases, and SRAM decay windows).
pub fn waveforms_csv(rec: &Recorder) -> String {
    let mut out = String::from("channel,at_ns,value\n");
    for (channel, samples) in rec.waveforms() {
        for s in samples {
            out.push_str(&channel);
            out.push(',');
            out.push_str(&s.at_ns.to_string());
            out.push(',');
            let v = format!("{}", s.value);
            out.push_str(&v);
            if !v.contains(['.', 'e', 'E', 'n', 'i']) {
                out.push_str(".0");
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sample_recorder() -> Recorder {
        let rec = Recorder::new();
        let outer = rec.span("campaign.rep");
        outer.attr("rep", 0u64);
        rec.advance(1_000);
        {
            let inner = rec.span("pdn.disconnect");
            inner.attr("rails_held", 1u64);
            rec.sample_at("pdn.VDD_CORE.v", 1_100, 0.8);
            rec.sample_at("pdn.VDD_CORE.v", 1_400, 0.42);
            rec.advance(500);
        }
        rec.event("soc.fault", "brown-out");
        rec.incr("campaign.reps", 1);
        rec.advance(250);
        outer.end();
        rec
    }

    #[test]
    fn chrome_trace_parses_and_carries_all_record_kinds() {
        let rec = sample_recorder();
        let doc = chrome_trace(&rec).render();
        let v = parse::parse(&doc).expect("exporter output must parse with the in-repo parser");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 spans + 1 instant + 1 counter.
        assert_eq!(events.len(), 4);
        let phases: Vec<&str> =
            events.iter().map(|e| e.get("ph").unwrap().as_str().unwrap()).collect();
        assert_eq!(phases, vec!["X", "X", "i", "C"]);
        let outer = &events[0];
        assert_eq!(outer.get("name").unwrap().as_str(), Some("campaign.rep"));
        assert_eq!(outer.get("cat").unwrap().as_str(), Some("campaign"));
        assert_eq!(outer.get("ts").unwrap().as_f64(), Some(0.0));
        assert_eq!(outer.get("dur").unwrap().as_f64(), Some(1.75));
        assert_eq!(outer.get("args").unwrap().get("rep").unwrap().as_u64(), Some(0));
        let inner = &events[1];
        assert_eq!(inner.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(inner.get("dur").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        assert_eq!(
            chrome_trace(&sample_recorder()).render(),
            chrome_trace(&sample_recorder()).render()
        );
    }

    #[test]
    fn folded_attributes_self_time_to_the_right_stack() {
        let rec = sample_recorder();
        let out = folded(&rec);
        let lines: Vec<&str> = out.lines().collect();
        // Outer span: 1750 total − 500 in the child = 1250 self.
        // Inner span: 500 self under the outer.
        assert_eq!(lines, vec!["campaign.rep 1250", "campaign.rep;pdn.disconnect 500"], "{out}");
    }

    #[test]
    fn folded_aggregates_repeated_stacks() {
        let rec = Recorder::new();
        for _ in 0..3 {
            let s = rec.span("step");
            rec.advance(10);
            s.end();
        }
        assert_eq!(folded(&rec), "step 30\n");
    }

    #[test]
    fn waveforms_csv_emits_long_format_rows() {
        let rec = sample_recorder();
        let csv = waveforms_csv(&rec);
        assert_eq!(csv, "channel,at_ns,value\npdn.VDD_CORE.v,1100,0.8\npdn.VDD_CORE.v,1400,0.42\n");
    }

    #[test]
    fn waveforms_csv_keeps_integral_values_floaty() {
        let rec = Recorder::new();
        rec.sample("ch", 3.0);
        assert_eq!(waveforms_csv(&rec), "channel,at_ns,value\nch,0,3.0\n");
    }

    #[test]
    fn empty_recorder_exports_are_valid() {
        let rec = Recorder::new();
        assert!(parse::parse(&chrome_trace(&rec).render()).is_ok());
        assert_eq!(folded(&rec), "");
        assert_eq!(waveforms_csv(&rec), "channel,at_ns,value\n");
        let disabled = Recorder::disabled();
        assert!(parse::parse(&chrome_trace(&disabled).render()).is_ok());
        assert_eq!(folded(&disabled), "");
    }
}
